#!/usr/bin/env python
"""Regenerate the frozen kernel-stream fixtures under ``tests/fixtures/``.

The fixtures pin the *on-disk byte format* of the entropy/bitstream kernels:
every case stores both the deterministic input and the encoded stream bytes.
``tests/test_kernel_fixtures.py`` asserts that the current implementation
still produces byte-identical streams (forward compat) and decodes the
frozen streams to the original arrays (backward compat), so the vectorized
kernels can be rewritten freely without silently forking the format.

Run from the repo root::

    PYTHONPATH=src python tools/gen_kernel_fixtures.py

Only rerun this when the byte format changes *intentionally*; the diff of
the regenerated ``.npz`` is then part of the format-change review.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.compressors import get_compressor  # noqa: E402
from repro.compressors.bitstream import pack_bits  # noqa: E402
from repro.compressors.huffman import huffman_encode  # noqa: E402

FIXTURE_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "tests"
    / "fixtures"
    / "kernel_streams.npz"
)


def _as_bytes_array(blob: bytes) -> np.ndarray:
    return np.frombuffer(blob, dtype=np.uint8)


def huffman_cases() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(20260729)
    cases: dict[str, np.ndarray] = {}

    def add(name: str, syms: np.ndarray) -> None:
        syms = np.ascontiguousarray(syms, dtype=np.int64)
        cases[f"huffman/{name}/input"] = syms
        cases[f"huffman/{name}/blob"] = _as_bytes_array(huffman_encode(syms))

    add("empty", np.zeros(0, dtype=np.int64))
    add("single_symbol", np.full(1000, 42, dtype=np.int64))
    add("two_symbols", np.array([0, 1] * 500, dtype=np.int64))
    add("geometric", rng.geometric(0.3, size=50_000) - 1)
    # Quantizer-shaped: mostly small zig-zag codes around 1, sparse outliers (0).
    codes = rng.geometric(0.45, size=40_000)
    codes[rng.random(codes.size) < 0.002] = 0
    add("quantizer_codes", codes)
    add("large_alphabet", rng.integers(0, 5000, size=20_000))
    # Exponential frequencies force canonical codes longer than PEEK_BITS.
    add(
        "long_codes",
        np.concatenate([np.full(2**i, i, dtype=np.int64) for i in range(18)]),
    )
    # Fibonacci frequencies maximize Huffman depth per total count: ~24
    # lengths from ~200k symbols, deep into the slow-path regime.
    fib = [1, 1]
    while len(fib) < 24:
        fib.append(fib[-1] + fib[-2])
    parts = [np.full(f, i, dtype=np.int64) for i, f in enumerate(fib)]
    concat = np.concatenate(parts)
    add("very_long_codes", concat[rng.permutation(concat.size)])
    return cases


def pack_cases() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(987)
    cases: dict[str, np.ndarray] = {}

    def add(name: str, values: np.ndarray, widths: np.ndarray) -> None:
        values = np.ascontiguousarray(values, dtype=np.uint64)
        widths = np.ascontiguousarray(widths, dtype=np.int64)
        cases[f"pack/{name}/values"] = values
        cases[f"pack/{name}/widths"] = widths
        cases[f"pack/{name}/blob"] = _as_bytes_array(pack_bits(values, widths))

    add(
        "mixed",
        np.array([5, 0, 255, 1, 2**64 - 1, 7], dtype=np.uint64),
        np.array([3, 1, 8, 2, 64, 0], dtype=np.int64),
    )
    widths = rng.integers(0, 65, size=3000)
    values = rng.integers(0, 2**63, size=3000, dtype=np.uint64)
    values = np.where(
        widths == 0,
        0,
        values & ((np.uint64(1) << np.maximum(widths, 1).astype(np.uint64)) - np.uint64(1)),
    ).astype(np.uint64)
    add("random", values, widths)
    add(
        "all_64",
        np.array([2**64 - 1, 0, 2**63, 1], dtype=np.uint64),
        np.full(4, 64, dtype=np.int64),
    )
    return cases


def zfp_cases() -> dict[str, np.ndarray]:
    cases: dict[str, np.ndarray] = {}
    comp = get_compressor("zfp")

    def add(name: str, arr: np.ndarray, rel_bound: float) -> None:
        buf = comp.compress(arr, rel_bound)
        cases[f"zfp/{name}/input"] = np.ascontiguousarray(arr)
        cases[f"zfp/{name}/rel_bound"] = np.array([rel_bound], dtype=np.float64)
        cases[f"zfp/{name}/blob"] = _as_bytes_array(buf.data)

    x, y, z = np.meshgrid(*[np.linspace(0.0, 1.0, 12)] * 3, indexing="ij")
    smooth3 = (np.sin(5 * x) * np.cos(4 * y) + z**2).astype(np.float64)
    add("smooth_3d", smooth3, 1e-3)

    rng = np.random.default_rng(31337)
    add("noisy_2d", rng.standard_normal((17, 23)) * 50.0 + 10.0, 1e-4)
    add("ramp_1d", np.linspace(-4.0, 9.0, 301), 1e-5)
    # Huge common exponent + micro-scale range: exercises the raw escape.
    add("raw_escape", 1.0e8 + rng.standard_normal((4, 4, 4)) * 1e-4, 1e-12)
    add("with_zero_blocks", np.pad(smooth3, ((0, 8), (0, 0), (0, 0))), 1e-3)
    return cases


def main() -> int:
    cases: dict[str, np.ndarray] = {}
    cases.update(huffman_cases())
    cases.update(pack_cases())
    cases.update(zfp_cases())
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(FIXTURE_PATH, **cases)
    n_cases = len({k.rsplit("/", 2)[0] + "/" + k.split("/")[1] for k in cases})
    print(f"wrote {FIXTURE_PATH} ({n_cases} cases, {len(cases)} arrays)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
