#!/usr/bin/env python3
"""Schema + invariant gate for checkpoint-sweep records (CI bench-smoke job).

Validates the JSON array emitted by ``repro sweep --kind checkpoint --json``:
every record must be a tagged ``CheckpointPoint`` with the expected fields
and must satisfy the lifetime model's invariants — the makespan can never
undercut the useful work, a failure-free (``mttf=inf``) lifetime is exactly
work plus its checkpoints with zero failures, the uncompressed baseline
carries no codec cost, and the Daly interval shrinks (never grows) as the
MTTF drops.  Exits non-zero (listing the violations) on any failure, so
schema or model drift fails the build instead of shipping silently.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: ``repro sweep --json`` emits non-finite floats as repr strings ("inf"),
#: keeping the document RFC 8259; these fields may legitimately carry one.
NONFINITE_OK = {"mttf_s", "interval_s", "psnr_db"}

REQUIRED = {
    "__record__": str,
    "dataset": str,
    "io_library": str,
    "cpu": str,
    "mttf_s": (int, float, str),
    "n_nodes": int,
    "work_s": (int, float),
    "interval": (int, float, str),
    "interval_s": (int, float, str),
    "seed": int,
    "n_chunks": int,
    "overlap": bool,
    "downtime_s": (int, float),
    "ckpt_compress_time_s": (int, float),
    "ckpt_write_time_s": (int, float),
    "ckpt_time_s": (int, float),
    "ckpt_compress_energy_j": (int, float),
    "ckpt_write_energy_j": (int, float),
    "restart_fetch_time_s": (int, float),
    "restart_decompress_time_s": (int, float),
    "restart_fetch_energy_j": (int, float),
    "restart_decompress_energy_j": (int, float),
    "makespan_s": (int, float),
    "n_checkpoints": int,
    "n_failures": int,
    "rework_s": (int, float),
    "compute_energy_j": (int, float),
    "checkpoint_energy_j": (int, float),
    "restart_energy_j": (int, float),
    "idle_energy_j": (int, float),
    "expected_makespan_s": (int, float),
    "expected_energy_j": (int, float),
    "ratio": (int, float),
    "psnr_db": (int, float, str),
}
# codec / rel_bound are also required but may be null (uncompressed baseline).
NULLABLE = {"codec": str, "rel_bound": (int, float), "freq_ghz": (int, float)}


def _num(value) -> float:
    """A record number that may be a non-finite repr string."""
    return float(value) if isinstance(value, str) else value


def check(path: Path) -> list[str]:
    """All schema/invariant violations in ``path`` (empty list = valid)."""
    errors: list[str] = []
    try:
        records = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    if not isinstance(records, list) or not records:
        return [f"{path}: expected a non-empty JSON array of records"]
    # Per configuration: the resolved interval must not grow as MTTF drops.
    by_config: dict[tuple, list[tuple[float, float]]] = {}
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        if rec.get("__record__") != "CheckpointPoint":
            errors.append(f"{where}: __record__ != 'CheckpointPoint'")
            continue
        for field, kind in REQUIRED.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif not isinstance(rec[field], kind) or (
                isinstance(rec[field], bool) and kind is not bool
            ):
                errors.append(
                    f"{where}.{field}: wrong type {type(rec[field]).__name__}"
                )
            elif isinstance(rec[field], str) and field in NONFINITE_OK:
                try:
                    float(rec[field])
                except ValueError:
                    errors.append(f"{where}.{field}: non-numeric string")
        for field, kind in NULLABLE.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif rec[field] is not None and not isinstance(rec[field], kind):
                errors.append(f"{where}.{field}: wrong type {type(rec[field]).__name__}")
        if errors and errors[-1].startswith(where):
            continue  # field errors already make invariants meaningless
        mttf = _num(rec["mttf_s"])
        interval_s = _num(rec["interval_s"])
        if rec["n_checkpoints"] < 1:
            errors.append(f"{where}: at least one checkpoint must commit")
        if rec["makespan_s"] < rec["work_s"]:
            errors.append(f"{where}: makespan undercuts the useful work")
        if rec["expected_makespan_s"] < rec["work_s"]:
            errors.append(f"{where}: expected makespan undercuts the work")
        if rec["rework_s"] < -1e-9 or rec["n_failures"] < 0:
            errors.append(f"{where}: negative rework or failure count")
        for field in (
            "compute_energy_j",
            "checkpoint_energy_j",
            "restart_energy_j",
            "idle_energy_j",
            "expected_energy_j",
        ):
            if rec[field] < 0:
                errors.append(f"{where}.{field}: negative energy")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
        if rec["codec"] is None:
            if rec["ckpt_compress_time_s"] != 0 or rec["ckpt_compress_energy_j"] != 0:
                errors.append(f"{where}: uncompressed baseline carries codec cost")
            if rec["ratio"] != 1.0:
                errors.append(f"{where}: uncompressed baseline ratio != 1.0")
        if math.isinf(mttf):
            if rec["n_failures"] != 0 or rec["rework_s"] != 0:
                errors.append(f"{where}: failure-free lifetime shows failures")
            ff = rec["work_s"] + rec["n_checkpoints"] * rec["ckpt_time_s"]
            if abs(rec["makespan_s"] - ff) > 1e-6 * max(1.0, ff):
                errors.append(
                    f"{where}: failure-free makespan {rec['makespan_s']} != "
                    f"work + checkpoints {ff}"
                )
        key = (
            rec["dataset"],
            rec["codec"],
            rec["rel_bound"],
            rec["io_library"],
            rec["cpu"],
            rec["interval"] if isinstance(rec["interval"], str) else None,
        )
        if isinstance(rec["interval"], str):  # daly/young adapt to the MTTF
            by_config.setdefault(key, []).append((mttf, interval_s))
    for key, points in by_config.items():
        points.sort()
        for (m_lo, tau_lo), (m_hi, tau_hi) in zip(points, points[1:]):
            if tau_lo > tau_hi + 1e-9:
                errors.append(
                    f"config {key}: optimal interval grew as MTTF dropped "
                    f"({tau_lo}s @ MTTF {m_lo}s vs {tau_hi}s @ MTTF {m_hi}s)"
                )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_checkpoint_schema.py CHECKPOINT_sweep.json", file=sys.stderr)
        return 2
    errors = check(Path(argv[1]))
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: checkpoint sweep records OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
