#!/usr/bin/env python3
"""Regenerate the conformance golden fixture from the registry.

Runs every registered experiment kind's ``conformance`` grid on a
``scale="tiny"`` testbed and writes the expected store keys and encoded
records to ``tests/fixtures/conformance_golden.json`` — the fixture
``tests/test_conformance.py`` pins record values and sha256 store keys
against.

Only regenerate after an *intentional* behaviour change (new calibration,
CACHE_VERSION bump, a new builtin kind); a diff in this file's output on a
pure refactor means grid identity broke.  Review the resulting diff like
code.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.experiments import Testbed  # noqa: E402
from repro.runtime import registry  # noqa: E402
from repro.runtime.engine import SweepEngine  # noqa: E402
from repro.runtime.spec import SweepSpec  # noqa: E402
from repro.runtime.store import ResultStore, _jsonsafe, encode_record  # noqa: E402


def main() -> int:
    tb = Testbed(scale="tiny")
    doc = {"version": 1, "scale": "tiny", "kinds": {}}
    for kind in registry.all_kinds():
        if kind.conformance is None:
            print(f"{kind.name}: no conformance grid declared, skipped")
            continue
        spec = SweepSpec(kind=kind.name, **kind.conformance)
        engine = SweepEngine(testbed=tb, store=ResultStore())
        records = engine.run(spec)
        keys = [engine._key(p) for p in spec.points()]
        doc["kinds"][kind.name] = {
            "spec": _jsonsafe(spec.to_dict()),
            "keys": keys,
            "records": [_jsonsafe(encode_record(r)) for r in records],
        }
        print(f"{kind.name}: {len(records)} records")
    out = pathlib.Path(__file__).resolve().parents[1] / "tests" / "fixtures"
    out.mkdir(exist_ok=True)
    (out / "conformance_golden.json").write_text(
        json.dumps(doc, indent=1, allow_nan=False) + "\n"
    )
    print("wrote tests/fixtures/conformance_golden.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
