#!/usr/bin/env python3
"""Schema + invariant gate for DVFS-sweep records (CI bench-smoke job).

Validates the JSON array emitted by ``repro sweep --kind dvfs --json``:
every record must be a tagged ``DvfsPoint`` with the expected fields and
must satisfy the DVFS model's physical invariants — compression time never
*increases* with the core clock, the uncompressed baseline carries no codec
cost, and every energy is positive (idle power alone guarantees that).
Exits non-zero (listing the violations) on any failure, so schema or model
drift fails the build instead of shipping silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED = {
    "__record__": str,
    "dataset": str,
    "io_library": str,
    "cpu": str,
    "freq_ghz": (int, float),
    "bytes_written": int,
    "compress_time_s": (int, float),
    "write_time_s": (int, float),
    "compress_energy_j": (int, float),
    "write_energy_j": (int, float),
    "ratio": (int, float),
    # psnr_db is a number for codec points but the non-finite "inf" is
    # emitted as a string by `repro sweep --json` (RFC 8259 has no Infinity).
    "psnr_db": (int, float, str),
}
# codec / rel_bound are also required but may be null (uncompressed baseline).
NULLABLE = {"codec": str, "rel_bound": (int, float)}


def check(path: Path) -> list[str]:
    """All schema/invariant violations in ``path`` (empty list = valid)."""
    errors: list[str] = []
    try:
        records = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    if not isinstance(records, list) or not records:
        return [f"{path}: expected a non-empty JSON array of records"]
    # Compression time must be non-increasing in frequency per configuration.
    by_config: dict[tuple, list[tuple[float, float]]] = {}
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        if rec.get("__record__") != "DvfsPoint":
            errors.append(f"{where}: __record__ != 'DvfsPoint'")
            continue
        for field, kind in REQUIRED.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif not isinstance(rec[field], kind) or isinstance(rec[field], bool):
                errors.append(f"{where}.{field}: wrong type {type(rec[field]).__name__}")
        for field, kind in NULLABLE.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif rec[field] is not None and not isinstance(rec[field], kind):
                errors.append(f"{where}.{field}: wrong type {type(rec[field]).__name__}")
        if errors and errors[-1].startswith(where):
            continue  # field errors already make invariants meaningless
        if rec["freq_ghz"] <= 0:
            errors.append(f"{where}: freq_ghz must be positive")
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if min(rec["compress_time_s"], rec["write_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if rec["compress_energy_j"] < 0 or rec["write_energy_j"] <= 0:
            errors.append(f"{where}: energy must be positive (idle power alone is)")
        if rec["ratio"] <= 0:
            errors.append(f"{where}: ratio must be positive")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
        if rec["codec"] is None:
            if rec["compress_time_s"] != 0 or rec["compress_energy_j"] != 0:
                errors.append(f"{where}: uncompressed baseline carries codec cost")
            if rec["ratio"] != 1.0:
                errors.append(f"{where}: uncompressed baseline ratio != 1.0")
        key = (
            rec["dataset"],
            rec["codec"],
            rec["rel_bound"],
            rec["io_library"],
            rec["cpu"],
        )
        by_config.setdefault(key, []).append(
            (float(rec["freq_ghz"]), float(rec["compress_time_s"]))
        )
    for key, points in by_config.items():
        points.sort()
        for (f_lo, t_lo), (f_hi, t_hi) in zip(points, points[1:]):
            if t_hi > t_lo + 1e-9:
                errors.append(
                    f"config {key}: compress time rose with frequency "
                    f"({t_lo}s @ {f_lo} GHz -> {t_hi}s @ {f_hi} GHz)"
                )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_dvfs_schema.py DVFS_sweep.json", file=sys.stderr)
        return 2
    errors = check(Path(argv[1]))
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: dvfs sweep records OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
