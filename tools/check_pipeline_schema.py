#!/usr/bin/env python3
"""Schema + invariant gate for pipeline-sweep records (CI bench-smoke job).

Validates the JSON array emitted by ``repro sweep --kind pipeline --json``:
every record must be a tagged ``PipelinePoint`` with the expected fields and
must satisfy the pipeline's physical invariants — the overlapped makespan
never exceeds the stages run back to back, and an overlap-off control run
sums exactly.  Exits non-zero (listing the violations) on any failure, so
schema or model drift fails the build instead of shipping silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED = {
    "__record__": str,
    "dataset": str,
    "io_library": str,
    "cpu": str,
    "n_chunks": int,
    "overlap": bool,
    "bytes_written": int,
    "compress_time_s": (int, float),
    "write_time_s": (int, float),
    "total_time_s": (int, float),
    "compress_energy_j": (int, float),
    "write_energy_j": (int, float),
}
# codec / rel_bound are also required but may be null (uncompressed baseline).
NULLABLE = {"codec": str, "rel_bound": (int, float)}

#: Per-chunk slack for the makespan invariant.  Overlap can only *hide*
#: stage time, but each additional chunk honestly pays its library's
#: chunk_meta_latency_s (<= 3 ms for NetCDF classic), which the sequential
#: stage sum does not include — so a degenerate config (tiny payload, many
#: chunks) may legitimately end slightly above the stage sum.  10 ms/chunk
#: comfortably covers every shipped cost model while still catching real
#: model drift.
CHUNK_META_ALLOWANCE_S = 0.01


def check(path: Path) -> list[str]:
    """All schema/invariant violations in ``path`` (empty list = valid)."""
    errors: list[str] = []
    try:
        records = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    if not isinstance(records, list) or not records:
        return [f"{path}: expected a non-empty JSON array of records"]
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        if rec.get("__record__") != "PipelinePoint":
            errors.append(f"{where}: __record__ != 'PipelinePoint'")
            continue
        for field, kind in REQUIRED.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif not isinstance(rec[field], kind) or isinstance(rec[field], bool) != (
                kind is bool
            ):
                errors.append(f"{where}.{field}: wrong type {type(rec[field]).__name__}")
        for field, kind in NULLABLE.items():
            if field not in rec:
                errors.append(f"{where}: missing field {field!r}")
            elif rec[field] is not None and not isinstance(rec[field], kind):
                errors.append(f"{where}.{field}: wrong type {type(rec[field]).__name__}")
        if errors and errors[-1].startswith(where):
            continue  # field errors already make invariants meaningless
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if rec["n_chunks"] < 1:
            errors.append(f"{where}: n_chunks must be >= 1")
        if min(rec["compress_time_s"], rec["write_time_s"], rec["total_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if min(rec["compress_energy_j"], rec["write_energy_j"]) < 0:
            errors.append(f"{where}: negative energy")
        stage_sum = rec["compress_time_s"] + rec["write_time_s"]
        allowance = CHUNK_META_ALLOWANCE_S * rec["n_chunks"]
        if rec["total_time_s"] > stage_sum + allowance + 1e-9:
            errors.append(
                f"{where}: overlapped total {rec['total_time_s']} exceeds "
                f"stage sum {stage_sum} + chunk-metadata allowance {allowance}"
            )
        if not rec["overlap"] and abs(rec["total_time_s"] - stage_sum) > 1e-9:
            errors.append(f"{where}: overlap-off control does not sum exactly")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_pipeline_schema.py PIPELINE_sweep.json", file=sys.stderr)
        return 2
    errors = check(Path(argv[1]))
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: pipeline sweep records OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
