#!/usr/bin/env python3
"""DEPRECATED shim: pipeline records now validate through the unified checker.

The schema and the physical invariants (overlapped makespan never exceeds
the stages back to back, overlap-off control sums exactly) live on the
``pipeline`` :class:`~repro.runtime.registry.ExperimentKind`; this wrapper
keeps the old CI entrypoint and its ``check(path)`` API working.  Prefer::

    python tools/check_record_schemas.py pipeline PIPELINE_sweep.json
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_record_schemas as _unified  # noqa: E402

KIND = "pipeline"


def check(path) -> list[str]:
    """All schema/invariant violations in ``path`` (empty list = valid)."""
    return _unified.check(KIND, path)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: check_{KIND}_schema.py PIPELINE_sweep.json", file=sys.stderr)
        return 2
    print(
        f"note: check_{KIND}_schema.py is deprecated; use "
        f"`check_record_schemas.py {KIND} {argv[1]}`",
        file=sys.stderr,
    )
    return _unified.main([argv[0], KIND, argv[1]])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
