#!/usr/bin/env python3
"""Verify that every relative Markdown link in the repo resolves to a file.

Scans all tracked-looking ``*.md`` files (skipping VCS/cache directories),
extracts inline ``[text](target)`` links, and checks that non-URL targets
exist relative to the file containing them. Anchors (``#section``) and
external schemes (http/https/mailto) are ignored. Exits non-zero listing
every broken link — this is the CI docs link-check step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".pytest_cache", ".hypothesis", ".benchmarks", "__pycache__", "node_modules"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check(root: Path) -> list[str]:
    errors = []
    for md in iter_markdown(root):
        for target in LINK_RE.findall(md.read_text(encoding="utf-8")):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (md.parent / rel).resolve()
            if not resolved.exists():
                errors.append(f"{md.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    errors = check(root)
    for line in errors:
        print(line, file=sys.stderr)
    n = sum(1 for _ in iter_markdown(root))
    print(f"checked {n} markdown files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
