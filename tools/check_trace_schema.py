#!/usr/bin/env python3
"""CI gate: validate a Chrome trace-event JSON emitted by ``--trace``.

Checks the structural contract that makes the file loadable in Perfetto /
``chrome://tracing`` AND machine-recoverable by
:func:`repro.obs.export.load_trace`:

- top level is an object with a ``traceEvents`` list;
- every event carries ``name``/``ph``/``pid``/``tid``;
- ``X`` (complete) events have non-negative ``ts`` and ``dur``;
- ``i`` (instant) events have non-negative ``ts`` and a scope ``s``;
- ``M`` (metadata) events are ``process_name``/``thread_name`` with an
  ``args.name`` string;
- span events carry the exact-seconds ``t0_s``/``t1_s`` args consistent
  with the microsecond display fields (these args are the artifact of
  record — the bit-identity tests read them back);
- every span event's ``(pid, tid)`` resolves to a named thread track.

Usage::

    python tools/check_trace_schema.py TRACE.json

Exits non-zero listing the violations.  Virtual-clock timestamps are
simulated seconds, so absolute magnitudes are never checked — only shape
and internal consistency.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Display microseconds are derived from the exact seconds by a single
#: multiply; allow only float-noise disagreement between the two.
_REL_TOL = 1e-9


def _check_event(i: int, event, named_tracks: set) -> list[str]:
    where = f"traceEvents[{i}]"
    if not isinstance(event, dict):
        return [f"{where}: not an object"]
    errors = []
    for key in ("name", "ph", "pid", "tid"):
        if key not in event:
            errors.append(f"{where}: missing {key!r}")
    if errors:
        return errors
    ph = event["ph"]
    if ph == "M":
        if event["name"] not in ("process_name", "thread_name"):
            errors.append(f"{where}: unknown metadata event {event['name']!r}")
        elif not isinstance((event.get("args") or {}).get("name"), str):
            errors.append(f"{where}: metadata event lacks args.name")
        return errors
    if ph not in ("X", "i"):
        errors.append(f"{where}: unexpected phase {ph!r}")
        return errors
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"{where}: ts must be a non-negative number, got {ts!r}")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: dur must be a non-negative number, got {dur!r}")
    else:
        if event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s in t/p/g")
    if (event["pid"], event["tid"]) not in named_tracks:
        errors.append(
            f"{where}: pid/tid ({event['pid']}, {event['tid']}) has no "
            "thread_name metadata"
        )
    args = event.get("args")
    if not isinstance(args, dict) or "t0_s" not in args or "t1_s" not in args:
        errors.append(f"{where}: args must carry exact-seconds t0_s/t1_s")
        return errors
    t0_s, t1_s = args["t0_s"], args["t1_s"]
    if not isinstance(t0_s, (int, float)) or not isinstance(t1_s, (int, float)):
        errors.append(f"{where}: t0_s/t1_s must be numbers")
        return errors
    if t1_s < t0_s:
        errors.append(f"{where}: t1_s {t1_s} precedes t0_s {t0_s}")
    if isinstance(ts, (int, float)):
        scale = max(abs(t0_s) * 1e6, 1.0)
        if abs(ts - t0_s * 1e6) > _REL_TOL * scale:
            errors.append(
                f"{where}: ts {ts} disagrees with t0_s {t0_s} (µs vs s)"
            )
        if ph == "X" and isinstance(event.get("dur"), (int, float)):
            span_us = (t1_s - t0_s) * 1e6
            scale = max(abs(span_us), 1.0)
            if abs(event["dur"] - span_us) > _REL_TOL * scale:
                errors.append(
                    f"{where}: dur {event['dur']} disagrees with "
                    f"t1_s - t0_s = {t1_s - t0_s}s"
                )
    return errors


def check(path) -> list[str]:
    """All trace-format violations in ``path`` (empty list = valid)."""
    try:
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]
    named_tracks = {
        (e["pid"], e["tid"])
        for e in events
        if isinstance(e, dict)
        and e.get("ph") == "M"
        and e.get("name") == "thread_name"
        and "pid" in e
        and "tid" in e
    }
    errors: list[str] = []
    for i, event in enumerate(events):
        errors.extend(_check_event(i, event, named_tracks))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_trace_schema.py TRACE.json", file=sys.stderr)
        return 2
    errors = check(argv[1])
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    with open(argv[1], encoding="utf-8") as fh:
        n = sum(1 for e in json.load(fh)["traceEvents"] if e.get("ph") != "M")
    print(f"{argv[1]}: valid Chrome trace ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
