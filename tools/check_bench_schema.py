#!/usr/bin/env python3
"""CI gate: validate a BENCH_kernels.json against the harness schema.

Usage::

    PYTHONPATH=src python tools/check_bench_schema.py BENCH_kernels.json

Exits non-zero with a message on schema drift (missing keys, wrong types,
version bumps).  Absolute timings are deliberately NOT checked — CI runners
make them meaningless; only the document shape is contractual.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.runtime.benchmark import load_doc  # noqa: E402


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_bench_schema.py BENCH_kernels.json", file=sys.stderr)
        return 2
    try:
        doc = load_doc(argv[0])
    except (OSError, ValueError) as exc:
        print(f"benchmark schema drift in {argv[0]}: {exc}", file=sys.stderr)
        return 1
    print(
        f"{argv[0]}: schema v{doc['schema_version']} ok "
        f"({len(doc['results'])} results, {len(doc['history'])} runs in history)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
