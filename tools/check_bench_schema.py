#!/usr/bin/env python3
"""DEPRECATED shim: bench documents now validate through the unified checker.

The benchmark document contract (``schema_version``, per-kernel result
keys, history entries) is checked by
:func:`repro.runtime.benchmark.load_doc`; the unified
``check_record_schemas.py`` dispatches ``bench`` straight to it, so this
wrapper only keeps the old CI entrypoint and its exit codes working.
Prefer::

    python tools/check_record_schemas.py bench BENCH_kernels.json

Absolute timings are deliberately NOT checked — CI runners make them
meaningless; only the document shape is contractual.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_record_schemas as _unified  # noqa: E402

_DEPRECATION = (
    "check_bench_schema.py is deprecated; use "
    "`check_record_schemas.py bench BENCH_kernels.json`"
)


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_bench_schema.py BENCH_kernels.json", file=sys.stderr)
        return 2
    print(f"note: {_DEPRECATION}", file=sys.stderr)
    return _unified.main(["check_record_schemas.py", "bench", argv[0]])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
