#!/usr/bin/env python3
"""Registry-driven schema + invariant gate for sweep records (CI bench-smoke).

Validates the JSON array emitted by ``repro sweep --kind KIND --json``
against KIND's registered record schema (derived from the record dataclass
by :mod:`repro.runtime.registry`) and its registered physical invariants —
the same checks the per-kind ``check_pipeline_schema.py`` /
``check_dvfs_schema.py`` / ``check_checkpoint_schema.py`` tools used to
hand-maintain, now declared once per kind in the registry.  A plugin kind
that registers ``invariants`` is validated by this tool with no tool
changes.

Usage::

    python tools/check_record_schemas.py KIND SWEEP.json

``KIND`` may also name a record dataclass registered through
``registry.register_record`` without owning a kind (``CampaignResult``,
``CheckpointCampaignResult``): those validate schema-only, so campaign
JSON is gated like every registered kind's.  Two spellings are special:

- ``bench`` validates a ``BENCH_kernels.json`` benchmark document
  (:func:`repro.runtime.benchmark.load_doc`) — a versioned dict with
  history, not a sweep record array;
- sweep arrays may carry a trailing ``{"__meta__": ...}`` element
  (``repro sweep --json`` run telemetry); it is stripped before
  validation, never schema-checked.

Exits non-zero (listing the violations) on any failure, so schema or model
drift fails the build instead of shipping silently.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


def check(kind_name: str, path) -> list[str]:
    """All schema/invariant violations in ``path`` (empty list = valid)."""
    import repro.cluster.kind  # noqa: F401  (registers the `cluster` plugin kind)
    import repro.dataset  # noqa: F401  (registers the `dataset` plugin kind)
    from repro.errors import ConfigurationError
    from repro.runtime import registry

    if kind_name == "bench":
        from repro.runtime.benchmark import load_doc

        try:
            load_doc(path)
        except (OSError, ValueError) as exc:
            return [f"benchmark schema drift in {path}: {exc}"]
        return []

    record_cls = None
    try:
        kind = registry.get_kind(kind_name)
    except ConfigurationError as exc:
        # Not a kind: fall back to the registered record dataclasses, so
        # kind-less records (campaign results) validate schema-only.
        record_cls = registry.record_types().get(kind_name)
        if record_cls is None:
            return [str(exc)]
        kind = None
    try:
        records = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    if kind is None:
        return registry.check_record_payloads(record_cls, records)
    return kind.check_records(records)


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print("usage: check_record_schemas.py KIND SWEEP.json", file=sys.stderr)
        return 2
    errors = check(argv[1], argv[2])
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print(f"{argv[2]}: {argv[1]} records OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
