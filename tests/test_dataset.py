"""The dataset façade: containers, write/read round-trip, tuner, kind.

The acceptance contract: a façade round-trip is bit-exact per variable
against the chosen spec's own reconstruction, and the auto-tuner's pick
meets each declared quality floor.
"""

import json

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.experiments import Testbed
from repro.dataset import (
    AutoTuner,
    Dataset,
    Variable,
    parse_compression,
    read,
    write,
)
from repro.errors import ConfigurationError
from repro.metrics.error import max_rel_error

TESTBED = Testbed(scale="tiny")


@pytest.fixture(scope="module")
def catalog_ds():
    return Dataset.from_catalog(["cesm", "hacc"], scale="tiny")


class TestContainers:
    def test_from_catalog_carries_provenance(self, catalog_ds):
        v = catalog_ds["cesm"]
        assert v.source == "cesm" and v.scale == "tiny"
        assert not v.data.flags.writeable

    def test_from_arrays(self):
        ds = Dataset.from_arrays({"a": np.ones(8), "b": np.zeros((2, 3))})
        assert ds.names == ("a", "b")
        assert "a" in ds and "nope" not in ds
        with pytest.raises(KeyError):
            ds["nope"]

    def test_rejects_bad_names_and_dtypes(self):
        with pytest.raises(ConfigurationError):
            Variable(name="has space", data=np.ones(4))
        with pytest.raises(ConfigurationError):
            Variable(name="a:b", data=np.ones(4))
        with pytest.raises(ConfigurationError):
            Variable(name="ints", data=np.arange(4))
        with pytest.raises(ConfigurationError):
            Variable(name="empty", data=np.zeros(0))

    def test_rejects_duplicates_and_empty(self):
        v = Variable(name="x", data=np.ones(4))
        with pytest.raises(ConfigurationError):
            Dataset(variables=(v, v))
        with pytest.raises(ConfigurationError):
            Dataset(variables=())


class TestWriteRead:
    def test_roundtrip_bit_exact_per_variable(self, catalog_ds, tmp_path):
        path = tmp_path / "out.h5"
        report = write(
            catalog_ds,
            path,
            compression="cesm:lossy,sz3,rel,1e-3;auto,rel,1e-2",
            testbed=TESTBED,
        )
        back = read(path)
        assert back.names == catalog_ds.names
        for v in catalog_ds:
            entry = report.tuning.for_variable(v.name)
            buf = get_compressor(entry.codec).compress(v.data, entry.rel_bound)
            recon = get_compressor(entry.codec).decompress(buf.data)
            assert np.array_equal(back[v.name].data, recon)

    def test_lossless_roundtrip_is_identity(self, catalog_ds, tmp_path):
        path = tmp_path / "out.nc"
        write(catalog_ds, path, compression="lossless,zstd",
              io_library="netcdf", testbed=TESTBED)
        back = read(path)
        assert back.attrs["io_library"] == "netcdf"
        for v in catalog_ds:
            assert np.array_equal(back[v.name].data, v.data)

    def test_chunked_roundtrip(self, catalog_ds, tmp_path):
        path = tmp_path / "chunked.h5"
        write(catalog_ds, path, compression="lossless,blosc", n_chunks=4,
              testbed=TESTBED)
        back = read(path)
        for v in catalog_ds:
            assert np.array_equal(back[v.name].data, v.data)

    def test_read_sniffs_library(self, catalog_ds, tmp_path):
        for lib in ("hdf5", "netcdf"):
            path = tmp_path / f"sniff-{lib}"
            write(catalog_ds, path, compression="lossless", io_library=lib,
                  testbed=TESTBED)
            assert read(path).attrs["io_library"] == lib

    def test_stored_specs_are_concrete(self, catalog_ds, tmp_path):
        # The container records what was *done*, never an unresolved auto.
        path = tmp_path / "auto.h5"
        write(catalog_ds, path, compression="auto,rel,1e-2", testbed=TESTBED)
        back = read(path)
        for name in back.names:
            stored = parse_compression(back.attrs[f"spec/{name}"])
            assert stored.mode in ("lossy", "lossless")

    def test_unknown_codec_fails_before_writing(self, catalog_ds, tmp_path):
        path = tmp_path / "never.h5"
        with pytest.raises(ConfigurationError):
            write(catalog_ds, path, compression="lossy,nope,rel,1e-3",
                  testbed=TESTBED)
        assert not path.exists()


class TestAutoTuner:
    def test_choice_meets_floor_and_is_cheapest(self, catalog_ds):
        tuner = AutoTuner(testbed=TESTBED, codecs=("szx", "sz3"),
                          bounds=(1e-3, 1e-2))
        report = tuner.tune(catalog_ds, "auto,rel,1e-2")
        assert report.all_meet_floor
        for entry in report:
            assert entry.tuned if hasattr(entry, "tuned") else True
            assert entry.floor == 1e-2
            assert entry.max_rel_err <= entry.floor
            assert entry.candidates >= 1
            # The winner is minimal: no examined candidate that also meets
            # the floor is strictly cheaper.
            for codec in ("szx", "sz3"):
                for bound in (1e-3, 1e-2):
                    rt = TESTBED.roundtrip(entry.variable, codec, bound)
                    if rt.max_rel_err > entry.floor:
                        continue
                    io = TESTBED.io_point(entry.variable, codec, bound,
                                          io_library="hdf5",
                                          cpu_name="max9480")
                    assert entry.cost_energy_j <= io.total_energy_j + 1e-9

    def test_deterministic(self, catalog_ds):
        tuner = AutoTuner(testbed=TESTBED, codecs=("szx", "sz3"),
                          bounds=(1e-3, 1e-2))
        a = tuner.tune(catalog_ds, "auto,rel,1e-2")
        b = tuner.tune(catalog_ds, "auto,rel,1e-2")
        assert a == b

    def test_adhoc_variable_compresses_for_real(self):
        data = np.cumsum(np.random.default_rng(3).standard_normal(4096))
        ds = Dataset.from_arrays({"walk": data})
        report = AutoTuner(testbed=TESTBED, codecs=("sz3", "szx"),
                           bounds=(1e-2, 1e-3)).tune(ds, "auto,rel,1e-2")
        entry = report.for_variable("walk")
        assert entry.max_rel_err <= 1e-2
        assert entry.ratio > 1.0

    def test_constant_variable_tunes(self):
        # Regression: zero value range used to make every lossy candidate
        # look infinitely wrong; the constant fast path stores it exactly.
        ds = Dataset.from_arrays({"flat": np.full((16, 16), 7.0)})
        report = AutoTuner(testbed=TESTBED).tune(ds, "auto,rel,1e-3")
        assert report.for_variable("flat").max_rel_err == 0.0

    def test_infeasible_search_names_the_grid(self):
        # The EBLC models are bound-respecting by construction, so the
        # no-candidate path is reached when the search grid itself is empty.
        noisy = np.random.default_rng(5).standard_normal(2048)
        ds = Dataset.from_arrays({"noise": noisy})
        tuner = AutoTuner(testbed=TESTBED, codecs=(), bounds=(1e-1,))
        with pytest.raises(ConfigurationError, match="quality floor"):
            tuner.tune(ds, "auto,rel,1e-3")


class TestDatasetKind:
    def test_registered_and_sweepable(self):
        from repro.runtime import registry
        from repro.runtime.spec import SweepSpec

        kind = registry.get_kind("dataset")
        spec = SweepSpec(kind="dataset", datasets=("cesm",),
                         codecs=("szx", "sz3"), bounds=(1e-3, 1e-2),
                         io_libraries=("hdf5",), cpus=("max9480",),
                         compression="auto,rel,1e-2")
        records = [
            registry.evaluate_op(TESTBED, p.op, p.as_kwargs())
            for p in spec.points()
        ]
        assert len(records) == 1
        rec = records[0]
        assert rec.tuned and rec.candidates == 4
        assert rec.max_rel_err <= 1e-2
        assert kind.check_records(registry.to_wire(records)) == []

    def test_explicit_spec_not_tuned(self):
        from repro.runtime import registry
        from repro.runtime.spec import SweepSpec

        spec = SweepSpec(kind="dataset", datasets=("cesm",),
                         io_libraries=("hdf5",), cpus=("max9480",),
                         compression="lossy,sz3,rel,1e-3")
        (point,) = spec.points()
        rec = registry.evaluate_op(TESTBED, point.op, point.as_kwargs())
        assert not rec.tuned and rec.candidates == 1
        assert rec.codec == "sz3" and rec.rel_bound == 1e-3

    def test_full_conformance_battery(self, tmp_path, capsys):
        # The shared battery every kind earns by registering.
        from test_conformance import assert_kind_conformance
        from repro.runtime import registry

        assert_kind_conformance(TESTBED, registry.get_kind("dataset"),
                                tmp_path, capsys)

    def test_cli_tune_json_passes_schema_gate(self, tmp_path, capsys):
        import sys

        from repro.cli import main
        from repro.runtime import registry

        rc = main([
            "dataset", "tune", "--datasets", "cesm", "--codecs", "szx,sz3",
            "--bounds", "1e-3,1e-2", "--scale", "tiny",
            "--compression", "auto,rel,1e-2", "--json",
        ])
        assert rc == 0
        records = json.loads(capsys.readouterr().out)
        assert registry.get_kind("dataset").check_records(records) == []
        import pathlib

        tools = str(pathlib.Path(__file__).parents[1] / "tools")
        sys.path.insert(0, tools)
        try:
            from check_record_schemas import check

            path = tmp_path / "tune.json"
            path.write_text(json.dumps(records))
            assert check("dataset", path) == []
        finally:
            sys.path.remove(tools)

    def test_cli_write_read_commands(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.h5"
        assert main([
            "dataset", "write", str(out), "--datasets", "cesm",
            "--compression", "lossy,szx,rel,1e-3", "--scale", "tiny",
        ]) == 0
        assert out.exists()
        capsys.readouterr()
        dump = tmp_path / "dump"
        assert main(["dataset", "read", str(out), "--out-dir", str(dump)]) == 0
        assert (dump / "cesm.npy").exists()
        recon = np.load(dump / "cesm.npy")
        from repro.data.registry import generate

        assert max_rel_error(generate("cesm", "tiny"), recon) <= 1e-3 + 1e-9
