"""Energy stack: CPU catalogue, power model, RAPL counters, PAPI sampling."""

import numpy as np
import pytest

from repro.energy import (
    CPUS,
    EnergyMeter,
    PapiPowercapMonitor,
    PowerModel,
    SimulatedRapl,
    get_cpu,
)
from repro.energy.cpus import PAPER_CPUS
from repro.energy.measurement import Phase
from repro.energy.rapl import RaplZone
from repro.errors import ConfigurationError


class TestCpus:
    def test_table1_entries(self):
        assert set(PAPER_CPUS) == set(CPUS)
        m = get_cpu("max9480")
        assert m.cores == 112 and m.tdp_w == 350.0
        s = get_cpu("plat8160")
        assert s.cores == 48 and s.tdp_w == 270.0
        p = get_cpu("plat8260m")
        assert p.cores == 96 and p.sockets == 4 and p.tdp_w == 165.0

    def test_cores_per_socket(self):
        assert get_cpu("plat8260m").cores_per_socket == 24

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_cpu("epyc")


class TestPowerModel:
    def test_idle_floor(self):
        cpu = get_cpu("plat8160")
        pm = PowerModel(cpu)
        assert pm.node_power(0) == pytest.approx(cpu.sockets * cpu.idle_w)

    def test_full_load_hits_tdp(self):
        cpu = get_cpu("plat8160")
        pm = PowerModel(cpu)
        assert pm.node_power(cpu.cores) == pytest.approx(cpu.sockets * cpu.tdp_w)

    def test_monotone_in_cores(self):
        cpu = get_cpu("max9480")
        pm = PowerModel(cpu)
        powers = [pm.node_power(c) for c in range(0, cpu.cores + 1, 8)]
        assert all(b >= a for a, b in zip(powers, powers[1:]))

    def test_sublinear_dynamic(self):
        cpu = get_cpu("plat8160")
        pm = PowerModel(cpu)
        half = pm.node_power(cpu.cores_per_socket // 2) - pm.node_power(0)
        full = pm.node_power(cpu.cores_per_socket) - pm.node_power(0)
        assert half > 0.5 * full  # alpha < 1 concavity

    def test_socket_filling_order(self):
        cpu = get_cpu("plat8160")
        pm = PowerModel(cpu)
        # One core: only package 0 above idle.
        assert pm.package_power(0, 1) > cpu.idle_w
        assert pm.package_power(1, 1) == pytest.approx(cpu.idle_w)

    def test_activity_scales_dynamic_only(self):
        cpu = get_cpu("plat8160")
        pm = PowerModel(cpu)
        idle = pm.node_power(8, activity=0.0)
        assert idle == pytest.approx(cpu.sockets * cpu.idle_w)
        assert pm.node_power(8, activity=0.5) < pm.node_power(8, activity=1.0)

    def test_validation(self):
        pm = PowerModel(get_cpu("plat8160"))
        with pytest.raises(ConfigurationError):
            pm.node_power(-1)
        with pytest.raises(ConfigurationError):
            pm.node_power(9999)
        with pytest.raises(ConfigurationError):
            pm.node_power(1, activity=2.0)
        with pytest.raises(ConfigurationError):
            PowerModel(get_cpu("plat8160"), alpha=0.0)


class TestRapl:
    def test_counters_accumulate(self):
        rapl = SimulatedRapl(get_cpu("plat8160"))
        before = rapl.read_uj()
        rapl.advance(1.0, active_cores=0)
        after = rapl.read_uj()
        joules = rapl.total_joules_between(before, after)
        assert joules == pytest.approx(2 * 55.0, rel=1e-6)  # idle both sockets

    def test_eq6_sums_packages(self):
        rapl = SimulatedRapl(get_cpu("plat8260m"))
        assert len(rapl.zones) == 4
        before = rapl.read_uj()
        rapl.advance(2.0, active_cores=1)
        total = rapl.total_joules_between(before, rapl.read_uj())
        per_zone = [
            RaplZone.delta(b, a)
            for b, a in zip(before, rapl.read_uj())
        ]
        assert total == pytest.approx(sum(per_zone))

    def test_wraparound(self):
        zone = RaplZone("test", max_energy_range_uj=1000)
        zone.deposit(0.0009)  # 900 uJ
        before = zone.energy_uj
        zone.deposit(0.0002)  # wraps past 1000
        assert zone.energy_uj < before
        assert RaplZone.delta(before, zone.energy_uj, 1000) == pytest.approx(
            200 / 1e6
        )

    def test_negative_time_rejected(self):
        rapl = SimulatedRapl(get_cpu("plat8160"))
        with pytest.raises(ConfigurationError):
            rapl.advance(-1.0, 0)


class TestPapiMonitor:
    def test_discrete_sampling_energy(self):
        rapl = SimulatedRapl(get_cpu("plat8160"))
        mon = PapiPowercapMonitor(rapl, sample_interval=0.01)
        mon.start()
        mon.run_phase(0.1, active_cores=48)
        joules = mon.stop()
        # Constant power: discrete sum equals P*t exactly.
        assert joules == pytest.approx(2 * 270.0 * 0.1, rel=1e-9)
        assert mon.elapsed == pytest.approx(0.1, rel=1e-9)
        assert len(mon.samples) == 11  # start + 10 ticks

    def test_partial_final_interval_sampled(self):
        rapl = SimulatedRapl(get_cpu("plat8160"))
        mon = PapiPowercapMonitor(rapl, sample_interval=0.01)
        mon.start()
        mon.run_phase(0.015, active_cores=0)
        joules = mon.stop()
        assert joules == pytest.approx(110.0 * 0.015, rel=1e-9)

    def test_double_start_rejected(self):
        mon = PapiPowercapMonitor(SimulatedRapl(get_cpu("plat8160")))
        mon.start()
        with pytest.raises(ConfigurationError):
            mon.start()

    def test_stop_without_start_rejected(self):
        mon = PapiPowercapMonitor(SimulatedRapl(get_cpu("plat8160")))
        with pytest.raises(ConfigurationError):
            mon.stop()


class TestEnergyMeter:
    def test_measure_compute(self):
        meter = EnergyMeter(get_cpu("plat8160"))
        report = meter.measure_compute(1.0, threads=48)
        assert report.energy_j == pytest.approx(540.0, rel=1e-9)
        assert report.avg_power_w == pytest.approx(540.0, rel=1e-9)

    def test_phase_concatenation(self):
        meter = EnergyMeter(get_cpu("plat8160"))
        a = meter.measure([Phase(0.5, 48, 1.0)])
        b = meter.measure([Phase(0.5, 0, 1.0)])
        both = a + b
        assert both.energy_j == pytest.approx(a.energy_j + b.energy_j)
        assert both.runtime_s == pytest.approx(1.0)

    def test_zone_split_matches_total(self):
        meter = EnergyMeter(get_cpu("max9480"))
        report = meter.measure([Phase(0.25, 10, 1.0)])
        assert sum(report.zone_energies_j) == pytest.approx(report.energy_j, rel=1e-6)

    def test_add_rejects_mismatched_zone_counts(self):
        """zip() used to silently truncate the per-zone split on mismatch."""
        from repro.errors import ConfigurationError

        a = EnergyMeter(get_cpu("plat8160")).measure([Phase(0.2, 4, 1.0)])
        b = EnergyMeter(get_cpu("plat8260m")).measure([Phase(0.2, 4, 1.0)])
        assert len(a.zone_energies_j) != len(b.zone_energies_j)
        with pytest.raises(ConfigurationError):
            a + b

    def test_compose_phases_overlays_concurrent_intervals(self):
        from repro.energy.measurement import Interval, compose_phases

        phases = compose_phases(
            [
                Interval(0.0, 2.0, 1, 1.0, "compress"),
                Interval(1.0, 3.0, 1, 0.1, "write"),
            ],
            max_cores=32,
        )
        assert [p.duration_s for p in phases] == pytest.approx([1.0, 1.0, 1.0])
        # Overlapped middle segment: both cores, core-weighted mean activity.
        assert phases[1].active_cores == 2
        assert phases[1].activity == pytest.approx(0.55)
        assert [p.label for p in phases] == ["compress", "compress", "write"]

    def test_compose_phases_clamps_to_cores_and_fills_gaps(self):
        from repro.energy.measurement import Interval, compose_phases

        phases = compose_phases(
            [
                Interval(0.0, 1.0, 3, 1.0, "a"),
                Interval(0.0, 1.0, 3, 1.0, "b"),
                Interval(2.0, 3.0, 1, 0.5, "c"),
            ],
            max_cores=4,
        )
        assert phases[0].active_cores == 4  # 6 requested, clamped
        assert phases[0].activity == 1.0  # load saturates
        assert phases[1].active_cores == 0 and phases[1].label == "idle"
        assert sum(p.duration_s for p in phases) == pytest.approx(3.0)

    def test_composed_timeline_is_measurable(self):
        from repro.energy.measurement import Interval, compose_phases

        cpu = get_cpu("plat8160")
        meter = EnergyMeter(cpu)
        phases = compose_phases(
            [Interval(0.0, 0.5, 2, 1.0, "compress"), Interval(0.3, 0.8, 1, 0.2, "write")],
            max_cores=cpu.cores,
        )
        report = meter.measure(phases)
        assert report.runtime_s == pytest.approx(0.8, rel=1e-9)
        assert report.energy_j > 0

    def test_more_threads_less_energy_for_fixed_work(self):
        """The Fig. 10 mechanism: shorter runtime beats higher power."""
        from repro.energy import ThroughputModel

        cpu = get_cpu("max9480")
        tm = ThroughputModel()
        meter = EnergyMeter(cpu)
        e = {}
        for threads in (1, 64):
            t = tm.runtime("szx", "compress", 10**9, 1e-3, cpu, threads)
            e[threads] = meter.measure_compute(t, threads).energy_j
        assert e[64] < e[1]


class TestComposePhasesConservation:
    """Property: overlaying intervals conserves the core.activity load
    integral — the energy the overlaid timeline deposits equals the sum of
    what the input intervals would deposit alone (no max_cores clamp)."""

    @staticmethod
    def _load_integral_intervals(intervals):
        from repro.energy.measurement import Interval  # noqa: F401

        return sum(
            (iv.end_s - iv.start_s) * iv.active_cores * iv.activity
            for iv in intervals
        )

    @staticmethod
    def _load_integral_phases(phases):
        return sum(p.duration_s * p.active_cores * p.activity for p in phases)

    def test_energy_conserved_under_arbitrary_overlap(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.energy.measurement import Interval, compose_phases

        starts = st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False)
        # Durations include exact zero: zero-length intervals must vanish
        # without contributing energy or phantom segments.
        durations = st.one_of(
            st.just(0.0), st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)
        )
        interval = st.builds(
            lambda s, d, c, a: Interval(s, s + d, c, a, "x"),
            starts,
            durations,
            st.integers(0, 8),
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        )

        @settings(max_examples=200, deadline=None)
        @given(st.lists(interval, min_size=0, max_size=12))
        def check(intervals):
            phases = compose_phases(intervals)
            want = self._load_integral_intervals(intervals)
            got = self._load_integral_phases(phases)
            assert got == pytest.approx(want, rel=1e-9, abs=1e-7)
            # The composed timeline spans first start .. last end exactly.
            live = [iv for iv in intervals if iv.end_s - iv.start_s > 1e-12]
            if live:
                span = max(iv.end_s for iv in live) - min(iv.start_s for iv in live)
                assert sum(p.duration_s for p in phases) == pytest.approx(
                    span, rel=1e-9, abs=1e-9
                )
            else:
                assert phases == []

        check()

    def test_zero_length_intervals_drop_out(self):
        from repro.energy.measurement import Interval, compose_phases

        a = Interval(0.0, 1.0, 2, 0.5, "a")
        z = Interval(0.5, 0.5, 7, 1.0, "z")
        assert compose_phases([a, z]) == compose_phases([a])
