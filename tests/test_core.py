"""Core framework: Eq. 3-5 conditions, analyzer, advisor, extrapolation, report."""

import numpy as np
import pytest

from repro.core import Advisor, Testbed, TradeoffAnalyzer
from repro.core.extrapolation import (
    devices_needed,
    device_reduction,
    embodied_carbon_saving_fraction,
    project_facility,
)
from repro.core.formulation import BenefitConditions, CompressionPlan
from repro.core.report import format_series, format_stacked_bars, format_table, si
from repro.errors import ConfigurationError
from repro.iolib.devices import get_device


def _conditions(**overrides):
    base = dict(
        compress_time_s=1.0,
        write_time_compressed_s=0.5,
        write_time_orig_s=2.0,
        compress_energy_j=100.0,
        write_energy_compressed_j=50.0,
        write_energy_orig_j=200.0,
        psnr_db=80.0,
        psnr_min_db=60.0,
    )
    base.update(overrides)
    return BenefitConditions(**base)


class TestBenefitConditions:
    def test_all_beneficial(self):
        c = _conditions()
        assert c.time_beneficial and c.energy_beneficial and c.quality_acceptable
        assert c.beneficial
        assert c.net_energy_saving_j == pytest.approx(50.0)
        assert c.net_time_saving_s == pytest.approx(0.5)

    def test_eq3_time_fails(self):
        c = _conditions(compress_time_s=5.0)
        assert not c.time_beneficial and not c.beneficial

    def test_eq4_energy_fails(self):
        c = _conditions(compress_energy_j=500.0)
        assert not c.energy_beneficial and not c.beneficial
        assert c.net_energy_saving_j < 0

    def test_eq5_quality_fails(self):
        c = _conditions(psnr_db=30.0)
        assert not c.quality_acceptable and not c.beneficial

    def test_weak_io_condition(self):
        c = _conditions(compress_energy_j=1e9)
        assert c.io_energy_beneficial  # E_w(D') <= E_w(D) regardless of E_c


@pytest.fixture(scope="module")
def tiny_testbed():
    return Testbed(scale="tiny", sample_interval=0.05)


class TestTradeoffAnalyzer:
    def test_records_carry_conditions(self, tiny_testbed):
        analyzer = TradeoffAnalyzer(tiny_testbed)
        records = analyzer.evaluate(
            "nyx", codecs=("szx", "sz3"), bounds=(1e-2, 1e-4), psnr_min_db=40.0
        )
        assert len(records) == 4
        for r in records:
            assert r.ratio > 0
            assert r.conditions.write_energy_orig_j > 0
            assert isinstance(r.plan, CompressionPlan)

    def test_psnr_floor_respected(self, tiny_testbed):
        analyzer = TradeoffAnalyzer(tiny_testbed)
        records = analyzer.evaluate(
            "nyx", codecs=("sz3",), bounds=(1e-1, 1e-5), psnr_min_db=60.0
        )
        loose, tight = records
        assert not loose.conditions.quality_acceptable
        assert tight.conditions.quality_acceptable


class TestAdvisor:
    def test_honest_refusal_when_infeasible(self, tiny_testbed):
        """On a fast PFS, single-stream compression rarely wins (paper VII)."""
        advisor = Advisor(TradeoffAnalyzer(tiny_testbed, io_library="hdf5"))
        rec = advisor.recommend(
            "nyx", psnr_min_db=200.0, codecs=("sz3",), bounds=(1e-2,)
        )
        assert not rec.should_compress
        assert "uncompressed" in rec.rationale

    def test_recommends_under_netcdf_pressure(self, tiny_testbed):
        """Slow I/O paths tip Eq. 3-4 toward compression."""
        advisor = Advisor(TradeoffAnalyzer(tiny_testbed, io_library="netcdf"))
        rec = advisor.recommend(
            "s3d",
            psnr_min_db=40.0,
            codecs=("szx", "zfp", "sz3"),
            bounds=(1e-2, 1e-3),
            require_time_benefit=False,
        )
        assert rec.should_compress
        assert rec.record.conditions.energy_beneficial

    def test_ratio_objective_maximizes_ratio(self, tiny_testbed):
        advisor = Advisor(TradeoffAnalyzer(tiny_testbed, io_library="netcdf"))
        rec = advisor.recommend(
            "s3d",
            psnr_min_db=20.0,
            objective="ratio",
            codecs=("szx", "sz3"),
            bounds=(1e-1, 1e-2),
            require_time_benefit=False,
        )
        if rec.should_compress:
            for alt in rec.alternatives:
                assert rec.record.ratio >= alt.ratio

    def test_invalid_objective(self, tiny_testbed):
        advisor = Advisor(TradeoffAnalyzer(tiny_testbed))
        with pytest.raises(ConfigurationError):
            advisor.recommend("nyx", objective="vibes")


class TestExtrapolation:
    def test_devices_needed(self):
        ssd = get_device("ssd-15tb")
        assert devices_needed(15.36e12, ssd) == 1
        assert devices_needed(15.37e12, ssd) == 2
        assert devices_needed(0, ssd) == 0

    def test_device_reduction(self):
        assert device_reduction(100.0) == 100.0
        with pytest.raises(ConfigurationError):
            device_reduction(0.5)

    def test_embodied_carbon_paper_claim(self):
        """Two orders of magnitude fewer devices -> ~70-75% rack embodied cut
        (paper Section VII), bounded by the SSD fraction 0.80."""
        ssd = get_device("ssd-15tb")
        saving = embodied_carbon_saving_fraction(100.0, ssd)
        assert saving == pytest.approx(0.792, rel=1e-3)
        hdd = get_device("hdd-18tb")
        assert embodied_carbon_saving_fraction(100.0, hdd) == pytest.approx(
            0.406, rel=1e-3
        )

    def test_facility_projection(self):
        proj = project_facility(
            daily_output_tb=100.0,
            compression_ratio=50.0,
            io_energy_reduction=20.0,
            write_energy_j_per_tb=5e5,
        )
        assert proj.devices_compressed < proj.devices_uncompressed
        assert proj.devices_uncompressed == pytest.approx(
            50 * proj.devices_compressed, rel=0.15
        )
        assert proj.annual_io_energy_saved_j == pytest.approx(
            100 * 5e5 * 365 * 0.95
        )

    def test_facility_validation(self):
        with pytest.raises(ConfigurationError):
            project_facility(0, 10, 10, 1)
        with pytest.raises(ConfigurationError):
            project_facility(1, 10, 0.5, 1)


class TestReport:
    def test_si_formatting(self):
        assert si(1234.0, "J") == "1.23 kJ"
        assert si(0.0, "J") == "0 J"
        assert si(5e9, "B") == "5 GB"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series(
            "Fig X", "eps", ["1e-1", "1e-3"], {"sz3": [1.0, 2.0], "zfp": [3.0, 4.0]}
        )
        assert "sz3" in out and "zfp" in out and "1e-3" in out

    def test_stacked_bars(self):
        out = format_stacked_bars(
            "E", "codec", [("sz3", 10.0, 5.0), ("zfp", 2.0, 1.0)]
        )
        assert "sz3" in out and "#" in out and "=" in out

    def test_stacked_bars_empty(self):
        assert format_stacked_bars("E", "x", []) == "E"
