"""Lossless baselines: bit-exact roundtrips on every float regime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress
from repro.compressors import get_compressor
from repro.compressors.lossless.fpzip_like import _unzigzag64, _zigzag64


class TestRoundtrips:
    def test_exact_roundtrip(self, lossless_name, any_field):
        buf = compress(np.array(any_field), lossless_name)
        rec = decompress(buf)
        assert rec.dtype == any_field.dtype
        np.testing.assert_array_equal(rec, any_field)

    def test_float32_and_float64(self, lossless_name, rng):
        for dtype in (np.float32, np.float64):
            data = rng.standard_normal(777).astype(dtype)
            rec = decompress(compress(data, lossless_name))
            np.testing.assert_array_equal(rec, data)

    def test_special_values(self, lossless_name):
        data = np.array(
            [0.0, -0.0, 1.5, -1.5, np.finfo(np.float64).tiny, 1e308, -1e308]
        )
        rec = decompress(compress(data, lossless_name))
        np.testing.assert_array_equal(
            rec.view(np.uint64), data.view(np.uint64)
        )  # bit-exact including -0.0

    def test_smooth_data_compresses(self, lossless_name):
        x = np.linspace(0, 1, 100_0)
        data = np.sin(x).astype(np.float64)
        buf = compress(data, lossless_name)
        assert buf.ratio > 1.0

    def test_lossless_ratio_ceiling_vs_eblc(self, lossless_name, smooth_3d):
        """Fig. 1's premise: lossless stays in single digits where EBLC soars."""
        data = np.array(smooth_3d)
        lossless_ratio = compress(data, lossless_name).ratio
        eblc_ratio = compress(data, "sz3", 1e-2).ratio
        assert lossless_ratio < eblc_ratio

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            min_size=1,
            max_size=200,
        )
    )
    def test_roundtrip_property_fpc(self, values):
        data = np.array(values, dtype=np.float64)
        rec = decompress(compress(data, "fpc"))
        np.testing.assert_array_equal(rec.view(np.uint64), data.view(np.uint64))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            min_size=1,
            max_size=200,
        )
    )
    def test_roundtrip_property_fpzip(self, values):
        data = np.array(values, dtype=np.float64)
        rec = decompress(compress(data, "fpzip"))
        np.testing.assert_array_equal(rec.view(np.uint64), data.view(np.uint64))


class TestZigzag64:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_full_range_roundtrip(self, v):
        x = np.array([v], dtype=np.int64)
        np.testing.assert_array_equal(_unzigzag64(_zigzag64(x)), x)

    def test_small_values_fold_small(self):
        x = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        np.testing.assert_array_equal(_zigzag64(x), [0, 1, 2, 3, 4])


class TestShuffleStructure:
    def test_blosc_shuffle_helps_on_slowly_varying_exponents(self):
        data = (1000.0 + np.arange(50000) * 1e-3).astype(np.float64)
        blosc = compress(data, "blosc").ratio
        zstd = compress(data, "zstd").ratio
        assert blosc > zstd  # byte planes expose the constant exponent bytes

    def test_blosc_multi_chunk(self, rng):
        data = rng.standard_normal(200_000)  # > one 256 KiB chunk after shuffle
        rec = decompress(compress(data, "blosc"))
        np.testing.assert_array_equal(rec, data)

    def test_lossless_flag_set(self, lossless_name):
        assert get_compressor(lossless_name).lossless is True
