"""Testbed drivers: every figure's driver produces coherent records."""

import numpy as np
import pytest

from repro.core.experiments import Testbed


@pytest.fixture(scope="module")
def tb():
    return Testbed(scale="tiny", sample_interval=0.05)


class TestRoundtripCache:
    def test_memoized(self, tb):
        a = tb.roundtrip("nyx", "szx", 1e-3)
        b = tb.roundtrip("nyx", "szx", 1e-3)
        assert a is b

    def test_bound_is_verified(self, tb):
        rec = tb.roundtrip("cesm", "sz3", 1e-3)
        assert rec.max_rel_err <= 1e-3 * (1 + 1e-6)

    def test_lossless_roundtrip_checked(self, tb):
        rec = tb.roundtrip("cesm", "zstd", 0.0)
        assert rec.rel_bound == 0.0
        assert rec.max_rel_err == 0.0


class TestSerialDrivers:
    def test_serial_point_fields(self, tb):
        p = tb.serial_point("nyx", "szx", 1e-3, "plat8160")
        assert p.compress_time_s > 0 and p.decompress_time_s > 0
        assert p.total_energy_j == pytest.approx(
            p.compress_energy_j + p.decompress_energy_j
        )

    def test_energy_rises_as_bound_tightens(self, tb):
        e = [
            tb.serial_point("nyx", "sz3", eps, "plat8160").total_energy_j
            for eps in (1e-1, 1e-3, 1e-5)
        ]
        assert e[0] < e[1] < e[2]

    def test_sweep_shapes(self, tb):
        pts = tb.run_serial_sweep(
            datasets=("nyx",), codecs=("szx", "zfp"), bounds=(1e-2,), cpus=("plat8160",)
        )
        assert len(pts) == 2

    def test_thread_sweep_energy_falls_for_szx(self, tb):
        pts = tb.run_thread_sweep(
            datasets=("s3d",), codecs=("szx",), threads=(1, 64), cpus=("max9480",)
        )
        assert pts[1].total_energy_j < pts[0].total_energy_j

    def test_quality_table_rows(self, tb):
        rows = tb.run_quality_table(datasets=("nyx",), codecs=("sz3", "szx"), bounds=(1e-1, 1e-5))
        assert len(rows) == 4
        by = {(r.codec, r.rel_bound): r for r in rows}
        assert by[("sz3", 1e-1)].ratio > by[("sz3", 1e-5)].ratio
        assert by[("sz3", 1e-5)].psnr_db > by[("sz3", 1e-1)].psnr_db


class TestIODrivers:
    def test_original_baseline_larger_write_energy(self, tb):
        orig = tb.io_point("s3d", None, None, "hdf5", "max9480")
        comp = tb.io_point("s3d", "sz3", 1e-3, "hdf5", "max9480")
        assert orig.write_energy_j > comp.write_energy_j
        assert orig.compress_energy_j == 0.0

    def test_hdf5_beats_netcdf(self, tb):
        h = tb.io_point("hacc", "szx", 1e-3, "hdf5", "max9480")
        n = tb.io_point("hacc", "szx", 1e-3, "netcdf", "max9480")
        assert n.write_energy_j > 2.0 * h.write_energy_j

    def test_io_sweep_contains_baselines(self, tb):
        pts = tb.run_io_sweep(
            datasets=("nyx",), codecs=("szx",), bounds=(1e-3,), io_libraries=("hdf5",)
        )
        assert any(p.codec is None for p in pts)
        assert any(p.codec == "szx" for p in pts)

    def test_write_energy_tracks_bytes(self, tb):
        """The Section VII mechanism: write energy ~ bytes (262x claim)."""
        orig = tb.io_point("s3d", None, None, "hdf5", "max9480")
        comp = tb.io_point("s3d", "sz2", 1e-3, "hdf5", "max9480")
        size_ratio = orig.bytes_written / comp.bytes_written
        energy_ratio = orig.write_energy_j / comp.write_energy_j
        assert energy_ratio == pytest.approx(size_ratio, rel=0.35)


class TestMultinodeDriver:
    def test_fig12_shape(self, tb):
        res = tb.run_multinode(cores=(16, 512), codecs=("sz3",))
        by = {(r.codec, r.total_cores): r for r in res}
        # Crossover: original cheap at 16 cores, expensive at 512.
        assert by[(None, 16)].total_energy_j < by[("sz3", 16)].total_energy_j
        assert by[(None, 512)].total_energy_j > by[("sz3", 512)].total_energy_j

    def test_paper_25pct_multinode_band(self, tb):
        """Abstract: ~25% energy saving in multi-node settings (we accept a
        generous band: EBLC must save 20-80% at 512 cores)."""
        res = tb.run_multinode(cores=(512,), codecs=("sz3",))
        orig = next(r for r in res if r.codec is None)
        sz3 = next(r for r in res if r.codec == "sz3")
        saving = 1.0 - sz3.total_energy_j / orig.total_energy_j
        assert 0.2 < saving < 0.8


class TestInflationDriver:
    def test_fig13_linear_scaling(self, tb):
        pts = tb.run_inflation(factors=(1, 2), codecs=("sz3",), base_scale="tiny")
        by = {p.factor: p for p in pts}
        assert by[2].paper_gb == pytest.approx(8 * by[1].paper_gb)
        # Energy ~ bytes once overhead amortizes: factor 8 within a band.
        growth = by[2].total_energy_j / by[1].total_energy_j
        assert 5.0 < growth < 9.0


class TestFig1Driver:
    def test_lossless_vs_eblc(self, tb):
        rows = tb.run_lossless_comparison(
            datasets=("isabel",), eblc=("sz2",), lossless=("zstd", "fpzip")
        )
        eblc = [r for r in rows if r.codec == "sz2"]
        lossless = [r for r in rows if r.codec != "sz2"]
        assert min(e.ratio for e in eblc) > max(l.ratio for l in lossless)
