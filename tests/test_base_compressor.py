"""Shared Compressor framing, registry, and CompressedBuffer accounting."""

import numpy as np
import pytest

from repro import compress
from repro.compressors import (
    Compressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.errors import CompressionError, DecompressionError


class TestRegistry:
    def test_all_expected_codecs_present(self):
        names = available_compressors()
        for expected in ["sz2", "sz3", "qoz", "zfp", "szx", "zstd", "blosc", "fpzip", "fpc"]:
            assert expected in names

    def test_eblc_only_filter(self):
        names = available_compressors(include_lossless=False)
        assert "zstd" not in names
        assert "sz3" in names

    def test_unknown_codec(self):
        with pytest.raises(KeyError):
            get_compressor("nope")

    def test_duplicate_registration_rejected(self):
        class Dup(Compressor):
            name = "sz3"

        with pytest.raises(ValueError):
            register_compressor(Dup)

    def test_unnamed_registration_rejected(self):
        class NoName(Compressor):
            name = ""

        with pytest.raises(ValueError):
            register_compressor(NoName)


class TestFraming:
    def test_header_carries_geometry(self, smooth_2d):
        buf = compress(np.array(smooth_2d), "szx", 1e-3)
        assert buf.shape == smooth_2d.shape
        assert buf.dtype == smooth_2d.dtype
        assert buf.rel_bound == 1e-3
        assert buf.original_nbytes == smooth_2d.nbytes

    def test_decompress_from_raw_bytes(self, smooth_2d):
        buf = compress(np.array(smooth_2d), "szx", 1e-3)
        rec = get_compressor("szx").decompress(buf.data)  # bytes, not buffer
        assert rec.shape == smooth_2d.shape

    def test_bad_magic(self):
        with pytest.raises(DecompressionError):
            get_compressor("szx").decompress(b"NOPE" + b"\x00" * 64)

    def test_ratio_and_bitrate(self):
        data = np.zeros((64, 64), dtype=np.float32) + 7.5
        buf = compress(data, "szx", 1e-3)
        assert buf.ratio == data.nbytes / buf.nbytes
        assert buf.bitrate == pytest.approx(8.0 * buf.nbytes / data.size)

    def test_empty_array_rejected(self):
        with pytest.raises(CompressionError):
            compress(np.zeros((0,), dtype=np.float32), "szx", 1e-3)

    def test_int_dtype_rejected(self):
        with pytest.raises(CompressionError):
            compress(np.zeros((4, 4), dtype=np.int32), "szx", 1e-3)

    def test_float32_cast_margin(self):
        """Bound must hold on the float32-returned array, not just float64."""
        r = np.random.default_rng(3)
        data = (1000.0 + r.uniform(0, 1.0, 4096)).astype(np.float32)
        for codec in ["sz2", "sz3", "qoz", "zfp", "szx"]:
            buf = compress(data, codec, 1e-4)
            rec = get_compressor(codec).decompress(buf)
            bound = 1e-4 * float(data.max() - data.min())
            assert np.abs(rec.astype(np.float64) - data.astype(np.float64)).max() <= bound * (1 + 1e-9), codec
