"""The telemetry subsystem: spans, metrics, exporters, and the hard
tracing contracts — zero behavior change when disabled, bit-identical
records and store artifacts when enabled."""

import importlib.util
import json
import pathlib
import threading

import pytest

from repro.cli import main
from repro.core.experiments import Testbed
from repro.obs import (
    MetricsRegistry,
    ProgressPrinter,
    Span,
    Tracer,
    TracerBridge,
    activate,
    active_tracer,
    chrome_trace,
    compose,
    load_trace,
    summarize,
    tracing,
    write_trace,
)
from repro.runtime.engine import SweepEngine, SweepEvent
from repro.runtime.spec import SweepSpec
from repro.runtime.store import ResultStore

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"

SMALL = dict(datasets=("cesm",), codecs=("szx", "sz3"), bounds=(1e-2,))

CLUSTER_SCENARIO = "nodes=8; a=ranks:96,codec:szx; b=ranks:96,submit:30"


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def testbed():
    return Testbed(scale="tiny")


class TestTracer:
    def test_wall_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("work", track="t", op="x"):
            pass
        (span,) = tracer.spans
        assert span.name == "work" and span.clock == "wall"
        assert span.t1 >= span.t0 >= 0.0
        assert span.args == {"op": "x"}

    def test_failed_span_still_recorded_with_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"

    def test_virtual_spans_and_instants(self):
        tracer = Tracer()
        tracer.add_span("job", "tenant:a", 2.0, 7.5, energy=1.0)
        tracer.instant("grant", "sched", 2.0)
        a, b = tracer.spans
        assert a.clock == "virtual" and a.duration_s == 5.5
        assert b.t0 == b.t1 == 2.0

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="clock"):
            Tracer().add_span("x", "t", 0.0, 1.0, clock="cpu")

    def test_tracks_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.add_span("a", "z", 0, 1)
        tracer.add_span("b", "a", 0, 1)
        tracer.add_span("c", "z", 1, 2)
        assert tracer.tracks() == ["z", "a"]
        assert tracer.tracks(clock="wall") == []

    def test_activation_is_exclusive(self):
        assert active_tracer() is None
        with tracing() as tracer:
            assert active_tracer() is tracer
            with pytest.raises(RuntimeError, match="already active"):
                with activate(Tracer()):
                    pass
        assert active_tracer() is None

    def test_deactivates_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with tracing():
                raise RuntimeError("boom")
        assert active_tracer() is None


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        reg.gauge("mbps").set(12.5)
        for v in (1.0, 2.0, 3.0):
            reg.histogram("lat").observe(v)
        snap = reg.snapshot()
        assert snap["hits"] == 3
        assert snap["mbps"] == 12.5
        assert snap["lat"]["count"] == 3 and snap["lat"]["mean"] == 2.0
        assert snap["lat"]["min"] == 1.0 and snap["lat"]["max"] == 3.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_empty_histogram_snapshot(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap == {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "stddev": None}

    def test_merge_is_idempotent_not_additive(self):
        reg = MetricsRegistry()
        stats = {"computed": 4, "mb_per_s": 9.5, "ok": True}
        reg.merge("engine", stats)
        reg.merge("engine", stats)  # same snapshot twice must not double
        snap = reg.snapshot()
        assert snap["engine.computed"] == 4
        assert snap["engine.mb_per_s"] == 9.5
        assert "engine.ok" not in snap  # bools are not counters


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        tracer.add_span("job:a", "tenant:a", 0.0, 0.1234567890123456,
                        energy_j=3.0000000000000004)
        tracer.instant("grant", "sched", 0.0, backfilled=False)
        with tracer.span("real", track="w"):
            pass
        tracer.metrics.counter("n").inc(7)
        return tracer

    @pytest.mark.parametrize("suffix", [".json", ".jsonl"])
    def test_round_trip_is_bit_identical(self, tmp_path, suffix):
        tracer = self._tracer()
        path = tmp_path / f"trace{suffix}"
        n = write_trace(tracer, path)
        assert n == len(tracer.spans)
        spans, metrics = load_trace(path)
        assert spans == tracer.spans  # exact floats survive JSON
        assert metrics == {"n": 7}

    def test_chrome_document_structure(self):
        doc = chrome_trace(self._tracer())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # one process per clock domain, one thread per track
        assert {(m["name"], m["args"]["name"]) for m in meta} == {
            ("process_name", "virtual clock"), ("process_name", "wall clock"),
            ("thread_name", "tenant:a"), ("thread_name", "sched"),
            ("thread_name", "w"),
        }
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2 and len(instants) == 1
        job = next(e for e in complete if e["name"] == "job:a")
        assert job["pid"] == 2  # virtual clock
        assert job["args"]["t1_s"] == 0.1234567890123456
        assert job["args"]["energy_j"] == 3.0000000000000004
        assert instants[0]["s"] == "t"
        assert doc["otherData"]["metrics"] == {"n": 7}

    def test_summarize_mentions_tracks_and_metrics(self):
        tracer = self._tracer()
        text = summarize(tracer.spans, tracer.metrics.snapshot())
        assert "virtual clock" in text and "wall clock" in text
        assert "tenant:a" in text and "sim s" in text
        assert "n" in text

    def test_check_trace_schema_tool(self, tmp_path):
        checker = load_tool("check_trace_schema")
        good = tmp_path / "good.json"
        write_trace(self._tracer(), good)
        assert checker.check(good) == []
        assert checker.main(["check_trace_schema.py", str(good)]) == 0

        doc = json.loads(good.read_text())
        for event in doc["traceEvents"]:
            event.get("args", {}).pop("t0_s", None)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        errors = checker.check(bad)
        assert errors and any("t0_s" in e for e in errors)
        assert checker.main(["check_trace_schema.py", str(bad)]) == 1


class TestBridge:
    def test_bridge_counts_and_marks(self):
        tracer = Tracer()
        bridge = TracerBridge(tracer)
        bridge(SweepEvent(kind="start", total=2))
        bridge(SweepEvent(kind="point", index=0, op="dvfs", cached=True,
                          total=2, wall_time_s=0.5))
        bridge(SweepEvent(kind="retry", index=1, op="dvfs", attempt=1,
                          error="Timeout", total=2, wall_time_s=0.6))
        bridge(SweepEvent(kind="point", index=1, op="dvfs", total=2,
                          wall_time_s=0.9, attempt_s=0.3))
        bridge(SweepEvent(kind="finish", total=2))
        snap = tracer.metrics.snapshot()
        assert snap["sweep.cache_hits"] == 1
        assert snap["sweep.computed"] == 1
        assert snap["sweep.retries"] == 1
        assert snap["engine.attempt_s"]["count"] == 1
        names = [s.name for s in tracer.spans]
        assert names == ["start", "point[0]", "retry[1]", "point[1]", "finish"]
        # instants land at the event's engine-relative wall time
        assert tracer.spans[1].t0 == 0.5

    def test_progress_printer_renders_tallies(self):
        import io

        out = io.StringIO()
        printer = ProgressPrinter(stream=out)
        printer(SweepEvent(kind="start", total=3))
        printer(SweepEvent(kind="point", index=0, cached=True, total=3))
        printer(SweepEvent(kind="failed", index=1, error="X", total=3))
        printer(SweepEvent(kind="finish", total=3))
        text = out.getvalue()
        assert "sweep 2/3" in text
        assert "cached 1" in text and "failed 1" in text
        assert text.endswith("\n")

    def test_progress_printer_survives_closed_stream(self):
        import io

        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        stream.close()
        printer(SweepEvent(kind="start", total=1))  # must not raise

    def test_compose(self):
        seen = []
        assert compose(None, None) is None
        single = seen.append
        assert compose(None, single) is single
        fan = compose(seen.append, seen.append)
        fan("e")
        assert seen == ["e", "e"]


class TestEngineIntegration:
    def test_events_carry_wall_time_and_attempt_duration(self, testbed):
        events = []
        SweepEngine(testbed=testbed, store=ResultStore(),
                    on_event=events.append).run(SweepSpec(kind="quality", **SMALL))
        points = [e for e in events if e.kind == "point"]
        assert points and all(e.attempt_s > 0.0 for e in points)
        walls = [e.wall_time_s for e in events]
        assert all(w >= 0.0 for w in walls)
        assert walls == sorted(walls)  # stamped by one run clock

    def test_traced_run_spans_and_metrics(self, testbed):
        spec = SweepSpec(kind="quality", **SMALL)
        with tracing() as tracer:
            SweepEngine(testbed=testbed, store=ResultStore()).run(spec)
        names = [s.name for s in tracer.spans]
        assert "evaluate:roundtrip" in names  # the quality kind's op
        assert "store.put" in names and "store.get" in names
        snap = tracer.metrics.snapshot()
        assert snap["engine.computed"] == 2
        assert snap["store.entries"] == 2

    def test_codec_phases_are_traced(self):
        import numpy as np

        from repro.compressors import get_compressor

        comp = get_compressor("szx")
        data = np.linspace(0.0, 1.0, 512, dtype=np.float32)
        with tracing() as tracer:
            buf = comp.compress(data, 1e-3)
            comp.decompress(buf)
        names = [s.name for s in tracer.spans]
        assert "compress:szx" in names and "decompress:szx" in names
        (cspan,) = [s for s in tracer.spans if s.name == "compress:szx"]
        # in_nbytes counts what enters the codec impl (post dtype widening)
        assert cspan.track == "codec" and cspan.args["in_nbytes"] >= data.nbytes
        assert cspan.args["out_nbytes"] > 0

    def test_disabled_tracer_changes_nothing(self, testbed, tmp_path):
        """The paramount contract: tracing on/off is invisible in artifacts."""
        spec = SweepSpec(kind="quality", **SMALL)
        plain = SweepEngine(
            testbed=testbed, store=ResultStore(cache_dir=tmp_path / "off")
        ).run(spec)
        with tracing() as tracer:
            traced = SweepEngine(
                testbed=testbed, store=ResultStore(cache_dir=tmp_path / "on")
            ).run(spec)
        assert len(tracer.spans) > 0
        assert plain == traced
        # identical store keys AND identical bytes on disk
        off = sorted(p.name for p in (tmp_path / "off").glob("*.json"))
        on = sorted(p.name for p in (tmp_path / "on").glob("*.json"))
        assert off == on and off
        for name in off:
            assert (tmp_path / "off" / name).read_bytes() == \
                (tmp_path / "on" / name).read_bytes()
        # and once the tracer is gone, a fresh run records no spans at all
        assert active_tracer() is None
        before = len(tracer.spans)
        SweepEngine(testbed=testbed, store=ResultStore()).run(spec)
        assert len(tracer.spans) == before


class TestVirtualInstrumentation:
    def test_lifecycle_spans_match_interval_timeline(self):
        from repro.workloads.checkpoint import CheckpointSpec
        from repro.workloads.lifecycle import run_lifecycle

        spec = CheckpointSpec(work_s=100.0, interval_s=50.0, ckpt_s=5.0,
                              restart_s=2.0, mttf_s=float("inf"))
        plain = run_lifecycle(spec)
        with tracing() as tracer:
            traced = run_lifecycle(spec, trace_track="tenant:x")
        assert traced.intervals == plain.intervals  # tracing never perturbs
        spans = [s for s in tracer.spans if s.track == "tenant:x"]
        assert len(spans) == len(plain.intervals)
        for span, iv in zip(spans, plain.intervals):
            assert (span.name, span.t0, span.t1) == \
                (iv.label, iv.start_s, iv.end_s)

    def test_event_loop_process_spans_are_opt_in(self):
        from repro.cluster.events import EventLoop

        def ticker(loop):
            yield 3.0

        with tracing() as tracer:
            silent = EventLoop()  # default: no spans
            silent.spawn(ticker(silent), name="quiet")
            silent.run()
            assert len(tracer.spans) == 0
            loud = EventLoop(trace_track="loop")
            loud.spawn(ticker(loud), name="tick", delay=1.0)
            loud.run()
        (span,) = tracer.spans
        assert span.name == "tick" and span.track == "loop"
        assert (span.t0, span.t1) == (1.0, 4.0)

    def test_pipeline_plan_emits_stage_and_pfs_tracks(self):
        from repro.iolib.hdf5_like import HDF5Like
        from repro.iolib.pfs import PFSModel
        from repro.iolib.pipeline import plan_pipelined_write

        kwargs = dict(out_nbytes=1 << 20, compress_s=0.5,
                      pfs=PFSModel(), cost=HDF5Like.cost, n_chunks=4)
        plain = plan_pipelined_write(**kwargs)
        with tracing() as tracer:
            traced = plan_pipelined_write(**kwargs)
        assert traced == plain
        stage = [s for s in tracer.spans if s.track == "pipeline:stage"]
        pfs = [s for s in tracer.spans if s.track == "pipeline:pfs"]
        assert len(stage) == plain.n_chunks
        whole = next(s for s in pfs if s.name == "pipelined-write")
        assert whole.args["total_time_s"] == plain.total_time_s
        assert whole.args["overlap_saving_s"] == plain.overlap_saving_s


class TestStoreStatsConcurrency:
    def test_counters_consistent_under_two_threads(self):
        store = ResultStore()
        n = 200

        def writer():
            for i in range(n):
                store.put(f"w{i:03d}" * 16, {"i": i})

        def reader():
            for i in range(n):
                store.get(f"r{i:03d}" * 16)  # all misses

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = store.stats
        assert stats["entries"] == n
        assert stats["misses"] == n
        assert stats["memory_hits"] == 0

    def test_quarantine_counted_once_across_two_threads(self, tmp_path):
        n = 20
        keys = [f"c{i:03d}" * 16 for i in range(n)]
        for key in keys:
            (tmp_path / f"{key}.json").write_text("{corrupt")

        store = ResultStore(cache_dir=tmp_path)
        barrier = threading.Barrier(2)

        def reader():
            barrier.wait()
            for key in keys:
                assert store.get(key) is None

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # both threads raced over every corrupt entry, but each file is
        # renamed (and counted) exactly once
        assert store.stats["corrupt_quarantined"] == n
        assert len(list(tmp_path.glob("*.corrupt"))) == n


class TestClusterTraceBitIdentity:
    def test_virtual_tracks_reproduce_makespan_and_energy(self, tmp_path,
                                                          testbed):
        """Acceptance criterion: the traced cluster run's tenant tracks sum
        to the same makespan/energy as the untraced run, bit-identically —
        recovered from the trace file alone."""
        spec = SweepSpec(kind="cluster", datasets=("nyx",), cpus=("plat8160",),
                         io_libraries=("hdf5",), scenario=CLUSTER_SCENARIO)
        (plain,) = SweepEngine(testbed=testbed, store=ResultStore()).run(spec)
        with tracing() as tracer:
            (traced,) = SweepEngine(testbed=testbed,
                                    store=ResultStore()).run(spec)
        assert plain == traced

        path = tmp_path / "cluster.json"
        write_trace(tracer, path)
        spans, _ = load_trace(path)
        jobs = [s for s in spans if s.name.startswith("job:")]
        assert {s.track for s in jobs} == {"tenant:a", "tenant:b"}
        assert max(s.args["finish_s"] for s in jobs) == plain.makespan_s
        assert sum(s.args["total_energy_j"] for s in jobs) == \
            plain.total_energy_j
        # the Gantt structure is there: scheduler + per-tenant virtual tracks
        virtual_tracks = {s.track for s in spans if s.clock == "virtual"}
        assert {"scheduler", "fixed-point"} <= virtual_tracks
        # and the file passes the CI schema gate
        assert load_tool("check_trace_schema").check(path) == []


class TestCLI:
    ARGS = ["sweep", "--kind", "quality", "--datasets", "cesm",
            "--codecs", "szx", "--bounds", "1e-2", "--scale", "tiny"]

    def test_sweep_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert main(self.ARGS + ["--trace", str(path)]) == 0
        err = capsys.readouterr().err
        assert f"-> {path}" in err
        spans, metrics = load_trace(path)
        assert any(s.name == "evaluate:roundtrip" for s in spans)
        assert metrics["engine.computed"] == 1

    def test_sweep_progress_flag(self, capsys):
        assert main(self.ARGS + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "sweep 1/1" in err

    def test_trace_summarize_command(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(self.ARGS + ["--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wall clock" in out and "store" in out

    def test_trace_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert main(["trace", "summarize", str(tmp_path / "missing.json")]) == 1

    def test_cluster_run_trace(self, tmp_path, capsys):
        path = tmp_path / "cluster.json"
        assert main(["cluster", "run", "--scenario", CLUSTER_SCENARIO,
                     "--scale", "tiny", "--trace", str(path)]) == 0
        spans, _ = load_trace(path)
        assert any(s.track == "tenant:a" for s in spans)
        assert load_tool("check_trace_schema").check(path) == []

    def test_sweep_json_meta_excluded_from_schema_check(self, tmp_path,
                                                        capsys):
        assert main(self.ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        wire = json.loads(out)
        assert "__meta__" in wire[-1]
        path = tmp_path / "sweep.json"
        path.write_text(out)
        checker = load_tool("check_record_schemas")
        assert checker.check("quality", path) == []


class TestSchemaShims:
    """The legacy per-kind checkers stay as deprecation shims that exit 0."""

    def _sweep_json(self, tmp_path, capsys, argv, name):
        assert main(argv) == 0
        path = tmp_path / name
        path.write_text(capsys.readouterr().out)
        return str(path)

    def test_dvfs_shim(self, tmp_path, capsys):
        path = self._sweep_json(tmp_path, capsys, [
            "sweep", "--kind", "dvfs", "--datasets", "cesm", "--codecs",
            "szx", "--bounds", "1e-2", "--scale", "tiny", "--cpus",
            "plat8160", "--freqs", "2.1", "--json",
        ], "DVFS.json")
        shim = load_tool("check_dvfs_schema")
        assert shim.check(path) == []
        assert shim.main(["check_dvfs_schema.py", path]) == 0

    def test_pipeline_shim(self, tmp_path, capsys):
        path = self._sweep_json(tmp_path, capsys, [
            "sweep", "--kind", "pipeline", "--datasets", "cesm", "--codecs",
            "szx", "--bounds", "1e-2", "--io-libraries", "hdf5", "--scale",
            "tiny", "--n-chunks", "2", "--json",
        ], "PIPELINE.json")
        shim = load_tool("check_pipeline_schema")
        assert shim.check(path) == []
        assert shim.main(["check_pipeline_schema.py", path]) == 0

    def test_checkpoint_shim(self, tmp_path, capsys):
        path = self._sweep_json(tmp_path, capsys, [
            "sweep", "--kind", "checkpoint", "--datasets", "cesm",
            "--codecs", "szx", "--bounds", "1e-2", "--io-libraries", "hdf5",
            "--scale", "tiny", "--mttfs", "inf", "--work", "600", "--json",
        ], "CHECKPOINT.json")
        shim = load_tool("check_checkpoint_schema")
        assert shim.check(path) == []
        assert shim.main(["check_checkpoint_schema.py", path]) == 0

    def test_bench_shim_and_unified_dispatch(self, tmp_path, capsys):
        from repro.runtime.benchmark import SCHEMA_VERSION

        doc = {
            "schema_version": SCHEMA_VERSION,
            "created": "2026-08-08T00:00:00Z",
            "repro_version": "0",
            "quick": True,
            "results": [{
                "kernel": "huffman_decode", "dataset": "cesm",
                "n_symbols": 16, "n_bytes": 64, "seconds_per_call": 1e-4,
                "mb_per_s": 1.0, "sym_per_s": 1.0, "calls": 2,
            }],
            "history": [],
        }
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(doc))
        unified = load_tool("check_record_schemas")
        assert unified.check("bench", path) == []
        shim = load_tool("check_bench_schema")
        assert shim.main([str(path)]) == 0
        err = capsys.readouterr().err
        assert "deprecated" in err
        # a broken doc still fails through the shim
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
        assert shim.main([str(path)]) == 1
