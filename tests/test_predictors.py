"""SZ2 predictors: Lorenzo encode/decode symmetry and regression fits."""

import numpy as np

from repro.compressors.predictors import (
    estimate_lorenzo_error,
    lorenzo_decode_blocks,
    lorenzo_encode_blocks,
    regression_fit,
    regression_predict,
)
from repro.compressors.quantizer import LinearQuantizer


def _decode_slots(codes):
    flat = codes.reshape(-1)
    esc = flat == 0
    return np.where(esc, np.cumsum(esc) - 1, -1).reshape(codes.shape)


class TestLorenzo:
    def test_encode_decode_symmetry_3d(self, rng):
        blocks = np.cumsum(rng.standard_normal((5, 6, 6, 6)), axis=1)
        q = LinearQuantizer(0.05)
        codes, recon, _ = lorenzo_encode_blocks(blocks, q)
        outliers = blocks.reshape(-1)[codes.reshape(-1) == 0]
        decoded = lorenzo_decode_blocks(codes, outliers, _decode_slots(codes), q)
        np.testing.assert_allclose(decoded, recon, atol=1e-12)

    def test_error_bound_holds(self, rng):
        blocks = rng.standard_normal((4, 6, 6, 6)) * 10
        q = LinearQuantizer(0.5)
        codes, recon, _ = lorenzo_encode_blocks(blocks, q)
        assert np.abs(recon - blocks).max() <= 0.5 * (1 + 1e-9)

    def test_smooth_blocks_mostly_small_codes(self):
        x = np.linspace(0, 1, 6)
        block = (x[:, None, None] + x[None, :, None] + x[None, None, :])[None]
        q = LinearQuantizer(0.01)
        codes, _, _ = lorenzo_encode_blocks(block, q)
        # Perfect-plane data is exactly Lorenzo-predictable after warmup.
        assert np.median(codes) == 1  # zigzag(0) + 1

    def test_1d_and_2d_ranks(self, rng):
        for shape in [(3, 32), (3, 8, 8)]:
            blocks = np.cumsum(rng.standard_normal(shape), axis=-1)
            q = LinearQuantizer(0.1)
            codes, recon, _ = lorenzo_encode_blocks(blocks, q)
            outliers = blocks.reshape(-1)[codes.reshape(-1) == 0]
            decoded = lorenzo_decode_blocks(codes, outliers, _decode_slots(codes), q)
            np.testing.assert_allclose(decoded, recon, atol=1e-12)


class TestRegression:
    def test_fits_exact_plane(self):
        i, j, k = np.meshgrid(np.arange(6), np.arange(6), np.arange(6), indexing="ij")
        plane = (2.0 + 3.0 * i - 1.5 * j + 0.5 * k)[None].astype(np.float64)
        coeffs = regression_fit(plane)
        pred = regression_predict(coeffs, (6, 6, 6))
        np.testing.assert_allclose(pred, plane, rtol=1e-4)

    def test_prediction_shape(self, rng):
        blocks = rng.standard_normal((7, 6, 6, 6))
        coeffs = regression_fit(blocks)
        assert coeffs.shape == (7, 4)
        assert regression_predict(coeffs, (6, 6, 6)).shape == (7, 6, 6, 6)

    def test_float32_storage_is_consistent(self, rng):
        """Prediction from stored (f32) coefficients is reproducible."""
        blocks = rng.standard_normal((3, 6, 6, 6))
        coeffs = regression_fit(blocks)
        p1 = regression_predict(coeffs, (6, 6, 6))
        p2 = regression_predict(coeffs.copy(), (6, 6, 6))
        np.testing.assert_array_equal(p1, p2)


class TestSelectionEstimate:
    def test_plane_favours_regression_noise_favours_lorenzo_estimate(self, rng):
        i, j, k = np.meshgrid(np.arange(6), np.arange(6), np.arange(6), indexing="ij")
        plane = (10 + 2.0 * i + j - k)[None].astype(np.float64)
        est_plane = estimate_lorenzo_error(plane)
        # A smooth random walk is exactly what Lorenzo handles.
        walk = np.cumsum(rng.standard_normal((1, 6, 6, 6)) * 0.01, axis=1)
        reg_err_walk = np.abs(
            walk - regression_predict(regression_fit(walk), (6, 6, 6))
        ).mean()
        assert estimate_lorenzo_error(walk)[0] < reg_err_walk + 1.0
        assert est_plane[0] >= 0.0
