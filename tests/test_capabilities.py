"""Reference-toolchain capability matrix (paper Section IV-C notes)."""

import pytest

from repro.compressors.capabilities import (
    REFERENCE_LIMITATIONS,
    supported,
    unsupported_reason,
)
from repro.core.experiments import Testbed


class TestMatrix:
    def test_paper_stated_limitations(self):
        assert not supported("qoz", 1, "serial")
        assert not supported("sz2", 1, "openmp")
        assert not supported("sz2", 4, "openmp")
        # SZ2 serial handles everything; SZ3 has no stated limits.
        assert supported("sz2", 1, "serial")
        assert supported("sz2", 4, "serial")
        for ndim in (1, 2, 3, 4):
            assert supported("sz3", ndim, "openmp")

    def test_reasons_given(self):
        assert "1D" in unsupported_reason("qoz", 1)
        assert unsupported_reason("sz3", 3) is None

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            supported("sz2", 3, "gpu")
        with pytest.raises(ValueError):
            unsupported_reason("sz2", 3, "cuda")

    def test_our_implementations_do_not_share_them(self):
        """Every limited combination works in this package (1-D QoZ etc.)."""
        import numpy as np

        from repro import compress, decompress
        from repro.metrics import check_error_bound

        data = np.cumsum(np.random.default_rng(0).standard_normal(500)).astype(
            np.float32
        )
        for codec, ndim, mode in REFERENCE_LIMITATIONS:
            if ndim != 1:
                continue
            buf = compress(data, codec, 1e-3)
            check_error_bound(data, decompress(buf), 1e-3)


class TestFidelityMode:
    def test_thread_sweep_drops_unsupported_combos(self):
        tb = Testbed(scale="tiny", sample_interval=0.05)
        pts = tb.run_thread_sweep(
            datasets=("hacc",),  # 1-D
            codecs=("sz2", "qoz", "sz3"),
            threads=(1,),
            paper_fidelity=True,
        )
        codecs = {p.codec for p in pts}
        assert codecs == {"sz3"}  # sz2 (1-D openmp) and qoz (1-D) dropped

    def test_default_keeps_everything(self):
        tb = Testbed(scale="tiny", sample_interval=0.05)
        pts = tb.run_thread_sweep(
            datasets=("hacc",), codecs=("sz2", "qoz"), threads=(1,)
        )
        assert {p.codec for p in pts} == {"sz2", "qoz"}

    def test_empty_fidelity_grid_names_every_reason(self):
        """A sweep that fidelity filtering empties entirely is a config
        error naming each capability reason, not a silent zero-point run."""
        from repro.errors import ConfigurationError
        from repro.runtime.spec import SweepSpec

        with pytest.raises(ConfigurationError) as excinfo:
            SweepSpec(
                kind="thread",
                datasets=("hacc",),  # 1-D
                codecs=("sz2", "qoz"),
                threads=(1,),
                paper_fidelity=True,
            )
        msg = str(excinfo.value)
        assert unsupported_reason("sz2", 1, "openmp") in msg
        assert unsupported_reason("qoz", 1, "openmp") in msg

    def test_partial_fidelity_drop_stays_silent(self):
        from repro.runtime.spec import SweepSpec

        spec = SweepSpec(
            kind="thread",
            datasets=("hacc",),
            codecs=("sz2", "sz3"),
            threads=(1,),
            paper_fidelity=True,
        )
        assert {p.as_kwargs()["codec"] for p in spec.points()} == {"sz3"}
