"""Throughput model: calibration targets the paper states numerically."""

import pytest

from repro.energy import EnergyMeter, ThroughputModel, get_cpu
from repro.energy.throughput import CODEC_PERF
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tm():
    return ThroughputModel()


class TestEpsSlowdown:
    def test_normalized_at_1e3(self, tm):
        for codec in ("sz2", "sz3", "qoz", "zfp", "szx"):
            assert tm.eps_slowdown(codec, 1e-3) == pytest.approx(1.0)

    def test_paper_energy_growth_factors(self, tm):
        """Section V-C: energy grows 2.1x (SZx) ... 7.2x (SZ3) from 1e-1 to 1e-5."""
        factors = {}
        for codec in ("szx", "sz3"):
            factors[codec] = tm.eps_slowdown(codec, 1e-5) / tm.eps_slowdown(
                codec, 1e-1
            )
        assert factors["szx"] == pytest.approx(2.1, rel=0.05)
        assert factors["sz3"] == pytest.approx(7.2, rel=0.05)

    def test_monotone_in_tightness(self, tm):
        for codec in ("sz2", "sz3", "qoz", "zfp", "szx"):
            vals = [tm.eps_slowdown(codec, e) for e in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)]
            assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_flat_above_1e1(self, tm):
        assert tm.eps_slowdown("sz3", 0.5) == tm.eps_slowdown("sz3", 1e-1)


class TestScaling:
    def test_speedup_capped_by_cores(self, tm):
        cpu = get_cpu("plat8160")  # 48 cores
        assert tm.speedup("szx", 64, cpu) == tm.speedup("szx", 48, cpu)

    def test_szx_scales_zfp_does_not(self, tm):
        """Fig. 10: SZx gains ~6x energy at 64 threads; ZFP gains none."""
        cpu = get_cpu("max9480")
        meter = EnergyMeter(cpu)
        reductions = {}
        for codec in ("szx", "zfp", "sz2", "sz3"):
            e = {}
            for threads in (1, 64):
                t = tm.runtime(codec, "compress", 10**9, 1e-3, cpu, threads)
                e[threads] = meter.measure_compute(t, threads).energy_j
            reductions[codec] = e[1] / e[64]
        assert reductions["szx"] == pytest.approx(6.0, rel=0.35)
        assert reductions["zfp"] < 1.2
        assert reductions["sz2"] < 1.2
        assert reductions["sz3"] > 2.0

    def test_invalid_threads(self, tm):
        with pytest.raises(ConfigurationError):
            tm.speedup("sz3", 0, get_cpu("plat8160"))


class TestRuntime:
    def test_linear_in_bytes_at_scale(self, tm):
        cpu = get_cpu("plat8160")
        t1 = tm.runtime("sz3", "compress", 10**9, 1e-3, cpu)
        t2 = tm.runtime("sz3", "compress", 2 * 10**9, 1e-3, cpu)
        # Fig. 13: near-linear once the fixed overhead is amortized.
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_overhead_dominates_small_inputs(self, tm):
        cpu = get_cpu("plat8160")  # speed 1.0, serial: speedup 1
        t = tm.runtime("szx", "compress", 1000, 1e-3, cpu)
        assert t == pytest.approx(CODEC_PERF["szx"].overhead_s, rel=0.01)

    def test_overhead_parallelizes(self, tm):
        cpu = get_cpu("max9480")
        t1 = tm.runtime("szx", "compress", 1000, 1e-3, cpu, threads=1)
        t64 = tm.runtime("szx", "compress", 1000, 1e-3, cpu, threads=64)
        assert t64 < t1 / 5

    def test_cpu_speed_scales_runtime(self, tm):
        fast = tm.runtime("sz3", "compress", 10**9, 1e-3, get_cpu("max9480"))
        slow = tm.runtime("sz3", "compress", 10**9, 1e-3, get_cpu("plat8260m"))
        assert slow > fast

    def test_decompress_faster_than_compress(self, tm):
        cpu = get_cpu("plat8160")
        for codec in ("sz2", "sz3", "qoz", "zfp", "szx"):
            c = tm.runtime(codec, "compress", 10**9, 1e-3, cpu)
            d = tm.runtime(codec, "decompress", 10**9, 1e-3, cpu)
            assert d < c

    def test_complexity_multiplier(self, tm):
        cpu = get_cpu("plat8160")
        base = tm.runtime("sz3", "compress", 10**9, 1e-3, cpu, complexity=1.0)
        hard = tm.runtime("sz3", "compress", 10**9, 1e-3, cpu, complexity=2.0)
        assert hard > 1.8 * base

    def test_unknown_codec_and_direction(self, tm):
        cpu = get_cpu("plat8160")
        with pytest.raises(ConfigurationError):
            tm.runtime("nope", "compress", 1, 1e-3, cpu)
        with pytest.raises(ConfigurationError):
            tm.runtime("sz3", "sideways", 1, 1e-3, cpu)

    def test_s3d_cesm_energy_ratio_band(self, tm):
        """Section V-C: S3D:CESM energy ratio at 1e-3 within the 8.3-14.2 band."""
        from repro.data import get_dataset

        cpu = get_cpu("max9480")
        meter = EnergyMeter(cpu)
        ratios = {}
        for codec in ("szx", "sz2"):
            es = []
            for name in ("s3d", "cesm"):
                spec = get_dataset(name)
                t = sum(
                    tm.runtime(
                        codec, d, spec.profile_nbytes, 1e-3, cpu,
                        complexity=spec.complexity,
                    )
                    for d in ("compress", "decompress")
                )
                es.append(meter.measure_compute(t, 1).energy_j)
            ratios[codec] = es[0] / es[1]
        # The paper reports the band 8.3x (SZx) .. 14.2x (SZ2); our scalar
        # complexity model lands both in a lower band and does not reproduce
        # the per-codec ordering (documented deviation, EXPERIMENTS.md).
        assert 1.5 < ratios["szx"] < 20.0
        assert 3.0 < ratios["sz2"] < 25.0
