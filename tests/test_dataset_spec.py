"""The compression-spec mini-language: grammar, validation, round-trip.

The hypothesis property is the satellite contract:
``parse(format(s)) == s`` over generated specs — including per-variable
maps and the ``auto`` form — so the canonical wire form is safe to use as
store-key material.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.spec import (
    CompressionMap,
    CompressionSpec,
    advisor_grid_from_spec,
    parse_compression,
    sweep_axes_from_spec,
)
from repro.errors import ConfigurationError


class TestParse:
    def test_lossless_defaults_codec(self):
        s = CompressionSpec.parse("lossless")
        assert s.mode == "lossless" and s.codec == "zstd"
        assert s.bound is None and s.bound_mode is None

    def test_lossless_named_codec(self):
        assert CompressionSpec.parse("lossless,blosc").codec == "blosc"

    def test_lossy_full_form(self):
        s = CompressionSpec.parse("lossy,sz3,abs,1e-3")
        assert (s.mode, s.codec, s.bound_mode, s.bound) == (
            "lossy", "sz3", "abs", 1e-3,
        )

    def test_auto_defaults(self):
        s = CompressionSpec.parse("auto")
        assert s.mode == "auto" and s.codec is None
        assert s.bound_mode == "rel" and s.bound == 1e-3

    def test_auto_explicit_floor(self):
        s = CompressionSpec.parse("auto,rel,1e-4")
        assert s.bound == 1e-4

    def test_whitespace_tolerated(self):
        s = CompressionSpec.parse(" lossy , zfp , rel , 1e-4 ")
        assert s.codec == "zfp" and s.bound == 1e-4

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "bogus",
            "lossy",
            "lossy,sz3",
            "lossy,sz3,rel",
            "lossy,sz3,mid,1e-3",
            "lossy,sz3,rel,zero",
            "lossy,sz3,rel,-1e-3",
            "lossy,sz3,rel,inf",
            "lossy,sz3,rel,nan",
            "lossy,sz3,rel,2.0",  # rel bounds live in (0, 1]
            "auto,rel",
            "auto,abs",
            "lossless,zstd,extra",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            CompressionSpec.parse(bad)

    def test_map_with_default(self):
        m = parse_compression("temp:lossy,sz3,abs,1e-3;vel:lossless;auto")
        assert isinstance(m, CompressionMap)
        assert m.spec_for("temp").codec == "sz3"
        assert m.spec_for("vel").mode == "lossless"
        assert m.spec_for("anything-else").mode == "auto"

    def test_map_without_default_raises_for_unknown(self):
        m = parse_compression("temp:lossless")
        with pytest.raises(ConfigurationError):
            m.spec_for("pressure")

    def test_map_rejects_duplicates_and_two_defaults(self):
        with pytest.raises(ConfigurationError):
            parse_compression("a:lossless;a:auto")
        with pytest.raises(ConfigurationError):
            parse_compression("lossless;auto")

    def test_single_spec_stays_a_spec(self):
        assert isinstance(parse_compression("auto"), CompressionSpec)


class TestValidate:
    def test_unknown_codec_lists_registered(self):
        with pytest.raises(ConfigurationError, match="registered"):
            CompressionSpec.parse("lossy,nope,rel,1e-3").validate()

    def test_lossless_mode_rejects_eblc(self):
        with pytest.raises(ConfigurationError, match="error-bounded"):
            CompressionSpec.parse("lossless,sz3").validate()

    def test_lossy_mode_rejects_lossless_codec(self):
        with pytest.raises(ConfigurationError, match="lossless"):
            CompressionSpec.parse("lossy,zstd,rel,1e-3").validate()

    def test_paper_fidelity_names_capability_reason(self):
        # qoz on 1-D data is outside the paper's measurement matrix; the
        # error must carry capabilities.unsupported_reason() verbatim.
        from repro.compressors.capabilities import unsupported_reason

        reason = unsupported_reason("qoz", 1, "serial")
        with pytest.raises(ConfigurationError, match="measurement matrix"):
            try:
                CompressionSpec.parse("lossy,qoz,rel,1e-3").validate(
                    ndim=1, paper_fidelity=True
                )
            except ConfigurationError as exc:
                assert reason in str(exc)
                raise

    def test_fidelity_off_by_default(self):
        CompressionSpec.parse("lossy,qoz,rel,1e-3").validate(ndim=1)


class TestSemantics:
    def test_rel_bound_for_rel(self):
        assert CompressionSpec.parse("lossy,sz3,rel,1e-3").rel_bound_for(7.0) == 1e-3

    def test_rel_bound_for_abs_divides_by_range(self):
        assert CompressionSpec.parse("lossy,sz3,abs,2.0").rel_bound_for(100.0) == 0.02

    def test_rel_bound_for_abs_clamps_to_one(self):
        assert CompressionSpec.parse("lossy,sz3,abs,5.0").rel_bound_for(2.0) == 1.0

    def test_rel_bound_for_zero_range(self):
        # Constant variables store exactly via the constant fast path.
        assert CompressionSpec.parse("lossy,sz3,abs,1e-3").rel_bound_for(0.0) == 1.0

    def test_lossless_rel_bound_is_zero(self):
        assert CompressionSpec.parse("lossless").rel_bound_for(10.0) == 0.0


class TestGridDerivation:
    def test_lossy_pins_both_axes(self):
        axes = sweep_axes_from_spec(CompressionSpec.parse("lossy,sz3,rel,1e-3"), "serial")
        assert axes == {"codecs": ("sz3",), "bounds": (1e-3,), "rel_bound": 1e-3}

    def test_lossless_only_for_lossless_kind(self):
        spec = CompressionSpec.parse("lossless,blosc")
        assert sweep_axes_from_spec(spec, "lossless") == {
            "codecs": (), "lossless_codecs": ("blosc",),
        }
        with pytest.raises(ConfigurationError):
            sweep_axes_from_spec(spec, "serial")

    def test_abs_bounds_rejected_on_grids(self):
        with pytest.raises(ConfigurationError, match="'dataset' kind"):
            sweep_axes_from_spec(CompressionSpec.parse("lossy,sz3,abs,1e-3"), "io")

    def test_advisor_auto_filters_bounds_to_floor(self):
        codecs, bounds = advisor_grid_from_spec(
            "auto,rel,1e-3", ("sz3", "zfp"), (1e-1, 1e-2, 1e-3, 1e-4)
        )
        assert codecs == ("sz3", "zfp")
        assert bounds == (1e-3, 1e-4)

    def test_advisor_auto_keeps_floor_when_grid_is_coarser(self):
        _, bounds = advisor_grid_from_spec("auto,rel,1e-6", ("sz3",), (1e-1,))
        assert bounds == (1e-6,)

    def test_advisor_rejects_map_and_lossless(self):
        with pytest.raises(ConfigurationError):
            advisor_grid_from_spec("a:lossless;auto", ("sz3",), (1e-3,))
        with pytest.raises(ConfigurationError):
            advisor_grid_from_spec("lossless", ("sz3",), (1e-3,))


# -- the round-trip property ---------------------------------------------------

_BOUNDS = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 0.5, 1.0, 3e-3, 7.5e-4])
_ABS_BOUNDS = st.sampled_from([1e-3, 0.25, 2.0, 100.0, 1e6, 5e-7])
_EBLCS = st.sampled_from(["sz2", "sz3", "zfp", "qoz", "szx"])
_LOSSLESS = st.sampled_from(["zstd", "blosc", "fpzip", "fpc"])
_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789-", min_size=1, max_size=12
)


@st.composite
def specs(draw):
    mode = draw(st.sampled_from(["lossless", "lossy", "auto"]))
    if mode == "lossless":
        return CompressionSpec(mode="lossless", codec=draw(_LOSSLESS))
    if mode == "lossy":
        bound_mode = draw(st.sampled_from(["abs", "rel"]))
        bound = draw(_ABS_BOUNDS if bound_mode == "abs" else _BOUNDS)
        return CompressionSpec(
            mode="lossy", codec=draw(_EBLCS), bound_mode=bound_mode, bound=bound
        )
    bound_mode = draw(st.sampled_from(["abs", "rel"]))
    bound = draw(_ABS_BOUNDS if bound_mode == "abs" else _BOUNDS)
    return CompressionSpec(mode="auto", bound_mode=bound_mode, bound=bound)


@st.composite
def spec_maps(draw):
    names = draw(st.lists(_NAMES, min_size=1, max_size=4, unique=True))
    entries = tuple((name, draw(specs())) for name in names)
    default = draw(st.one_of(st.none(), specs()))
    return CompressionMap(entries=entries, default=default)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(spec=specs())
    def test_spec_parse_format_roundtrip(self, spec):
        assert CompressionSpec.parse(spec.format()) == spec
        # format is a fixpoint: canonical text re-formats to itself.
        assert CompressionSpec.parse(spec.format()).format() == spec.format()

    @settings(max_examples=200, deadline=None)
    @given(m=spec_maps())
    def test_map_parse_format_roundtrip(self, m):
        parsed = parse_compression(m.format())
        assert isinstance(parsed, CompressionMap)
        assert parsed == m
        assert parsed.format() == m.format()

    @settings(max_examples=100, deadline=None)
    @given(spec=specs())
    def test_single_spec_through_parse_compression(self, spec):
        assert parse_compression(spec.format()) == spec
