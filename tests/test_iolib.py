"""I/O stack: container roundtrips, PFS fair sharing, cost calibration."""

import numpy as np
import pytest

from repro.iolib import (
    HDF5Like,
    NetCDFLike,
    PFSModel,
    fair_share_schedule,
    get_io_library,
)
from repro.iolib.devices import DEVICES, get_device
from repro.errors import ConfigurationError, IOModelError


class TestContainers:
    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_array_roundtrip(self, libname, rng):
        lib = get_io_library(libname)
        arrays = {
            "temp": rng.standard_normal((5, 7)).astype(np.float32),
            "rho": rng.standard_normal((3, 4, 5)),
        }
        attrs = {"source": "unit-test", "version": "1"}
        blob = lib.pack(arrays, attrs)
        out, out_attrs = lib.unpack(blob)
        assert out_attrs == attrs
        for k in arrays:
            np.testing.assert_array_equal(out[k], arrays[k])
            assert out[k].dtype == arrays[k].dtype

    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_opaque_bytes_roundtrip(self, libname):
        lib = get_io_library(libname)
        payload = bytes(range(256)) * 3
        blob = lib.pack({"compressed": payload})
        out, _ = lib.unpack(blob)
        assert out["compressed"] == payload

    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_file_roundtrip(self, libname, tmp_path, rng):
        lib = get_io_library(libname)
        data = {"x": rng.standard_normal(100).astype(np.float32)}
        n = lib.write_file(tmp_path / "out.bin", data)
        assert n == (tmp_path / "out.bin").stat().st_size
        out, _ = lib.read_file(tmp_path / "out.bin")
        np.testing.assert_array_equal(out["x"], data["x"])

    def test_hdf5_checksum_detects_corruption(self, rng):
        lib = HDF5Like()
        blob = bytearray(lib.pack({"x": rng.standard_normal(64)}))
        blob[-5] ^= 0xFF
        with pytest.raises(IOModelError):
            lib.unpack(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(IOModelError):
            HDF5Like().unpack(b"garbage" * 4)
        with pytest.raises(IOModelError):
            NetCDFLike().unpack(b"garbage" * 4)

    def test_netcdf_is_big_endian_on_disk(self):
        """The classic-format byte swap: the RNC payload differs from memory."""
        data = np.array([1.0, 2.0], dtype=np.float32)
        blob = NetCDFLike().pack({"v": data})
        assert data.tobytes() not in blob  # little-endian bytes absent
        assert data.astype(">f4").tobytes() in blob

    def test_cost_models_ordered(self):
        """HDF5 must be the efficient library on every axis (paper VI-A)."""
        h, n = HDF5Like.cost, NetCDFLike.cost
        assert h.serialize_mbps > n.serialize_mbps
        assert h.bandwidth_efficiency > n.bandwidth_efficiency
        assert h.open_latency_s < n.open_latency_s

    def test_unknown_library(self):
        with pytest.raises(KeyError):
            get_io_library("adios")


class TestFairShare:
    def test_single_flow_rate(self):
        finish = fair_share_schedule(
            np.array([0.0]), np.array([1e9]), 1000.0, 8000.0
        )
        assert finish[0] == pytest.approx(1.0)  # 1 GB at 1 GB/s

    def test_contended_flows_share_aggregate(self):
        n = 16
        finish = fair_share_schedule(
            np.zeros(n), np.full(n, 1e9), 1000.0, 4000.0
        )
        # 16 GB through 4 GB/s = 4 s for everyone (equal shares).
        np.testing.assert_allclose(finish, 4.0, rtol=1e-6)

    def test_uncontended_flows_use_own_cap(self):
        n = 2
        finish = fair_share_schedule(np.zeros(n), np.full(n, 1e9), 1000.0, 8000.0)
        np.testing.assert_allclose(finish, 1.0, rtol=1e-6)

    def test_staggered_arrivals(self):
        finish = fair_share_schedule(
            np.array([0.0, 10.0]), np.array([1e9, 1e9]), 1000.0, 8000.0
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(11.0)

    def test_early_finisher_frees_bandwidth(self):
        finish = fair_share_schedule(
            np.zeros(2), np.array([1e8, 1e9]), 1000.0, 1000.0
        )
        # Phase 1: both at 500 MB/s until small flow done at t=0.2.
        assert finish[0] == pytest.approx(0.2)
        # Large flow: 100 MB left of 1000 after phase 1 -> 0.2 + 0.9 s.
        assert finish[1] == pytest.approx(1.1)

    def test_work_conservation(self):
        """Total bytes / makespan never exceeds the aggregate cap."""
        r = np.random.default_rng(2)
        sizes = r.uniform(1e8, 1e9, 20)
        finish = fair_share_schedule(np.zeros(20), sizes, 800.0, 3000.0)
        makespan = finish.max()
        assert sizes.sum() / 1e6 / makespan <= 3000.0 * (1 + 1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fair_share_schedule(np.zeros(2), np.zeros(3), 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            fair_share_schedule(np.zeros(1), np.ones(1), 0.0, 1.0)

    def test_unsorted_arrivals_equal_sorted(self):
        """Flow order in the input arrays must not matter: the schedule of a
        shuffled instance is the same permutation of the sorted one."""
        rng = np.random.default_rng(7)
        arrivals = np.array([3.0, 0.0, 1.5, 0.5, 2.0, 1.5])
        sizes = np.array([2e8, 5e8, 1e8, 3e8, 4e8, 1e8])
        base = fair_share_schedule(arrivals, sizes, 500.0, 1200.0)
        perm = rng.permutation(arrivals.size)
        shuffled = fair_share_schedule(arrivals[perm], sizes[perm], 500.0, 1200.0)
        np.testing.assert_allclose(shuffled, base[perm], rtol=1e-12)

    def test_duplicate_arrivals_share_fairly(self):
        """Ties in arrival time admit together and split the aggregate."""
        finish = fair_share_schedule(
            np.array([1.0, 1.0, 1.0, 1.0]), np.full(4, 1e9), 1000.0, 2000.0
        )
        # 4 GB through 2 GB/s, all admitted at t=1: done at t=3 together.
        np.testing.assert_allclose(finish, 3.0, rtol=1e-6)

    def test_duplicate_arrivals_with_zero_byte_flows(self):
        finish = fair_share_schedule(
            np.array([2.0, 2.0, 2.0]), np.array([0.0, 1e9, 0.0]), 1000.0, 8000.0
        )
        assert finish[0] == finish[2] == 2.0
        assert finish[1] == pytest.approx(3.0)

    def test_zero_byte_flows_complete_at_arrival(self):
        """Empty flows used to burn solver iterations; now they are free."""
        arrivals = np.array([0.0, 1.0, 2.5])
        finish = fair_share_schedule(arrivals, np.zeros(3), 100.0, 800.0)
        np.testing.assert_allclose(finish, arrivals)

    def test_zero_byte_flow_does_not_perturb_real_flows(self):
        finish = fair_share_schedule(
            np.array([0.0, 0.5]), np.array([1e8, 0.0]), 100.0, 800.0
        )
        assert finish[0] == pytest.approx(1.0)  # 100 MB at 100 MB/s, alone
        assert finish[1] == pytest.approx(0.5)  # done the instant it arrives

    def test_many_staggered_zero_flows_stay_within_guard(self):
        n = 500
        arrivals = np.linspace(0.0, 1.0, n)
        finish = fair_share_schedule(arrivals, np.zeros(n), 100.0, 800.0)
        np.testing.assert_allclose(finish, arrivals)

    def test_completion_coincident_with_arrival(self):
        """A completion landing exactly on an arrival is one clean step."""
        finish = fair_share_schedule(
            np.array([0.0, 1.0]), np.array([1e8, 1e8]), 100.0, 100.0
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(2.0)

    def test_zero_flows_mixed_with_coincident_events(self):
        finish = fair_share_schedule(
            np.array([0.0, 1.0, 1.0]),
            np.array([1e8, 0.0, 1e8]),
            100.0,
            100.0,
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(1.0)
        assert finish[2] == pytest.approx(2.0)

    def test_all_flows_empty_terminates(self):
        finish = fair_share_schedule(np.zeros(4), np.zeros(4), 10.0, 10.0)
        np.testing.assert_allclose(finish, 0.0)


class TestPFSModel:
    def test_aggregate_and_stream_bw(self):
        pfs = PFSModel(n_osts=8, ost_bw_mbps=500, stripe_count=4, client_bw_mbps=1000)
        assert pfs.aggregate_bw_mbps == 4000
        assert pfs.stream_bw_mbps == 1000  # client link binds

    def test_stripe_binds_when_narrow(self):
        pfs = PFSModel(n_osts=8, ost_bw_mbps=100, stripe_count=2, client_bw_mbps=1000)
        assert pfs.stream_bw_mbps == 200

    def test_single_write_seconds(self):
        pfs = PFSModel(metadata_latency_s=0.01)
        t = pfs.single_write_seconds(10**9)
        assert t == pytest.approx(0.01 + 1000 / pfs.stream_bw_mbps)

    def test_concurrent_saturation(self):
        pfs = PFSModel(n_osts=4, ost_bw_mbps=500, stripe_count=4, client_bw_mbps=1000)
        sizes = np.full(64, 1e9)
        finish = pfs.concurrent_write_times(sizes)
        # 64 GB through 2 GB/s aggregate = 32 s.
        assert finish.max() == pytest.approx(32.0, rel=0.01)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PFSModel(stripe_count=20, n_osts=8)
        with pytest.raises(ConfigurationError):
            PFSModel(ost_bw_mbps=-1)


class TestDevices:
    def test_catalogue(self):
        assert set(DEVICES) == {"hdd-18tb", "ssd-15tb"}
        ssd = get_device("ssd-15tb")
        assert ssd.rack_embodied_fraction == pytest.approx(0.80)
        hdd = get_device("hdd-18tb")
        assert hdd.rack_embodied_fraction == pytest.approx(0.41)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_device("tape")


# -- property battery: the vectorized fair-share solver -----------------------
#
# Hypothesis drives the solver with adversarial staggered multi-tenant
# arrival patterns.  Two invariants are the contract the cluster scheduler
# leans on: (1) byte conservation — an independent piecewise replay of the
# max-min fluid model moves exactly each flow's bytes by its reported
# finish; (2) completion-order invariance — with equal sizes, a flow that
# arrives earlier never finishes later, and identical (arrival, size)
# twins finish at the same instant.

from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def _fair_share_cases(draw):
    n = draw(st.integers(1, 10))
    arrivals = np.array(
        [
            draw(st.floats(0.0, 60.0, allow_nan=False, allow_infinity=False))
            for _ in range(n)
        ]
    )
    sizes_mb = np.array(
        [
            draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(0.1, 2000.0, allow_nan=False, allow_infinity=False),
                )
            )
            for _ in range(n)
        ]
    )
    per_flow = draw(st.floats(50.0, 1500.0, allow_nan=False))
    aggregate = draw(st.floats(100.0, 6000.0, allow_nan=False))
    return arrivals, sizes_mb, per_flow, aggregate


def _replay_transferred(arrivals, sizes_mb, finishes, per_flow, aggregate):
    """Independent piecewise integration of the max-min fluid model.

    Walks the solver's own breakpoints (arrivals and completions) and, in
    each interval, credits every in-flight flow ``min(per_flow,
    aggregate / n_active)`` MB/s — the textbook rate, computed without any
    of the solver's internal bookkeeping.
    """
    events = np.unique(np.concatenate([arrivals, finishes]))
    moved = np.zeros_like(sizes_mb)
    for t0, t1 in zip(events[:-1], events[1:]):
        mid = 0.5 * (t0 + t1)
        active = (arrivals <= mid) & (finishes > mid) & (sizes_mb > 0)
        n_active = int(active.sum())
        if n_active:
            rate = min(per_flow, aggregate / n_active)
            moved[active] += rate * (t1 - t0)
    return moved


class TestFairShareProperties:
    @settings(max_examples=80, deadline=None)
    @given(_fair_share_cases())
    def test_bytes_conserved_under_staggered_arrivals(self, case):
        arrivals, sizes_mb, per_flow, aggregate = case
        finish = fair_share_schedule(arrivals, sizes_mb * 1e6, per_flow, aggregate)
        assert np.all(finish >= arrivals - 1e-9)
        moved = _replay_transferred(arrivals, sizes_mb, finish, per_flow, aggregate)
        np.testing.assert_allclose(moved, sizes_mb, rtol=1e-6, atol=1e-6)

    @settings(max_examples=80, deadline=None)
    @given(_fair_share_cases())
    def test_equal_sizes_finish_in_arrival_order(self, case):
        arrivals, _, per_flow, aggregate = case
        sizes = np.full(arrivals.size, 500e6)
        finish = fair_share_schedule(arrivals, sizes, per_flow, aggregate)
        order = np.argsort(arrivals, kind="stable")
        assert np.all(np.diff(finish[order]) >= -1e-9)

    @settings(max_examples=80, deadline=None)
    @given(_fair_share_cases(), st.integers(0, 9))
    def test_identical_twins_finish_together(self, case, pick):
        arrivals, sizes_mb, per_flow, aggregate = case
        i = pick % arrivals.size
        twin_arrivals = np.append(arrivals, arrivals[i])
        twin_sizes = np.append(sizes_mb, sizes_mb[i])
        finish = fair_share_schedule(
            twin_arrivals, twin_sizes * 1e6, per_flow, aggregate
        )
        assert finish[i] == pytest.approx(finish[-1], rel=1e-12, abs=1e-12)
