"""I/O stack: container roundtrips, PFS fair sharing, cost calibration."""

import numpy as np
import pytest

from repro.iolib import (
    HDF5Like,
    NetCDFLike,
    PFSModel,
    fair_share_schedule,
    get_io_library,
)
from repro.iolib.devices import DEVICES, get_device
from repro.errors import ConfigurationError, IOModelError


class TestContainers:
    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_array_roundtrip(self, libname, rng):
        lib = get_io_library(libname)
        arrays = {
            "temp": rng.standard_normal((5, 7)).astype(np.float32),
            "rho": rng.standard_normal((3, 4, 5)),
        }
        attrs = {"source": "unit-test", "version": "1"}
        blob = lib.pack(arrays, attrs)
        out, out_attrs = lib.unpack(blob)
        assert out_attrs == attrs
        for k in arrays:
            np.testing.assert_array_equal(out[k], arrays[k])
            assert out[k].dtype == arrays[k].dtype

    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_opaque_bytes_roundtrip(self, libname):
        lib = get_io_library(libname)
        payload = bytes(range(256)) * 3
        blob = lib.pack({"compressed": payload})
        out, _ = lib.unpack(blob)
        assert out["compressed"] == payload

    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    def test_file_roundtrip(self, libname, tmp_path, rng):
        lib = get_io_library(libname)
        data = {"x": rng.standard_normal(100).astype(np.float32)}
        n = lib.write_file(tmp_path / "out.bin", data)
        assert n == (tmp_path / "out.bin").stat().st_size
        out, _ = lib.read_file(tmp_path / "out.bin")
        np.testing.assert_array_equal(out["x"], data["x"])

    def test_hdf5_checksum_detects_corruption(self, rng):
        lib = HDF5Like()
        blob = bytearray(lib.pack({"x": rng.standard_normal(64)}))
        blob[-5] ^= 0xFF
        with pytest.raises(IOModelError):
            lib.unpack(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(IOModelError):
            HDF5Like().unpack(b"garbage" * 4)
        with pytest.raises(IOModelError):
            NetCDFLike().unpack(b"garbage" * 4)

    def test_netcdf_is_big_endian_on_disk(self):
        """The classic-format byte swap: the RNC payload differs from memory."""
        data = np.array([1.0, 2.0], dtype=np.float32)
        blob = NetCDFLike().pack({"v": data})
        assert data.tobytes() not in blob  # little-endian bytes absent
        assert data.astype(">f4").tobytes() in blob

    def test_cost_models_ordered(self):
        """HDF5 must be the efficient library on every axis (paper VI-A)."""
        h, n = HDF5Like.cost, NetCDFLike.cost
        assert h.serialize_mbps > n.serialize_mbps
        assert h.bandwidth_efficiency > n.bandwidth_efficiency
        assert h.open_latency_s < n.open_latency_s

    def test_unknown_library(self):
        with pytest.raises(KeyError):
            get_io_library("adios")


class TestFairShare:
    def test_single_flow_rate(self):
        finish = fair_share_schedule(
            np.array([0.0]), np.array([1e9]), 1000.0, 8000.0
        )
        assert finish[0] == pytest.approx(1.0)  # 1 GB at 1 GB/s

    def test_contended_flows_share_aggregate(self):
        n = 16
        finish = fair_share_schedule(
            np.zeros(n), np.full(n, 1e9), 1000.0, 4000.0
        )
        # 16 GB through 4 GB/s = 4 s for everyone (equal shares).
        np.testing.assert_allclose(finish, 4.0, rtol=1e-6)

    def test_uncontended_flows_use_own_cap(self):
        n = 2
        finish = fair_share_schedule(np.zeros(n), np.full(n, 1e9), 1000.0, 8000.0)
        np.testing.assert_allclose(finish, 1.0, rtol=1e-6)

    def test_staggered_arrivals(self):
        finish = fair_share_schedule(
            np.array([0.0, 10.0]), np.array([1e9, 1e9]), 1000.0, 8000.0
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(11.0)

    def test_early_finisher_frees_bandwidth(self):
        finish = fair_share_schedule(
            np.zeros(2), np.array([1e8, 1e9]), 1000.0, 1000.0
        )
        # Phase 1: both at 500 MB/s until small flow done at t=0.2.
        assert finish[0] == pytest.approx(0.2)
        # Large flow: 100 MB left of 1000 after phase 1 -> 0.2 + 0.9 s.
        assert finish[1] == pytest.approx(1.1)

    def test_work_conservation(self):
        """Total bytes / makespan never exceeds the aggregate cap."""
        r = np.random.default_rng(2)
        sizes = r.uniform(1e8, 1e9, 20)
        finish = fair_share_schedule(np.zeros(20), sizes, 800.0, 3000.0)
        makespan = finish.max()
        assert sizes.sum() / 1e6 / makespan <= 3000.0 * (1 + 1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fair_share_schedule(np.zeros(2), np.zeros(3), 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            fair_share_schedule(np.zeros(1), np.ones(1), 0.0, 1.0)

    def test_unsorted_arrivals_equal_sorted(self):
        """Flow order in the input arrays must not matter: the schedule of a
        shuffled instance is the same permutation of the sorted one."""
        rng = np.random.default_rng(7)
        arrivals = np.array([3.0, 0.0, 1.5, 0.5, 2.0, 1.5])
        sizes = np.array([2e8, 5e8, 1e8, 3e8, 4e8, 1e8])
        base = fair_share_schedule(arrivals, sizes, 500.0, 1200.0)
        perm = rng.permutation(arrivals.size)
        shuffled = fair_share_schedule(arrivals[perm], sizes[perm], 500.0, 1200.0)
        np.testing.assert_allclose(shuffled, base[perm], rtol=1e-12)

    def test_duplicate_arrivals_share_fairly(self):
        """Ties in arrival time admit together and split the aggregate."""
        finish = fair_share_schedule(
            np.array([1.0, 1.0, 1.0, 1.0]), np.full(4, 1e9), 1000.0, 2000.0
        )
        # 4 GB through 2 GB/s, all admitted at t=1: done at t=3 together.
        np.testing.assert_allclose(finish, 3.0, rtol=1e-6)

    def test_duplicate_arrivals_with_zero_byte_flows(self):
        finish = fair_share_schedule(
            np.array([2.0, 2.0, 2.0]), np.array([0.0, 1e9, 0.0]), 1000.0, 8000.0
        )
        assert finish[0] == finish[2] == 2.0
        assert finish[1] == pytest.approx(3.0)

    def test_zero_byte_flows_complete_at_arrival(self):
        """Empty flows used to burn solver iterations; now they are free."""
        arrivals = np.array([0.0, 1.0, 2.5])
        finish = fair_share_schedule(arrivals, np.zeros(3), 100.0, 800.0)
        np.testing.assert_allclose(finish, arrivals)

    def test_zero_byte_flow_does_not_perturb_real_flows(self):
        finish = fair_share_schedule(
            np.array([0.0, 0.5]), np.array([1e8, 0.0]), 100.0, 800.0
        )
        assert finish[0] == pytest.approx(1.0)  # 100 MB at 100 MB/s, alone
        assert finish[1] == pytest.approx(0.5)  # done the instant it arrives

    def test_many_staggered_zero_flows_stay_within_guard(self):
        n = 500
        arrivals = np.linspace(0.0, 1.0, n)
        finish = fair_share_schedule(arrivals, np.zeros(n), 100.0, 800.0)
        np.testing.assert_allclose(finish, arrivals)

    def test_completion_coincident_with_arrival(self):
        """A completion landing exactly on an arrival is one clean step."""
        finish = fair_share_schedule(
            np.array([0.0, 1.0]), np.array([1e8, 1e8]), 100.0, 100.0
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(2.0)

    def test_zero_flows_mixed_with_coincident_events(self):
        finish = fair_share_schedule(
            np.array([0.0, 1.0, 1.0]),
            np.array([1e8, 0.0, 1e8]),
            100.0,
            100.0,
        )
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(1.0)
        assert finish[2] == pytest.approx(2.0)

    def test_all_flows_empty_terminates(self):
        finish = fair_share_schedule(np.zeros(4), np.zeros(4), 10.0, 10.0)
        np.testing.assert_allclose(finish, 0.0)


class TestPFSModel:
    def test_aggregate_and_stream_bw(self):
        pfs = PFSModel(n_osts=8, ost_bw_mbps=500, stripe_count=4, client_bw_mbps=1000)
        assert pfs.aggregate_bw_mbps == 4000
        assert pfs.stream_bw_mbps == 1000  # client link binds

    def test_stripe_binds_when_narrow(self):
        pfs = PFSModel(n_osts=8, ost_bw_mbps=100, stripe_count=2, client_bw_mbps=1000)
        assert pfs.stream_bw_mbps == 200

    def test_single_write_seconds(self):
        pfs = PFSModel(metadata_latency_s=0.01)
        t = pfs.single_write_seconds(10**9)
        assert t == pytest.approx(0.01 + 1000 / pfs.stream_bw_mbps)

    def test_concurrent_saturation(self):
        pfs = PFSModel(n_osts=4, ost_bw_mbps=500, stripe_count=4, client_bw_mbps=1000)
        sizes = np.full(64, 1e9)
        finish = pfs.concurrent_write_times(sizes)
        # 64 GB through 2 GB/s aggregate = 32 s.
        assert finish.max() == pytest.approx(32.0, rel=0.01)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PFSModel(stripe_count=20, n_osts=8)
        with pytest.raises(ConfigurationError):
            PFSModel(ost_bw_mbps=-1)


class TestDevices:
    def test_catalogue(self):
        assert set(DEVICES) == {"hdd-18tb", "ssd-15tb"}
        ssd = get_device("ssd-15tb")
        assert ssd.rack_embodied_fraction == pytest.approx(0.80)
        hdd = get_device("hdd-18tb")
        assert hdd.rack_embodied_fraction == pytest.approx(0.41)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_device("tape")
