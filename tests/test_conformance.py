"""The registry-driven conformance battery.

Every experiment kind registered in :mod:`repro.runtime.registry` with a
``conformance`` grid is run through the same battery:

- record values and sha256 store keys bit-identical to the seed tree
  (``tests/fixtures/conformance_golden.json``, regenerated only on
  intentional behaviour changes via ``tools/gen_conformance_golden.py``),
- ResultStore disk round-trip, including non-finite parameters and values,
- parallel (thread-pool) results equal to serial results,
- same-seed byte-identical determinism across fresh stores,
- ``repro sweep --kind <k> --json`` CLI smoke with registry-derived flags,
- registry JSON-schema + invariant validation of the wire-format records.

A future plugin inherits all of this for free: register an
:class:`~repro.runtime.registry.ExperimentKind` with a ``conformance``
grid and the battery picks it up from ``registry.all_kinds()`` (the golden
comparison is skipped for kinds absent from the fixture; everything else
runs).  ``tests/test_registry.py`` drives a toy third-party kind through
the same helpers.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.core.experiments import Testbed
from repro.runtime import registry
from repro.runtime.engine import SweepEngine
from repro.runtime.spec import SWEEP_KINDS, SweepSpec
from repro.runtime.store import ResultStore, _jsonsafe, encode_record

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "conformance_golden.json"
GOLDEN = json.loads(FIXTURE.read_text())


# -- battery helpers (shared with tests/test_registry.py) ---------------------


def conformance_kinds() -> list:
    """Every registered kind that opted into the battery."""
    return [k for k in registry.all_kinds() if k.conformance is not None]


def run_kind(testbed, kind, store=None, executor="serial"):
    """Run a kind's conformance grid; returns (spec, keys, records)."""
    spec = SweepSpec(kind=kind.name, **kind.conformance)
    engine = SweepEngine(
        testbed=testbed, store=store if store is not None else ResultStore(),
        executor=executor,
    )
    records = engine.run(spec)
    keys = [engine._key(p) for p in spec.points()]
    return spec, keys, records


def cli_args(kind) -> list[str]:
    """``repro sweep`` argv reproducing the kind's conformance grid.

    Flags are derived from the registry's axis table, so a plugin kind's
    conformance grid is expressible on the CLI by construction.
    """
    argv = ["sweep", "--kind", kind.name, "--scale", "tiny", "--json"]
    for axis in registry.SWEEP_AXES:
        if axis.flag is None or axis.field not in kind.conformance:
            continue
        value = kind.conformance[axis.field]
        if axis.parse == "invert":
            if not value:
                argv.append(axis.flag)
        elif axis.parse == "flag":
            if value:
                argv.append(axis.flag)
        elif axis.parse in ("csv_str", "csv_int"):
            argv.extend([axis.flag, ",".join(str(v) for v in value)])
        elif axis.parse == "csv_float":
            argv.extend([axis.flag, ",".join(format(v, "g") for v in value)])
        else:
            argv.extend([axis.flag, str(value)])
    return argv


def assert_kind_conformance(testbed, kind, tmp_path, capsys) -> None:
    """The full battery for one kind (used by the toy-plugin e2e test)."""
    spec, keys, serial_records = run_kind(testbed, kind)
    assert serial_records, f"{kind.name}: conformance grid expanded to nothing"
    # parallel == serial
    _, _, thread_records = run_kind(testbed, kind, executor="thread")
    assert thread_records == serial_records
    # disk round-trip
    store = ResultStore(cache_dir=tmp_path / f"cache-{kind.name}")
    for key, rec in zip(keys, serial_records):
        store.put(key, rec)
    fresh = ResultStore(cache_dir=tmp_path / f"cache-{kind.name}")
    for key, rec in zip(keys, serial_records):
        assert fresh.get(key) == rec
    # schema + invariants over the wire format
    assert kind.check_records(registry.to_wire(serial_records)) == []
    # CLI smoke
    from repro.cli import main

    assert main(cli_args(kind)) == 0
    emitted = registry.strip_meta(json.loads(capsys.readouterr().out))
    assert len(emitted) == len(spec.points())
    assert kind.check_records(emitted) == []


_KINDS = conformance_kinds()
_IDS = [k.name for k in _KINDS]

#: One shared serial run per kind: the golden, schema, determinism, and
#: round-trip subtests all reuse it instead of re-sweeping.
_RUNS: dict[str, tuple] = {}


@pytest.fixture(scope="module")
def testbed():
    return Testbed(scale="tiny")


def shared_run(testbed, kind):
    if kind.name not in _RUNS:
        _RUNS[kind.name] = run_kind(testbed, kind)
    return _RUNS[kind.name]


# -- the battery --------------------------------------------------------------


@pytest.mark.parametrize("kind", _KINDS, ids=_IDS)
class TestConformance:
    def test_golden_identity(self, testbed, kind):
        """Record values and store keys are bit-identical to the seed tree."""
        golden = GOLDEN["kinds"].get(kind.name)
        if golden is None:
            pytest.skip(f"plugin kind {kind.name!r} has no golden fixture entry")
        spec, keys, records = shared_run(testbed, kind)
        assert _jsonsafe(spec.to_dict()) == golden["spec"]
        assert keys == golden["keys"]
        assert [_jsonsafe(encode_record(r)) for r in records] == golden["records"]

    def test_store_roundtrip(self, testbed, kind, tmp_path):
        """Every record survives the disk store, including ±inf fields."""
        _, keys, records = shared_run(testbed, kind)
        store = ResultStore(cache_dir=tmp_path)
        for key, rec in zip(keys, records):
            store.put(key, rec)
        fresh = ResultStore(cache_dir=tmp_path)
        for key, rec in zip(keys, records):
            assert fresh.get(key) == rec

    def test_parallel_equals_serial(self, testbed, kind):
        """Thread-pool execution returns the exact serial records, in order."""
        _, _, serial_records = shared_run(testbed, kind)
        _, _, thread_records = run_kind(testbed, kind, executor="thread")
        assert thread_records == serial_records

    def test_same_seed_determinism(self, testbed, kind):
        """Two fresh-store runs are byte-identical once encoded."""
        _, _, a = run_kind(testbed, kind)
        _, _, b = run_kind(testbed, kind)
        blob_a = json.dumps([_jsonsafe(encode_record(r)) for r in a], sort_keys=True)
        blob_b = json.dumps([_jsonsafe(encode_record(r)) for r in b], sort_keys=True)
        assert blob_a == blob_b

    def test_schema_and_invariants(self, testbed, kind):
        """Wire-format records pass the kind's schema and invariants."""
        _, _, records = shared_run(testbed, kind)
        assert kind.check_records(registry.to_wire(records)) == []

    def test_cli_smoke(self, testbed, kind, capsys):
        """`repro sweep --kind <k> --json` emits exactly the grid, validated."""
        from repro.cli import main

        spec, _, _ = shared_run(testbed, kind)
        assert main(cli_args(kind)) == 0
        emitted = registry.strip_meta(json.loads(capsys.readouterr().out))
        assert len(emitted) == len(spec.points())
        assert kind.check_records(emitted) == []

    def test_schema_matches_record_fields(self, testbed, kind):
        """The derived JSON schema covers the record dataclass exactly."""
        schema = kind.json_schema()
        names = {f.name for f in dataclasses.fields(kind.load_record())}
        assert set(schema["properties"]) == names | {"__record__"}
        assert set(schema["required"]) == names | {"__record__"}
        assert schema["properties"]["__record__"] == {"const": kind.record}

    def test_spec_fields_are_real(self, testbed, kind):
        """Every declared spec field exists on SweepSpec."""
        spec_fields = {f.name for f in dataclasses.fields(SweepSpec)}
        assert set(kind.spec_fields) <= spec_fields

    def test_record_registered_with_store(self, testbed, kind):
        """The kind's record class is reachable through the store's type map."""
        assert registry.record_types()[kind.record] is kind.load_record()


# -- registry/spec coherence --------------------------------------------------


class TestRegistryCoverage:
    def test_builtin_kinds_all_registered(self):
        """The SWEEP_KINDS snapshot and the golden fixture match the registry."""
        assert set(SWEEP_KINDS) <= set(registry.kind_names())
        assert set(GOLDEN["kinds"]) == set(SWEEP_KINDS)

    def test_axis_table_covers_spec(self):
        """Registry axes and SweepSpec fields are the same set (minus kind)."""
        spec_fields = {f.name for f in dataclasses.fields(SweepSpec)} - {"kind"}
        assert registry.KNOWN_SPEC_FIELDS == spec_fields

    def test_cli_axes_have_unique_flags(self):
        flags = [a.flag for a in registry.cli_axes()]
        assert len(flags) == len(set(flags))

    def test_golden_fixture_is_fresh(self, testbed):
        """The committed fixture matches what the regenerator would write."""
        doc = {"version": 1, "scale": "tiny", "kinds": {}}
        for kind in _KINDS:
            if kind.name not in GOLDEN["kinds"]:
                continue
            spec, keys, records = shared_run(testbed, kind)
            doc["kinds"][kind.name] = {
                "spec": _jsonsafe(spec.to_dict()),
                "keys": keys,
                "records": [_jsonsafe(encode_record(r)) for r in records],
            }
        assert doc == GOLDEN


class TestNonFiniteRoundTrip:
    def test_negative_infinity_value_survives_disk(self, testbed, tmp_path):
        """A -inf record field round-trips through the disk store."""
        kind = registry.get_kind("dvfs")
        _, _, records = shared_run(testbed, kind)
        weird = dataclasses.replace(records[-1], psnr_db=float("-inf"))
        store = ResultStore(cache_dir=tmp_path)
        store.put("weird-key", weird)
        fresh = ResultStore(cache_dir=tmp_path)
        got = fresh.get("weird-key")
        assert got == weird
        assert got.psnr_db == float("-inf")

    def test_infinite_mttf_parameter_keys_stably(self, testbed):
        """float('inf') as a grid parameter hashes identically across runs."""
        from repro.runtime.store import point_key, testbed_fingerprint

        fp = testbed_fingerprint(testbed)
        params = {"mttf_s": float("inf"), "dataset": "cesm"}
        assert point_key("checkpoint_point", params, fp) == point_key(
            "checkpoint_point", dict(params), fp
        )
