"""Blocking helpers: pad/split/reassemble roundtrips in every rank."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.blocks import blockify, padded_shape, unblockify


class TestPaddedShape:
    def test_exact_multiple(self):
        assert padded_shape((12, 8), (6, 4)) == (12, 8)

    def test_rounds_up(self):
        assert padded_shape((13, 9), (6, 4)) == (18, 12)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            padded_shape((4, 4), (2,))


class TestBlockifyRoundtrip:
    @pytest.mark.parametrize(
        "shape,block",
        [
            ((100,), (16,)),
            ((17,), (16,)),
            ((12, 12), (4, 4)),
            ((13, 7), (4, 4)),
            ((9, 10, 11), (4, 4, 4)),
            ((6, 6, 6), (6, 6, 6)),
            ((2, 5, 6, 7), (1, 4, 4, 4)),
        ],
    )
    def test_roundtrip(self, shape, block, rng):
        arr = rng.standard_normal(shape)
        blocks = blockify(arr, block)
        assert blocks.shape[1:] == block
        out = unblockify(blocks, shape, block)
        np.testing.assert_array_equal(out, arr)

    def test_block_count(self):
        arr = np.zeros((8, 8, 8))
        blocks = blockify(arr, (4, 4, 4))
        assert blocks.shape == (8, 4, 4, 4)

    def test_edge_padding_replicates(self):
        arr = np.array([1.0, 2.0, 3.0])
        blocks = blockify(arr, (4,))
        assert blocks.shape == (1, 4)
        assert blocks[0, 3] == 3.0  # replicated edge

    def test_blocks_are_contiguous_tiles(self):
        arr = np.arange(16, dtype=float).reshape(4, 4)
        blocks = blockify(arr, (2, 2))
        np.testing.assert_array_equal(blocks[0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(blocks[3], [[10, 11], [14, 15]])

    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(st.integers(1, 20), st.integers(1, 20)),
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
    )
    def test_roundtrip_property_2d(self, shape, block):
        arr = np.arange(np.prod(shape), dtype=float).reshape(shape)
        out = unblockify(blockify(arr, block), shape, block)
        np.testing.assert_array_equal(out, arr)
