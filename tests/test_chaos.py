"""The fault-injection (chaos) battery.

Every registered experiment kind's conformance grid is swept under
deterministically injected faults — worker exceptions, hangs, process
crashes, corrupted disk entries — and must come out exactly where an
unfaulted run would have landed:

- with retry budget, faulted records are *equal* to the clean run's
  (faults fire only on first attempts, so retries must converge);
- corrupted disk entries are quarantined, counted, and recomputed;
- a crashed process worker costs a pool rebuild, never the grid;
- a sweep killed mid-run and resumed from its cache/manifest produces
  records and store bytes identical to a straight-through run;
- with ``on_error="collect"``, exhausted points surface as structured
  :class:`FailedPoint`\\ s in their grid positions — completed work is
  never lost.

Everything here is seed-driven: the same faults, in the same places, on
every run and platform.  Marked ``chaos`` so CI can run it as its own job
(``pytest -m chaos``); it runs in the default suite too.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import Testbed
from repro.errors import ConfigurationError
from repro.runtime import registry
from repro.runtime.engine import SweepEngine
from repro.runtime.faults import (
    FailedPoint,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    SweepManifest,
    error_chain,
    sweep_id,
)
from repro.runtime.spec import SweepSpec
from repro.runtime.store import ResultStore
from repro.runtime.store import testbed_fingerprint as _fingerprint

pytestmark = pytest.mark.chaos

_KINDS = [k for k in registry.all_kinds() if k.conformance is not None]
_IDS = [k.name for k in _KINDS]

#: A two-point grid for the targeted (crash/hang/resume) tests: big enough
#: to show isolation, small enough to keep process pools cheap.
TINY_SPEC = dict(kind="quality", datasets=("cesm",), codecs=("szx", "sz3"),
                 bounds=(1e-3,))


@pytest.fixture(scope="module")
def tiny_testbed():
    return Testbed(scale="tiny")


def _clean_run(testbed, spec):
    return SweepEngine(testbed=testbed, store=ResultStore()).run(spec)


# -- policy / injector units --------------------------------------------------


class TestRetryPolicy:
    def test_defaults_are_the_seed_behaviour(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1 and policy.timeout_s is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_jitter=1.5)

    def test_configuration_errors_not_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.retryable(ConfigurationError("bad axis"))
        assert policy.retryable(RuntimeError("transient"))

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                             backoff_factor=2.0, backoff_jitter=0.5,
                             backoff_max_s=0.3, seed=42)
        delays = [policy.backoff_s("k" * 64, n) for n in range(2, 6)]
        again = [policy.backoff_s("k" * 64, n) for n in range(2, 6)]
        assert delays == again  # pure function of (seed, key, attempt)
        assert all(0 < d <= 0.3 for d in delays)
        # different key, different jitter
        assert delays != [policy.backoff_s("x" * 64, n) for n in range(2, 6)]

    def test_backoff_zero_base_and_first_attempt(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.5)
        assert policy.backoff_s("k", 1) == 0.0
        assert RetryPolicy(max_attempts=3).backoff_s("k", 4) == 0.0


class TestFaultInjector:
    def test_plan_deterministic(self):
        inj = FaultInjector(seed=9, error_rate=0.3, hang_rate=0.3, crash_rate=0.3)
        plans = [inj.plan(f"key{i}", 1) for i in range(50)]
        assert plans == [inj.plan(f"key{i}", 1) for i in range(50)]
        assert {"error", "hang", "crash"} <= set(plans)  # all fire somewhere

    def test_faults_stop_after_max_attempt(self):
        inj = FaultInjector(seed=9, error_rate=1.0)
        assert inj.plan("k", 1) == "error"
        assert inj.plan("k", 2) == "ok"  # retries must converge

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(error_rate=0.6, hang_rate=0.6)

    def test_apply_error_raises(self):
        with pytest.raises(InjectedFault):
            FaultInjector(seed=0, error_rate=1.0).apply("k", 1)

    def test_crash_downgraded_outside_process_worker(self):
        with pytest.raises(InjectedFault):
            FaultInjector(seed=0, crash_rate=1.0).apply("k", 1,
                                                        in_process_worker=False)


class TestFailureStructures:
    def test_error_chain_walks_causes(self):
        try:
            try:
                raise ValueError("inner")
            except ValueError as inner:
                raise RuntimeError("outer") from inner
        except RuntimeError as exc:
            chain = error_chain(exc)
        assert chain == ("RuntimeError: outer", "ValueError: inner")

    def test_failed_point_wire_format(self):
        failed = FailedPoint(op="roundtrip", params=(("codec", "szx"),),
                             key="f" * 64, reason="error",
                             error_chain=("InjectedFault: boom",), attempts=3)
        wire = failed.to_wire()
        assert wire["__failed__"] is True
        assert wire["params"] == {"codec": "szx"}
        json.dumps(wire)  # JSON-safe by construction

    def test_sweep_id_sensitive_to_spec_and_testbed(self, tiny_testbed):
        spec_a = SweepSpec(**TINY_SPEC)
        spec_b = SweepSpec(kind="quality", datasets=("cesm",),
                           codecs=("szx",), bounds=(1e-3,))
        fp = _fingerprint(tiny_testbed)
        assert sweep_id(spec_a, fp) == sweep_id(SweepSpec(**TINY_SPEC), fp)
        assert sweep_id(spec_a, fp) != sweep_id(spec_b, fp)
        assert sweep_id(spec_a, fp) != sweep_id(
            spec_a, _fingerprint(Testbed(scale="test"))
        )


# -- the per-kind battery -----------------------------------------------------


@pytest.mark.parametrize("kind", _KINDS, ids=_IDS)
def test_injected_errors_converge_to_clean_records(tiny_testbed, kind):
    """Worker exceptions + retry budget must reproduce the clean run."""
    spec = SweepSpec(kind=kind.name, **kind.conformance)
    clean = _clean_run(tiny_testbed, spec)
    for executor in ("serial", "thread"):
        engine = SweepEngine(
            testbed=tiny_testbed, store=ResultStore(), executor=executor,
            retry_policy=RetryPolicy(max_attempts=3),
            fault_injector=FaultInjector(seed=13, error_rate=0.5),
        )
        assert engine.run(spec) == clean, f"{kind.name}/{executor}"
        assert engine.stats.failures == 0


@pytest.mark.parametrize("kind", _KINDS, ids=_IDS)
def test_corrupted_entries_quarantined_and_recomputed(tiny_testbed, kind,
                                                      tmp_path):
    """Every disk entry garbled after write: a cold store must quarantine
    each one, recompute, and land on the clean records."""
    spec = SweepSpec(kind=kind.name, **kind.conformance)
    clean = _clean_run(tiny_testbed, spec)
    cache = tmp_path / "cache"
    SweepEngine(
        testbed=tiny_testbed, store=ResultStore(cache_dir=cache),
        fault_injector=FaultInjector(seed=17, corrupt_rate=1.0),
    ).run(spec)
    cold = ResultStore(cache_dir=cache)
    engine = SweepEngine(testbed=tiny_testbed, store=cold)
    assert engine.run(spec) == clean
    n_unique = len({engine._key(p) for p in spec.points()})
    assert cold.stats["corrupt_quarantined"] == n_unique
    assert len(list(cache.glob("*.corrupt"))) == n_unique
    # the recomputed entries re-read cleanly
    reread = ResultStore(cache_dir=cache)
    assert SweepEngine(testbed=tiny_testbed, store=reread).run(spec) == clean
    assert reread.stats["corrupt_quarantined"] == 0


# -- targeted fault paths -----------------------------------------------------


def test_process_crash_rebuilds_pool_and_converges(tiny_testbed):
    """os._exit in a worker (BrokenProcessPool) must cost a rebuild, not
    the grid — and retries converge to the clean records."""
    spec = SweepSpec(**TINY_SPEC)
    clean = _clean_run(tiny_testbed, spec)
    engine = SweepEngine(
        testbed=tiny_testbed, store=ResultStore(), executor="process",
        max_workers=2, retry_policy=RetryPolicy(max_attempts=3),
        fault_injector=FaultInjector(seed=3, crash_rate=1.0),
    )
    assert engine.run(spec) == clean
    assert engine.stats.pool_rebuilds >= 1
    assert engine.stats.failures == 0


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_hang_trips_timeout_then_retry_converges(tiny_testbed, executor):
    spec = SweepSpec(**TINY_SPEC)
    clean = _clean_run(tiny_testbed, spec)
    engine = SweepEngine(
        testbed=tiny_testbed, store=ResultStore(), executor=executor,
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, timeout_s=0.5),
        fault_injector=FaultInjector(seed=5, hang_rate=1.0, hang_s=2.0),
    )
    assert engine.run(spec) == clean
    assert engine.stats.timeouts >= 1
    assert engine.stats.failures == 0


def test_collect_surfaces_structured_failures(tiny_testbed):
    """No retry budget + certain faults: every position is a FailedPoint
    carrying the op, params, key, reason, and error chain."""
    spec = SweepSpec(**TINY_SPEC)
    engine = SweepEngine(
        testbed=tiny_testbed, store=ResultStore(), on_error="collect",
        fault_injector=FaultInjector(seed=7, error_rate=1.0),
    )
    results = engine.run(spec)
    assert all(isinstance(r, FailedPoint) for r in results)
    assert engine.stats.failures == len(results)
    points = spec.points()
    for failed, point in zip(results, points):
        assert failed.op == point.op
        assert failed.as_params() == point.as_kwargs()
        assert failed.reason == "error"
        assert failed.attempts == 1
        assert failed.error_chain and "InjectedFault" in failed.error_chain[0]


def test_collect_preserves_completed_work(tiny_testbed):
    """Partial faults under collect: good points keep their records, and a
    second run recomputes only the failed ones (failures never cached)."""
    spec = SweepSpec(kind="quality", datasets=("cesm",),
                     codecs=("szx", "sz3"), bounds=(1e-2, 1e-3))
    clean = _clean_run(tiny_testbed, spec)
    store = ResultStore()
    injector = FaultInjector(seed=13, error_rate=0.5)
    engine = SweepEngine(testbed=tiny_testbed, store=store,
                         on_error="collect", fault_injector=injector)
    results = engine.run(spec)
    failed = [i for i, r in enumerate(results) if isinstance(r, FailedPoint)]
    assert failed and len(failed) < len(results)  # seed 13: a genuine mix
    for i, r in enumerate(results):
        if i not in failed:
            assert r == clean[i]
    # rerun on the same warm store, no injector: only failures recompute
    rerun = SweepEngine(testbed=tiny_testbed, store=store)
    assert rerun.run(spec) == clean
    assert rerun.stats.computed == len(failed)


def test_raise_mode_reraises_after_exhaustion(tiny_testbed):
    engine = SweepEngine(
        testbed=tiny_testbed, store=ResultStore(),
        fault_injector=FaultInjector(seed=7, error_rate=1.0, max_attempt=99),
        retry_policy=RetryPolicy(max_attempts=2),
    )
    with pytest.raises(InjectedFault):
        engine.run(SweepSpec(**TINY_SPEC))
    assert engine.stats.retries == 1  # one retry happened before the raise


# -- crash-safe resume --------------------------------------------------------


class _Killed(Exception):
    pass


def _run_until_killed(testbed, spec, cache_dir, n_points):
    """Start a sweep and kill it (via the event stream) after n records."""
    seen = [0]

    def bomb(event):
        if event.kind == "point":
            seen[0] += 1
            if seen[0] >= n_points:
                raise _Killed()

    engine = SweepEngine(testbed=testbed,
                         store=ResultStore(cache_dir=cache_dir),
                         on_event=bomb)
    with pytest.raises(_Killed):
        engine.run(spec)


def test_killed_sweep_resumes_bit_identical(tiny_testbed, tmp_path):
    spec = SweepSpec(kind="quality", datasets=("cesm",),
                     codecs=("szx", "sz3"), bounds=(1e-2, 1e-3))
    clean = _clean_run(tiny_testbed, spec)
    killed_dir, straight_dir = tmp_path / "killed", tmp_path / "straight"
    _run_until_killed(tiny_testbed, spec, killed_dir, n_points=2)

    sid = sweep_id(spec, _fingerprint(tiny_testbed))
    progress = SweepManifest.progress(killed_dir, sid)
    assert progress == (2, 4)  # the manifest survived the kill

    resumed = SweepEngine(testbed=tiny_testbed,
                          store=ResultStore(cache_dir=killed_dir))
    records = resumed.run(spec)
    assert records == clean
    assert resumed.stats.cache_hits == 2 and resumed.stats.computed == 2
    assert SweepManifest.progress(killed_dir, sid) == (4, 4)

    # store bytes identical to a straight-through run
    SweepEngine(testbed=tiny_testbed,
                store=ResultStore(cache_dir=straight_dir)).run(spec)
    killed_files = sorted(p.name for p in killed_dir.glob("*.json"))
    straight_files = sorted(p.name for p in straight_dir.glob("*.json"))
    assert killed_files == straight_files
    for name in killed_files:
        assert (killed_dir / name).read_bytes() == (
            straight_dir / name
        ).read_bytes()


def test_manifest_ignores_foreign_and_torn_lines(tiny_testbed, tmp_path):
    spec = SweepSpec(**TINY_SPEC)
    sid = sweep_id(spec, _fingerprint(tiny_testbed))
    # a torn trailing line (killed writer) must be skipped, not trusted
    manifest = SweepManifest(tmp_path, sid, total=2).open()
    manifest.record("a" * 64)
    manifest.close()
    with open(manifest.path, "a") as fh:
        fh.write('{"key": "b')  # torn mid-write
    assert SweepManifest.progress(tmp_path, sid) == (1, 2)
    # a manifest for a different sweep id is foreign: no progress
    assert SweepManifest.progress(tmp_path, "0" * 64) is None


def test_cli_resume_reports_progress(tiny_testbed, tmp_path, capsys):
    from repro.cli import main

    cache = str(tmp_path / "cache")
    argv = ["sweep", "--kind", "quality", "--datasets", "cesm",
            "--codecs", "szx,sz3", "--bounds", "1e-3", "--scale", "tiny",
            "--cache-dir", cache]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--resume"]) == 0
    err = capsys.readouterr().err
    assert "resuming: 2/2" in err


def test_cli_resume_requires_cache_dir(capsys):
    from repro.cli import main

    assert main(["sweep", "--kind", "quality", "--resume"]) == 2
    assert "--resume needs --cache-dir" in capsys.readouterr().err
