"""ZFP transform machinery: exact lifting inverse, orderings, negabinary."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.transform import (
    forward_lift,
    forward_transform,
    int_to_negabinary,
    inverse_lift,
    inverse_transform,
    negabinary_to_int,
    sequency_order,
)


class TestLifting:
    # ZFP's lifted transform drops low bits in its >>1 steps, so the
    # inverse recovers inputs only to within a few integer units; the codec
    # budgets for this (guard bits + raw escape).  These tests pin the
    # deviation, not exactness.
    def test_forward_inverse_near_exact_1d(self, rng):
        v = rng.integers(-(2**40), 2**40, size=(100, 4)).astype(np.int64)
        out = inverse_lift(forward_lift(v, 1), 1)
        assert np.abs(out - v).max() <= 4

    def test_full_transform_roundtrip_3d(self, rng):
        v = rng.integers(-(2**40), 2**40, size=(50, 4, 4, 4)).astype(np.int64)
        out = inverse_transform(forward_transform(v))
        assert np.abs(out - v).max() <= 24  # ~8 units/dimension of lift slack

    def test_transform_decorrelates_smooth_ramp(self):
        ramp = np.arange(4, dtype=np.int64) * 1000
        block = (ramp[:, None, None] + ramp[None, :, None] + ramp[None, None, :])[None]
        coeffs = forward_transform(block)
        # DC coefficient should dominate smooth input.
        flat = np.abs(coeffs.reshape(-1))
        assert flat.argmax() == 0

    def test_headroom_within_int64(self, rng):
        v = rng.integers(-(2**44), 2**44, size=(20, 4, 4, 4)).astype(np.int64)
        coeffs = forward_transform(v)
        assert np.abs(coeffs).max() < 2**52

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-(2**40), 2**40), min_size=4, max_size=4))
    def test_lift_roundtrip_property(self, vals):
        v = np.array(vals, dtype=np.int64).reshape(1, 4)
        out = inverse_lift(forward_lift(v, 1), 1)
        assert np.abs(out - v).max() <= 4


class TestSequency:
    def test_permutation_valid(self):
        for ndim in (1, 2, 3):
            order = sequency_order(ndim)
            assert sorted(order.tolist()) == list(range(4**ndim))

    def test_dc_first(self):
        for ndim in (1, 2, 3):
            assert sequency_order(ndim)[0] == 0

    def test_3d_last_is_highest_frequency(self):
        order = sequency_order(3)
        assert order[-1] == 63  # (3,3,3) has maximal total sequency


class TestNegabinary:
    def test_roundtrip_range(self):
        x = np.arange(-1000, 1000, dtype=np.int64)
        np.testing.assert_array_equal(negabinary_to_int(int_to_negabinary(x)), x)

    def test_zero_maps_to_zero(self):
        assert int_to_negabinary(np.array([0], dtype=np.int64))[0] == 0

    def test_small_magnitudes_have_few_bits(self):
        """Negabinary of small ints keeps high bits clear (codability)."""
        x = np.arange(-8, 9, dtype=np.int64)
        nb = int_to_negabinary(x)
        assert int(nb.max()) < 2**6

    @settings(max_examples=50, deadline=None)
    @given(st.integers(-(2**60), 2**60))
    def test_roundtrip_property(self, v):
        x = np.array([v], dtype=np.int64)
        np.testing.assert_array_equal(negabinary_to_int(int_to_negabinary(x)), x)
