"""The 25-run/95 %-CI measurement protocol (paper Section IV-C)."""

import numpy as np
import pytest

from repro.metrics.stats import (
    AdaptiveRepeater,
    MeasurementSummary,
    mean_ci,
    t_critical_95,
)


class TestMeanCI:
    def test_single_sample(self):
        mean, hw = mean_ci(np.array([5.0]))
        assert mean == 5.0 and hw == 0.0

    def test_symmetric_pair(self):
        mean, hw = mean_ci(np.array([9.0, 11.0]))
        assert mean == 10.0
        # sem = 1/sqrt(2) * sqrt(2) = 1; t(df=1) = 12.706
        assert hw == pytest.approx(12.706 * 1.0, rel=1e-6)

    def test_zero_variance(self):
        mean, hw = mean_ci(np.full(10, 3.0))
        assert mean == 3.0 and hw == 0.0

    def test_only_95_supported(self):
        with pytest.raises(ValueError):
            mean_ci(np.ones(3), confidence=0.99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci(np.array([]))

    def test_t_table_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for df in [1, 2, 5, 10, 29]:
            assert t_critical_95(df) == pytest.approx(
                scipy_stats.t.ppf(0.975, df), abs=2e-3
            )

    def test_t_large_df_normal(self):
        assert t_critical_95(1000) == pytest.approx(1.96, abs=1e-3)


class TestAdaptiveRepeater:
    def test_stops_early_on_stable_measurements(self):
        calls = []

        def measure():
            calls.append(1)
            return 10.0

        summary = AdaptiveRepeater(max_runs=25).run(measure)
        assert summary.n_runs == 3  # min_runs with zero variance
        assert summary.mean == 10.0

    def test_caps_at_max_runs_for_noisy_measurements(self):
        r = np.random.default_rng(0)
        summary = AdaptiveRepeater(max_runs=25, rel_tolerance=1e-6).run(
            lambda: float(r.uniform(0, 100))
        )
        assert summary.n_runs == 25

    def test_summary_fields(self):
        vals = iter([1.0, 2.0, 3.0, 2.0, 2.0])
        summary = AdaptiveRepeater(max_runs=5, rel_tolerance=0.0).run(
            lambda: next(vals)
        )
        assert summary.n_runs == 5
        assert summary.samples == (1.0, 2.0, 3.0, 2.0, 2.0)
        assert summary.mean == pytest.approx(2.0)
        assert summary.rel_ci > 0

    def test_paper_protocol_defaults(self):
        rep = AdaptiveRepeater()
        assert rep.max_runs == 25

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AdaptiveRepeater(max_runs=0)
        with pytest.raises(ValueError):
            AdaptiveRepeater(max_runs=5, min_runs=9)
        with pytest.raises(ValueError):
            AdaptiveRepeater(rel_tolerance=-0.05)

    def test_negative_mean_rel_ci_positive(self):
        """rel_ci is a magnitude: negative-mean samples (energy *savings*,
        time deltas) must not flip its sign."""
        s = MeasurementSummary(-10.0, 0.5, 3, (-10.5, -10.0, -9.5))
        assert s.rel_ci == pytest.approx(0.05)
        assert s.rel_ci > 0

    def test_zero_mean_rel_ci_zero(self):
        assert MeasurementSummary(0.0, 0.5, 3, (-0.5, 0.0, 0.5)).rel_ci == 0.0

    def test_negative_mean_measurements_converge(self):
        """The stop rule and the reported rel_ci agree for negative means."""
        vals = iter([-10.0, -10.01, -9.99, -10.0, -10.0] + [-10.0] * 20)
        summary = AdaptiveRepeater(max_runs=25, rel_tolerance=0.05).run(
            lambda: next(vals)
        )
        assert summary.n_runs < 25
        assert 0 <= summary.rel_ci <= 0.05

    def test_summary_is_frozen(self):
        s = MeasurementSummary(1.0, 0.1, 3, (1.0, 1.0, 1.0))
        with pytest.raises(AttributeError):
            s.mean = 2.0
