"""DVFS subsystem: power/runtime scaling, sweep kind, advisor, seed identity.

The identity tests pin representative pre-DVFS records *byte for byte*
against golden values (and content-addressed store keys) computed from the
seed tree, so the frequency axis provably costs existing users nothing:
every default-frequency path — and every memoized cache entry — is
unchanged.
"""

import pytest

from repro.core.advisor import DvfsAdvisor, pareto_frontier
from repro.core.experiments import DvfsPoint, Testbed
from repro.energy.cpus import get_cpu
from repro.energy.measurement import EnergyMeter
from repro.energy.power import PowerModel
from repro.energy.throughput import ThroughputModel
from repro.errors import ConfigurationError
from repro.runtime.spec import SweepSpec
from repro.runtime.store import decode_record, encode_record, point_key
from repro.runtime.store import testbed_fingerprint as _fingerprint


@pytest.fixture(scope="module")
def tb():
    return Testbed(scale="tiny")


CPU = get_cpu("plat8160")


class TestPowerModelFreq:
    def test_identity_at_nominal(self):
        pm = PowerModel(CPU)
        pinned = PowerModel(CPU, freq_ghz=CPU.fnom_ghz)
        for cores in (0, 1, 24, 48):
            assert pinned.package_power(0, cores) == pm.package_power(0, cores)

    def test_idle_power_frequency_insensitive(self):
        lo = PowerModel(CPU, freq_ghz=CPU.fmin_ghz)
        hi = PowerModel(CPU, freq_ghz=CPU.fmax_ghz)
        assert lo.package_power(0, 0) == hi.package_power(0, 0) == CPU.idle_w
        assert lo.node_idle_power() == CPU.idle_w * CPU.sockets

    def test_dynamic_scales_with_gamma(self):
        pm = PowerModel(CPU)
        hi = PowerModel(CPU, freq_ghz=CPU.fmax_ghz)
        dyn_nom = pm.package_power(0, 48) - CPU.idle_w
        dyn_hi = hi.package_power(0, 48) - CPU.idle_w
        assert dyn_hi / dyn_nom == pytest.approx(
            (CPU.fmax_ghz / CPU.fnom_ghz) ** CPU.vf_gamma
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(CPU, freq_ghz=0.1)
        with pytest.raises(ValueError):
            PowerModel(CPU).freq_scale(99.0)

    def test_per_call_override(self):
        pm = PowerModel(CPU)
        assert pm.package_power(0, 48, freq_ghz=CPU.fmax_ghz) > pm.package_power(0, 48)

    def test_cpu_spec_envelope_validation(self):
        with pytest.raises(ValueError):
            get_cpu("plat8160").validate_freq(0.5)
        ladder = CPU.freq_ladder()
        assert ladder[0] == CPU.fmin_ghz and ladder[-1] == CPU.fmax_ghz
        assert CPU.fnom_ghz in ladder and len(ladder) == 5
        assert list(ladder) == sorted(ladder)


class TestThroughputFreq:
    def test_factor_is_one_at_nominal(self):
        model = ThroughputModel()
        assert model.freq_factor("sz3", None, CPU) == 1.0
        assert model.freq_factor("sz3", CPU.fnom_ghz, CPU) == 1.0

    def test_roofline_split(self):
        model = ThroughputModel()
        # At half the nominal clock the compute-bound fraction doubles.
        f = CPU.fnom_ghz / 2
        m = model.mem_bound_frac("sz3")
        assert model.freq_factor("sz3", f, CPU) == pytest.approx(m + (1 - m) * 2)
        # A memory-bound codec moves less than a compute-bound one.
        assert model.freq_factor("szx", f, CPU) < model.freq_factor("sz3", f, CPU)

    def test_runtime_monotone_in_freq(self):
        model = ThroughputModel()
        times = [
            model.runtime("sz3", "compress", 10**8, 1e-3, CPU, freq_ghz=f)
            for f in CPU.freq_ladder()
        ]
        assert times == sorted(times, reverse=True)

    def test_unknown_codec_mem_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel().mem_bound_frac("nope")


class TestSeedIdentity:
    """f == fnom (and no-frequency) paths are byte-identical to the seed."""

    def test_serial_point_golden(self, tb):
        sp = tb.serial_point("cesm", "sz3", 1e-3, "plat8160", 1)
        assert (
            sp.compress_time_s,
            sp.decompress_time_s,
            sp.compress_energy_j,
            sp.decompress_energy_j,
        ) == (4.298304, 2.577825882352941, 534.8371070000001, 320.75835900000004)

    def test_io_point_golden(self, tb):
        io = tb.io_point("cesm", "szx", 1e-3, "hdf5", "max9480")
        assert (
            io.bytes_written,
            io.write_time_s,
            io.write_energy_j,
            io.compress_time_s,
            io.compress_energy_j,
        ) == (
            203287500,
            0.2777389727870813,
            72.785199,
            0.29462999999999995,
            78.720893,
        )

    def test_pipeline_point_golden(self, tb):
        pp = tb.pipeline_point(
            "s3d", "sz2", 1e-3, "hdf5", "plat8160", n_chunks=4, overlap=True
        )
        assert (
            pp.compress_time_s,
            pp.write_time_s,
            pp.total_time_s,
            pp.compress_energy_j,
            pp.write_energy_j,
        ) == (
            332.1,
            2.4573432013636363,
            333.2739062855743,
            41323.13658,
            140.2610829999976,
        )

    def test_roundtrip_golden(self, tb):
        rt = tb.roundtrip("hacc", "zfp", 1e-2)
        assert (rt.ratio, rt.psnr_db, rt.compressed_nbytes) == (
            2.6675350048844026,
            58.79835163919236,
            6142,
        )

    def test_store_keys_unchanged(self, tb):
        """Content-addressed keys of every pre-DVFS kind match the seed."""
        fp = _fingerprint(tb)
        golden = {
            (
                "serial_point",
                ("cesm", "sz3", 1e-3, "plat8160", 1),
            ): "3353030b6505f3b83ba547180be98cccbd8a80ed6d589cdb7a1d2288b0c0d72e",
            (
                "io_point",
                ("cesm", "szx", 1e-3, "hdf5", "max9480"),
            ): "f4de6631f22e26b9822d103983975b942ffca80317735f3069d0158dbf3e677f",
            (
                "io_point",
                ("nyx", None, None, "netcdf", "plat8260m"),
            ): "19dc9121e1462a466c38219e1973ec8f6adc120a33f68f63c712587d585f8271",
            (
                "roundtrip",
                ("hacc", "zfp", 1e-2),
            ): "fa0f553089de9b3a42260e08c990cbc2a05e994140222505353faf69b078b2d4",
        }
        params = {
            "serial_point": ("dataset", "codec", "rel_bound", "cpu_name", "threads"),
            "io_point": ("dataset", "codec", "rel_bound", "io_library", "cpu_name"),
            "roundtrip": ("dataset", "codec", "rel_bound"),
        }
        for (op, values), expected in golden.items():
            kwargs = dict(zip(params[op], values))
            assert point_key(op, kwargs, fp) == expected, (op, kwargs)

    def test_pipeline_store_key_unchanged(self, tb):
        fp = _fingerprint(tb)
        kwargs = dict(
            dataset="s3d",
            codec="sz2",
            rel_bound=1e-3,
            io_library="hdf5",
            cpu_name="plat8160",
            n_chunks=4,
            overlap=True,
        )
        assert (
            point_key("pipeline_point", kwargs, fp)
            == "8b6a9bf91b82bbf4422541beea688a28117be9b813c188b63a43bb3c1848f39c"
        )

    def test_dvfs_point_at_fnom_equals_io_point(self, tb):
        io = tb.io_point("cesm", "sz3", 1e-3, "hdf5", "plat8160")
        dv = tb.dvfs_point("cesm", "sz3", 1e-3, CPU.fnom_ghz, "hdf5", "plat8160")
        assert dv.compress_time_s == io.compress_time_s
        assert dv.write_time_s == io.write_time_s
        assert dv.compress_energy_j == io.compress_energy_j
        assert dv.write_energy_j == io.write_energy_j
        assert dv.bytes_written == io.bytes_written

    def test_meter_at_fnom_identical(self):
        base = EnergyMeter(CPU).measure_compute(0.5, 8)
        pinned = EnergyMeter(CPU, freq_ghz=CPU.fnom_ghz).measure_compute(0.5, 8)
        assert pinned.energy_j == base.energy_j
        assert pinned.zone_energies_j == base.zone_energies_j


class TestDvfsPoint:
    def test_baseline_has_no_codec_cost(self, tb):
        p = tb.dvfs_point("cesm", None, None, 1.0, "hdf5", "plat8160")
        assert p.compress_time_s == 0.0 and p.compress_energy_j == 0.0
        assert p.ratio == 1.0 and p.psnr_db == float("inf")

    def test_rel_bound_required_with_codec(self, tb):
        with pytest.raises(ConfigurationError):
            tb.dvfs_point("cesm", "sz3", None, 1.0, "hdf5", "plat8160")

    def test_freq_validated(self, tb):
        with pytest.raises(ValueError):
            tb.dvfs_point("cesm", "sz3", 1e-3, 0.1, "hdf5", "plat8160")

    def test_transfer_time_frequency_insensitive(self, tb):
        lo = tb.dvfs_point("cesm", None, None, CPU.fmin_ghz, "hdf5", "plat8160")
        hi = tb.dvfs_point("cesm", None, None, CPU.fmax_ghz, "hdf5", "plat8160")
        assert lo.write_time_s == hi.write_time_s
        # ... but the write *power* is not: the serialize phase runs hotter.
        assert hi.write_energy_j > lo.write_energy_j

    def test_record_roundtrips_through_store(self, tb):
        p = tb.dvfs_point("cesm", "sz3", 1e-3, CPU.fmax_ghz, "hdf5", "plat8160")
        assert decode_record(encode_record(p)) == p

    def test_compute_bound_codec_slows_at_low_freq(self, tb):
        lo = tb.dvfs_point("cesm", "sz3", 1e-3, CPU.fmin_ghz, "hdf5", "plat8160")
        hi = tb.dvfs_point("cesm", "sz3", 1e-3, CPU.fmax_ghz, "hdf5", "plat8160")
        assert lo.compress_time_s > hi.compress_time_s
        assert lo.ratio == hi.ratio  # compression output is clock-independent


class TestDvfsSweep:
    def test_spec_expansion_and_driver(self, tb):
        pts = tb.run_dvfs_sweep(
            datasets=("cesm",),
            codecs=("szx",),
            bounds=(1e-3,),
            freqs=(1.0, 2.1),
            cpu_name="plat8160",
        )
        assert all(isinstance(p, DvfsPoint) for p in pts)
        # (baseline + 1 codec point) x 2 freqs
        assert len(pts) == 4
        assert {p.freq_ghz for p in pts} == {1.0, 2.1}
        assert {p.codec for p in pts} == {None, "szx"}

    def test_default_ladder_used_when_freqs_empty(self):
        spec = SweepSpec(
            kind="dvfs",
            datasets=("cesm",),
            codecs=("szx",),
            bounds=(1e-3,),
            cpus=("plat8160",),
            io_libraries=("hdf5",),
        )
        pts = spec.points()
        freqs = {dict(p.kwargs)["freq_ghz"] for p in pts}
        assert freqs == set(CPU.freq_ladder())

    def test_memoized_in_store(self, tb):
        kwargs = dict(
            datasets=("cesm",), codecs=("szx",), bounds=(1e-3,), freqs=(1.55,),
            cpu_name="plat8160",
        )
        first = tb.run_dvfs_sweep(**kwargs)
        computed_before = tb.engine.stats.computed
        second = tb.run_dvfs_sweep(**kwargs)
        assert tb.engine.stats.computed == computed_before  # all cache hits
        assert first == second

    def test_spec_json_roundtrip(self):
        spec = SweepSpec(kind="dvfs", freqs=(1.0, 2.0))
        assert SweepSpec.from_json(spec.to_json()) == spec


class TestParetoFrontier:
    def test_dominated_points_removed(self, tb):
        pts = tb.run_dvfs_sweep(
            datasets=("cesm",), codecs=("sz3", "szx"), bounds=(1e-3,),
            cpu_name="plat8160",
        )
        frontier = pareto_frontier(pts)
        assert len(frontier) >= 2
        # Sorted fastest-first; energy strictly decreases along the frontier.
        times = [p.total_time_s for p in frontier]
        energies = [p.total_energy_j for p in frontier]
        assert times == sorted(times)
        assert energies == sorted(energies, reverse=True)
        # No frontier point is dominated by any grid point.
        for fp_ in frontier:
            for p in pts:
                assert not (
                    p.total_time_s < fp_.total_time_s - 1e-12
                    and p.total_energy_j < fp_.total_energy_j - 1e-12
                )


class TestDvfsAdvisor:
    @pytest.fixture(scope="class")
    def advice(self):
        tb = Testbed(scale="tiny")
        return DvfsAdvisor(tb, cpu_name="plat8160").advise(
            "cesm", codecs=("sz3", "szx"), bounds=(1e-3,)
        )

    def test_non_degenerate_tradeoff(self, advice):
        """Acceptance: frontier >= 2 points; energy-optimal f != fnom for a
        compute-bound codec."""
        assert len(advice.pareto) >= 2
        tb = Testbed(scale="tiny")
        family = [
            tb.dvfs_point("cesm", "sz3", 1e-3, f, "hdf5", "plat8160")
            for f in CPU.freq_ladder()
        ]
        best = min(family, key=lambda p: p.total_energy_j)
        assert best.freq_ghz != CPU.fnom_ghz

    def test_advice_fields_consistent(self, advice):
        assert advice.compress == (advice.codec is not None)
        assert advice.energy_j <= advice.baseline_energy_j
        assert advice.energy_saving_j == pytest.approx(
            advice.baseline_energy_j - advice.energy_j
        )
        assert advice.prefer_race_to_idle == (
            advice.race_to_idle_energy_j <= advice.slow_and_steady_energy_j
        )
        assert advice.chosen in advice.pareto or advice.chosen.total_energy_j == min(
            p.total_energy_j for p in advice.pareto
        )

    def test_quality_floor_filters(self):
        tb = Testbed(scale="tiny")
        advice = DvfsAdvisor(tb, cpu_name="plat8160").advise(
            "cesm", psnr_min_db=1e9, codecs=("sz3",), bounds=(1e-1,)
        )
        # Nothing lossy can meet an absurd floor: advise writing uncompressed.
        assert not advice.compress and advice.codec is None

    def test_rationale_mentions_choice(self, advice):
        assert "GHz" in advice.rationale and "Pareto" in advice.rationale

    def test_time_objective_picks_fastest(self):
        tb = Testbed(scale="tiny")
        advisor = DvfsAdvisor(tb, cpu_name="plat8160")
        by_time = advisor.advise(
            "cesm", codecs=("sz3", "szx"), bounds=(1e-3,), objective="time"
        )
        by_energy = advisor.advise(
            "cesm", codecs=("sz3", "szx"), bounds=(1e-3,), objective="energy"
        )
        assert by_time.time_s <= by_energy.time_s
        assert by_energy.energy_j <= by_time.energy_j
        assert by_time.objective == "time"

    def test_ratio_objective_prefers_codec(self):
        tb = Testbed(scale="tiny")
        advice = DvfsAdvisor(tb, cpu_name="plat8160").advise(
            "cesm", codecs=("sz3",), bounds=(1e-3,), objective="ratio"
        )
        assert advice.compress and advice.codec == "sz3"

    def test_invalid_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsAdvisor(Testbed(scale="tiny")).advise("cesm", objective="edp")

    def test_strict_time_filters_slow_codec_points(self):
        tb = Testbed(scale="tiny")
        advice = DvfsAdvisor(tb, cpu_name="plat8160").advise(
            "cesm",
            codecs=("sz3", "szx"),
            bounds=(1e-3,),
            require_time_benefit=True,
        )
        if advice.compress:  # any surviving codec point beats the baseline
            assert advice.time_s <= advice.baseline_time_s
            assert advice.energy_j <= advice.baseline_energy_j

    def test_strict_time_does_not_truncate_policy_family(self):
        """The race/steady window is defined by the chosen config's slowest
        evaluated clock; the strict-time filter must not redefine it by
        dropping slow-clock family members."""
        tb = Testbed(scale="tiny")
        advisor = DvfsAdvisor(tb, cpu_name="plat8160", io_library="netcdf")
        kwargs = dict(codecs=("szx",), bounds=(1e-3,), freqs=(1.0, 2.1, 3.7))
        loose = advisor.advise("hacc", **kwargs)
        strict = advisor.advise("hacc", require_time_benefit=True, **kwargs)
        if strict.codec == loose.codec and strict.rel_bound == loose.rel_bound:
            assert strict.slow_and_steady_energy_j == loose.slow_and_steady_energy_j
            assert strict.race_to_idle_energy_j == loose.race_to_idle_energy_j

    def test_disk_store_entries_are_rfc_strict_json(self, tb, tmp_path):
        """Baseline points carry psnr_db = +inf; the persisted cache entry
        must stay parseable by strict RFC 8259 parsers (no Infinity token)."""
        import json

        from repro.runtime.store import ResultStore

        store = ResultStore(cache_dir=tmp_path)
        p = tb.dvfs_point("cesm", None, None, 1.0, "hdf5", "plat8160")
        store.put("somekey", p)
        text = (tmp_path / "somekey.json").read_text()

        def _reject(_):
            raise ValueError("non-RFC constant")

        json.loads(text, parse_constant=_reject)  # must not raise
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get("somekey") == p  # inf round-trips through the tag

    def test_deadline_policy_fields_consistent(self, advice):
        window_cost = min(
            advice.race_to_idle_energy_j, advice.slow_and_steady_energy_j
        )
        assert advice.chosen_beats_both_policies == (
            advice.chosen_deadline_energy_j < window_cost
        )
        # Padding with idle time can only add energy.
        assert advice.chosen_deadline_energy_j >= advice.energy_j
