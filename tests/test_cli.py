"""CLI: every subcommand end-to-end through files and captured stdout."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def field_file(tmp_path, rng):
    path = tmp_path / "field.npy"
    x = np.linspace(0, 1, 32)
    data = (np.sin(6 * x)[:, None] * np.cos(4 * x)[None, :]).astype(np.float32)
    data += 0.01 * rng.standard_normal(data.shape).astype(np.float32)
    np.save(path, data)
    return path, data


class TestCompressDecompress:
    def test_roundtrip_through_files(self, tmp_path, field_file, capsys):
        path, data = field_file
        packed = tmp_path / "field.rpz"
        recon_path = tmp_path / "recon.npy"
        assert (
            main(["compress", str(path), str(packed), "--codec", "sz3", "--rel-bound", "1e-3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "sz3" in out and "x," in out.replace("x ", "x,")  # ratio printed
        assert main(["decompress", str(packed), str(recon_path)]) == 0
        recon = np.load(recon_path)
        rng_span = float(data.max() - data.min())
        assert np.abs(recon - data).max() <= 1e-3 * rng_span * (1 + 1e-6)

    def test_lossless_codec(self, tmp_path, field_file, capsys):
        path, data = field_file
        packed = tmp_path / "f.rpz"
        recon = tmp_path / "r.npy"
        assert main(["compress", str(path), str(packed), "--codec", "fpzip"]) == 0
        assert main(["decompress", str(packed), str(recon)]) == 0
        np.testing.assert_array_equal(np.load(recon), data)

    def test_inspect(self, tmp_path, field_file, capsys):
        path, _ = field_file
        packed = tmp_path / "f.rpz"
        main(["compress", str(path), str(packed), "--codec", "szx"])
        capsys.readouterr()
        assert main(["inspect", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "szx" in out and "ratio" in out and "32x32" in out


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cesm", "hacc", "nyx", "s3d"):
            assert name in out

    def test_cpus(self, capsys):
        assert main(["cpus"]) == 0
        out = capsys.readouterr().out
        assert "Sapphire Rapids" in out and "350 W" in out

    def test_codecs(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        assert "sz3" in out and "lossless" in out


class TestAdvise:
    def test_advise_netcdf_recommends(self, capsys):
        rc = main(
            [
                "advise",
                "--dataset",
                "s3d",
                "--psnr-min",
                "40",
                "--io",
                "netcdf",
                "--scale",
                "tiny",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "PSNR" in out or "uncompressed" in out

    def test_advise_strict_usually_refuses(self, capsys):
        rc = main(
            [
                "advise",
                "--dataset",
                "nyx",
                "--psnr-min",
                "150",
                "--scale",
                "tiny",
                "--strict-time",
            ]
        )
        assert rc == 1
        assert "uncompressed" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "a", "b", "--codec", "nope"])
