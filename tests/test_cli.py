"""CLI: every subcommand end-to-end through files and captured stdout."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def field_file(tmp_path, rng):
    path = tmp_path / "field.npy"
    x = np.linspace(0, 1, 32)
    data = (np.sin(6 * x)[:, None] * np.cos(4 * x)[None, :]).astype(np.float32)
    data += 0.01 * rng.standard_normal(data.shape).astype(np.float32)
    np.save(path, data)
    return path, data


class TestCompressDecompress:
    def test_roundtrip_through_files(self, tmp_path, field_file, capsys):
        path, data = field_file
        packed = tmp_path / "field.rpz"
        recon_path = tmp_path / "recon.npy"
        assert (
            main(["compress", str(path), str(packed), "--codec", "sz3", "--rel-bound", "1e-3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "sz3" in out and "x," in out.replace("x ", "x,")  # ratio printed
        assert main(["decompress", str(packed), str(recon_path)]) == 0
        recon = np.load(recon_path)
        rng_span = float(data.max() - data.min())
        assert np.abs(recon - data).max() <= 1e-3 * rng_span * (1 + 1e-6)

    def test_lossless_codec(self, tmp_path, field_file, capsys):
        path, data = field_file
        packed = tmp_path / "f.rpz"
        recon = tmp_path / "r.npy"
        assert main(["compress", str(path), str(packed), "--codec", "fpzip"]) == 0
        assert main(["decompress", str(packed), str(recon)]) == 0
        np.testing.assert_array_equal(np.load(recon), data)

    def test_inspect(self, tmp_path, field_file, capsys):
        path, _ = field_file
        packed = tmp_path / "f.rpz"
        main(["compress", str(path), str(packed), "--codec", "szx"])
        capsys.readouterr()
        assert main(["inspect", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "szx" in out and "ratio" in out and "32x32" in out


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cesm", "hacc", "nyx", "s3d"):
            assert name in out

    def test_cpus(self, capsys):
        assert main(["cpus"]) == 0
        out = capsys.readouterr().out
        assert "Sapphire Rapids" in out and "350 W" in out

    def test_codecs(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        assert "sz3" in out and "lossless" in out


class TestAdvise:
    def test_advise_netcdf_recommends(self, capsys):
        rc = main(
            [
                "advise",
                "--dataset",
                "s3d",
                "--psnr-min",
                "40",
                "--io",
                "netcdf",
                "--scale",
                "tiny",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "PSNR" in out or "uncompressed" in out

    def test_advise_strict_usually_refuses(self, capsys):
        rc = main(
            [
                "advise",
                "--dataset",
                "nyx",
                "--psnr-min",
                "150",
                "--scale",
                "tiny",
                "--strict-time",
            ]
        )
        assert rc == 1
        assert "uncompressed" in capsys.readouterr().out


class TestAdviseDvfs:
    def test_dvfs_advice_prints_frontier_and_policy(self, capsys):
        rc = main(
            [
                "advise", "--dataset", "cesm", "--dvfs", "--cpu", "plat8160",
                "--scale", "tiny", "--freqs", "1.0,2.1,3.7",
            ]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "Pareto" in out and "GHz" in out
        assert "race" in out and "steady" in out


class TestSweepDvfs:
    ARGS = [
        "sweep", "--kind", "dvfs", "--datasets", "cesm", "--codecs", "szx",
        "--bounds", "1e-3", "--io-libraries", "hdf5", "--cpus", "plat8160",
        "--scale", "tiny", "--freqs", "1.0,3.7",
    ]

    def test_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "f [GHz]" in out and "szx" in out and "original" in out
        assert "4 points" in out

    def test_json_records(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        records = [r for r in wire if "__record__" in r]
        assert {r["__record__"] for r in records} == {"DvfsPoint"}
        assert {r["freq_ghz"] for r in records} == {1.0, 3.7}
        # Baseline psnr is emitted as the RFC-safe string form of infinity.
        baselines = [r for r in records if r["codec"] is None]
        assert baselines and all(r["psnr_db"] == "inf" for r in baselines)


class TestSweep:
    ARGS = [
        "sweep", "--kind", "quality", "--datasets", "cesm",
        "--codecs", "szx,sz3", "--bounds", "1e-2,1e-3", "--scale", "tiny",
    ]

    def test_quality_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "szx" in out and "sz3" in out and "ratio" in out
        assert "4 points: 4 computed, 0 cached" in out

    def test_json_output(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        wire = json.loads(capsys.readouterr().out)
        records = [r for r in wire if "__record__" in r]
        assert len(records) == 4
        assert {r["__record__"] for r in records} == {"RoundtripRecord"}
        assert {r["codec"] for r in records} == {"szx", "sz3"}
        # The trailing element is the run telemetry, not a record.
        meta = wire[-1]["__meta__"]
        assert meta["engine"]["computed"] == 4
        assert meta["store"]["entries"] == 4
        assert meta["kind"] == "quality"

    def test_json_output_is_strict_even_with_infinite_psnr(self, capsys):
        import json

        # Lossless round-trips have psnr_db = inf; the emitted JSON must
        # stay RFC-valid (no bare Infinity tokens).
        assert (
            main(["sweep", "--kind", "lossless", "--datasets", "cesm",
                  "--codecs", "sz2", "--scale", "tiny", "--json"])
            == 0
        )
        out = capsys.readouterr().out
        records = json.loads(out, parse_constant=lambda c: pytest.fail(f"bare {c}"))
        assert records[0]["psnr_db"] == "inf"

    def test_spec_file_with_disk_cache_round_trip(self, tmp_path, capsys):
        from repro.runtime.spec import SweepSpec

        spec = SweepSpec(
            kind="io", datasets=("cesm",), codecs=("szx",), bounds=(1e-3,),
            io_libraries=("hdf5",),
        )
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(spec.to_json())
        cache = tmp_path / "cache"
        args = ["sweep", "--spec", str(spec_path), "--scale", "tiny",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 computed" in first and "original" in first
        # A second invocation answers the whole grid from the disk cache.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 computed" in second and "2 cached" in second
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_serial_kind_prints_energy_columns(self, capsys):
        assert (
            main(["sweep", "--kind", "serial", "--datasets", "cesm",
                  "--codecs", "szx", "--bounds", "1e-3", "--scale", "tiny"])
            == 0
        )
        out = capsys.readouterr().out
        assert "E_comp [J]" in out and "max9480" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "a", "b", "--codec", "nope"])

    def test_help_epilog_mentions_sweep(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "repro sweep" in capsys.readouterr().out
