"""The sweep runtime: specs, stable keys, the store, and the engine.

The load-bearing guarantees under test:

- grid expansion matches the seed driver loops point for point;
- point keys are stable — across keyword order, across processes — and
  sensitive to every parameter and to the testbed fingerprint;
- the store's hit/miss accounting and its disk layer round-trip records
  exactly;
- a parallel engine run produces records *equal* to the serial path; and
- a repeated ``TradeoffAnalyzer.evaluate`` over a warm store performs zero
  new testbed evaluations (the PR's acceptance criterion).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.experiments import IOPoint, RoundtripRecord, SerialPoint, Testbed
from repro.core.tradeoff import TradeoffAnalyzer
from repro.errors import ConfigurationError
from repro.runtime.engine import SweepEngine, SweepEvent
from repro.runtime.spec import GridPoint, SweepSpec
from repro.runtime.store import ResultStore, decode_record, encode_record
from repro.runtime.store import point_key as _point_key
from repro.runtime.store import testbed_fingerprint as _fingerprint

SMALL = dict(datasets=("cesm",), codecs=("szx", "sz3"), bounds=(1e-2, 1e-3))


@pytest.fixture(scope="module")
def tiny_testbed():
    return Testbed(scale="tiny")


@pytest.fixture()
def engine(tiny_testbed):
    """A fresh engine per test: isolated store, isolated counters."""
    return SweepEngine(testbed=tiny_testbed, store=ResultStore())


class TestSweepSpec:
    def test_serial_expansion_matches_seed_loop_order(self):
        spec = SweepSpec(kind="serial", cpus=("max9480", "plat8160"), **SMALL)
        points = spec.points()
        expected = [
            ("serial_point", cpu, ds, codec, eps)
            for cpu in ("max9480", "plat8160")
            for ds in SMALL["datasets"]
            for codec in SMALL["codecs"]
            for eps in SMALL["bounds"]
        ]
        got = [
            (p.op, p.as_kwargs()["cpu_name"], p.as_kwargs()["dataset"],
             p.as_kwargs()["codec"], p.as_kwargs()["rel_bound"])
            for p in points
        ]
        assert got == expected

    def test_io_expansion_baseline_first(self):
        spec = SweepSpec(kind="io", io_libraries=("hdf5",), **SMALL)
        points = spec.points()
        first = points[0].as_kwargs()
        assert first["codec"] is None and first["rel_bound"] is None
        assert len(points) == 1 + 2 * 2
        no_base = SweepSpec(kind="io", io_libraries=("hdf5",), include_baseline=False, **SMALL)
        assert len(no_base.points()) == 4

    def test_quality_and_lossless_kinds(self):
        q = SweepSpec(kind="quality", **SMALL).points()
        assert all(p.op == "roundtrip" for p in q)
        ll = SweepSpec(
            kind="lossless", datasets=("cesm",), codecs=("sz2",), lossless_codecs=("zstd",)
        ).points()
        assert [p.as_kwargs()["rel_bound"] for p in ll] == [0.0, 1e-3]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="banana")

    def test_json_round_trip(self):
        spec = SweepSpec(kind="io", io_libraries=("netcdf",), **SMALL)
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"kind": "serial", "warp_factor": 9})

    def test_lists_normalised_to_tuples(self):
        spec = SweepSpec(kind="serial", datasets=["cesm"], bounds=[1e-3])
        assert spec.datasets == ("cesm",) and spec.bounds == (1e-3,)


class TestPointKey:
    FP = {"scale": "tiny", "pfs": "PFSModel()"}

    def test_keyword_order_irrelevant(self):
        a = GridPoint.make("serial_point", dataset="cesm", codec="szx")
        b = GridPoint.make("serial_point", codec="szx", dataset="cesm")
        assert a == b
        assert _point_key(a.op, a.as_kwargs(), self.FP) == _point_key(
            b.op, b.as_kwargs(), self.FP
        )

    def test_sensitive_to_params_and_fingerprint(self):
        base = _point_key("roundtrip", {"codec": "szx", "rel_bound": 1e-3}, self.FP)
        assert base != _point_key("roundtrip", {"codec": "szx", "rel_bound": 1e-4}, self.FP)
        assert base != _point_key("serial_point", {"codec": "szx", "rel_bound": 1e-3}, self.FP)
        assert base != _point_key(
            "roundtrip", {"codec": "szx", "rel_bound": 1e-3}, {**self.FP, "scale": "bench"}
        )

    def test_stable_across_process_boundaries(self, tiny_testbed):
        """The same point hashes identically in a separate interpreter."""
        fp = _fingerprint(tiny_testbed)
        params = {"dataset": "cesm", "codec": "szx", "rel_bound": 1e-3}
        local = _point_key("roundtrip", params, fp)
        script = (
            "import sys, json\n"
            "from repro.core.experiments import Testbed\n"
            "from repro.runtime.store import point_key, testbed_fingerprint\n"
            "fp = testbed_fingerprint(Testbed(scale='tiny'))\n"
            "params = json.loads(sys.argv[1])\n"
            "print(point_key('roundtrip', params, fp))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(params)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == local

    def test_fingerprint_ignores_object_identity(self):
        assert _fingerprint(Testbed(scale="tiny")) == _fingerprint(
            Testbed(scale="tiny")
        )

    def test_nan_params_rejected(self):
        """NaN != NaN, so a NaN-keyed point could never be looked up again."""
        with pytest.raises(ConfigurationError):
            _point_key("roundtrip", {"rel_bound": float("nan")}, self.FP)
        with pytest.raises(ConfigurationError):
            _point_key("io_point", {"nested": {"deep": [float("nan")]}}, self.FP)

    def test_infinite_params_canonicalized_not_emitted_raw(self):
        """allow_nan=False: the canonical JSON stays strict RFC 8259."""
        from repro.runtime.store import _canonical_json

        with pytest.raises(ValueError):
            _canonical_json({"x": float("inf")})
        pos = _point_key("roundtrip", {"rel_bound": float("inf")}, self.FP)
        neg = _point_key("roundtrip", {"rel_bound": float("-inf")}, self.FP)
        big = _point_key("roundtrip", {"rel_bound": 1e308}, self.FP)
        assert len({pos, neg, big}) == 3  # distinct, deterministic identities
        assert pos == _point_key("roundtrip", {"rel_bound": float("inf")}, self.FP)

    def test_infinity_token_cannot_collide_with_strings(self):
        inf_key = _point_key("roundtrip", {"rel_bound": float("inf")}, self.FP)
        str_key = _point_key("roundtrip", {"rel_bound": "Infinity"}, self.FP)
        assert inf_key != str_key

    def test_reserved_nonfinite_key_rejected_in_dict_params(self):
        """A user dict shaped like the inf token must not alias its key."""
        with pytest.raises(ConfigurationError):
            _point_key(
                "roundtrip", {"x": {"__nonfinite__": "Infinity"}}, self.FP
            )


class TestResultStore:
    REC = RoundtripRecord(
        dataset="cesm", scale="tiny", codec="szx", rel_bound=1e-3, ratio=3.0,
        psnr_db=70.0, autocorr=0.1, max_rel_err=9e-4, compressed_nbytes=10,
        original_nbytes=30,
    )

    def test_hit_miss_accounting(self):
        store = ResultStore()
        assert store.get("k") is None
        store.put("k", self.REC)
        assert store.get("k") is self.REC
        assert store.stats == {
            "entries": 1, "memory_hits": 1, "disk_hits": 0, "misses": 1,
            "corrupt_quarantined": 0,
        }

    def test_encode_decode_nested(self):
        sp = SerialPoint(
            dataset="cesm", codec="szx", rel_bound=1e-3, cpu="max9480", threads=1,
            compress_time_s=1.0, decompress_time_s=0.5, compress_energy_j=10.0,
            decompress_energy_j=5.0, roundtrip=self.REC,
        )
        assert decode_record(encode_record(sp)) == sp

    def test_disk_round_trip_and_promotion(self, tmp_path):
        warm = ResultStore(cache_dir=tmp_path)
        warm.put("k", self.REC)
        cold = ResultStore(cache_dir=tmp_path)
        got = cold.get("k")
        assert got == self.REC
        assert cold.stats["disk_hits"] == 1
        # promoted: second read is a memory hit
        cold.get("k")
        assert cold.stats["memory_hits"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert store.get("bad") is None

    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert store.get("bad") is None
        assert store.stats["corrupt_quarantined"] == 1
        assert not (tmp_path / "bad.json").exists()
        assert (tmp_path / "bad.corrupt").exists()
        # quarantined once: the next read is a plain absent-file miss
        assert store.get("bad") is None
        assert store.stats["corrupt_quarantined"] == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        warm = ResultStore(cache_dir=tmp_path)
        warm.put("k", self.REC)
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        payload["record"]["ratio"] = 999.0  # bit-flip: valid JSON, wrong sum
        path.write_text(json.dumps(payload))
        cold = ResultStore(cache_dir=tmp_path)
        assert cold.get("k") is None
        assert cold.stats["corrupt_quarantined"] == 1
        assert (tmp_path / "k.corrupt").exists()

    def test_stale_version_is_miss_not_corrupt(self, tmp_path):
        warm = ResultStore(cache_dir=tmp_path)
        warm.put("k", self.REC)
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        cold = ResultStore(cache_dir=tmp_path)
        assert cold.get("k") is None
        assert cold.stats["corrupt_quarantined"] == 0
        assert path.exists()  # left for its own cache version

    def test_legacy_checksumless_entry_still_reads(self, tmp_path):
        warm = ResultStore(cache_dir=tmp_path)
        warm.put("k", self.REC)
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert ResultStore(cache_dir=tmp_path).get("k") == self.REC

    def test_contains_matches_get_for_corrupt_entries(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        store.put("good", self.REC)
        (tmp_path / "bad.json").write_text("{not json")
        assert "good" in store
        assert "bad" not in store  # same parse-or-miss path as get()
        cold = ResultStore(cache_dir=tmp_path)
        assert "good" in cold
        assert "bad" not in cold

    def test_put_tmp_race_between_threads(self, tmp_path):
        import threading

        store = ResultStore(cache_dir=tmp_path)
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    store.put("k", self.REC)
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert ResultStore(cache_dir=tmp_path).get("k") == self.REC
        assert not list(tmp_path.glob("*.tmp"))  # no stranded temp files

    def test_clear(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        store.put("k", self.REC)
        store.clear(disk=True)
        assert len(store) == 0
        assert ResultStore(cache_dir=tmp_path).get("k") is None

    def test_clear_removes_tmp_corrupt_and_manifest_strays(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        store.put("k", self.REC)
        (tmp_path / ".abc123.x9y8.tmp").write_text("half-written")
        (tmp_path / "dead.json.tmp.12345").write_text("legacy tmp layout")
        (tmp_path / "old.corrupt").write_text("quarantined")
        (tmp_path / "sweep-abc.manifest.jsonl").write_text('{"key": "k"}\n')
        store.clear(disk=True)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != ".lock"]
        assert leftovers == []


class TestSweepEngine:
    def test_cache_hits_on_second_run(self, engine):
        spec = SweepSpec(kind="serial", **SMALL)
        first = engine.run(spec)
        assert engine.stats.computed == 4
        second = engine.run(spec)
        assert second == first
        assert engine.stats.computed == 4  # nothing new
        assert engine.stats.cache_hits == 4

    def test_within_run_deduplication(self, engine):
        # Two specs' worth of identical points in one run: evaluated once.
        spec = SweepSpec(kind="quality", datasets=("cesm", "cesm"),
                         codecs=("szx",), bounds=(1e-3,))
        records = engine.run(spec)
        assert len(records) == 2 and records[0] == records[1]
        assert engine.stats.computed == 1

    def test_events_cover_every_point(self, tiny_testbed):
        events: list[SweepEvent] = []
        engine = SweepEngine(
            testbed=tiny_testbed, store=ResultStore(), on_event=events.append
        )
        engine.run(SweepSpec(kind="serial", **SMALL))
        kinds = [e.kind for e in events]
        assert kinds[0] == "start" and kinds[-1] == "finish"
        assert sum(k == "point" for k in kinds) == 4

    def test_thread_pool_equals_serial(self, tiny_testbed, engine):
        spec = SweepSpec(kind="serial", **SMALL)
        serial = engine.run(spec)
        threaded = SweepEngine(
            testbed=tiny_testbed, store=ResultStore(), executor="thread", max_workers=4
        ).run(spec)
        assert threaded == serial

    def test_process_pool_equals_serial(self, tiny_testbed, engine):
        spec = SweepSpec(kind="io", io_libraries=("hdf5",), **SMALL)
        serial = engine.run(spec)
        parallel_engine = SweepEngine(
            testbed=Testbed(scale="tiny"),
            store=ResultStore(),
            executor="process",
            max_workers=2,
        )
        parallel = parallel_engine.run(spec)
        assert parallel == serial
        assert parallel_engine.stats.computed == len(spec.points())

    def test_disk_cache_survives_engines(self, tiny_testbed, tmp_path):
        spec = SweepSpec(kind="quality", datasets=("cesm",), codecs=("szx",), bounds=(1e-3,))
        first = SweepEngine(testbed=tiny_testbed, store=ResultStore(cache_dir=tmp_path))
        records = first.run(spec)
        fresh = SweepEngine(testbed=Testbed(scale="tiny"), store=ResultStore(cache_dir=tmp_path))
        assert fresh.run(spec) == records
        assert fresh.stats.computed == 0

    def test_evaluate_single_point_memoized(self, engine):
        a = engine.evaluate("roundtrip", dataset="cesm", codec="szx", rel_bound=1e-3)
        b = engine.evaluate("roundtrip", dataset="cesm", codec="szx", rel_bound=1e-3)
        assert a is b and engine.stats.computed == 1

    def test_unknown_executor_rejected(self, tiny_testbed):
        with pytest.raises(ConfigurationError):
            SweepEngine(testbed=tiny_testbed, executor="gpu")

    def test_mutated_testbed_does_not_serve_stale_results(self):
        # The seed drivers read testbed config at call time; the engine's
        # keys must too, or a scale change would silently hit the old cache.
        tb = Testbed(scale="tiny")
        engine = SweepEngine(testbed=tb, store=ResultStore())
        spec = SweepSpec(kind="quality", datasets=("cesm",), codecs=("szx",), bounds=(1e-3,))
        tiny = engine.run(spec)[0]
        tb.scale = "test"
        test = engine.run(spec)[0]
        assert engine.stats.computed == 2
        assert test.scale == "test" and test != tiny

    def test_worker_testbed_cache_keyed_by_fingerprint(self):
        # _WORKER_TESTBEDS must key on the full testbed fingerprint: after
        # the parent mutates config between runs, a pool worker must build
        # a fresh testbed, never reuse the one cached for the old config.
        from repro.runtime.engine import _WORKER_TESTBEDS, _evaluate_in_worker
        from repro.runtime.store import point_key, testbed_fingerprint

        _WORKER_TESTBEDS.clear()
        for scale in ("tiny", "test"):
            config = SweepEngine(testbed=Testbed(scale=scale))._testbed_config()
            config_id = point_key(
                "__testbed__", {}, testbed_fingerprint(Testbed(scale=scale))
            )
            rec = _evaluate_in_worker(
                config, config_id, "roundtrip",
                {"dataset": "cesm", "codec": "szx", "rel_bound": 1e-3},
            )
            assert rec.scale == scale
        assert len(_WORKER_TESTBEDS) == 2  # one cached testbed per config
        _WORKER_TESTBEDS.clear()

    def test_process_pool_not_stale_after_testbed_mutation(self):
        # End-to-end flavour of the above: same engine, same spec, config
        # mutated between process-pool runs — records must track the change.
        tb = Testbed(scale="tiny")
        engine = SweepEngine(testbed=tb, store=ResultStore(),
                             executor="process", max_workers=2)
        spec = SweepSpec(kind="quality", datasets=("cesm",),
                         codecs=("szx", "sz3"), bounds=(1e-3,))
        tiny = engine.run(spec)
        tb.scale = "test"
        test = engine.run(spec)
        assert all(r.scale == "tiny" for r in tiny)
        assert all(r.scale == "test" for r in test)
        assert engine.stats.computed == 4  # nothing served stale

    def test_pool_events_carry_total(self, tiny_testbed):
        events = []
        SweepEngine(
            testbed=tiny_testbed, store=ResultStore(), executor="thread",
            max_workers=2, on_event=events.append,
        ).run(SweepSpec(kind="quality", datasets=("cesm",), codecs=("szx", "sz3"), bounds=(1e-2,)))
        assert all(e.total == 2 for e in events if e.kind == "point")

    def test_record_types(self, engine):
        serial = engine.run(SweepSpec(kind="serial", datasets=("cesm",),
                                      codecs=("szx",), bounds=(1e-3,)))
        io = engine.run(SweepSpec(kind="io", datasets=("cesm",), codecs=("szx",),
                                  bounds=(1e-3,), io_libraries=("hdf5",)))
        assert isinstance(serial[0], SerialPoint)
        assert isinstance(io[0], IOPoint) and io[0].codec is None


class TestTradeoffAnalyzerMemoization:
    def test_warm_store_means_zero_new_evaluations(self, tiny_testbed):
        analyzer = TradeoffAnalyzer(
            tiny_testbed,
            engine=SweepEngine(testbed=tiny_testbed, store=ResultStore()),
        )
        grid = dict(codecs=("szx", "sz3"), bounds=(1e-2, 1e-3))
        first = analyzer.evaluate("cesm", **grid)
        computed_after_first = analyzer.engine.stats.computed
        assert computed_after_first > 0
        second = analyzer.evaluate("cesm", **grid)
        assert analyzer.engine.stats.computed == computed_after_first
        assert second == first

    def test_shares_serial_points_with_testbed_sweeps(self, tiny_testbed):
        engine = SweepEngine(testbed=tiny_testbed, store=ResultStore())
        engine.run(SweepSpec(kind="serial", **SMALL))
        baseline = engine.stats.computed
        analyzer = TradeoffAnalyzer(tiny_testbed, engine=engine)
        analyzer.evaluate("cesm", codecs=SMALL["codecs"], bounds=SMALL["bounds"])
        # Only the I/O points (4 + baseline) are new; serial points all hit.
        assert engine.stats.computed == baseline + 5
