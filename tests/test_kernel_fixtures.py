"""Frozen-stream fixtures: the kernel byte format is pinned bit-for-bit.

``tests/fixtures/kernel_streams.npz`` was captured from the original
per-symbol/per-bit implementations (see ``tools/gen_kernel_fixtures.py``).
These tests assert that the vectorized Huffman, bit-packing, and ZFP kernels
still *produce* byte-identical streams (forward compatibility) and still
*decode* the frozen streams to the original arrays (backward compatibility) —
including the empty, single-symbol, and longer-than-``PEEK_BITS`` alphabets.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import get_compressor
from repro.compressors.bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from repro.compressors.huffman import PEEK_BITS, huffman_decode, huffman_encode

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "kernel_streams.npz"


@pytest.fixture(scope="module")
def frozen():
    return np.load(FIXTURES)


def _cases(frozen, prefix):
    return sorted({k.split("/")[1] for k in frozen.files if k.startswith(prefix + "/")})


class TestHuffmanFrozenStreams:
    def test_covers_required_regimes(self, frozen):
        cases = _cases(frozen, "huffman")
        assert "empty" in cases
        assert "single_symbol" in cases
        assert "two_symbols" in cases
        assert "very_long_codes" in cases

    def test_encode_byte_identical(self, frozen):
        for name in _cases(frozen, "huffman"):
            syms = frozen[f"huffman/{name}/input"]
            expected = frozen[f"huffman/{name}/blob"].tobytes()
            assert huffman_encode(syms) == expected, name

    def test_decode_frozen_streams(self, frozen):
        for name in _cases(frozen, "huffman"):
            syms = frozen[f"huffman/{name}/input"]
            blob = frozen[f"huffman/{name}/blob"].tobytes()
            np.testing.assert_array_equal(huffman_decode(blob), syms, err_msg=name)

    def test_long_code_fixture_exceeds_peek(self, frozen):
        # Reconstruct the canonical lengths and confirm the escape path is hit.
        from repro.compressors.huffman import _code_lengths

        syms = frozen["huffman/very_long_codes/input"]
        values, counts = np.unique(syms, return_counts=True)
        lengths = _code_lengths(counts.astype(np.int64))
        assert lengths.max() > PEEK_BITS


class TestPackFrozenStreams:
    def test_pack_byte_identical(self, frozen):
        for name in _cases(frozen, "pack"):
            values = frozen[f"pack/{name}/values"]
            widths = frozen[f"pack/{name}/widths"]
            expected = frozen[f"pack/{name}/blob"].tobytes()
            assert pack_bits(values, widths) == expected, name

    def test_unpack_frozen_streams(self, frozen):
        for name in _cases(frozen, "pack"):
            values = frozen[f"pack/{name}/values"]
            widths = frozen[f"pack/{name}/widths"]
            blob = frozen[f"pack/{name}/blob"].tobytes()
            out = unpack_bits(blob, widths)
            np.testing.assert_array_equal(out, np.where(widths > 0, values, 0), name)


class TestZFPFrozenStreams:
    def test_compress_byte_identical(self, frozen):
        comp = get_compressor("zfp")
        for name in _cases(frozen, "zfp"):
            arr = frozen[f"zfp/{name}/input"]
            rel = float(frozen[f"zfp/{name}/rel_bound"][0])
            expected = frozen[f"zfp/{name}/blob"].tobytes()
            assert comp.compress(arr, rel).data == expected, name

    def test_decompress_frozen_streams_within_bound(self, frozen):
        comp = get_compressor("zfp")
        for name in _cases(frozen, "zfp"):
            arr = frozen[f"zfp/{name}/input"]
            rel = float(frozen[f"zfp/{name}/rel_bound"][0])
            blob = frozen[f"zfp/{name}/blob"].tobytes()
            recon = comp.decompress(blob)
            assert recon.shape == arr.shape
            span = float(arr.max() - arr.min())
            bound = rel * (span if span > 0 else 1.0)
            assert np.abs(recon - arr).max() <= bound * (1 + 1e-9), name


class TestVectorizedAgainstScalarSemantics:
    """Property/fuzz coverage of the new batched paths."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 2**15), min_size=0, max_size=400).map(
            lambda xs: np.array(xs, dtype=np.int64)
        )
    )
    def test_huffman_roundtrip_fuzz(self, syms):
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 22), st.integers(0, 2**32))
    def test_huffman_deep_alphabet_roundtrip(self, depth, seed):
        # Fibonacci frequencies force near-maximal code depth for the size.
        fib = [1, 1]
        while len(fib) < depth:
            fib.append(fib[-1] + fib[-2])
        syms = np.concatenate(
            [np.full(f, i, dtype=np.int64) for i, f in enumerate(fib)]
        )
        syms = syms[np.random.default_rng(seed).permutation(syms.size)]
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 64)),
            min_size=0,
            max_size=150,
        )
    )
    def test_write_many_matches_scalar_write_bits(self, pairs):
        values = np.array(
            [v & ((1 << w) - 1) if w else 0 for v, w in pairs], dtype=np.uint64
        )
        widths = np.array([w for _, w in pairs], dtype=np.int64)
        scalar, batched = BitWriter(), BitWriter()
        scalar.write_bits(0b0110, 4)  # misalign the accumulator
        batched.write_bits(0b0110, 4)
        for v, w in zip(values, widths):
            scalar.write_bits(int(v), int(w))
        batched.write_many(values, widths)
        assert scalar.getvalue() == batched.getvalue()
        assert scalar.bit_length == batched.bit_length

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**64 - 1), st.integers(0, 64)),
            min_size=0,
            max_size=150,
        ),
        st.integers(0, 7),
    )
    def test_read_many_matches_scalar_read_bits(self, pairs, lead):
        writer = BitWriter()
        writer.write_bits(0, lead)
        values = [(v & ((1 << w) - 1)) if w else 0 for v, w in pairs]
        widths = np.array([w for _, w in pairs], dtype=np.int64)
        for v, w in zip(values, widths):
            writer.write_bits(v, int(w))
        data = writer.getvalue()

        scalar = BitReader(data)
        scalar.seek_bit(lead)
        expected = [scalar.read_bits(int(w)) for w in widths]
        batched = BitReader(data)
        batched.seek_bit(lead)
        out = batched.read_many(widths)
        np.testing.assert_array_equal(out, np.array(expected, dtype=np.uint64))
        assert batched.bit_position == scalar.bit_position
