"""Multi-tenant cluster scheduler: golden identity, contention, backfill.

The acceptance spine of the scheduler layer: a single-tenant scenario must
reproduce :meth:`MultiNodeCampaign.run` bit-identically, contended tenants
must see strictly longer writes than dedicated ones, the EASY-backfill
schedule must be deterministic, and the registry plumbing (store keys,
nested-record round-trips, schema gates) must hold for the cluster kind.
"""

import pytest

from repro.cluster import (
    ClusterSpec,
    JobSpec,
    MultiNodeCampaign,
    compression_mixes,
    format_scenario,
    parse_scenario,
    scenario_matrix,
    simulate_cluster,
)
from repro.energy import get_cpu
from repro.errors import ConfigurationError
from repro.iolib import PFSModel, get_io_library


@pytest.fixture(scope="module")
def campaign():
    return MultiNodeCampaign(
        cpu=get_cpu("plat8160"),
        pfs=PFSModel(),
        io_library=get_io_library("hdf5"),
        payload_nbytes=90 * 10**6,
        complexity=0.48,
    )


class TestScenarioGrammar:
    def test_roundtrip(self):
        text = (
            "nodes=8; a=ranks:96,codec:szx; "
            "b=ranks:48,codec:sz3,bound:0.01,submit:5,work:600,mttf:86400"
        )
        spec = parse_scenario(text)
        assert spec.n_nodes == 8
        a, b = spec.jobs
        assert (a.name, a.ranks, a.codec) == ("a", 96, "szx")
        assert (b.codec, b.rel_bound, b.submit_s) == ("sz3", 0.01, 5.0)
        assert (b.work_s, b.mttf_s) == (600.0, 86400.0)
        assert parse_scenario(format_scenario(spec)) == spec

    def test_canonical_form_is_spelling_invariant(self):
        # Reordered attributes and explicit defaults canonicalise to one
        # string — the store-key identity of the scenario.
        variants = (
            "nodes=4; a=ranks:8,codec:szx; b=ranks:8,codec:none",
            "nodes=4; a=codec:szx,ranks:8; b=ranks:8,codec:none",
            "nodes=4; a=ranks:8,codec:szx,bound:1e-3,submit:0; b=ranks:8",
            "nodes=4 ;  a = ranks:8 , codec:szx ; b=ranks:8,codec:-",
        )
        canon = {format_scenario(parse_scenario(v)) for v in variants}
        assert len(canon) == 1

    def test_clause_order_is_semantic(self):
        # Job order breaks FIFO submit ties, so swapping clauses is a
        # different scenario and must not canonicalise together.
        ab = format_scenario(parse_scenario("nodes=4; a=ranks:8; b=ranks:8"))
        ba = format_scenario(parse_scenario("nodes=4; b=ranks:8; a=ranks:8"))
        assert ab != ba

    def test_format_is_idempotent(self):
        text = "nodes=4; a=ranks:8,codec:szx,bound:0.01; b=ranks:16,submit:3"
        canon = format_scenario(parse_scenario(text))
        assert format_scenario(parse_scenario(canon)) == canon

    def test_numeric_interval_roundtrips(self):
        spec = parse_scenario(
            "nodes=2; a=ranks:8,work:600,mttf:3600,interval:120,seed:7"
        )
        assert spec.jobs[0].interval == 120.0
        assert spec.jobs[0].seed == 7
        assert parse_scenario(format_scenario(spec)) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "a=ranks:8",  # no nodes clause
            "nodes=4",  # no jobs
            "nodes=4; nodes=8; a=ranks:8",  # duplicate nodes
            "nodes=x; a=ranks:8",  # bad node count
            "nodes=4; a=ranks:8,ranks:16",  # duplicate attribute
            "nodes=4; a=ranks:8,color:blue",  # unknown attribute
            "nodes=4; a=codec:szx",  # missing ranks
            "nodes=4; a=ranks:eight",  # bad value
            "nodes=4; a=ranks",  # malformed attribute
            "nodes=4; a=ranks:8; a=ranks:16",  # duplicate job name
        ],
    )
    def test_bad_scenarios_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_scenario(bad)


class TestSpecValidation:
    def test_zero_rank_job_rejected(self):
        with pytest.raises(ConfigurationError, match="zero-node"):
            JobSpec(name="a", ranks=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rel_bound=0.0),
            dict(submit_s=-1.0),
            dict(work_s=-5.0),
            dict(mttf_s=0.0),
            dict(downtime_s=-1.0),
        ],
    )
    def test_bad_job_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            JobSpec(name="a", ranks=8, **kwargs)

    def test_bad_job_names_rejected(self):
        for name in ("", "a;b", "a,b", "a=b", "a:b", "a b"):
            with pytest.raises(ConfigurationError):
                JobSpec(name=name, ranks=8)

    def test_cluster_spec_validation(self):
        job = JobSpec(name="a", ranks=8)
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_nodes=0, jobs=(job,))
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_nodes=4, jobs=())
        with pytest.raises(ConfigurationError, match="duplicate"):
            ClusterSpec(n_nodes=4, jobs=(job, JobSpec(name="a", ranks=16)))

    def test_over_subscribed_scenario_rejected(self, campaign):
        # 96 ranks need 2 nodes of this 48-core CPU; a 1-node cluster
        # can never run the job.
        spec = ClusterSpec(n_nodes=1, jobs=(JobSpec(name="wide", ranks=96),))
        with pytest.raises(ConfigurationError, match="over-subscribed"):
            simulate_cluster(spec, campaign)


class TestMatrixHelpers:
    def test_scenario_matrix_cross_product(self):
        specs = scenario_matrix(
            nodes=(4, 8),
            n_jobs=(2,),
            ranks=(48,),
            codecs=("szx", "none"),
            submit_stagger_s=(0.0, 10.0),
        )
        assert len(specs) == 8
        staggered = specs[1]
        assert [j.name for j in staggered.jobs] == ["j0", "j1"]
        assert staggered.jobs[1].submit_s in (0.0, 10.0)
        codecs = {tuple(j.codec for j in s.jobs) for s in specs}
        assert ("szx", "szx") in codecs and (None, None) in codecs

    def test_compression_mixes_default_space(self):
        base = parse_scenario("nodes=4; a=ranks:8,codec:szx; b=ranks:8,codec:sz3")
        mixes = compression_mixes(base)
        assert len(mixes) == 4  # {szx, None} x {sz3, None}
        assignments = {tuple(j.codec for j in m.jobs) for m in mixes}
        assert assignments == {
            ("szx", "sz3"), ("szx", None), (None, "sz3"), (None, None),
        }

    def test_uncompressed_jobs_stay_uncompressed(self):
        base = parse_scenario("nodes=4; a=ranks:8,codec:szx; b=ranks:8,codec:none")
        mixes = compression_mixes(base)
        assert len(mixes) == 2
        assert all(m.jobs[1].codec is None for m in mixes)

    def test_explicit_choices(self):
        base = parse_scenario("nodes=4; a=ranks:8,codec:szx")
        mixes = compression_mixes(base, choices={"a": ("szx", "sz3", None)})
        assert [m.jobs[0].codec for m in mixes] == ["szx", "sz3", None]


class TestGoldenIdentity:
    """A single-tenant scenario IS the Fig. 12 campaign, bit for bit."""

    @pytest.mark.parametrize(
        "ranks,codec,ratio",
        [(16, None, 1.0), (100, "sz3", 20.0), (512, "szx", 7.3)],
    )
    def test_single_tenant_collapses_to_campaign_run(
        self, campaign, ranks, codec, ratio
    ):
        ref = campaign.run(ranks, codec, 1e-3, compression_ratio=ratio)
        spec = ClusterSpec(
            n_nodes=ref.nodes,
            jobs=(JobSpec(name="solo", ranks=ranks, codec=codec),),
        )
        timeline = simulate_cluster(spec, campaign, {"solo": ratio})
        job = timeline.jobs[0]
        # Exact-float equality, not approx: the scheduler must reproduce
        # the campaign's arithmetic path, no drift allowed.
        assert job.compress_energy_j == ref.compress_energy_j
        assert job.write_energy_j == ref.write_energy_j
        assert job.t_comp == ref.compress_time_s
        assert job.write_time_s == ref.write_time_s
        assert job.out_bytes == ref.bytes_per_rank
        assert job.nodes == ref.nodes
        assert job.stretch == 1.0
        assert not job.backfilled and job.queue_wait_s == 0.0

    def test_single_tenant_converges_immediately(self, campaign):
        spec = ClusterSpec(n_nodes=1, jobs=(JobSpec(name="solo", ranks=16),))
        assert simulate_cluster(spec, campaign).iterations == 2


class TestContention:
    def test_two_tenants_stretch_strictly(self, campaign):
        spec = parse_scenario(
            "nodes=22; a=ranks:512,codec:none; b=ranks:512,codec:none"
        )
        timeline = simulate_cluster(spec, campaign)
        for job in timeline.jobs:
            assert job.write_time_s > job.dedicated_write_time_s
            assert job.stretch > 1.5  # two writers share one aggregate
        # Symmetric tenants submitted together see identical physics.
        a, b = timeline.jobs
        assert a.write_time_s == b.write_time_s
        assert a.total_energy_j == b.total_energy_j

    def test_contended_energy_exceeds_dedicated(self, campaign):
        contended = simulate_cluster(
            parse_scenario("nodes=22; a=ranks:512,codec:none; b=ranks:512,codec:none"),
            campaign,
        )
        solo = simulate_cluster(
            parse_scenario("nodes=22; a=ranks:512,codec:none"), campaign
        )
        # Longer writes burn more node-seconds: machine-wide energy of two
        # contending tenants exceeds twice the dedicated tenant's.
        assert contended.total_energy_j > 2 * solo.total_energy_j

    def test_makespan_is_last_finish(self, campaign):
        spec = parse_scenario(
            "nodes=4; a=ranks:48,codec:szx; b=ranks:48,codec:none,submit:2"
        )
        timeline = simulate_cluster(spec, campaign, {"a": 7.0})
        assert timeline.makespan_s == max(j.finish_s for j in timeline.jobs)


class TestScheduler:
    def test_fifo_queue_wait(self, campaign):
        # One node, two jobs: b must wait for a's full occupancy.
        spec = parse_scenario("nodes=1; a=ranks:48; b=ranks:48,submit:1")
        timeline = simulate_cluster(spec, campaign)
        a, b = timeline.jobs
        assert a.start_s == 0.0
        assert b.start_s == a.finish_s
        assert b.queue_wait_s > 0

    def test_backfill_past_blocked_wide_job(self, campaign):
        # a occupies 1 of 2 nodes for a long compute; b needs both nodes
        # and blocks; c (short, narrow) must backfill around b without
        # delaying it.
        spec = parse_scenario(
            "nodes=2; a=ranks:48,work:300; b=ranks:96,submit:1; "
            "c=ranks:48,submit:2,work:10"
        )
        timeline = simulate_cluster(spec, campaign)
        jobs = {j.spec.name: j for j in timeline.jobs}
        assert jobs["c"].backfilled
        assert not jobs["a"].backfilled and not jobs["b"].backfilled
        assert jobs["c"].start_s < jobs["b"].start_s
        # b starts once a's node frees — c's backfill ran in the shadow.
        assert jobs["b"].start_s >= jobs["a"].finish_s

    def test_same_seed_timeline_is_deterministic(self, campaign):
        text = (
            "nodes=4; a=ranks:96,codec:szx,work:900,mttf:14400,seed:3; "
            "b=ranks:48,codec:none,submit:5; c=ranks:48,submit:9,work:60"
        )
        runs = [
            simulate_cluster(parse_scenario(text), campaign, {"a": 7.0})
            for _ in range(2)
        ]
        first, second = runs
        assert first.makespan_s == second.makespan_s
        assert first.iterations == second.iterations
        for j1, j2 in zip(first.jobs, second.jobs):
            assert j1.start_s == j2.start_s
            assert j1.finish_s == j2.finish_s
            assert j1.total_energy_j == j2.total_energy_j
            assert j1.backfilled == j2.backfilled

    def test_write_bytes_conserved_across_tenants(self, campaign):
        # The global solve must move exactly each tenant's bytes no matter
        # how the flows interleave.
        spec = parse_scenario(
            "nodes=22; a=ranks:512,codec:szx; b=ranks:512,codec:none,submit:1"
        )
        timeline = simulate_cluster(spec, campaign, {"a": 7.3})
        for job in timeline.jobs:
            assert job.finish_s >= job.t0
        # The shared link cannot move the combined payload faster than its
        # aggregate ceiling allows.
        total_mb = sum(j.out_bytes * j.spec.ranks for j in timeline.jobs) / 1e6
        eff = campaign.io.cost.bandwidth_efficiency
        window = max(j.finish_s for j in timeline.jobs) - min(
            j.t0 for j in timeline.jobs
        )
        assert window >= total_mb / (campaign.pfs.aggregate_bw_mbps * eff) - 1e-9


class TestLifecycle:
    def test_failure_free_compute_is_plain_hold(self, campaign):
        spec = parse_scenario("nodes=1; a=ranks:48,work:600")
        job = simulate_cluster(spec, campaign).jobs[0]
        assert job.pre_s == 600.0
        assert job.lifecycle is None
        assert job.lifecycle_energy_j > 0  # compute phase still costs energy

    def test_failures_stretch_the_compute_phase(self, campaign):
        spec = parse_scenario("nodes=1; a=ranks:48,work:3600,mttf:7200,seed:1")
        job = simulate_cluster(spec, campaign).jobs[0]
        assert job.lifecycle is not None
        # Checkpoints + failures can only add to the failure-free work.
        assert job.pre_s > 3600.0
        assert job.lifecycle.n_checkpoints > 0
        assert job.lifecycle_energy_j > 0

    def test_lifecycle_independent_of_queue_position(self, campaign):
        # The same seeded lifecycle runs whether the tenant starts at t=0
        # or waits behind another job: failure history is job-local.
        alone = simulate_cluster(
            parse_scenario("nodes=1; a=ranks:48,work:900,mttf:7200,seed:5"),
            campaign,
        ).jobs[0]
        queued = {
            j.spec.name: j
            for j in simulate_cluster(
                parse_scenario(
                    "nodes=1; front=ranks:48,work:60; "
                    "a=ranks:48,work:900,mttf:7200,seed:5,submit:1"
                ),
                campaign,
            ).jobs
        }["a"]
        assert queued.start_s > 0
        assert queued.pre_s == alone.pre_s
        assert queued.lifecycle.n_failures == alone.lifecycle.n_failures
        assert queued.lifecycle_energy_j == alone.lifecycle_energy_j


class TestClusterKindPlumbing:
    """The registry-native surface: store keys, wire records, schema gates."""

    @pytest.fixture(scope="class")
    def testbed(self):
        from repro.core.experiments import Testbed

        return Testbed(scale="tiny")

    @pytest.fixture(scope="class")
    def result(self, testbed):
        import repro.cluster.kind  # noqa: F401

        return testbed.engine.evaluate(
            "cluster_point",
            dataset="cesm",
            scenario="nodes=4; a=ranks:8,codec:szx; b=ranks:8,codec:none,submit:1",
            io_library="hdf5",
            cpu_name="plat8160",
        )

    def test_store_key_is_spelling_invariant(self, testbed):
        from repro.runtime.registry import get_kind
        from repro.runtime.spec import SweepSpec
        from repro.runtime.store import point_key, testbed_fingerprint

        fingerprint = testbed_fingerprint(testbed)
        keys = []
        for text in (
            "nodes=4; a=ranks:8,codec:szx; b=ranks:8,codec:none",
            "nodes=4; a=codec:szx,ranks:8,bound:1e-3; b=ranks:8",
        ):
            spec = SweepSpec(
                kind="cluster",
                datasets=("cesm",),
                io_libraries=("hdf5",),
                cpus=("plat8160",),
                scenario=text,
            )
            get_kind("cluster").validate(spec)
            (point,) = [
                p for p in get_kind("cluster").expand(spec)
            ]
            keys.append(point_key(point.op, point.as_kwargs(), fingerprint))
        assert keys[0] == keys[1]
        assert len(keys[0]) == 64 and set(keys[0]) <= set("0123456789abcdef")

    def test_nested_record_store_roundtrip(self, result):
        from repro.runtime.store import decode_record, encode_record

        payload = encode_record(result)
        assert payload["__record__"] == "ClusterResult"
        assert all(t["__record__"] == "TenantResult" for t in payload["tenants"])
        assert decode_record(payload) == result

    def test_wire_records_pass_kind_schema_and_invariants(self, result):
        from repro.runtime.registry import get_kind, to_wire

        assert get_kind("cluster").check_records(to_wire([result])) == []

    def test_campaign_records_validate_schema_only(self, campaign):
        from repro.runtime.registry import check_record_payloads, record_types, to_wire

        rec = campaign.run(16, "szx", 1e-3, compression_ratio=7.0)
        cls = record_types()["CampaignResult"]
        assert type(rec) is cls
        assert check_record_payloads(cls, to_wire([rec])) == []
        broken = to_wire([rec])
        del broken[0]["write_energy_j"]
        assert check_record_payloads(cls, broken)

    def test_schema_tool_accepts_kind_and_record_names(self, tmp_path, campaign):
        import json
        import pathlib
        import sys

        tools = str(pathlib.Path(__file__).resolve().parents[1] / "tools")
        sys.path.insert(0, tools)
        try:
            from check_record_schemas import check
        finally:
            sys.path.remove(tools)
        from repro.runtime.registry import to_wire

        rec = campaign.run(16, None, 1e-3)
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(to_wire([rec])))
        assert check("CampaignResult", path) == []
        assert check("no_such_kind", path)

    def test_single_tenant_record_matches_campaign(self, testbed):
        # The registry path (testbed-built campaign) reproduces run_multinode
        # numbers for a single tenant: the golden identity holds end to end.
        import repro.cluster.kind  # noqa: F401

        from repro.cluster.campaign import MultiNodeCampaign
        from repro.data.registry import get_dataset
        from repro.iolib import get_io_library

        result = testbed.engine.evaluate(
            "cluster_point",
            dataset="cesm",
            scenario="nodes=1; solo=ranks:16,codec:szx",
            io_library="hdf5",
            cpu_name="plat8160",
        )
        dspec = get_dataset("cesm")
        ratio = testbed.roundtrip("cesm", "szx", 1e-3).ratio
        ref = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=testbed.pfs,
            io_library=get_io_library("hdf5"),
            payload_nbytes=dspec.paper_nbytes // 6,
            complexity=dspec.complexity,
            throughput=testbed.throughput,
            sample_interval=max(testbed.sample_interval, 0.02),
        ).run(16, "szx", 1e-3, compression_ratio=ratio)
        tenant = result.tenants[0]
        assert tenant.compress_energy_j == ref.compress_energy_j
        assert tenant.write_energy_j == ref.write_energy_j
        assert tenant.write_time_s == ref.write_time_s
        assert tenant.bytes_per_rank == ref.bytes_per_rank


class TestClusterAdvisor:
    def test_contention_flips_the_compress_verdict(self):
        # Three ZFP tenants on nyx at 1e-4: compressing costs energy on a
        # dedicated machine (the compressor works harder than the dedicated
        # write it saves), but with three tenants contending for one PFS
        # aggregate the uncompressed writes stretch ~3x and compression
        # flips to a machine-wide win — the scenario documented in
        # docs/user-guide/cluster.md.
        from repro.core.advisor import ClusterAdvisor
        from repro.core.experiments import Testbed

        advisor = ClusterAdvisor(testbed=Testbed(scale="tiny"))
        advice = advisor.advise(
            "nyx",
            "nodes=3; t0=ranks:48,codec:zfp,bound:1e-4; "
            "t1=ranks:48,codec:zfp,bound:1e-4; t2=ranks:48,codec:zfp,bound:1e-4",
        )
        assert not advice.dedicated_compress_saves
        assert advice.everyone_compress_saves
        assert advice.flips
        assert advice.flip_margin_j > 0
        assert advice.compress
        assert "FLIPS" in advice.rationale
        # The winning mix can only improve on the two uniform assignments.
        assert advice.best_energy_j <= advice.all_energy_j
        assert advice.best_energy_j <= advice.none_energy_j
        assert advice.n_jobs == 3 and len(advice.mixes) == 8
