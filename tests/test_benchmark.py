"""Kernel benchmark harness: document schema, round-trip, compare, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import BenchmarkRegression
from repro.runtime.benchmark import (
    KERNELS,
    SCHEMA_VERSION,
    SYNTHETIC_DATASET,
    check_regressions,
    compare_docs,
    format_report,
    kernel_inputs,
    load_doc,
    run_and_report,
    run_kernels,
    validate_doc,
    write_doc,
)

QUICK = dict(quick=True, datasets=(SYNTHETIC_DATASET,))


@pytest.fixture(scope="module")
def quick_doc():
    return run_kernels((SYNTHETIC_DATASET,), quick=True)


class TestKernelInputs:
    def test_synthetic_stream_is_deterministic(self):
        a = kernel_inputs(SYNTHETIC_DATASET, target_symbols=4096)
        b = kernel_inputs(SYNTHETIC_DATASET, target_symbols=4096)
        np.testing.assert_array_equal(a.codes, b.codes)
        assert a.field is None

    def test_dataset_stream_is_tiled_to_target(self):
        inputs = kernel_inputs("nyx", target_symbols=1 << 15, scale="tiny")
        assert inputs.codes.size == 1 << 15
        assert inputs.codes.min() >= 0
        assert inputs.field is not None

    def test_every_kernel_prepares_or_skips(self):
        inputs = kernel_inputs(SYNTHETIC_DATASET, target_symbols=2048)
        names = set()
        for spec in KERNELS:
            prepared = spec.prepare(inputs)
            if prepared is None:
                continue
            fn, n_symbols, n_bytes = prepared
            assert n_symbols == 2048 and n_bytes > 0
            fn()  # must be callable without error
            names.add(spec.name)
        assert {"huffman_encode", "huffman_decode", "pack_bits", "unpack_bits"} <= names


class TestDocumentSchema:
    def test_run_produces_valid_doc(self, quick_doc):
        validate_doc(quick_doc)  # must not raise
        assert quick_doc["schema_version"] == SCHEMA_VERSION
        kernels = {r["kernel"] for r in quick_doc["results"]}
        assert "huffman_decode" in kernels
        for rec in quick_doc["results"]:
            assert rec["mb_per_s"] > 0 and rec["sym_per_s"] > 0

    def test_validate_rejects_drift(self, quick_doc):
        bad = dict(quick_doc, schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema_version"):
            validate_doc(bad)
        bad = {k: v for k, v in quick_doc.items() if k != "results"}
        with pytest.raises(ValueError, match="results"):
            validate_doc(bad)
        bad = dict(quick_doc, results=[])
        with pytest.raises(ValueError, match="non-empty"):
            validate_doc(bad)
        clipped = [
            {k: v for k, v in quick_doc["results"][0].items() if k != "sym_per_s"}
        ]
        with pytest.raises(ValueError, match="sym_per_s"):
            validate_doc(dict(quick_doc, results=clipped))
        with pytest.raises(ValueError):
            validate_doc([])

    def test_json_round_trip(self, tmp_path, quick_doc):
        path = tmp_path / "BENCH_kernels.json"
        write_doc(str(path), quick_doc)
        loaded = load_doc(str(path))
        assert loaded == json.loads(json.dumps(quick_doc))


class TestCompare:
    def test_compare_matches_by_kernel_and_dataset(self, quick_doc):
        twice = json.loads(json.dumps(quick_doc))
        for rec in twice["results"]:
            rec["seconds_per_call"] /= 2.0
        deltas = compare_docs(quick_doc, twice)
        assert len(deltas) == len(quick_doc["results"])
        for d in deltas:
            assert d["speedup"] == pytest.approx(2.0)

    def test_compare_skips_mismatched_input_sizes(self, quick_doc):
        # A quick run vs a stored full run must not report size ratios as
        # speedups (the CI bench-smoke path hits exactly this).
        full = json.loads(json.dumps(quick_doc))
        for rec in full["results"]:
            rec["n_symbols"] *= 16
            rec["seconds_per_call"] *= 16
        assert compare_docs(full, quick_doc) == []

    def test_report_mentions_speedup(self, quick_doc):
        twice = json.loads(json.dumps(quick_doc))
        for rec in twice["results"]:
            rec["seconds_per_call"] /= 2.0
        report = format_report(twice, compare_docs(quick_doc, twice))
        assert "2.0" in report and "huffman_decode" in report

    def test_run_and_report_round_trips_history(self, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        emitted: list[str] = []
        first = run_and_report(str(out), emit=emitted.append, **QUICK)
        assert out.exists() and first["history"] == []
        second = run_and_report(str(out), emit=emitted.append, **QUICK)
        assert len(second["history"]) == 1
        assert second["history"][0]["created"] == first["created"]
        assert any("compared against previous run" in line for line in emitted)
        validate_doc(second)


class TestBenchCLI:
    def test_bench_kernels_quick(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernels.json"
        argv = [
            "bench",
            "kernels",
            "--quick",
            "--output",
            str(out),
            "--datasets",
            SYNTHETIC_DATASET,
        ]
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "huffman_decode" in text and "MB/s" in text
        validate_doc(json.loads(out.read_text()))
        # Second invocation exercises the load -> compare -> report path.
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "compared against previous run" in text

    def test_bench_json_flag_prints_document(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        argv = [
            "bench", "kernels", "--quick", "--json",
            "--output", str(out), "--datasets", SYNTHETIC_DATASET,
        ]
        assert main(argv) == 0
        text = capsys.readouterr().out
        start = text.index("{")
        doc = json.loads(text[start:])
        validate_doc(doc)


class TestRegressionGate:
    def _slow_down_previous(self, path, factor):
        doc = json.loads(path.read_text())
        for rec in doc["results"]:
            rec["seconds_per_call"] /= factor  # previous run looks faster
        path.write_text(json.dumps(doc))

    def test_check_regressions_thresholds(self):
        deltas = [
            {"kernel": "k", "dataset": "d", "speedup": 0.9,
             "old_seconds_per_call": 1.0, "new_seconds_per_call": 1.11},
            {"kernel": "k2", "dataset": "d", "speedup": 1.2,
             "old_seconds_per_call": 1.0, "new_seconds_per_call": 0.83},
        ]
        check_regressions(deltas, 20.0)  # 0.9 >= 1/1.2: inside the budget
        with pytest.raises(BenchmarkRegression) as excinfo:
            check_regressions(deltas, 5.0)
        exc = excinfo.value
        assert exc.max_regression_pct == 5.0
        assert [d["kernel"] for d in exc.offenders] == ["k"]
        assert "k/d" in str(exc)

    def test_run_and_report_raises_after_writing(self, tmp_path):
        out = tmp_path / "B.json"
        run_and_report(str(out), emit=lambda _: None, **QUICK)
        self._slow_down_previous(out, 100.0)
        with pytest.raises(BenchmarkRegression):
            run_and_report(
                str(out), emit=lambda _: None, max_regression_pct=20.0, **QUICK
            )
        # The regressed run is still recorded for the artifact trail.
        doc = load_doc(str(out))
        assert len(doc["history"]) == 1

    def test_no_previous_run_never_regresses(self, tmp_path):
        out = tmp_path / "B.json"
        doc = run_and_report(
            str(out), emit=lambda _: None, max_regression_pct=0.001, **QUICK
        )
        validate_doc(doc)

    def test_cli_max_regression_exit_code(self, tmp_path, capsys):
        out = tmp_path / "B.json"
        argv = [
            "bench", "kernels", "--quick",
            "--output", str(out), "--datasets", SYNTHETIC_DATASET,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        self._slow_down_previous(out, 100.0)
        assert main(argv + ["--max-regression", "20"]) == 1
        text = capsys.readouterr().out
        assert "BENCH REGRESSION" in text and "slower" in text
