"""Checkpoint subsystem: testbed driver, sweep kind, store, advisor, CLI."""

import math

import pytest

from repro.cli import main
from repro.core.advisor import DalyAdvisor
from repro.core.experiments import CheckpointPoint, Testbed
from repro.errors import ConfigurationError
from repro.runtime.engine import SweepEngine
from repro.runtime.spec import SweepSpec
from repro.runtime.store import ResultStore, decode_record, encode_record


@pytest.fixture(scope="module")
def tb():
    return Testbed(scale="tiny")


class TestGoldenReduction:
    """mttf=inf + one checkpoint == the existing write paths, bit for bit."""

    def test_reduces_to_io_point(self, tb):
        io = tb.io_point("cesm", "szx", 1e-3, "hdf5", "max9480")
        p = tb.checkpoint_point(
            "cesm", "szx", 1e-3, "hdf5", "max9480",
            mttf_s=math.inf, work_s=600.0, interval="daly",
        )
        assert p.n_checkpoints == 1 and p.n_failures == 0
        assert p.ckpt_compress_time_s == io.compress_time_s
        assert p.ckpt_write_time_s == io.write_time_s
        assert p.ckpt_compress_energy_j == io.compress_energy_j
        assert p.ckpt_write_energy_j == io.write_energy_j
        assert p.ckpt_time_s == io.compress_time_s + io.write_time_s
        assert p.checkpoint_energy_j == io.total_energy_j
        assert p.makespan_s == 600.0 + p.ckpt_time_s
        assert p.restart_energy_j == 0.0 and p.idle_energy_j == 0.0
        # The renewal closed form is exact without failures.
        assert p.expected_makespan_s == p.makespan_s

    def test_reduces_to_io_point_uncompressed(self, tb):
        io = tb.io_point("cesm", None, None, "hdf5", "max9480")
        p = tb.checkpoint_point(
            "cesm", None, None, "hdf5", "max9480", mttf_s=math.inf, work_s=300.0
        )
        assert p.ckpt_compress_time_s == 0.0
        assert p.ckpt_write_time_s == io.write_time_s
        assert p.checkpoint_energy_j == io.total_energy_j
        assert p.ratio == 1.0 and p.psnr_db == math.inf

    def test_reduces_to_pipeline_point(self, tb):
        pp = tb.pipeline_point("cesm", "szx", 1e-3, n_chunks=4, overlap=True)
        p = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=math.inf, work_s=600.0,
            n_chunks=4, overlap=True,
        )
        assert p.ckpt_time_s == pp.total_time_s
        assert p.ckpt_compress_time_s == pp.compress_time_s
        assert p.ckpt_write_time_s == pp.write_time_s
        assert p.checkpoint_energy_j == pp.total_energy_j
        assert p.makespan_s == 600.0 + pp.total_time_s

    def test_reduces_to_dvfs_point(self, tb):
        from repro.energy.cpus import get_cpu

        f = get_cpu("max9480").fmin_ghz
        dp = tb.dvfs_point("cesm", "szx", 1e-3, f)
        p = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=math.inf, work_s=600.0, freq_ghz=f
        )
        assert p.ckpt_time_s == dp.total_time_s
        assert p.checkpoint_energy_j == dp.total_energy_j

    def test_restart_cost_matches_read_point(self, tb):
        rp = tb.read_point("cesm", "szx", 1e-3, "hdf5", "max9480")
        p = tb.checkpoint_point("cesm", "szx", 1e-3, mttf_s=math.inf, work_s=60.0)
        assert p.restart_fetch_time_s == rp.fetch_time_s
        assert p.restart_decompress_time_s == rp.decompress_time_s
        assert p.restart_fetch_energy_j == rp.fetch_energy_j
        assert p.restart_decompress_energy_j == rp.decompress_energy_j

    def test_dvfs_pin_scales_restart_too(self, tb):
        """Regression: the restart must honour the DVFS pin like every
        other term — decompression slows at a low clock and the whole
        restart integrates power at the pinned frequency."""
        from repro.energy.cpus import get_cpu

        cpu = get_cpu("max9480")
        nom = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=math.inf, work_s=60.0,
            freq_ghz=cpu.fnom_ghz,
        )
        slow = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=math.inf, work_s=60.0,
            freq_ghz=cpu.fmin_ghz,
        )
        assert slow.restart_decompress_time_s > nom.restart_decompress_time_s
        # At the nominal pin the restart matches the unpinned read path.
        rp = tb.read_point("cesm", "szx", 1e-3, "hdf5", "max9480")
        assert nom.restart_decompress_time_s == rp.decompress_time_s
        assert nom.restart_fetch_time_s == rp.fetch_time_s

    def test_dvfs_pin_excludes_pipelined(self, tb):
        with pytest.raises(ConfigurationError):
            tb.checkpoint_point(
                "cesm", "szx", 1e-3, mttf_s=math.inf, work_s=60.0,
                freq_ghz=2.0, n_chunks=4, overlap=True,
            )


class TestFailingLifetimes:
    def test_seeded_run_is_deterministic(self, tb):
        kw = dict(mttf_s=4000.0, n_nodes=4, work_s=3000.0, seed=3)
        a = tb.checkpoint_point("cesm", "szx", 1e-3, **kw)
        b = tb.checkpoint_point("cesm", "szx", 1e-3, **kw)
        assert a == b  # frozen dataclass equality: every field bit-identical
        assert a.n_failures > 0 and a.rework_s > 0

    def test_simulation_tracks_closed_form(self):
        """Averaged over seeds, the simulated lifetime matches the Daly
        model within the documented tolerances (5 % time, 15 % energy).

        A coarser meter keeps 20 multi-hour lifetimes affordable; the
        discretization only moves energies at the per-sample level, far
        inside the asserted tolerance.
        """
        tb = Testbed(scale="tiny", sample_interval=0.25)
        pts = [
            tb.checkpoint_point(
                "cesm", "szx", 1e-3, mttf_s=4000.0, n_nodes=4,
                work_s=3000.0, seed=s,
            )
            for s in range(20)
        ]
        mean_t = sum(p.makespan_s for p in pts) / len(pts)
        mean_e = sum(p.total_energy_j for p in pts) / len(pts)
        assert mean_t == pytest.approx(pts[0].expected_makespan_s, rel=0.05)
        assert mean_e == pytest.approx(pts[0].expected_energy_j, rel=0.15)

    def test_failures_only_ever_add_time_and_energy(self, tb):
        inf = tb.checkpoint_point("cesm", "szx", 1e-3, mttf_s=math.inf, work_s=1200.0)
        fail = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=14400.0, n_nodes=4, work_s=1200.0, seed=1
        )
        assert fail.makespan_s >= inf.makespan_s
        assert fail.expected_makespan_s > inf.expected_makespan_s
        assert fail.expected_energy_j > inf.expected_energy_j

    def test_compression_shortens_daly_interval(self, tb):
        """Smaller checkpoints -> smaller δ -> shorter optimal interval."""
        comp = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=14400.0, n_nodes=4, work_s=1200.0
        )
        orig = tb.checkpoint_point(
            "cesm", None, None, mttf_s=14400.0, n_nodes=4, work_s=1200.0
        )
        assert comp.ckpt_time_s < orig.ckpt_time_s
        assert comp.interval_s < orig.interval_s
        assert comp.n_checkpoints >= orig.n_checkpoints


class TestStoreAndSweep:
    def test_record_round_trips_through_store(self, tb):
        p = tb.checkpoint_point(
            "cesm", "szx", 1e-3, mttf_s=14400.0, n_nodes=2, work_s=600.0, seed=5
        )
        assert decode_record(encode_record(p)) == p

    def test_record_round_trips_with_inf_mttf_on_disk(self, tb, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        p = tb.checkpoint_point("cesm", "szx", 1e-3, mttf_s=math.inf, work_s=60.0)
        store.put("k", p)
        store.clear()  # force the disk read path
        assert store.get("k") == p

    def test_memoized_rerun_hits_cache(self, tb):
        engine = SweepEngine(testbed=tb, store=ResultStore())
        spec = SweepSpec(
            kind="checkpoint", datasets=("cesm",), codecs=("szx",),
            bounds=(1e-3,), io_libraries=("hdf5",), cpus=("max9480",),
            mttfs=(float("inf"), 14400.0), work_s=600.0, n_nodes=2,
            n_chunks=1, overlap=False,
        )
        first = engine.run(spec)
        computed = engine.stats.computed
        second = engine.run(spec)
        assert first == second
        assert engine.stats.computed == computed  # all hits, nothing re-run
        assert engine.stats.cache_hits >= len(first)

    def test_expansion_order_and_mttf_axis(self):
        spec = SweepSpec(
            kind="checkpoint", datasets=("cesm",), codecs=("szx", "sz3"),
            bounds=(1e-3,), io_libraries=("hdf5",), mttfs=(float("inf"), 3600.0),
        )
        pts = spec.points()
        # baseline + 2 codecs, each over 2 MTTFs, innermost mttf axis.
        assert len(pts) == 6
        assert all(p.op == "checkpoint_point" for p in pts)
        kw = [p.as_kwargs() for p in pts]
        assert kw[0]["codec"] is None and kw[0]["mttf_s"] == math.inf
        assert kw[1]["codec"] is None and kw[1]["mttf_s"] == 3600.0
        assert kw[2]["codec"] == "szx" and kw[2]["mttf_s"] == math.inf

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", mttfs=())
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", mttfs=(0.0,))
        # The whole scenario validates at construction, not per grid point.
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", interval="weekly")
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", interval=0.0)
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", work_s=0.0)
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", downtime_s=-1.0)
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="checkpoint", n_nodes=0)

    def test_spec_json_round_trip_with_inf(self):
        spec = SweepSpec(kind="checkpoint", mttfs=(float("inf"), 3600.0))
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_run_checkpoint_sweep_driver(self, tb):
        pts = tb.run_checkpoint_sweep(
            datasets=("cesm",), codecs=("szx",), bounds=(1e-3,),
            mttfs=(float("inf"),), work_s=120.0,
        )
        assert len(pts) == 2  # baseline + szx
        assert all(isinstance(p, CheckpointPoint) for p in pts)


class TestCampaignCheckpointed:
    def test_scales_and_reduces(self):
        from repro.cluster import MultiNodeCampaign
        from repro.energy import get_cpu
        from repro.iolib import PFSModel, get_io_library

        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=90 * 10**6,
            complexity=0.48,
        )
        ff = campaign.run_checkpointed(
            96, "sz3", 1e-3, compression_ratio=10.0,
            node_mttf_s=math.inf, work_s=1800.0,
        )
        assert ff.n_checkpoints == 1 and ff.expected_failures == 0.0
        assert ff.expected_makespan_s == pytest.approx(1800.0 + ff.ckpt_time_s)
        fail = campaign.run_checkpointed(
            96, "sz3", 1e-3, compression_ratio=10.0,
            node_mttf_s=86400.0, work_s=1800.0,
        )
        assert fail.system_mttf_s == pytest.approx(86400.0 / 2)
        assert fail.expected_failures > 0
        assert fail.expected_makespan_s > ff.expected_makespan_s
        assert fail.expected_energy_j > ff.expected_energy_j
        # Compression shrinks the checkpoint and with it the whole lifetime.
        orig = campaign.run_checkpointed(
            96, None, node_mttf_s=86400.0, work_s=1800.0
        )
        assert fail.ckpt_time_s < orig.ckpt_time_s
        assert fail.interval_s < orig.interval_s

    def test_compression_wins_at_contention_scale(self):
        """The Fig. 12 crossover survives the lift to lifetimes: at 512
        cores the uncompressed checkpoint writes hit PFS saturation, so
        compressed checkpoints win the expected lifetime energy."""
        from repro.cluster import MultiNodeCampaign
        from repro.energy import get_cpu
        from repro.iolib import PFSModel, get_io_library

        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=90 * 10**6,
            complexity=0.48,
        )
        kw = dict(node_mttf_s=86400.0, work_s=1800.0)
        sz3 = campaign.run_checkpointed(
            512, "sz3", 1e-3, compression_ratio=20.0, **kw
        )
        orig = campaign.run_checkpointed(512, None, **kw)
        assert sz3.expected_energy_j < orig.expected_energy_j
        assert sz3.expected_makespan_s < orig.expected_makespan_s


class TestDalyAdvisor:
    @pytest.fixture(scope="class")
    def advice(self):
        advisor = DalyAdvisor(
            Testbed(scale="tiny"), cpu_name="plat8160", io_library="hdf5"
        )
        return advisor.advise(
            "cesm", mttf_s=7200.0, n_nodes=16, work_s=1800.0,
            codecs=("szx", "zfp"), bounds=(1e-3,),
        )

    def test_baseline_always_candidate(self, advice):
        assert any(p.codec is None for p in advice.candidates)

    def test_chosen_minimizes_expected_energy(self, advice):
        assert advice.expected_energy_j == min(
            p.expected_energy_j for p in advice.candidates
        )
        assert advice.compress == (advice.codec is not None)

    def test_flip_reporting_is_consistent(self, advice):
        assert advice.flips == (advice.compress != advice.single_write_compress)
        assert "lifetime" in advice.rationale

    def test_intervals_reported(self, advice):
        assert advice.interval_s > 0 and advice.baseline_interval_s > 0


class TestCheckpointCli:
    def test_sweep_kind_checkpoint_table(self, capsys):
        rc = main([
            "sweep", "--kind", "checkpoint", "--datasets", "cesm",
            "--codecs", "szx", "--bounds", "1e-3", "--io-libraries", "hdf5",
            "--scale", "tiny", "--mttfs", "inf,14400", "--work", "600",
            "--n-nodes", "4", "--n-chunks", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MTTF [s]" in out and "original" in out and "szx" in out

    def test_sweep_kind_checkpoint_json(self, capsys):
        import json

        rc = main([
            "sweep", "--kind", "checkpoint", "--datasets", "cesm",
            "--codecs", "szx", "--bounds", "1e-3", "--io-libraries", "hdf5",
            "--scale", "tiny", "--mttfs", "inf", "--work", "600", "--json",
        ])
        assert rc == 0
        records = [r for r in json.loads(capsys.readouterr().out)
                   if "__record__" in r]
        assert all(r["__record__"] == "CheckpointPoint" for r in records)
        assert records[0]["mttf_s"] == "inf"  # RFC-safe non-finite encoding

    def test_advise_checkpoint(self, capsys):
        rc = main([
            "advise", "--dataset", "cesm", "--checkpoint", "--scale", "tiny",
            "--cpu", "plat8160", "--mttf", "14400", "--n-nodes", "8",
            "--work", "1200", "--codecs", "szx", "--bounds", "1e-3",
        ])
        out = capsys.readouterr().out
        assert rc in (0, 1)  # exit code encodes the compress verdict
        assert "checkpointed lifetimes" in out

    def test_advise_dvfs_and_checkpoint_conflict(self, capsys):
        rc = main([
            "advise", "--dataset", "cesm", "--dvfs", "--checkpoint",
            "--scale", "tiny",
        ])
        assert rc == 2
