"""End-to-end integration: compress -> container -> PFS file -> read -> verify."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.compressors import get_compressor
from repro.core.experiments import Testbed
from repro.data import generate
from repro.iolib import get_io_library
from repro.metrics import check_error_bound, psnr


class TestFullPipeline:
    @pytest.mark.parametrize("libname", ["hdf5", "netcdf"])
    @pytest.mark.parametrize("codec", ["sz3", "zfp", "szx"])
    def test_compress_write_read_decompress(self, tmp_path, libname, codec):
        """The paper's full data path, for real bytes on a real filesystem."""
        data = np.array(generate("nyx", "tiny"))
        eps = 1e-3
        buf = compress(data, codec, eps)
        lib = get_io_library(libname)
        path = tmp_path / f"{codec}.{libname}"
        lib.write_file(
            path,
            {"field": buf.data},
            attrs={"codec": codec, "rel_bound": str(eps)},
        )
        datasets, attrs = lib.read_file(path)
        assert attrs["codec"] == codec
        rec = get_compressor(codec).decompress(bytes(datasets["field"]))
        check_error_bound(data, rec, eps)
        assert rec.shape == data.shape

    def test_mixed_file_original_plus_compressed(self, tmp_path):
        data = np.array(generate("cesm", "tiny"))
        lib = get_io_library("hdf5")
        buf = compress(data, "sz3", 1e-2)
        path = tmp_path / "mixed.rh5"
        lib.write_file(path, {"raw": data, "packed": buf.data})
        out, _ = lib.read_file(path)
        np.testing.assert_array_equal(out["raw"], data)
        rec = get_compressor("sz3").decompress(bytes(out["packed"]))
        check_error_bound(data, rec, 1e-2)

    def test_compressed_files_smaller_on_disk(self, tmp_path):
        data = np.array(generate("nyx", "tiny"))
        lib = get_io_library("hdf5")
        n_raw = lib.write_file(tmp_path / "raw.rh5", {"d": data})
        buf = compress(data, "sz3", 1e-2)
        n_comp = lib.write_file(tmp_path / "comp.rh5", {"d": buf.data})
        assert n_comp < n_raw / 5


class TestCrossCodecConsistency:
    def test_all_eblcs_agree_on_quality_ordering(self):
        """Tighter bounds give better PSNR for every codec on every dataset."""
        for ds in ("nyx", "cesm"):
            data = np.array(generate(ds, "tiny"))
            for codec in ("sz2", "sz3", "qoz", "zfp", "szx"):
                p = [
                    psnr(data, decompress(compress(data, codec, e)))
                    for e in (1e-1, 1e-3)
                ]
                assert p[1] > p[0], (ds, codec)

    def test_table3_orderings_on_synthetic_data(self):
        """SZ3 ratio > SZx ratio; ZFP PSNR > SZ3 PSNR at the same bound."""
        data = np.array(generate("nyx", "test"))
        eps = 1e-3
        r = {
            c: compress(data, c, eps)
            for c in ("sz3", "zfp", "szx")
        }
        assert r["sz3"].ratio > r["szx"].ratio
        p_sz3 = psnr(data, decompress(r["sz3"]))
        p_zfp = psnr(data, decompress(r["zfp"]))
        assert p_zfp > p_sz3


class TestStatisticalProtocol:
    def test_repeated_measurements_are_stable(self):
        """The virtual testbed is deterministic: CI collapses immediately."""
        from repro.metrics.stats import AdaptiveRepeater

        tb = Testbed(scale="tiny", sample_interval=0.05)

        def measure():
            return tb.serial_point("nyx", "szx", 1e-3, "plat8160").total_energy_j

        summary = AdaptiveRepeater().run(measure)
        assert summary.n_runs == 3
        assert summary.ci_halfwidth == 0.0
