"""Dataset generators: registry metadata, determinism, calibrated signatures."""

import numpy as np
import pytest

from repro import compress
from repro.data import dataset_names, generate, get_dataset, inflate
from repro.data.fields import (
    coherent_walk,
    gaussian_random_field,
    rescale,
    tanh_front,
)
from repro.data.registry import FIG1_DATASETS, MAIN_DATASETS


class TestFields:
    def test_grf_shape_and_normalization(self, rng):
        f = gaussian_random_field((16, 16), beta=3.0, rng=rng)
        assert f.shape == (16, 16)
        assert f.std() == pytest.approx(1.0, rel=1e-6)

    def test_grf_beta_controls_smoothness(self):
        r1, r2 = np.random.default_rng(1), np.random.default_rng(1)
        rough = gaussian_random_field((128,), beta=1.0, rng=r1)
        smooth = gaussian_random_field((128,), beta=4.0, rng=r2)
        tv = lambda f: np.abs(np.diff(f)).mean()
        assert tv(smooth) < tv(rough)

    def test_tanh_front_bounded(self, rng):
        f = tanh_front((12, 12, 12), rng)
        assert np.abs(f).max() <= 1.0 + 1e-9

    def test_coherent_walk_noise_floor(self):
        r = np.random.default_rng(5)
        w = coherent_walk(4096, r, coherence=256, noise_level=1e-3)
        assert w.shape == (4096,)

    def test_rescale(self):
        f = np.array([1.0, 2.0, 3.0])
        out = rescale(f, -1.0, 1.0)
        assert out.min() == -1.0 and out.max() == 1.0

    def test_rescale_constant(self):
        out = rescale(np.full(4, 2.0), 5.0, 9.0)
        np.testing.assert_array_equal(out, 5.0)


class TestRegistry:
    def test_table2_metadata(self):
        cesm = get_dataset("cesm")
        assert cesm.paper_shape == (26, 1800, 3600)
        assert cesm.dtype == np.float32
        assert cesm.paper_mb == pytest.approx(673.9, rel=0.01)
        s3d = get_dataset("s3d")
        assert s3d.dtype == np.float64
        assert s3d.paper_mb == pytest.approx(11000.0, rel=0.01)

    def test_main_and_fig1_sets(self):
        assert MAIN_DATASETS == ("cesm", "hacc", "nyx", "s3d")
        assert set(FIG1_DATASETS) <= set(dataset_names())

    def test_generation_matches_spec(self):
        for name in MAIN_DATASETS:
            spec = get_dataset(name)
            arr = generate(name, "tiny")
            assert arr.dtype == spec.dtype
            assert arr.shape == spec.scales["tiny"]
            assert np.all(np.isfinite(arr))

    def test_generation_deterministic(self):
        a = get_dataset("nyx").make("tiny")
        b = get_dataset("nyx").make("tiny")
        np.testing.assert_array_equal(a, b)

    def test_generate_memoized_readonly(self):
        arr = generate("nyx", "tiny")
        assert arr is generate("nyx", "tiny")
        with pytest.raises(ValueError):
            arr[0, 0, 0] = 1.0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_dataset("nyx").make("gigantic")

    def test_s3d_profile_fraction(self):
        s3d = get_dataset("s3d")
        assert s3d.profile_nbytes == pytest.approx(s3d.paper_nbytes / 11, rel=1e-6)


class TestCompressibilitySignatures:
    """The Table III shape: the traits the generators were calibrated for."""

    def test_nyx_much_more_compressible_than_hacc_at_loose_bound(self):
        nyx = compress(np.array(generate("nyx", "test")), "sz3", 1e-1)
        hacc_tight = compress(np.array(generate("hacc", "test")), "sz3", 1e-5)
        assert nyx.ratio > 50
        assert hacc_tight.ratio < 10  # HACC collapses at tight bounds

    def test_hacc_szx_low_everywhere(self):
        data = np.array(generate("hacc", "test"))
        assert compress(data, "szx", 1e-1).ratio < 40

    def test_cr_monotone_in_bound_all_main_sets(self):
        for name in MAIN_DATASETS:
            data = np.array(generate(name, "tiny"))
            crs = [compress(data, "sz3", e).ratio for e in (1e-1, 1e-3, 1e-5)]
            assert crs[0] >= crs[1] >= crs[2]


class TestInflate:
    def test_factor_one_is_copy(self, rng):
        data = rng.standard_normal((8, 8)).astype(np.float32)
        out = inflate(data, 1)
        np.testing.assert_array_equal(out, data)
        assert out is not data

    def test_shape_scales_cubically(self, rng):
        data = rng.standard_normal((6, 6, 6)).astype(np.float32)
        out = inflate(data, 3)
        assert out.shape == (18, 18, 18)

    def test_statistics_preserved(self):
        data = np.array(generate("nyx", "tiny"))
        out = inflate(data, 2)
        # Means within a few percent; fine-scale increments same order.
        assert abs(float(out.mean()) - float(data.mean())) < 0.25 * abs(
            float(data.mean())
        ) + 1e-12
        d_in = np.abs(np.diff(data.astype(np.float64), axis=0)).mean()
        d_out = np.abs(np.diff(out.astype(np.float64), axis=0)).mean()
        assert 0.1 * d_in < d_out < 3.0 * d_in

    def test_invalid_factor(self, rng):
        with pytest.raises(ValueError):
            inflate(rng.standard_normal((4, 4)), 0)
