"""Multilevel interpolation engine: traversal symmetry and bound safety."""

import numpy as np
import pytest

from repro.compressors.interpolation import (
    interp_decode,
    interp_encode,
    num_levels,
)


class TestNumLevels:
    @pytest.mark.parametrize(
        "shape,levels", [((2,), 1), ((3,), 2), ((64,), 6), ((65,), 7), ((5, 33), 6)]
    )
    def test_levels(self, shape, levels):
        assert num_levels(shape) == levels


class TestRoundtrip:
    @pytest.mark.parametrize(
        "shape", [(17,), (33,), (12, 19), (16, 16), (9, 10, 11), (3, 5, 7, 9)]
    )
    def test_encode_decode_symmetry(self, shape, rng):
        values = np.cumsum(rng.standard_normal(shape), axis=-1)
        eb = 0.05
        anchors, modes, codes, outliers, recon = interp_encode(values, eb)
        decoded = interp_decode(shape, eb, anchors, modes, codes, outliers)
        np.testing.assert_allclose(decoded, recon, atol=1e-12)

    def test_bound_holds(self, rng):
        values = rng.standard_normal((20, 21)) * 7
        eb = 0.2
        _, _, _, _, recon = interp_encode(values, eb)
        assert np.abs(recon - values).max() <= eb * (1 + 1e-9)

    def test_smooth_data_codes_concentrate(self):
        x = np.linspace(0, 1, 65)
        values = np.sin(2 * np.pi * x)[:, None] * np.cos(np.pi * x)[None, :]
        _, _, codes, outliers, _ = interp_encode(values, 0.01)
        assert outliers.size == 0
        # Most codes should be the zero-residual symbol (1).
        assert (codes == 1).mean() > 0.5

    def test_mode_list_length_checked(self, rng):
        values = rng.standard_normal((9, 9))
        anchors, modes, codes, outliers, _ = interp_encode(values, 0.1)
        with pytest.raises(ValueError):
            interp_decode((9, 9), 0.1, anchors, modes[:-1], codes, outliers)

    def test_code_stream_length_checked(self, rng):
        values = rng.standard_normal((9, 9))
        anchors, modes, codes, outliers, _ = interp_encode(values, 0.1)
        with pytest.raises(ValueError):
            interp_decode(
                (9, 9), 0.1, anchors, modes, np.concatenate([codes, [1]]), outliers
            )

    def test_level_bound_tightening(self, rng):
        """A per-level bound function must be honoured on both sides."""
        values = np.cumsum(rng.standard_normal((33, 33)), axis=0)
        eb = 0.5

        def level_bound(level):
            return eb / (2.0 ** (level - 1))

        anchors, modes, codes, outliers, recon = interp_encode(
            values, eb, level_bound
        )
        decoded = interp_decode(
            (33, 33), eb, anchors, modes, codes, outliers, level_bound
        )
        np.testing.assert_allclose(decoded, recon, atol=1e-12)
        assert np.abs(recon - values).max() <= eb * (1 + 1e-9)

    def test_single_element_axis(self, rng):
        values = rng.standard_normal((1, 16))
        anchors, modes, codes, outliers, recon = interp_encode(values, 0.1)
        decoded = interp_decode((1, 16), 0.1, anchors, modes, codes, outliers)
        np.testing.assert_allclose(decoded, recon, atol=1e-12)
