"""Block-pipelined compressed-I/O: chunking, the plan, and the drivers.

The load-bearing guarantees under test (PR acceptance criteria):

- with overlap disabled, pipeline-mode ``io_point`` reproduces the
  sequential path's energy and time *exactly* (well within 1e-9);
- with overlap enabled on a PFS-bound configuration, the total time is
  strictly less than ``compress_time + write_time``;
- chunk decomposition and the chunked container layout round-trip real
  data bit for bit;
- pipeline points flow through the sweep spec, engine, store and CLI like
  every other record type.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.experiments import PipelinePoint, Testbed
from repro.energy.measurement import compose_phases
from repro.errors import ConfigurationError
from repro.iolib.base import get_io_library
from repro.iolib.pfs import PFSModel
from repro.iolib.pipeline import (
    PipelineConfig,
    chunk_array,
    chunk_spans,
    plan_pipelined_write,
)
from repro.runtime.engine import SweepEngine
from repro.runtime.spec import SweepSpec
from repro.runtime.store import ResultStore, decode_record, encode_record


@pytest.fixture(scope="module")
def tb():
    return Testbed(scale="tiny", sample_interval=0.05)


@pytest.fixture(scope="module")
def pfs_bound_tb():
    """A testbed whose PFS is slow enough that writes dominate compress."""
    return Testbed(
        scale="tiny",
        sample_interval=0.05,
        pfs=PFSModel(n_osts=1, ost_bw_mbps=100.0, stripe_count=1, client_bw_mbps=200.0),
    )


class TestChunking:
    def test_spans_cover_exactly(self):
        sizes = chunk_spans(1003, 8)
        assert sizes.sum() == 1003
        assert sizes.size == 8
        assert sizes.max() - sizes.min() <= 1

    def test_spans_never_empty(self):
        sizes = chunk_spans(3, 8)
        assert sizes.size == 3 and (sizes >= 1).all()

    def test_spans_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_spans(0, 4)
        with pytest.raises(ConfigurationError):
            chunk_spans(100, 0)

    @pytest.mark.parametrize("n_chunks", [1, 3, 4, 7])
    def test_chunk_array_roundtrip_3d(self, n_chunks):
        data = np.arange(12 * 5 * 4, dtype=np.float32).reshape(12, 5, 4)
        chunks = chunk_array(data, n_chunks)
        np.testing.assert_array_equal(np.concatenate(chunks, axis=0), data)

    def test_chunk_array_roundtrip_1d_uneven(self):
        data = np.arange(17, dtype=np.float64)
        chunks = chunk_array(data, 5)
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_chunk_array_count_matches_chunk_spans(self):
        """The real decomposition never diverges from the modeled one."""
        data = np.arange(12 * 2, dtype=np.float32).reshape(12, 2)
        for n in (1, 2, 3, 4, 5, 6, 7, 8, 12, 20):
            chunks = chunk_array(data, n)
            assert len(chunks) == min(n, 12)
            np.testing.assert_array_equal(np.concatenate(chunks, axis=0), data)

    def test_chunk_array_more_chunks_than_rows(self):
        data = np.arange(3, dtype=np.float32)
        chunks = chunk_array(data, 16)
        assert len(chunks) == 3
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(n_chunks=0)


class TestPlan:
    PFS = PFSModel()
    COST = get_io_library("hdf5").cost

    def test_arrivals_follow_stage_finish(self):
        plan = plan_pipelined_write(80_000_000, 2.0, self.PFS, self.COST, 1.0, 8)
        assert plan.n_chunks == 8
        for arrive, stage in zip(plan.write_arrival, plan.stage_finish):
            assert arrive >= stage
        # Stage finishes are strictly increasing (chunks run back to back).
        assert all(
            b > a for a, b in zip(plan.stage_finish[:-1], plan.stage_finish[1:])
        )

    def test_overlap_never_slower_than_stages_summed_when_write_bound(self):
        plan = plan_pipelined_write(
            800_000_000, 0.5, self.PFS, self.COST, 1.0, 8
        )
        assert plan.total_time_s < plan.sequential_time_s
        assert plan.overlap_saving_s > 0

    def test_single_chunk_has_no_overlap_to_exploit(self):
        plan = plan_pipelined_write(80_000_000, 2.0, self.PFS, self.COST, 1.0, 1)
        # One chunk: the write cannot start before all compression is done.
        assert plan.total_time_s == pytest.approx(plan.sequential_time_s, abs=1e-9)

    def test_intervals_compose_to_the_makespan(self):
        plan = plan_pipelined_write(80_000_000, 2.0, self.PFS, self.COST, 1.0, 4)
        phases = compose_phases(plan.intervals, max_cores=32)
        assert sum(p.duration_s for p in phases) == pytest.approx(
            plan.total_time_s, rel=1e-9
        )


class TestEquivalenceWithSequential:
    """Acceptance: overlap-off pipeline == sequential path to < 1e-9."""

    @pytest.mark.parametrize("codec,eps", [("szx", 1e-3), (None, None)])
    def test_energy_and_time_match(self, tb, codec, eps):
        seq = tb.io_point("cesm", codec, eps, "hdf5", "max9480")
        ctl = tb.io_point(
            "cesm", codec, eps, "hdf5", "max9480",
            pipeline=PipelineConfig(n_chunks=4, overlap=False),
        )
        assert isinstance(ctl, PipelinePoint)
        assert ctl.bytes_written == seq.bytes_written
        assert abs(ctl.compress_time_s - seq.compress_time_s) < 1e-9
        assert abs(ctl.write_time_s - seq.write_time_s) < 1e-9
        assert abs(ctl.total_time_s - (seq.compress_time_s + seq.write_time_s)) < 1e-9
        assert abs(ctl.total_energy_j - seq.total_energy_j) < 1e-9
        assert ctl.overlap_saving_s == pytest.approx(0.0, abs=1e-9)

    def test_int_shorthand_for_pipeline_config(self, tb):
        p = tb.io_point("cesm", "szx", 1e-3, "hdf5", "max9480", pipeline=4)
        assert isinstance(p, PipelinePoint) and p.overlap and p.n_chunks == 4


class TestOverlapSavings:
    """Acceptance: PFS-bound overlap makes total < compress + write."""

    def test_pfs_bound_total_strictly_below_stage_sum(self, pfs_bound_tb):
        p = pfs_bound_tb.pipeline_point("cesm", "sz3", 1e-3, "hdf5", n_chunks=8)
        assert p.total_time_s < p.compress_time_s + p.write_time_s
        assert p.overlap_saving_s > 0

    def test_compute_bound_also_saves(self, tb):
        # Default PFS, slow codec: writes hide entirely under compression.
        p = tb.pipeline_point("cesm", "sz3", 1e-3, "hdf5", n_chunks=8)
        assert p.total_time_s < p.compress_time_s + p.write_time_s

    def test_overlap_uses_no_more_energy_than_sequential(self, pfs_bound_tb):
        ovl = pfs_bound_tb.pipeline_point("cesm", "szx", 1e-3, "hdf5", n_chunks=8)
        ctl = pfs_bound_tb.pipeline_point(
            "cesm", "szx", 1e-3, "hdf5", n_chunks=8, overlap=False
        )
        assert ovl.total_time_s < ctl.total_time_s
        assert ovl.total_energy_j <= ctl.total_energy_j * (1 + 1e-9)

    def test_uncompressed_baseline_overlaps_serialize_with_transfer(self, pfs_bound_tb):
        p = pfs_bound_tb.pipeline_point("cesm", None, None, "hdf5", n_chunks=8)
        assert p.compress_time_s == 0.0 and p.compress_energy_j == 0.0
        assert p.total_time_s < p.write_time_s  # serialize hides under transfer

    def test_hdf5_pays_less_chunk_metadata_than_netcdf(self, pfs_bound_tb):
        h = pfs_bound_tb.pipeline_point("cesm", "szx", 1e-3, "hdf5", n_chunks=8)
        n = pfs_bound_tb.pipeline_point("cesm", "szx", 1e-3, "netcdf", n_chunks=8)
        assert n.total_time_s > h.total_time_s


class TestChunkedContainers:
    @pytest.mark.parametrize("lib_name", ["hdf5", "netcdf"])
    def test_pack_chunked_roundtrip(self, lib_name):
        lib = get_io_library(lib_name)
        data = np.linspace(0, 1, 35 * 6, dtype=np.float32).reshape(35, 6)
        blob = lib.pack_chunked("field", data, 4, {"units": "K"})
        name, out, attrs = lib.unpack_chunked(blob)
        assert name == "field"
        assert attrs == {"units": "K"}
        np.testing.assert_array_equal(out, data)

    def test_write_read_chunked_files(self, tmp_path):
        lib = get_io_library("hdf5")
        data = np.arange(64, dtype=np.float64).reshape(16, 4)
        nbytes = lib.write_chunked(tmp_path / "c.rh5", "x", data, 8)
        assert nbytes > data.nbytes  # per-chunk headers cost real bytes
        name, out, _ = lib.read_chunked(tmp_path / "c.rh5")
        assert name == "x"
        np.testing.assert_array_equal(out, data)

    def test_unpack_chunked_rejects_plain_containers(self):
        lib = get_io_library("hdf5")
        blob = lib.pack({"x": np.zeros(4, dtype=np.float32)})
        from repro.errors import IOModelError

        with pytest.raises(IOModelError):
            lib.unpack_chunked(blob)

    def test_unpack_chunked_wraps_malformed_metadata(self):
        """Missing chunk-count/chunks surface as IOModelError, not KeyError."""
        from repro.errors import IOModelError

        lib = get_io_library("hdf5")
        no_count = lib.pack(
            {"f/00000": np.zeros(4, dtype=np.float32)}, {"__chunked__": "f"}
        )
        with pytest.raises(IOModelError):
            lib.unpack_chunked(no_count)
        missing_chunk = lib.pack(
            {"f/00000": np.zeros(4, dtype=np.float32)},
            {"__chunked__": "f", "__n_chunks__": "2"},
        )
        with pytest.raises(IOModelError):
            lib.unpack_chunked(missing_chunk)


class TestSweepIntegration:
    def test_spec_expansion_and_json_roundtrip(self):
        spec = SweepSpec(
            kind="pipeline",
            datasets=("cesm",),
            codecs=("szx",),
            bounds=(1e-3,),
            io_libraries=("hdf5",),
            n_chunks=4,
            overlap=True,
        )
        points = spec.points()
        assert len(points) == 2  # baseline + one codec point
        assert all(p.op == "pipeline_point" for p in points)
        assert all(p.as_kwargs()["n_chunks"] == 4 for p in points)
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_engine_memoizes_pipeline_points(self, tb):
        engine = SweepEngine(testbed=tb, store=ResultStore())
        spec = SweepSpec(
            kind="pipeline", datasets=("cesm",), codecs=("szx",), bounds=(1e-3,),
            io_libraries=("hdf5",), n_chunks=4,
        )
        first = engine.run(spec)
        computed = engine.stats.computed
        second = engine.run(spec)
        assert engine.stats.computed == computed  # all cache hits
        assert first == second

    def test_overlap_toggle_changes_the_cache_key(self, tb):
        engine = SweepEngine(testbed=tb, store=ResultStore())
        on = engine.evaluate(
            "pipeline_point", dataset="cesm", codec="szx", rel_bound=1e-3,
            io_library="hdf5", cpu_name="max9480", n_chunks=4, overlap=True,
        )
        off = engine.evaluate(
            "pipeline_point", dataset="cesm", codec="szx", rel_bound=1e-3,
            io_library="hdf5", cpu_name="max9480", n_chunks=4, overlap=False,
        )
        assert on != off and engine.stats.computed == 2

    def test_record_disk_roundtrip(self, tb, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        p = tb.pipeline_point("cesm", "szx", 1e-3, "hdf5", n_chunks=4)
        assert decode_record(encode_record(p)) == p
        store.put("k", p)
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get("k") == p

    def test_run_pipeline_sweep_driver(self, tb):
        recs = tb.run_pipeline_sweep(
            datasets=("cesm",), codecs=("szx",), bounds=(1e-3,),
            io_libraries=("hdf5",), n_chunks=4,
        )
        assert len(recs) == 2
        assert all(isinstance(r, PipelinePoint) for r in recs)
        assert recs[0].codec is None  # baseline first, like the io kind


class TestPipelinedCampaign:
    def test_pipelined_beats_sequential_makespan(self):
        from repro.cluster.campaign import MultiNodeCampaign
        from repro.energy.cpus import get_cpu

        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=200_000_000,
            sample_interval=0.02,
        )
        seq = campaign.run(64, "sz3", 1e-3, compression_ratio=10.0)
        pip = campaign.run_pipelined(64, "sz3", 1e-3, compression_ratio=10.0, n_chunks=8)
        assert pip.total_time_s < seq.total_time_s
        assert pip.compress_time_s == pytest.approx(seq.compress_time_s)
        assert pip.total_energy_j > 0
        assert pip.written_bytes_total == seq.written_bytes_total

    def test_single_rank_respects_client_bandwidth_floor(self):
        """One rank's backed-up chunks share one client link, never multiply it."""
        from repro.cluster.campaign import MultiNodeCampaign
        from repro.energy.cpus import get_cpu

        pfs = PFSModel()
        lib = get_io_library("hdf5")
        payload = 800_000_000
        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"), pfs=pfs, io_library=lib,
            payload_nbytes=payload, sample_interval=0.02,
        )
        result = campaign.run_pipelined(1, None, n_chunks=8)
        floor = (payload / 1e6) / (pfs.stream_bw_mbps * lib.cost.bandwidth_efficiency)
        assert result.total_time_s >= floor

    def test_uncompressed_pipelined_baseline(self):
        from repro.cluster.campaign import MultiNodeCampaign
        from repro.energy.cpus import get_cpu

        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=100_000_000,
            sample_interval=0.02,
        )
        seq = campaign.run(32, None)
        pip = campaign.run_pipelined(32, None, n_chunks=8)
        assert pip.compress_energy_j == 0.0
        assert pip.total_time_s <= seq.total_time_s


class TestPipelineCLI:
    def test_sweep_kind_pipeline_json(self, capsys):
        rc = main([
            "sweep", "--kind", "pipeline", "--datasets", "cesm", "--codecs", "szx",
            "--bounds", "1e-3", "--io-libraries", "hdf5", "--scale", "tiny",
            "--n-chunks", "4", "--json",
        ])
        assert rc == 0
        payload = [r for r in json.loads(capsys.readouterr().out)
                   if "__record__" in r]
        assert len(payload) == 2
        assert all(r["__record__"] == "PipelinePoint" for r in payload)
        for r in payload:
            # Overlap hides stage time; only per-chunk metadata may add back.
            slack = 0.01 * r["n_chunks"]
            assert (
                r["total_time_s"]
                <= r["compress_time_s"] + r["write_time_s"] + slack + 1e-9
            )

    def test_sweep_no_overlap_flag(self, capsys):
        rc = main([
            "sweep", "--kind", "pipeline", "--datasets", "cesm", "--codecs", "szx",
            "--bounds", "1e-3", "--io-libraries", "hdf5", "--scale", "tiny",
            "--n-chunks", "4", "--no-overlap", "--no-baseline", "--json",
        ])
        assert rc == 0
        (rec,) = [r for r in json.loads(capsys.readouterr().out)
                  if "__record__" in r]
        assert rec["overlap"] is False
        assert rec["total_time_s"] == pytest.approx(
            rec["compress_time_s"] + rec["write_time_s"]
        )

    def test_table_rendering(self, capsys):
        rc = main([
            "sweep", "--kind", "pipeline", "--datasets", "cesm", "--codecs", "szx",
            "--bounds", "1e-3", "--io-libraries", "hdf5", "--scale", "tiny",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chunks" in out and "saved [s]" in out and "original" in out

    @pytest.mark.parametrize(
        "lib,n_chunks", [("hdf5", 4), ("netcdf", 64)]
    )
    def test_schema_checker_accepts_cli_output(self, tmp_path, capsys, lib, n_chunks):
        # netcdf at 64 chunks pays real per-chunk header rewrites that can
        # push the makespan above the bare stage sum — the checker's
        # metadata allowance must accept that as valid model output.
        main([
            "sweep", "--kind", "pipeline", "--datasets", "cesm", "--codecs", "szx",
            "--bounds", "1e-3", "--io-libraries", lib, "--scale", "tiny",
            "--n-chunks", str(n_chunks), "--json",
        ])
        doc = capsys.readouterr().out
        path = tmp_path / "PIPELINE_sweep.json"
        path.write_text(doc)
        import importlib.util
        import pathlib

        tools = pathlib.Path(__file__).resolve().parents[1] / "tools"
        spec = importlib.util.spec_from_file_location(
            "check_pipeline_schema", tools / "check_pipeline_schema.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.check(path) == []
