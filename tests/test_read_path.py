"""Read-path energy: the paper's 'doubly effective' remark, made testable."""

import pytest

from repro.core.experiments import Testbed
from repro.iolib.pfs import PFSModel


@pytest.fixture(scope="module")
def tb():
    return Testbed(scale="tiny", sample_interval=0.05)


class TestPFSReads:
    def test_reads_faster_than_writes(self):
        pfs = PFSModel()
        n = 10**9
        assert pfs.single_read_seconds(n) < pfs.single_write_seconds(n)

    def test_efficiency_bounds(self):
        pfs = PFSModel()
        with pytest.raises(Exception):
            pfs.single_read_seconds(10**6, efficiency=0.0)


class TestReadPoint:
    def test_compressed_read_cheaper_transfer(self, tb):
        orig = tb.read_point("s3d", None, None, "hdf5", "max9480")
        comp = tb.read_point("s3d", "sz3", 1e-3, "hdf5", "max9480")
        # Fetch energy falls with bytes, mirroring the write path.
        assert comp.write_energy_j < orig.write_energy_j
        # The read path pays decompression instead of compression.
        assert comp.compress_energy_j > 0.0
        assert orig.compress_energy_j == 0.0

    def test_read_decompress_cost_below_write_compress_cost(self, tb):
        """Decompression is cheaper than compression for every codec, so the
        read path amortizes even better than the write path."""
        w = tb.io_point("s3d", "sz3", 1e-3, "hdf5", "max9480")
        r = tb.read_point("s3d", "sz3", 1e-3, "hdf5", "max9480")
        assert r.compress_energy_j < w.compress_energy_j

    def test_requires_bound_with_codec(self, tb):
        with pytest.raises(Exception):
            tb.read_point("s3d", "sz3", None)
