"""Shared fixtures: small deterministic arrays in every regime the codecs see."""

from __future__ import annotations

import numpy as np
import pytest

import repro.cluster.kind  # noqa: F401  — registers the `cluster` kind
import repro.dataset  # noqa: F401  — registers the `dataset` experiment
# kind before test modules collect, so the registry-driven conformance
# battery picks the plugins up alongside the builtin kinds.


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection battery (run in its own CI job: -m chaos)",
    )


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(123456)


@pytest.fixture(scope="session")
def smooth_3d():
    """Smooth 3-D float32 field (the friendly case)."""
    x, y, z = np.meshgrid(*[np.linspace(0.0, 1.0, 20)] * 3, indexing="ij")
    return (np.sin(5 * x) * np.cos(4 * y) + z**2).astype(np.float32)


@pytest.fixture(scope="session")
def noisy_3d():
    """Rough 3-D float64 field (the adversarial case)."""
    r = np.random.default_rng(7)
    return r.standard_normal((18, 18, 18)) * 50.0 + 10.0


@pytest.fixture(scope="session")
def smooth_2d():
    x, y = np.meshgrid(np.linspace(0, 2, 33), np.linspace(0, 3, 47), indexing="ij")
    return (np.exp(-x) * np.sin(6 * y)).astype(np.float32)


@pytest.fixture(scope="session")
def walk_1d():
    r = np.random.default_rng(11)
    return np.cumsum(r.standard_normal(1500)).astype(np.float32)


@pytest.fixture(scope="session")
def field_4d():
    r = np.random.default_rng(13)
    base = r.standard_normal((3, 9, 10, 11))
    return np.cumsum(base, axis=3)


@pytest.fixture(
    params=["smooth_3d", "noisy_3d", "smooth_2d", "walk_1d", "field_4d"],
)
def any_field(request):
    """Every test array regime, parametrized."""
    return request.getfixturevalue(request.param)


EBLC_NAMES = ["sz2", "sz3", "qoz", "zfp", "szx"]
LOSSLESS_NAMES = ["zstd", "blosc", "fpzip", "fpc"]


@pytest.fixture(params=EBLC_NAMES)
def eblc_name(request):
    return request.param


@pytest.fixture(params=LOSSLESS_NAMES)
def lossless_name(request):
    return request.param
