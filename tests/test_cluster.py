"""Cluster simulation: event loop determinism, ranks, campaign physics."""

import numpy as np
import pytest

from repro.cluster import EventLoop, MultiNodeCampaign, NodeModel, SimComm
from repro.energy import get_cpu
from repro.errors import ConfigurationError, SimulationError
from repro.iolib import PFSModel, get_io_library


class TestEventLoop:
    def test_delays_advance_time(self):
        loop = EventLoop()
        trace = []

        def proc():
            trace.append(loop.now)
            yield 1.5
            trace.append(loop.now)
            yield 0.5
            trace.append(loop.now)

        loop.spawn(proc())
        loop.run()
        assert trace == [0.0, 1.5, 2.0]

    def test_events_synchronize(self):
        loop = EventLoop()
        evt = loop.event("go")
        order = []

        def waiter():
            yield evt
            order.append(("w", loop.now))

        def firer():
            yield 3.0
            evt.fire()
            order.append(("f", loop.now))

        loop.spawn(waiter())
        loop.spawn(firer())
        loop.run()
        assert ("w", 3.0) in order and ("f", 3.0) in order

    def test_deterministic_tie_break(self):
        results = []
        for _ in range(3):
            loop = EventLoop()
            seq = []

            def make(name):
                def proc():
                    yield 1.0
                    seq.append(name)

                return proc

            for n in ("a", "b", "c"):
                loop.spawn(make(n)())
            loop.run()
            results.append(tuple(seq))
        assert len(set(results)) == 1

    def test_negative_delay_rejected(self):
        loop = EventLoop()

        def bad():
            yield -1.0

        loop.spawn(bad())
        with pytest.raises(SimulationError):
            loop.run()

    def test_run_until(self):
        loop = EventLoop()

        def proc():
            yield 10.0

        loop.spawn(proc())
        t = loop.run(until=5.0)
        assert t == 5.0

    def test_pause_resume_preserves_tie_order(self):
        """Regression: the process popped at the `until` boundary used to be
        re-pushed with a *fresh* sequence number, so pausing and resuming
        reordered same-timestamp ties versus a straight-through run."""

        def schedule(loop, trace):
            def make(name):
                def proc():
                    yield 5.0
                    trace.append(name)

                return proc

            for n in ("a", "b", "c"):
                loop.spawn(make(n)())

        straight: list[str] = []
        loop = EventLoop()
        schedule(loop, straight)
        loop.run()

        paused: list[str] = []
        loop = EventLoop()
        schedule(loop, paused)
        # Pause right before the tied wakeups, then resume: 'a' is popped at
        # the boundary and must keep its place at the front of the tie.
        loop.run(until=4.0)
        loop.run()
        assert straight == ["a", "b", "c"]
        assert paused == straight

    def test_process_result_captures_return_value(self):
        loop = EventLoop()

        def worker(rank):
            yield 1.0
            return {"rank": rank, "steps": 1}

        procs = [loop.spawn(worker(r)) for r in range(3)]
        loop.run()
        assert [p.result for p in procs] == [
            {"rank": 0, "steps": 1},
            {"rank": 1, "steps": 1},
            {"rank": 2, "steps": 1},
        ]

    def test_process_result_defaults_to_none(self):
        loop = EventLoop()

        def plain():
            yield 0.5

        p = loop.spawn(plain())
        loop.run()
        assert p.finished and p.result is None


class TestSimComm:
    def test_barrier_releases_all_at_last_arrival(self):
        loop = EventLoop()
        comm = SimComm(loop, 4)
        release = {}

        def body(rank, comm):
            yield rank * 1.0  # staggered arrivals
            yield comm.barrier()
            release[rank] = loop.now

        comm.run_ranks(body)
        assert all(t == pytest.approx(3.0) for t in release.values())

    def test_finish_times_reported(self):
        loop = EventLoop()
        comm = SimComm(loop, 3)

        def body(rank, comm):
            yield (rank + 1) * 2.0

        times = comm.run_ranks(body)
        assert times == {0: 2.0, 1: 4.0, 2: 6.0}

    def test_size_validation(self):
        with pytest.raises(SimulationError):
            SimComm(EventLoop(), 0)


class TestNodeModel:
    def test_labelled_energy_split(self):
        node = NodeModel(get_cpu("plat8160"))
        node.add_phase(1.0, 48, 1.0, "compress")
        node.add_phase(2.0, 0, 1.0, "write")
        energy = node.measure()
        assert energy.by_label["compress"] == pytest.approx(540.0, rel=1e-6)
        assert energy.by_label["write"] == pytest.approx(220.0, rel=1e-6)
        assert energy.total_j == pytest.approx(760.0, rel=1e-6)
        assert energy.runtime_s == pytest.approx(3.0)

    def test_zero_duration_skipped(self):
        node = NodeModel(get_cpu("plat8160"))
        node.add_phase(0.0, 4, 1.0, "x")
        assert node.measure().total_j == 0.0


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=90 * 10**6,
            complexity=0.48,
        )

    def test_weak_scaling_energy_grows_with_cores(self, campaign):
        e = [
            campaign.run(c, "sz3", 1e-3, compression_ratio=20.0).total_energy_j
            for c in (16, 64, 256)
        ]
        assert e[0] < e[1] < e[2]

    def test_uncompressed_baseline_jumps_under_contention(self, campaign):
        results = {c: campaign.run(c, None) for c in (64, 256, 512)}
        t64 = results[64].write_time_s
        t512 = results[512].write_time_s
        assert t512 > 4 * t64  # saturation: time grows superlinearly in load

    def test_compression_wins_at_scale_not_small(self, campaign):
        """The Fig. 12 crossover: EBLC beats original at 512 cores only."""
        small_orig = campaign.run(16, None).total_energy_j
        small_sz3 = campaign.run(16, "sz3", 1e-3, 20.0).total_energy_j
        big_orig = campaign.run(512, None).total_energy_j
        big_sz3 = campaign.run(512, "sz3", 1e-3, 20.0).total_energy_j
        assert small_sz3 > small_orig
        assert big_sz3 < big_orig

    def test_compression_dominates_write_for_eblc(self, campaign):
        r = campaign.run(256, "sz3", 1e-3, 20.0)
        assert r.compress_energy_j > r.write_energy_j

    def test_topology(self, campaign):
        r = campaign.run(512, None)
        assert r.nodes == 11 and r.ranks_per_node == 48
        assert r.n_ranks == 512  # 10 full nodes + a partial 32-rank node

    @pytest.mark.parametrize("cores", [16, 48, 96, 100, 512])
    def test_simulated_ranks_match_request(self, campaign, cores):
        """The seed rounded non-multiples up to nodes*rpn (100 -> 144 ranks on
        the 48-core plat8160); the partial-node topology simulates exactly
        what was asked for."""
        r = campaign.run(cores, "sz3", 1e-3, compression_ratio=10.0)
        assert r.n_ranks == cores
        assert r.written_bytes_total == r.bytes_per_rank * cores
        expected_nodes = -(-cores // min(cores, 48))
        assert r.nodes == expected_nodes

    @pytest.mark.parametrize("run_name", ["run", "run_pipelined"])
    def test_partial_node_energy_between_neighbours(self, campaign, run_name):
        """E(96 ranks) < E(100 ranks) < E(144 ranks): a 4-rank partial node
        costs more than nothing and far less than a full extra node."""
        runner = getattr(campaign, run_name)
        e96 = runner(96, "sz3", 1e-3, 10.0).total_energy_j
        e100 = runner(100, "sz3", 1e-3, 10.0).total_energy_j
        e144 = runner(144, "sz3", 1e-3, 10.0).total_energy_j
        assert e96 < e100 < e144

    def test_divisible_totals_unchanged_by_partial_node_path(self, campaign):
        """A divisible request is one full-node measurement scaled: doubling
        the node count at fixed rpn doubles compression energy exactly."""
        r1 = campaign.run(48, "sz3", 1e-3, 10.0)
        r2 = campaign.run(96, "sz3", 1e-3, 10.0)
        assert r2.compress_energy_j == pytest.approx(
            2 * r1.compress_energy_j, rel=1e-12
        )

    def test_dvfs_campaign_point(self, campaign):
        nom = campaign.run(48, "sz3", 1e-3, 10.0)
        pinned = campaign.run(48, "sz3", 1e-3, 10.0, freq_ghz=campaign.cpu.fnom_ghz)
        assert pinned.compress_energy_j == nom.compress_energy_j
        assert pinned.freq_ghz == campaign.cpu.fnom_ghz and nom.freq_ghz is None
        slow = campaign.run(48, "sz3", 1e-3, 10.0, freq_ghz=campaign.cpu.fmin_ghz)
        assert slow.compress_time_s > nom.compress_time_s
        with pytest.raises(ValueError):
            campaign.run(48, "sz3", 1e-3, 10.0, freq_ghz=99.0)

    def test_bytes_accounting(self, campaign):
        r = campaign.run(32, "sz3", 1e-3, compression_ratio=10.0)
        assert r.bytes_per_rank == 9 * 10**6
        assert r.written_bytes_total == r.bytes_per_rank * 32

    def test_validation(self, campaign):
        with pytest.raises(ConfigurationError):
            campaign.run(0, None)
        with pytest.raises(ConfigurationError):
            campaign.run(16, "sz3", 1e-3, compression_ratio=0.0)
        with pytest.raises(ConfigurationError):
            MultiNodeCampaign(
                cpu=get_cpu("plat8160"),
                pfs=PFSModel(),
                io_library=get_io_library("hdf5"),
                payload_nbytes=0,
            )
