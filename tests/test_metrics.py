"""Error/quality/ratio metrics and the Eq. 1/Eq. 2 definitions."""

import numpy as np
import pytest

from repro.errors import ErrorBoundViolation
from repro.metrics import (
    autocorrelation,
    bitrate,
    check_error_bound,
    compression_ratio,
    max_abs_error,
    max_rel_error,
    mse,
    nrmse,
    psnr,
    value_range,
)


class TestErrorMetrics:
    def test_value_range(self):
        assert value_range(np.array([2.0, -3.0, 7.0])) == 10.0

    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.5, 2.0, 2.0])
        assert max_abs_error(a, b) == 1.0

    def test_max_rel_error_eq1_semantics(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert max_rel_error(a, b) == pytest.approx(0.1)

    def test_constant_original(self):
        # Zero value range: the denominator falls back to the variable's
        # magnitude instead of reporting inf for any deviation.
        a = np.full(5, 3.0)
        assert max_rel_error(a, a) == 0.0
        assert max_rel_error(a, a + 1.0) == pytest.approx(1.0 / 3.0)

    def test_all_zero_original_still_inf(self):
        z = np.zeros(5)
        assert max_rel_error(z, z) == 0.0
        assert max_rel_error(z, z + 1.0) == float("inf")

    def test_check_bound_constant_variable_magnitude_relative(self):
        # A constant variable must not turn the relative bound into an
        # exact-equality test: the bound is magnitude-relative there.
        a = np.full(8, 100.0)
        err = check_error_bound(a, a + 0.05, 1e-3)
        assert err == pytest.approx(0.05)
        with pytest.raises(ErrorBoundViolation):
            check_error_bound(a, a + 0.5, 1e-3)

    def test_check_passes_within_bound(self):
        a = np.linspace(0, 1, 100)
        b = a + 0.009
        err = check_error_bound(a, b, 1e-2)
        assert err == pytest.approx(0.009)

    def test_check_raises_on_violation(self):
        a = np.linspace(0, 1, 100)
        with pytest.raises(ErrorBoundViolation) as exc:
            check_error_bound(a, a + 0.1, 1e-2)
        assert exc.value.max_error == pytest.approx(0.1)
        assert exc.value.bound == pytest.approx(0.01)

    def test_check_no_raise_mode(self):
        a = np.linspace(0, 1, 10)
        err = check_error_bound(a, a + 0.5, 1e-3, raise_on_violation=False)
        assert err == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))


class TestQualityMetrics:
    def test_mse_zero_for_identical(self):
        a = np.arange(10.0)
        assert mse(a, a) == 0.0

    def test_psnr_matches_eq2(self):
        a = np.array([1.0, 2.0, 4.0])
        b = a + np.array([0.1, -0.1, 0.1])
        expected = 20 * np.log10(4.0 / np.sqrt(0.01))
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_infinite_for_perfect(self):
        a = np.arange(5.0)
        assert psnr(a, a) == float("inf")

    def test_psnr_monotone_in_error(self):
        a = np.linspace(0, 1, 100)
        assert psnr(a, a + 0.001) > psnr(a, a + 0.01)

    def test_nrmse_normalized(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10.0)

    def test_autocorrelation_white_noise_near_zero(self, rng):
        a = np.zeros(20000)
        b = rng.standard_normal(20000)
        assert abs(autocorrelation(a, b)) < 0.05

    def test_autocorrelation_smooth_error_near_one(self):
        a = np.zeros(1000)
        b = np.sin(np.linspace(0, 4 * np.pi, 1000))
        assert autocorrelation(a, b) > 0.9

    def test_autocorrelation_short_input(self):
        assert autocorrelation(np.zeros(1), np.ones(1)) == 0.0


class TestRatios:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_bitrate(self):
        data = np.zeros(1000, dtype=np.float32)
        assert bitrate(data, 500) == pytest.approx(4.0)

    def test_bitrate_empty(self):
        with pytest.raises(ValueError):
            bitrate(np.zeros(0), 10)
