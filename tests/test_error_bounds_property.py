"""THE invariant: every EBLC honours the value-range relative bound.

Hypothesis drives every codec with adversarial float fields across dtypes,
shapes and bounds; any violation is a bug by the paper's Eq. 1 contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress
from repro.compressors import available_compressors
from repro.metrics import check_error_bound

EBLCS = [n for n in available_compressors(include_lossless=False)]


def _arrays(draw):
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 14)) for _ in range(ndim))
    n = int(np.prod(shape))
    kind = draw(st.sampled_from(["uniform", "walk", "spiky", "tiny-range"]))
    seed = draw(st.integers(0, 2**31 - 1))
    r = np.random.default_rng(seed)
    if kind == "uniform":
        arr = r.uniform(-1e4, 1e4, size=n)
    elif kind == "walk":
        arr = np.cumsum(r.standard_normal(n))
    elif kind == "spiky":
        arr = r.standard_normal(n)
        arr[r.integers(0, n, size=max(1, n // 10))] *= 1e6
    else:
        arr = 1e8 + r.uniform(0, 1e-3, size=n)  # huge offset, tiny range
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    return arr.reshape(shape).astype(dtype)


@st.composite
def fields(draw):
    return _arrays(draw)


@pytest.mark.parametrize("codec", EBLCS)
class TestErrorBoundInvariant:
    @settings(max_examples=25, deadline=None)
    @given(data=fields(), eps_exp=st.integers(1, 5))
    def test_bound_holds(self, codec, data, eps_exp):
        eps = 10.0 ** (-eps_exp)
        buf = compress(np.array(data), codec, eps)
        rec = decompress(buf)
        check_error_bound(data, rec, eps)

    @settings(max_examples=10, deadline=None)
    @given(data=fields())
    def test_shape_and_dtype_preserved(self, codec, data):
        buf = compress(np.array(data), codec, 1e-2)
        rec = decompress(buf)
        assert rec.shape == data.shape
        assert rec.dtype == data.dtype

    @settings(max_examples=10, deadline=None)
    @given(data=fields())
    def test_deterministic_streams(self, codec, data):
        a = compress(np.array(data), codec, 1e-2)
        b = compress(np.array(data), codec, 1e-2)
        assert a.data == b.data
