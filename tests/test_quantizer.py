"""Linear quantizer: the error-bound contract and the outlier escape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.quantizer import (
    LinearQuantizer,
    zigzag_decode,
    zigzag_encode,
)


class TestZigzag:
    def test_known_values(self):
        signed = np.array([0, -1, 1, -2, 2, -3])
        np.testing.assert_array_equal(zigzag_encode(signed), [0, 1, 2, 3, 4, 5])

    def test_roundtrip(self):
        signed = np.arange(-1000, 1000)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(signed)), signed)


class TestQuantizer:
    def test_bound_holds_for_quantized_values(self, rng):
        q = LinearQuantizer(0.5)
        values = rng.uniform(-100, 100, size=5000)
        preds = values + rng.uniform(-40, 40, size=5000)
        res = q.quantize(values, preds)
        assert np.all(np.abs(res.recon - values) <= 0.5 * (1 + 1e-9))

    def test_outliers_reproduce_exactly(self, rng):
        q = LinearQuantizer(1e-6, max_code=16)  # tiny range forces escapes
        values = rng.uniform(-1e6, 1e6, size=200)
        preds = np.zeros(200)
        res = q.quantize(values, preds)
        assert (res.codes == 0).any()
        np.testing.assert_array_equal(res.recon[res.codes == 0], values[res.codes == 0])

    def test_roundtrip_with_dequantize(self, rng):
        q = LinearQuantizer(0.25)
        values = rng.standard_normal(1000) * 10
        preds = np.zeros(1000)
        res = q.quantize(values, preds)
        recon = q.dequantize(res.codes, preds, res.outliers)
        np.testing.assert_allclose(recon, res.recon)

    def test_nonfinite_prediction_escapes(self):
        q = LinearQuantizer(0.1)
        values = np.array([1.0, 2.0])
        preds = np.array([np.inf, 1.9])
        res = q.quantize(values, preds)
        assert res.codes[0] == 0
        assert res.recon[0] == 1.0
        assert res.codes[1] != 0

    def test_outlier_count_mismatch_raises(self):
        q = LinearQuantizer(0.1)
        res = q.quantize(np.array([100.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            q.dequantize(res.codes, np.array([0.0]), np.zeros(5))

    def test_code_zero_reserved(self, rng):
        q = LinearQuantizer(0.5)
        values = rng.uniform(-5, 5, 100)
        res = q.quantize(values, np.zeros(100))
        assert res.codes.min() >= 1  # no escapes needed here

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.0)
        with pytest.raises(ValueError):
            LinearQuantizer(1.0, max_code=1)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(1e-9, 1e6),
        st.lists(
            st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=100,
        ),
    )
    def test_bound_property(self, bound, raw):
        values = np.array(raw)
        q = LinearQuantizer(bound)
        res = q.quantize(values, np.zeros_like(values))
        # Contract: every element within bound OR stored exactly.
        err = np.abs(res.recon - values)
        ok = (err <= bound * (1 + 1e-9)) | (res.codes == 0)
        assert ok.all()
        recon = q.dequantize(res.codes, np.zeros_like(values), res.outliers)
        np.testing.assert_array_equal(recon, res.recon)
