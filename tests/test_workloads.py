"""Workload layer: failure model, Daly math, lifecycle simulation."""

import math
import statistics

import pytest

from repro.cluster.events import EventLoop
from repro.errors import ConfigurationError
from repro.workloads import (
    CheckpointSpec,
    FailureModel,
    daly_interval,
    expected_energy,
    expected_failures,
    expected_makespan,
    lifecycle_process,
    resolve_interval,
    run_lifecycle,
    segment_works,
    young_interval,
)
from repro.workloads.lifecycle import compact_intervals


class TestFailureModel:
    def test_system_mttf_scales_with_nodes(self):
        m = FailureModel(node_mttf_s=86400.0, n_nodes=32)
        assert m.system_mttf_s == 86400.0 / 32

    def test_infinite_mttf_is_failure_free(self):
        m = FailureModel(node_mttf_s=math.inf, n_nodes=8)
        assert m.failure_free
        assert m.timeline(0).next_after(0.0) is None

    def test_same_seed_same_history(self):
        m = FailureModel(node_mttf_s=1000.0, n_nodes=4)
        a, b = m.timeline(42), m.timeline(42)
        t = 0.0
        for _ in range(50):
            fa, fb = a.next_after(t), b.next_after(t)
            assert fa == fb
            t = fa
        assert m.timeline(43).next_after(0.0) != m.timeline(42).next_after(0.0)

    def test_merged_rate_matches_system_mttf(self):
        """Mean inter-arrival over many draws ≈ node MTTF / n_nodes."""
        m = FailureModel(node_mttf_s=4000.0, n_nodes=8)
        tl = m.timeline(7)
        times = []
        t = 0.0
        for _ in range(4000):
            t = tl.next_after(t)
            times.append(t)
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        assert statistics.mean(gaps) == pytest.approx(m.system_mttf_s, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel(node_mttf_s=0.0)
        with pytest.raises(ConfigurationError):
            FailureModel(node_mttf_s=100.0, n_nodes=0)


class TestIntervalMath:
    def test_young_formula(self):
        assert young_interval(10.0, 2000.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 2000.0)
        )
        assert young_interval(10.0, math.inf) == math.inf

    def test_daly_refinement(self):
        tau = daly_interval(10.0, 2000.0, 5.0)
        assert tau == pytest.approx(math.sqrt(2 * 10.0 * 2005.0) - 10.0)
        assert daly_interval(10.0, math.inf) == math.inf
        # Clamped at the checkpoint cost itself when MTTF is tiny.
        assert daly_interval(10.0, 1.0, 0.0) == 10.0

    def test_resolve_interval(self):
        assert resolve_interval("young", 10.0, 2000.0) == young_interval(10.0, 2000.0)
        assert resolve_interval("daly", 10.0, 2000.0, 5.0) == daly_interval(
            10.0, 2000.0, 5.0
        )
        assert resolve_interval(123.0, 10.0, 2000.0) == 123.0
        with pytest.raises(ConfigurationError):
            resolve_interval("hourly", 10.0, 2000.0)
        with pytest.raises(ConfigurationError):
            resolve_interval(0.0, 10.0, 2000.0)

    def test_segment_works(self):
        assert segment_works(100.0, math.inf) == [100.0]
        assert segment_works(100.0, 40.0) == [40.0, 40.0, 20.0]
        assert sum(segment_works(97.3, 13.0)) == pytest.approx(97.3)

    def test_failure_free_closed_forms(self):
        spec = CheckpointSpec(
            work_s=100.0, interval_s=40.0, ckpt_s=5.0, restart_s=3.0, mttf_s=math.inf
        )
        assert spec.n_checkpoints == 3
        assert expected_makespan(spec) == pytest.approx(115.0)
        assert expected_failures(spec) == 0.0
        assert expected_energy(spec, 100.0, 50.0, 30.0, 10.0) == pytest.approx(
            100.0 * 100.0 + 3 * 50.0
        )


class TestLifecycle:
    def test_failure_free_reduction(self):
        spec = CheckpointSpec(
            work_s=600.0, interval_s=math.inf, ckpt_s=12.5, restart_s=7.0,
            mttf_s=math.inf,
        )
        st = run_lifecycle(spec)
        assert st.makespan_s == 612.5
        assert st.n_checkpoints == st.n_ckpt_attempts == 1
        assert st.n_failures == st.n_restarts == 0
        assert st.compute_busy_s == 600.0 and st.rework_s == 0.0
        assert st.ckpt_busy_s == 12.5 and st.ckpt_partial_s == 0.0
        labels = [iv.label for iv in st.intervals]
        assert labels == ["compute", "checkpoint"]

    def test_periodic_checkpoints_failure_free(self):
        spec = CheckpointSpec(
            work_s=100.0, interval_s=30.0, ckpt_s=2.0, restart_s=1.0, mttf_s=math.inf
        )
        st = run_lifecycle(spec)
        assert st.n_checkpoints == 4  # 30+30+30+10
        assert st.makespan_s == pytest.approx(108.0)

    def test_result_returned_via_process_result(self):
        """The stats come back through Process.result, not shared state."""
        spec = CheckpointSpec(
            work_s=10.0, interval_s=math.inf, ckpt_s=1.0, restart_s=1.0,
            mttf_s=math.inf,
        )
        loop = EventLoop()
        proc = loop.spawn(lifecycle_process(loop, spec, None))
        loop.run()
        assert proc.finished and proc.result.makespan_s == 11.0

    def test_same_seed_byte_identical(self):
        model = FailureModel(node_mttf_s=900.0, n_nodes=3)
        spec = CheckpointSpec(
            work_s=1500.0, interval_s=60.0, ckpt_s=8.0, restart_s=4.0,
            mttf_s=model.system_mttf_s, downtime_s=20.0,
        )
        a = run_lifecycle(spec, model.timeline(11))
        b = run_lifecycle(spec, model.timeline(11))
        assert a == b  # dataclass equality covers every interval, bit for bit
        assert a.n_failures > 0  # the scenario actually exercises failures

    def test_accounting_identities(self):
        model = FailureModel(node_mttf_s=700.0, n_nodes=2)
        spec = CheckpointSpec(
            work_s=2000.0, interval_s=80.0, ckpt_s=10.0, restart_s=5.0,
            mttf_s=model.system_mttf_s, downtime_s=15.0,
        )
        st = run_lifecycle(spec, model.timeline(5))
        # Committed checkpoints cover the whole work; every failure restarts.
        assert st.n_checkpoints == spec.n_checkpoints
        assert st.n_failures >= st.n_restarts
        assert st.downtime_s == pytest.approx(st.n_failures * 15.0)
        # The timeline tiles the makespan exactly: busy + downtime == span.
        busy = st.compute_busy_s + st.ckpt_busy_s + st.restart_busy_s
        assert busy + st.downtime_s == pytest.approx(st.makespan_s)
        # Intervals are disjoint and ordered.
        ivs = sorted(st.intervals, key=lambda iv: iv.start_s)
        for prev, cur in zip(ivs, ivs[1:]):
            assert cur.start_s >= prev.end_s - 1e-9

    def test_compact_intervals_rebases_gaplessly(self):
        model = FailureModel(node_mttf_s=500.0, n_nodes=2)
        spec = CheckpointSpec(
            work_s=800.0, interval_s=50.0, ckpt_s=6.0, restart_s=3.0,
            mttf_s=model.system_mttf_s, downtime_s=10.0,
        )
        st = run_lifecycle(spec, model.timeline(2))
        compute = compact_intervals(st.intervals, {"compute"})
        assert compute[0].start_s == 0.0
        for prev, cur in zip(compute, compute[1:]):
            assert cur.start_s == pytest.approx(prev.end_s)
        assert sum(iv.end_s - iv.start_s for iv in compute) == pytest.approx(
            st.compute_busy_s
        )

    def test_unreachable_work_raises(self):
        from repro.errors import SimulationError
        from repro.workloads import lifecycle as lc

        model = FailureModel(node_mttf_s=1.0, n_nodes=1)
        spec = CheckpointSpec(
            work_s=1000.0, interval_s=1000.0, ckpt_s=5.0, restart_s=5.0,
            mttf_s=model.system_mttf_s,
        )
        old = lc.MAX_FAILURES
        lc.MAX_FAILURES = 200
        try:
            with pytest.raises(SimulationError):
                run_lifecycle(spec, model.timeline(0))
        finally:
            lc.MAX_FAILURES = old


class TestSimulationMatchesClosedForm:
    """The acceptance gate: event-loop expectation ≈ Daly closed form.

    Tolerances are documented in docs/user-guide/checkpointing.md: the
    makespan renewal model is exact (sampling error only — 5 % over 50
    seeds); the first-order energy expansion is coarser (15 %).
    """

    @pytest.fixture(scope="class")
    def scenario(self):
        model = FailureModel(node_mttf_s=2000.0, n_nodes=4)
        tau = daly_interval(12.5, model.system_mttf_s, 7.0)
        spec = CheckpointSpec(
            work_s=3000.0, interval_s=tau, ckpt_s=12.5, restart_s=7.0,
            mttf_s=model.system_mttf_s, downtime_s=30.0,
        )
        return model, spec

    def test_expected_makespan(self, scenario):
        model, spec = scenario
        runs = [run_lifecycle(spec, model.timeline(s)) for s in range(50)]
        mean = statistics.mean(st.makespan_s for st in runs)
        assert mean == pytest.approx(expected_makespan(spec), rel=0.05)

    def test_expected_failures(self, scenario):
        model, spec = scenario
        runs = [run_lifecycle(spec, model.timeline(s)) for s in range(50)]
        mean = statistics.mean(st.n_failures for st in runs)
        assert mean == pytest.approx(expected_failures(spec), rel=0.15)

    def test_daly_interval_beats_extremes_in_expectation(self, scenario):
        """τ_daly is near-optimal: much better than checkpointing far too
        rarely or far too often."""
        model, spec = scenario
        t_opt = expected_makespan(spec)
        for tau in (spec.ckpt_s * 1.01, 50 * spec.interval_s):
            worse = CheckpointSpec(
                work_s=spec.work_s, interval_s=tau, ckpt_s=spec.ckpt_s,
                restart_s=spec.restart_s, mttf_s=spec.mttf_s,
                downtime_s=spec.downtime_s,
            )
            assert expected_makespan(worse) > t_opt
