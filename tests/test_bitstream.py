"""Bit-level I/O: vectorized packing and sequential reader/writer agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from repro.errors import DecompressionError


class TestPackBits:
    def test_roundtrip_simple(self):
        values = np.array([5, 0, 255, 1], dtype=np.uint64)
        widths = np.array([3, 1, 8, 2])
        out = unpack_bits(pack_bits(values, widths), widths)
        np.testing.assert_array_equal(out, values)

    def test_empty(self):
        assert pack_bits(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=int)) == b""
        assert unpack_bits(b"", np.zeros(0, dtype=int)).size == 0

    def test_zero_widths_contribute_nothing(self):
        values = np.array([7, 3, 7], dtype=np.uint64)
        widths = np.array([3, 0, 3])
        packed = pack_bits(values, widths)
        assert len(packed) == 1  # 6 bits -> 1 byte
        out = unpack_bits(packed, widths)
        np.testing.assert_array_equal(out, [7, 0, 7])

    def test_width_64(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        widths = np.array([64, 64, 64])
        out = unpack_bits(pack_bits(values, widths), widths)
        np.testing.assert_array_equal(out, values)

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], dtype=np.uint64), np.array([65]))
        with pytest.raises(ValueError):
            pack_bits(np.array([1], dtype=np.uint64), np.array([-1]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1, 2], dtype=np.uint64), np.array([3]))

    def test_truncated_stream_raises(self):
        packed = pack_bits(np.array([1] * 10, dtype=np.uint64), np.full(10, 7))
        with pytest.raises(DecompressionError):
            unpack_bits(packed[:-1], np.full(10, 7))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(1, 33)),
            min_size=1,
            max_size=200,
        )
    )
    def test_roundtrip_property(self, pairs):
        widths = np.array([w for _, w in pairs], dtype=np.int64)
        values = np.array(
            [v & ((1 << w) - 1) for v, w in pairs], dtype=np.uint64
        )
        out = unpack_bits(pack_bits(values, widths), widths)
        np.testing.assert_array_equal(out, values)


class TestBitWriterReader:
    def test_single_bits(self):
        w = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bits(0b01, 2)
        r = BitReader(w.getvalue())
        assert r.read_bits(4) == 0b1011
        assert r.read_bits(2) == 0b01

    def test_interop_with_pack_bits(self):
        """Sequential writer output parses with the vectorized unpacker."""
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b11110000, 8)
        out = unpack_bits(w.getvalue(), np.array([3, 8]))
        np.testing.assert_array_equal(out, [0b101, 0b11110000])

    def test_bit_length_tracks(self):
        w = BitWriter()
        assert w.bit_length == 0
        w.write_bit(1)
        assert w.bit_length == 1
        w.write_bits(0, 13)
        assert w.bit_length == 14

    def test_eof_raises(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(DecompressionError):
            r.read_bit()

    def test_seek(self):
        w = BitWriter()
        w.write_bits(0b10110011, 8)
        r = BitReader(w.getvalue())
        r.read_bits(5)
        r.seek_bit(2)
        assert r.read_bits(3) == 0b110

    def test_large_width_values(self):
        w = BitWriter()
        w.write_bits((1 << 50) - 3, 50)
        r = BitReader(w.getvalue())
        assert r.read_bits(50) == (1 << 50) - 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 21)), max_size=80))
    def test_writer_reader_property(self, pairs):
        w = BitWriter()
        expected = []
        for v, width in pairs:
            v &= (1 << width) - 1
            w.write_bits(v, width)
            expected.append((v, width))
        r = BitReader(w.getvalue())
        for v, width in expected:
            assert r.read_bits(width) == v
