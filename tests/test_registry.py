"""Registry edge cases and the toy third-party experiment kind.

Covers the registration protocol (duplicate names, missing or mis-declared
members, unknown spec fields, op conflicts — all rejected eagerly with
``ConfigurationError``), the clean-failure contract for unknown kinds on
both the spec and CLI paths, and a toy plugin kind registered in-test that
runs end-to-end through SweepEngine + ResultStore + CLI and inherits the
full conformance battery from ``tests/test_conformance.py``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import pytest

from repro.core.experiments import Testbed
from repro.errors import ConfigurationError
from repro.runtime import registry
from repro.runtime.engine import SweepEngine
from repro.runtime.spec import SweepSpec
from repro.runtime.store import ResultStore, decode_record, encode_record

from test_conformance import assert_kind_conformance, cli_args, run_kind


# -- a complete toy third-party kind ------------------------------------------


@dataclass(frozen=True)
class ToyPoint:
    """A plugin record: not defined in repro.core.experiments at all."""

    dataset: str
    codec: str | None
    rel_bound: float | None
    score: float


def _toy_evaluate(testbed, dataset, codec, rel_bound):
    # Deterministic and testbed-independent: the plugin op need not be a
    # Testbed method at all.
    score = float(len(dataset)) + (0.0 if rel_bound is None else rel_bound)
    return ToyPoint(dataset=dataset, codec=codec, rel_bound=rel_bound, score=score)


def _toy_expand(spec):
    from repro.runtime.spec import GridPoint

    return [
        GridPoint.make("toy_point", dataset=ds, codec=codec, rel_bound=eps)
        for ds in spec.datasets
        for codec in spec.codecs
        for eps in spec.bounds
    ]


def _toy_invariants(records):
    return [
        f"record[{i}]: non-positive score"
        for i, rec in enumerate(records)
        if rec["score"] <= 0
    ]


def make_toy_kind(name="toy", **overrides):
    members = dict(
        name=name,
        help="a third-party demonstration kind",
        record="ToyPoint",
        load_record=lambda: ToyPoint,
        expand=_toy_expand,
        ops=("toy_point",),
        evaluate={"toy_point": _toy_evaluate},
        spec_fields=("datasets", "codecs", "bounds"),
        invariants=_toy_invariants,
        conformance=dict(datasets=("cesm",), codecs=("szx",), bounds=(1e-3, 1e-4)),
    )
    members.update(overrides)
    return registry.ExperimentKind(**members)


@pytest.fixture
def toy_kind():
    kind = registry.register(make_toy_kind())
    try:
        yield kind
    finally:
        registry.unregister(kind.name)


# -- registration protocol ----------------------------------------------------


class TestRegistrationProtocol:
    def test_duplicate_name_rejected(self, toy_kind):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(make_toy_kind())

    def test_duplicate_builtin_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(make_toy_kind(name="dvfs"))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"help": ""},
            {"record": ""},
            {"load_record": None},
            {"load_record": "ToyPoint"},
            {"expand": None},
            {"expand": "expand"},
            {"ops": ()},
            {"ops": ("toy_point", "")},
            {"ops": "toy_point"},
            {"spec_fields": "datasets"},
        ],
        ids=lambda o: f"{next(iter(o))}={next(iter(o.values()))!r}",
    )
    def test_missing_or_invalid_member_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            registry.register(make_toy_kind(**overrides))

    def test_unknown_spec_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown spec fields"):
            registry.register(make_toy_kind(spec_fields=("datasets", "warp_factor")))

    def test_evaluate_must_map_declared_ops(self):
        with pytest.raises(ConfigurationError, match="evaluate"):
            registry.register(
                make_toy_kind(evaluate={"other_op": _toy_evaluate})
            )

    def test_op_conflict_with_builtin_rejected(self):
        # io_point is a Testbed-method op; a plugin claiming it with its own
        # callable would silently change every io sweep's results.
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(
                make_toy_kind(ops=("io_point",), evaluate={"io_point": _toy_evaluate})
            )

    def test_non_callable_optional_members_rejected(self):
        with pytest.raises(ConfigurationError, match="must be callable"):
            registry.register(make_toy_kind(invariants="not-callable"))

    def test_conformance_must_be_dict(self):
        with pytest.raises(ConfigurationError, match="conformance"):
            registry.register(make_toy_kind(conformance=[("datasets", ("cesm",))]))

    def test_rejected_registration_leaves_no_trace(self):
        with pytest.raises(ConfigurationError):
            registry.register(make_toy_kind(spec_fields=("warp_factor",)))
        assert "toy" not in registry.kind_names()
        with pytest.raises(ConfigurationError):
            registry.get_kind("toy")

    def test_unregister_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="not registered"):
            registry.unregister("never-registered")

    def test_register_record_requires_dataclass(self):
        with pytest.raises(ConfigurationError, match="not a dataclass"):
            registry.register_record(object)

    def test_register_record_name_collision_rejected(self):
        @dataclass(frozen=True)
        class DvfsPoint:  # shadows the real record's __record__ tag
            x: int

        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register_record(DvfsPoint)
        # The rejected class never reaches the shared record-type map.
        from repro.core.experiments import DvfsPoint as RealDvfsPoint

        assert registry.record_types()["DvfsPoint"] is RealDvfsPoint


# -- clean failures for unknown kinds -----------------------------------------


class TestUnknownKindFailure:
    def test_spec_names_known_kinds(self):
        with pytest.raises(ConfigurationError) as err:
            SweepSpec(kind="bogus")
        message = str(err.value)
        assert "bogus" in message
        for name in ("serial", "io", "pipeline", "dvfs", "checkpoint"):
            assert name in message

    def test_cli_names_known_kinds(self):
        from repro.cli import main

        with pytest.raises(ConfigurationError) as err:
            main(["sweep", "--kind", "bogus", "--scale", "tiny"])
        message = str(err.value)
        assert "bogus" in message and "checkpoint" in message

    def test_unknown_op_names_registered_ops(self):
        with pytest.raises(ConfigurationError, match="no evaluate entrypoint"):
            registry.evaluate_op(object(), "warp_drive", {})


# -- the toy kind end-to-end --------------------------------------------------


class TestToyKindEndToEnd:
    def test_spec_accepts_plugin_kind(self, toy_kind):
        spec = SweepSpec(kind="toy", datasets=("cesm",), codecs=("szx",),
                         bounds=(1e-3,))
        assert [p.op for p in spec.points()] == ["toy_point"]

    def test_sweeps_through_engine_and_store(self, toy_kind, tmp_path):
        tb = Testbed(scale="tiny")
        spec = SweepSpec(kind="toy", **toy_kind.conformance)
        engine = SweepEngine(testbed=tb, store=ResultStore(cache_dir=tmp_path))
        records = engine.run(spec)
        assert [type(r).__name__ for r in records] == ["ToyPoint", "ToyPoint"]
        assert records[0].score == pytest.approx(4.0 + 1e-3)
        # The plugin record round-trips the tagged store encoding.
        assert decode_record(encode_record(records[0])) == records[0]
        # And the on-disk entries parse back on a fresh store.
        fresh = SweepEngine(testbed=tb, store=ResultStore(cache_dir=tmp_path))
        assert fresh.run(spec) == records
        assert fresh.stats.computed == 0

    def test_cli_table_and_json(self, toy_kind, capsys):
        from repro.cli import main

        argv = cli_args(toy_kind)
        assert main(argv) == 0
        emitted = [r for r in json.loads(capsys.readouterr().out)
                   if "__record__" in r]
        assert {rec["__record__"] for rec in emitted} == {"ToyPoint"}
        assert toy_kind.check_records(emitted) == []
        # No registered table renderer: the generic repr table still prints.
        assert main([a for a in argv if a != "--json"]) == 0
        assert "ToyPoint" in capsys.readouterr().out

    def test_inherits_conformance_battery(self, toy_kind, tmp_path, capsys):
        assert_kind_conformance(Testbed(scale="tiny"), toy_kind, tmp_path, capsys)

    def test_schema_derived_for_plugin_record(self, toy_kind):
        schema = toy_kind.json_schema()
        assert set(schema["required"]) == (
            {f.name for f in dataclasses.fields(ToyPoint)} | {"__record__"}
        )
        assert schema["properties"]["codec"]["type"] == ["string", "null"]

    def test_unregister_restores_clean_failure(self):
        kind = registry.register(make_toy_kind())
        registry.unregister(kind.name)
        assert "toy" not in registry.kind_names()
        assert "ToyPoint" not in registry.record_types()
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="toy")
        with pytest.raises(ConfigurationError, match="no evaluate entrypoint"):
            registry.evaluate_op(object(), "toy_point", {})
