"""Canonical Huffman codec: roundtrips, compactness, malformed streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.huffman import HuffmanCodec, huffman_decode, huffman_encode
from repro.errors import DecompressionError


class TestRoundtrip:
    def test_simple(self):
        syms = np.array([1, 2, 1, 1, 3, 2, 1, 1, 1], dtype=np.int64)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)

    def test_empty(self):
        out = huffman_decode(huffman_encode(np.zeros(0, dtype=np.int64)))
        assert out.size == 0

    def test_single_distinct_symbol(self):
        syms = np.full(1000, 42, dtype=np.int64)
        blob = huffman_encode(syms)
        np.testing.assert_array_equal(huffman_decode(blob), syms)
        assert len(blob) < 64  # degenerate alphabet must stay tiny

    def test_two_symbols(self):
        syms = np.array([0, 1] * 500, dtype=np.int64)
        blob = huffman_encode(syms)
        np.testing.assert_array_equal(huffman_decode(blob), syms)
        # ~1 bit/symbol plus header.
        assert len(blob) < 1000 // 8 + 64

    def test_large_alphabet(self, rng):
        syms = rng.integers(0, 5000, size=20000)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)

    def test_skewed_distribution_beats_flat_coding(self, rng):
        # Geometric-ish: mostly 0/1 — entropy far below log2(alphabet).
        syms = rng.geometric(0.7, size=30000) - 1
        blob = huffman_encode(syms)
        assert len(blob) * 8 < 0.5 * 30000 * np.log2(syms.max() + 2)

    def test_long_codes_exercise_slow_path(self):
        # Exponential frequencies force codes longer than the 12-bit table.
        parts = [np.full(2**i, i, dtype=np.int64) for i in range(18)]
        syms = np.concatenate(parts)
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            huffman_encode(np.array([-1, 2]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            huffman_encode(np.zeros((2, 2), dtype=np.int64))

    def test_truncated_header(self):
        with pytest.raises(DecompressionError):
            huffman_decode(b"\x01\x02")

    def test_truncated_payload(self):
        blob = huffman_encode(np.arange(100, dtype=np.int64))
        with pytest.raises(DecompressionError):
            huffman_decode(blob[: len(blob) // 2])

    def test_corrupt_code_length_raises_decompression_error(self):
        # Flip a stored length past MAX_CODE_LENGTH: must stay a
        # DecompressionError, never an arithmetic overflow.
        blob = bytearray(huffman_encode(np.arange(10, dtype=np.int64)))
        lengths_off = 10 + 10 * 8  # header + symbol table
        blob[lengths_off] = 200
        with pytest.raises(DecompressionError):
            huffman_decode(bytes(blob))

    def test_random_corruption_never_escapes_decompression_error(self, rng):
        # Single-bit corruption anywhere in the stream must either decode
        # (to garbage) or raise DecompressionError — nothing else.
        good = huffman_encode(rng.geometric(0.4, size=2000) - 1)
        for _ in range(300):
            blob = bytearray(good)
            blob[rng.integers(0, len(blob))] ^= 1 << rng.integers(0, 8)
            try:
                huffman_decode(bytes(blob))
            except DecompressionError:
                pass

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 300), min_size=1, max_size=500).map(
            lambda xs: np.array(xs, dtype=np.int64)
        )
    )
    def test_roundtrip_property(self, syms):
        np.testing.assert_array_equal(huffman_decode(huffman_encode(syms)), syms)


class TestCodecObject:
    def test_instances_are_stateless(self):
        c = HuffmanCodec()
        a = np.array([1, 1, 2], dtype=np.int64)
        b = np.array([9, 8, 9, 9], dtype=np.int64)
        blob_a = c.encode(a)
        blob_b = c.encode(b)
        np.testing.assert_array_equal(c.decode(blob_a), a)
        np.testing.assert_array_equal(c.decode(blob_b), b)

    def test_deterministic(self):
        syms = np.array([3, 1, 4, 1, 5, 9, 2, 6] * 10, dtype=np.int64)
        assert huffman_encode(syms) == huffman_encode(syms)
