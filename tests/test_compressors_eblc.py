"""Per-EBLC behaviour beyond the shared contract (see test_error_bounds_property)."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.compressors import SZ2, SZ3, QoZ, SZx, ZFP, get_compressor
from repro.errors import CompressionError, DecompressionError
from repro.metrics import check_error_bound, psnr


class TestSharedBehaviour:
    def test_roundtrip_all_ranks(self, eblc_name, any_field):
        eps = 1e-3
        buf = compress(np.array(any_field), eblc_name, eps)
        rec = decompress(buf)
        assert rec.shape == any_field.shape
        assert rec.dtype == any_field.dtype
        check_error_bound(any_field, rec, eps)

    def test_constant_array_exact(self, eblc_name):
        data = np.full((7, 9), 3.25, dtype=np.float32)
        buf = compress(data, eblc_name, 1e-2)
        rec = decompress(buf)
        np.testing.assert_array_equal(rec, data)
        assert buf.ratio > 3  # constant arrays must collapse

    def test_tighter_bound_lower_ratio_higher_psnr(self, eblc_name, smooth_3d):
        loose = compress(np.array(smooth_3d), eblc_name, 1e-1)
        tight = compress(np.array(smooth_3d), eblc_name, 1e-4)
        assert tight.ratio <= loose.ratio * 1.05
        p_loose = psnr(smooth_3d, decompress(loose))
        p_tight = psnr(smooth_3d, decompress(tight))
        assert p_tight > p_loose

    def test_rejects_bad_bound(self, eblc_name):
        comp = get_compressor(eblc_name)
        data = np.ones((4, 4), dtype=np.float32)
        with pytest.raises(CompressionError):
            comp.compress(data, 0.0)
        with pytest.raises(CompressionError):
            comp.compress(data, 1.5)

    def test_rejects_nonfinite(self, eblc_name):
        comp = get_compressor(eblc_name)
        data = np.array([1.0, np.nan, 2.0])
        with pytest.raises(CompressionError):
            comp.compress(data, 1e-3)

    def test_rejects_wrong_codec_stream(self, eblc_name, smooth_2d):
        buf = compress(np.array(smooth_2d), eblc_name, 1e-2)
        other = "sz3" if eblc_name != "sz3" else "zfp"
        with pytest.raises(DecompressionError):
            get_compressor(other).decompress(buf)

    def test_float64_inputs(self, eblc_name, noisy_3d):
        buf = compress(noisy_3d, eblc_name, 1e-3)
        rec = decompress(buf)
        assert rec.dtype == np.float64
        check_error_bound(noisy_3d, rec, 1e-3)


class TestSZ2:
    def test_mixed_predictors_used(self, rng):
        """Planar + walk data should engage both regression and Lorenzo."""
        i, j, k = np.meshgrid(*[np.arange(12)] * 3, indexing="ij")
        plane = 5.0 * i + 2.0 * j - k
        walk = np.cumsum(rng.standard_normal((12, 12, 12)), axis=0) * 3
        data = plane + walk
        buf = SZ2().compress(data, 1e-3)
        rec = SZ2().decompress(buf)
        check_error_bound(data, rec, 1e-3)

    def test_regression_bias_parameter(self, smooth_3d):
        biased = SZ2(regression_bias=100.0)  # effectively disable regression
        buf = biased.compress(np.array(smooth_3d), 1e-3)
        rec = biased.decompress(buf)
        check_error_bound(smooth_3d, rec, 1e-3)

    def test_4d_blocks(self, field_4d):
        buf = SZ2().compress(field_4d, 1e-3)
        check_error_bound(field_4d, SZ2().decompress(buf), 1e-3)


class TestSZ3:
    def test_beats_sz2_on_smooth_loose(self, smooth_3d):
        sz3 = SZ3().compress(np.array(smooth_3d), 1e-1)
        sz2 = SZ2().compress(np.array(smooth_3d), 1e-1)
        assert sz3.ratio > sz2.ratio * 0.8  # interpolation wins or ties

    def test_anchor_exactness(self):
        data = np.linspace(0, 100, 128).astype(np.float32).reshape(128)
        buf = SZ3().compress(data, 1e-2)
        rec = SZ3().decompress(buf)
        assert rec[0] == data[0]  # anchor stored exactly


class TestQoZ:
    def test_better_psnr_than_sz3_at_same_bound(self, smooth_3d):
        data = np.array(smooth_3d)
        q = psnr(data, QoZ().decompress(QoZ().compress(data, 1e-1)))
        s = psnr(data, SZ3().decompress(SZ3().compress(data, 1e-1)))
        assert q >= s - 0.5  # level tightening buys quality

    def test_params_travel_in_stream(self, smooth_2d):
        enc = QoZ(alpha=2.0, beta=8.0)
        buf = enc.compress(np.array(smooth_2d), 1e-2)
        dec = QoZ()  # default params; must use the stored ones
        rec = dec.decompress(buf)
        check_error_bound(smooth_2d, rec, 1e-2)
        np.testing.assert_array_equal(rec, enc.decompress(buf))

    def test_invalid_params(self):
        with pytest.raises(CompressionError):
            QoZ(alpha=0.5)

    def test_compress_to_psnr(self, smooth_3d):
        buf, achieved = QoZ().compress_to_psnr(np.array(smooth_3d), 70.0)
        assert achieved >= 70.0
        rec = QoZ().decompress(buf)
        assert psnr(smooth_3d, rec) >= 70.0


class TestZFP:
    def test_psnr_overachieves_bound(self, smooth_3d):
        """ZFP's fixed-accuracy mode typically lands well inside the bound."""
        data = np.array(smooth_3d)
        buf = ZFP().compress(data, 1e-2)
        rec = ZFP().decompress(buf)
        err = np.abs(rec.astype(np.float64) - data).max()
        bound = 1e-2 * (data.max() - data.min())
        assert err < bound  # strictly inside, usually by a wide margin

    def test_all_zero_blocks(self):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        data[0, 0, 0] = 0.0
        buf = ZFP().compress(data + 1.0, 1e-3)  # constant -> shortcut path
        rec = ZFP().decompress(buf)
        np.testing.assert_array_equal(rec, data + 1.0)

    def test_zero_regions_cheap(self, rng):
        data = np.zeros((16, 16, 16))
        data[:4] = rng.standard_normal((4, 16, 16))
        buf = ZFP().compress(data, 1e-3)
        rec = ZFP().decompress(buf)
        check_error_bound(data, rec, 1e-3)
        np.testing.assert_array_equal(rec[8:], 0.0)

    def test_4d_as_3d_slabs(self, field_4d):
        buf = ZFP().compress(field_4d, 1e-3)
        check_error_bound(field_4d, ZFP().decompress(buf), 1e-3)


class TestSZx:
    def test_constant_blocks_detected(self):
        data = np.concatenate([np.full(256, 5.0), np.linspace(0, 50, 256)])
        buf = SZx().compress(data.astype(np.float32), 1e-2)
        rec = SZx().decompress(buf)
        check_error_bound(data.astype(np.float32), rec, 1e-2)

    def test_fastest_smallest_machinery(self, noisy_3d):
        """SZx streams have no entropy stage: size ~ fixed-width codes."""
        buf = SZx().compress(noisy_3d, 1e-3)
        rec = SZx().decompress(buf)
        check_error_bound(noisy_3d, rec, 1e-3)
        assert buf.ratio < 16  # noisy data cannot exceed the fixed-width floor

    def test_non_multiple_of_block(self, rng):
        data = rng.standard_normal(1000)  # not a multiple of 128
        buf = SZx().compress(data, 1e-2)
        rec = SZx().decompress(buf)
        assert rec.shape == (1000,)
        check_error_bound(data, rec, 1e-2)
