"""Edge-path coverage: errors, report bars, framing corners, topology."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.cluster import MultiNodeCampaign
from repro.core.report import format_stacked_bars, si
from repro.energy import get_cpu
from repro.errors import (
    CompressionError,
    ConfigurationError,
    DecompressionError,
    ErrorBoundViolation,
    ReproError,
)
from repro.iolib import PFSModel, get_io_library


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (CompressionError, DecompressionError, ConfigurationError):
            assert issubclass(exc, ReproError)
        assert issubclass(ErrorBoundViolation, CompressionError)

    def test_bound_violation_carries_numbers(self):
        e = ErrorBoundViolation(0.5, 0.1)
        assert e.max_error == 0.5 and e.bound == 0.1
        assert "0.5" in str(e)

    def test_custom_message(self):
        e = ErrorBoundViolation(1.0, 0.5, "custom")
        assert str(e) == "custom"


class TestReportEdges:
    def test_si_negative_values(self):
        assert si(-2500.0, "J").startswith("-2.5")

    def test_si_tiny_values(self):
        assert si(0.5, "J") == "0.5 J"

    def test_stacked_bars_zero_total(self):
        out = format_stacked_bars("T", "x", [("a", 0.0, 0.0)])
        assert "a" in out  # no division-by-zero


class TestFramingCorners:
    def test_1d_single_element(self):
        data = np.array([3.5], dtype=np.float64)
        for codec in ("sz2", "sz3", "zfp", "szx"):
            rec = decompress(compress(data, codec, 1e-2))
            np.testing.assert_allclose(rec, data, atol=1e-12)

    def test_negative_only_data(self):
        data = -np.abs(np.random.default_rng(1).standard_normal((9, 9))) - 5.0
        for codec in ("sz3", "zfp", "szx"):
            buf = compress(data, codec, 1e-3)
            rec = decompress(buf)
            rng = data.max() - data.min()
            assert np.abs(rec - data).max() <= 1e-3 * rng * (1 + 1e-9)

    def test_tiny_bound_still_honoured(self):
        data = np.random.default_rng(2).uniform(0, 1, 500).astype(np.float32)
        buf = compress(data, "sz3", 1e-7)
        rec = decompress(buf)
        rng = float(data.max() - data.min())
        assert np.abs(rec.astype(np.float64) - data).max() <= 1e-7 * rng + 2**-22

    def test_bound_of_exactly_one(self):
        data = np.random.default_rng(3).standard_normal(300)
        buf = compress(data, "szx", 1.0)
        rec = decompress(buf)
        rng = data.max() - data.min()
        assert np.abs(rec - data).max() <= rng


class TestCampaignTopology:
    def test_partial_node_fill(self):
        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=10**7,
        )
        r = campaign.run(20, None)  # fewer cores than one node has
        assert r.nodes == 1 and r.ranks_per_node == 20
        r = campaign.run(100, None)  # 48 + 48 + 4 -> 3 nodes at 48 rpn sizing
        assert r.nodes == 3

    def test_single_core(self):
        campaign = MultiNodeCampaign(
            cpu=get_cpu("plat8160"),
            pfs=PFSModel(),
            io_library=get_io_library("hdf5"),
            payload_nbytes=10**7,
        )
        r = campaign.run(1, "szx", 1e-3, compression_ratio=4.0)
        assert r.total_energy_j > 0
        assert r.written_bytes_total == 25 * 10**5


class TestNetCDFArrayKinds:
    def test_float64_roundtrip(self, rng):
        lib = get_io_library("netcdf")
        data = {"rho": rng.standard_normal((4, 5, 6))}
        out, _ = lib.unpack(lib.pack(data))
        np.testing.assert_array_equal(out["rho"], data["rho"])
        assert out["rho"].dtype == np.float64

    def test_many_variables(self, rng):
        lib = get_io_library("netcdf")
        data = {f"v{i}": rng.standard_normal(7).astype(np.float32) for i in range(40)}
        out, _ = lib.unpack(lib.pack(data))
        assert set(out) == set(data)
