"""Figure 7: serial energy (compression + decompression stacked) across
datasets, error bounds and the three Table-I CPUs.

Paper shape: energy rises as the bound tightens (marked between 1e-3 and
1e-5); larger sets cost more; SZx and ZFP are the cheapest codecs; the
4-socket 8260M node posts the largest absolute energies.
"""

from conftest import run_once

from repro.core.report import format_series, format_stacked_bars
from repro.energy.cpus import PAPER_CPUS

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")
DATASETS = ("cesm", "hacc", "nyx", "s3d")


def test_fig07_serial_energy(benchmark, testbed, emit):
    points = run_once(
        benchmark,
        lambda: testbed.run_serial_sweep(
            datasets=DATASETS, codecs=CODECS, bounds=BOUNDS, cpus=PAPER_CPUS
        ),
    )
    by = {(p.cpu, p.dataset, p.codec, p.rel_bound): p for p in points}
    blocks = []
    for cpu in PAPER_CPUS:
        for ds in DATASETS:
            series = {
                codec: [by[(cpu, ds, codec, b)].total_energy_j for b in BOUNDS]
                for codec in CODECS
            }
            blocks.append(
                format_series(
                    f"Fig. 7 - {ds.upper()} serial energy [J] on {cpu}",
                    "REL bound",
                    [f"{b:.0e}" for b in BOUNDS],
                    series,
                    y_format="{:.0f}",
                )
            )
        # One stacked-bar panel per CPU at the tightest bound.
        entries = [
            (
                codec,
                by[(cpu, "s3d", codec, 1e-5)].compress_energy_j,
                by[(cpu, "s3d", codec, 1e-5)].decompress_energy_j,
            )
            for codec in CODECS
        ]
        blocks.append(
            format_stacked_bars(
                f"Fig. 7 (stacked, S3D @ 1e-5) on {cpu}", "codec", entries
            )
        )
    emit("fig07_serial_energy", "\n\n".join(blocks))

    # Shape assertions.
    for cpu in PAPER_CPUS:
        for ds in DATASETS:
            for codec in CODECS:
                es = [by[(cpu, ds, codec, b)].total_energy_j for b in BOUNDS]
                assert all(b >= a * 0.999 for a, b in zip(es, es[1:]))
    # SZx cheapest codec at every (cpu, dataset, bound).
    for cpu in PAPER_CPUS:
        for ds in DATASETS:
            for b in BOUNDS:
                others = [
                    by[(cpu, ds, c, b)].total_energy_j for c in CODECS if c != "szx"
                ]
                assert by[(cpu, ds, "szx", b)].total_energy_j <= min(others)
    # 8260M posts the largest energy for the SZ family.
    for ds in DATASETS:
        assert (
            by[("plat8260m", ds, "sz3", 1e-3)].total_energy_j
            > by[("max9480", ds, "sz3", 1e-3)].total_energy_j
        )
    # Section V-C factor: SZ3 energy grows ~7.2x from 1e-1 to 1e-5.
    g = (
        by[("max9480", "s3d", "sz3", 1e-5)].total_energy_j
        / by[("max9480", "s3d", "sz3", 1e-1)].total_energy_j
    )
    assert 5.0 < g < 9.0
