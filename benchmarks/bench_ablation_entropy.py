"""Ablation: the entropy stage — raw codes vs Huffman vs Huffman+DEFLATE.

DESIGN.md question: why does the SZ family spend compression energy on two
entropy stages?  Measure each stage's contribution to the final ratio on the
SZ3 code stream.
"""

import zlib

import numpy as np
from conftest import run_once

from repro.compressors.huffman import huffman_encode
from repro.compressors.interpolation import interp_encode
from repro.core.report import format_table
from repro.data import generate


def test_ablation_entropy_stage(benchmark, emit):
    data = np.array(generate("nyx", "test"), dtype=np.float64)
    eb = 1e-3 * float(data.max() - data.min())

    def build():
        _, _, codes, _, _ = interp_encode(data, eb)
        raw = codes.astype(np.uint32).nbytes
        huff = len(huffman_encode(codes))
        huff_deflate = len(zlib.compress(huffman_encode(codes), 6))
        deflate_only = len(zlib.compress(codes.astype(np.uint32).tobytes(), 6))
        return raw, huff, huff_deflate, deflate_only

    raw, huff, huff_deflate, deflate_only = run_once(benchmark, build)
    rows = [
        ["raw 32-bit codes", raw, f"{data.nbytes / raw:.2f}"],
        ["DEFLATE only", deflate_only, f"{data.nbytes / deflate_only:.2f}"],
        ["Huffman only", huff, f"{data.nbytes / huff:.2f}"],
        ["Huffman + DEFLATE (SZ3)", huff_deflate, f"{data.nbytes / huff_deflate:.2f}"],
    ]
    text = format_table(
        ["entropy stage", "bytes", "approx CR"],
        rows,
        title="Ablation - entropy stage on the NYX SZ3 code stream @ eps=1e-3",
    )
    emit("ablation_entropy", text)

    # Huffman must beat raw; the stacked pipeline must be the best.
    assert huff < raw
    assert huff_deflate <= huff
    assert huff_deflate <= deflate_only
