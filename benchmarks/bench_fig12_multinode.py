"""Figure 12: multi-node compress+write energy vs core count (NYX, HDF5, 8160).

Paper shape: EBLC energy splits into dominant compression plus a small write
component and grows roughly linearly with cores (weak scaling); the
uncompressed baseline jumps once the aggregate PFS saturates, making EBLC
the cheaper option at 512 cores (~25% total-energy saving).
"""

from conftest import run_once

from repro.core.report import format_series, format_stacked_bars

CORES = (16, 32, 64, 128, 256, 512)
CODECS = ("sz2", "sz3", "zfp", "qoz")


def test_fig12_multinode(benchmark, testbed, emit):
    results = run_once(
        benchmark, lambda: testbed.run_multinode(cores=CORES, codecs=CODECS)
    )
    by = {(r.codec, r.total_cores): r for r in results}
    series = {
        codec: [by[(codec, c)].total_energy_j for c in CORES] for codec in CODECS
    }
    series["Original"] = [by[(None, c)].total_energy_j for c in CORES]
    text = format_series(
        "Fig. 12 - Multi-node compress+write energy [J], NYX field/rank, HDF5, Xeon Platinum 8160",
        "cores",
        list(CORES),
        series,
        y_format="{:.0f}",
    )
    stacked = format_stacked_bars(
        "Fig. 12 (stacked @ 512 cores): compress (bottom) + write (top)",
        "codec",
        [
            (codec, by[(codec, 512)].compress_energy_j, by[(codec, 512)].write_energy_j)
            for codec in CODECS
        ]
        + [("orig", 0.0, by[(None, 512)].write_energy_j)],
        lower_label="compress",
        upper_label="write",
    )
    emit("fig12_multinode", text + "\n\n" + stacked)

    # Crossover: original cheaper at 16 cores, EBLC cheaper at 512.
    for codec in CODECS:
        assert by[(codec, 16)].total_energy_j > by[(None, 16)].total_energy_j
        assert by[(codec, 512)].total_energy_j < by[(None, 512)].total_energy_j
    # The jump: original's write energy grows superlinearly 256 -> 512.
    assert (
        by[(None, 512)].total_energy_j > 2.5 * by[(None, 256)].total_energy_j
    )
    # EBLC: compression dominates the write component (paper Section VI-B).
    # ZFP is exempt: its ratio on the synthetic NYX (~4-5x) is below the
    # paper's (~25x), so its write share stays visible — see EXPERIMENTS.md.
    for codec in CODECS:
        r = by[(codec, 512)]
        if codec != "zfp":
            assert r.compress_energy_j > r.write_energy_j
        assert r.write_energy_j < by[(None, 512)].write_energy_j
    # Roughly-linear weak scaling for EBLC: doubling cores ~doubles energy.
    for codec in CODECS:
        growth = by[(codec, 512)].total_energy_j / by[(codec, 256)].total_energy_j
        assert 1.5 < growth < 3.0
