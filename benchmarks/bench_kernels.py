"""Wall-clock kernels: real pytest-benchmark timings of our reimplementations.

Unlike the figure benches (virtual-testbed energies), these measure the
actual Python codec kernels so performance regressions in this repository
are visible.  Sizes are small; the point is relative movement over time.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import generate

CODECS = ("sz2", "sz3", "qoz", "zfp", "szx")


@pytest.mark.parametrize("codec", CODECS)
def test_kernel_compress_nyx(benchmark, codec):
    data = np.array(generate("nyx", "test"))
    comp = get_compressor(codec)
    buf = benchmark(comp.compress, data, 1e-3)
    assert buf.ratio > 1.0


@pytest.mark.parametrize("codec", CODECS)
def test_kernel_decompress_nyx(benchmark, codec):
    data = np.array(generate("nyx", "test"))
    comp = get_compressor(codec)
    buf = comp.compress(data, 1e-3)
    rec = benchmark(comp.decompress, buf)
    assert rec.shape == data.shape


def test_kernel_huffman_encode(benchmark, rng=np.random.default_rng(0)):
    syms = rng.geometric(0.3, size=200_000).astype(np.int64)
    from repro.compressors.huffman import huffman_encode

    blob = benchmark(huffman_encode, syms)
    assert len(blob) > 0


def test_kernel_pfs_solver(benchmark):
    from repro.iolib.pfs import fair_share_schedule

    r = np.random.default_rng(1)
    arrivals = np.sort(r.uniform(0, 5, 512))
    sizes = r.uniform(1e7, 1e9, 512)
    finish = benchmark(fair_share_schedule, arrivals, sizes, 1000.0, 4000.0)
    assert np.all(np.isfinite(finish))
