"""Wall-clock kernels: real pytest-benchmark timings of our reimplementations.

Unlike the figure benches (virtual-testbed energies), these measure the
actual Python codec kernels so performance regressions in this repository
are visible.  The per-kernel cases are driven by the same
:mod:`repro.runtime.benchmark` specs that back ``repro bench kernels`` and
``BENCH_kernels.json``, so pytest-benchmark and the CLI harness always time
the same code paths on the same representative quantizer-code streams.
Sizes are small; the point is relative movement over time.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import generate
from repro.runtime.benchmark import KERNELS, SYNTHETIC_DATASET, kernel_inputs

CODECS = ("sz2", "sz3", "qoz", "zfp", "szx")


@pytest.mark.parametrize("codec", CODECS)
def test_kernel_compress_nyx(benchmark, codec):
    data = np.array(generate("nyx", "test"))
    comp = get_compressor(codec)
    buf = benchmark(comp.compress, data, 1e-3)
    assert buf.ratio > 1.0


@pytest.mark.parametrize("codec", CODECS)
def test_kernel_decompress_nyx(benchmark, codec):
    data = np.array(generate("nyx", "test"))
    comp = get_compressor(codec)
    buf = comp.compress(data, 1e-3)
    rec = benchmark(comp.decompress, buf)
    assert rec.shape == data.shape


@pytest.mark.parametrize("spec", KERNELS, ids=lambda s: s.name)
@pytest.mark.parametrize("dataset", ("nyx", SYNTHETIC_DATASET))
def test_kernel_spec(benchmark, spec, dataset):
    """Every harness kernel on a representative quantizer-code stream."""
    inputs = kernel_inputs(dataset, target_symbols=1 << 17, scale="test")
    prepared = spec.prepare(inputs)
    if prepared is None:
        pytest.skip(f"{spec.name} does not apply to {dataset}")
    fn, n_symbols, _ = prepared
    result = benchmark(fn)
    assert result is not None
    assert n_symbols > 0


def test_kernel_pfs_solver(benchmark):
    from repro.iolib.pfs import fair_share_schedule

    r = np.random.default_rng(1)
    arrivals = np.sort(r.uniform(0, 5, 512))
    sizes = r.uniform(1e7, 1e9, 512)
    finish = benchmark(fair_share_schedule, arrivals, sizes, 1000.0, 4000.0)
    assert np.all(np.isfinite(finish))
