"""Table II: the benchmark datasets (paper geometry + synthetic bench scale)."""

from conftest import run_once

from repro.core.report import format_table
from repro.data.registry import MAIN_DATASETS, get_dataset


def test_tab02_datasets(benchmark, emit):
    def build():
        rows = []
        for name in MAIN_DATASETS:
            spec = get_dataset(name)
            rows.append(
                [
                    name.upper(),
                    "x".join(str(d) for d in spec.paper_shape),
                    f"{spec.paper_mb:.1f}MB",
                    "Float" if spec.dtype.itemsize == 4 else "Double",
                    "x".join(str(d) for d in spec.scales["bench"]),
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    text = format_table(
        ["Data Set", "Dimensions", "Storage Size", "Precision", "Synthetic (bench)"],
        rows,
        title="Table II - Data Sets for Benchmarking Lossy Compressors",
    )
    emit("tab02_datasets", text)
    assert [r[0] for r in rows] == ["CESM", "HACC", "NYX", "S3D"]
