"""Figure 8: compression ratio vs total (comp+decomp) energy, S3D, MAX 9480.

Paper shape: an inverse relationship — SZx occupies the low-energy/low-ratio
corner, SZ3/QoZ the high-ratio/high-energy corner; within a codec, tighter
bounds move points down-left (lower ratio) and up (more energy).
"""

from conftest import run_once

from repro.core.report import format_table
from repro.runtime.spec import SweepSpec

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")

# One S3D column of the Fig. 5 grid: a warm session store answers all 25
# points from cache after bench_fig05 has run.
SPEC = SweepSpec(
    kind="serial", datasets=("s3d",), codecs=CODECS, bounds=BOUNDS, cpus=("max9480",)
)


def test_fig08_cr_vs_energy(benchmark, engine, emit):
    points = run_once(benchmark, lambda: engine.run(SPEC))
    rows = [
        [
            p.codec,
            f"{p.rel_bound:.0e}",
            f"{p.roundtrip.ratio:.2f}",
            f"{p.total_energy_j:.0f}",
        ]
        for p in points
    ]
    text = format_table(
        ["codec", "REL", "compression ratio", "total energy [J]"],
        rows,
        title="Fig. 8 - CR vs total energy, one S3D field, Intel Xeon CPU MAX 9480",
    )
    emit("fig08_cr_vs_energy", text)

    by = {(p.codec, p.rel_bound): p for p in points}
    # SZx is the energy floor; SZ3 or QoZ the ratio ceiling at loose bounds.
    for b in BOUNDS:
        es = {c: by[(c, b)].total_energy_j for c in CODECS}
        assert min(es, key=es.get) == "szx"
    crs = {c: by[(c, 1e-1)].roundtrip.ratio for c in CODECS}
    assert max(crs, key=crs.get) in ("sz3", "qoz")
    # Inverse trend within SZ3: the loosest bound has both the highest CR
    # and the lowest energy.
    assert by[("sz3", 1e-1)].roundtrip.ratio > by[("sz3", 1e-5)].roundtrip.ratio
    assert by[("sz3", 1e-1)].total_energy_j < by[("sz3", 1e-5)].total_energy_j
