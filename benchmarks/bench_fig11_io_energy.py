"""Figure 11: energy of writing (post-compression) to the PFS, HDF5 vs NetCDF.

Paper shape: compressed writes always cost less than the uncompressed
baseline; the gap grows with dataset size (>= an order of magnitude for
S3D); energy rises as the bound tightens; HDF5 beats NetCDF consistently
(4.3x for HACC/SZx at 1e-3).
"""

from conftest import run_once

from repro.core.report import format_series
from repro.runtime.spec import SweepSpec

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")
DATASETS = ("cesm", "hacc", "nyx", "s3d")
LIBS = ("hdf5", "netcdf")

SPEC = SweepSpec(
    kind="io",
    datasets=DATASETS,
    codecs=CODECS,
    bounds=BOUNDS,
    io_libraries=LIBS,
    cpus=("max9480",),
)


def test_fig11_io_energy(benchmark, engine, emit):
    points = run_once(benchmark, lambda: engine.run(SPEC))
    by = {(p.io_library, p.dataset, p.codec, p.rel_bound): p for p in points}
    blocks = []
    for lib in LIBS:
        for ds in DATASETS:
            series = {
                codec: [by[(lib, ds, codec, b)].write_energy_j for b in BOUNDS]
                for codec in CODECS
            }
            series["Original"] = [
                by[(lib, ds, None, None)].write_energy_j for _ in BOUNDS
            ]
            blocks.append(
                format_series(
                    f"Fig. 11 - {ds.upper()} write energy [J] via {lib.upper()}, MAX 9480",
                    "REL bound",
                    [f"{b:.0e}" for b in BOUNDS],
                    series,
                    y_format="{:.1f}",
                )
            )
    emit("fig11_io_energy", "\n\n".join(blocks))

    # Compressed writes beat the original everywhere.
    for lib in LIBS:
        for ds in DATASETS:
            orig = by[(lib, ds, None, None)].write_energy_j
            for codec in CODECS:
                for b in BOUNDS:
                    assert by[(lib, ds, codec, b)].write_energy_j < orig
    # S3D: at least an order of magnitude from any codec at any bound.
    orig = by[("hdf5", "s3d", None, None)].write_energy_j
    for codec in CODECS:
        for b in BOUNDS:
            assert orig / by[("hdf5", "s3d", codec, b)].write_energy_j > 3.0
    # HDF5 vs NetCDF on HACC/SZx @ 1e-3 (paper: 4.3x; accept 2-6x).
    gap = (
        by[("netcdf", "hacc", "szx", 1e-3)].write_energy_j
        / by[("hdf5", "hacc", "szx", 1e-3)].write_energy_j
    )
    assert 2.0 < gap < 6.0
