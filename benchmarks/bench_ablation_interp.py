"""Ablation: interpolation order — fixed linear vs fixed cubic vs dynamic.

DESIGN.md question: SZ3's dynamic per-(level, dimension) selection is the
paper's "dynamic spline interpolation"; how much ratio does it buy over
forcing one order everywhere?
"""

import numpy as np
from conftest import run_once

from repro.compressors import interpolation as interp
from repro.compressors.huffman import huffman_encode
from repro.core.report import format_table
from repro.data import generate


def _encode_with_forced_mode(data, eb, forced):
    """Re-run the engine with _predict forced to one interpolator."""
    original = interp._predict

    def patched(recon, plan, mode, h):
        return original(recon, plan, forced, h)

    interp._predict = patched
    try:
        anchors, modes, codes, outliers, recon = interp.interp_encode(data, eb)
    finally:
        interp._predict = original
    payload = len(huffman_encode(codes)) + outliers.nbytes + anchors.nbytes
    return payload


def test_ablation_interpolation_order(benchmark, emit):
    data = np.array(generate("nyx", "test"), dtype=np.float64)
    eb = 1e-3 * float(data.max() - data.min())

    def build():
        anchors, modes, codes, outliers, _ = interp.interp_encode(data, eb)
        dyn_payload = len(huffman_encode(codes)) + outliers.nbytes + anchors.nbytes
        lin = _encode_with_forced_mode(data, eb, interp.LINEAR)
        cub = _encode_with_forced_mode(data, eb, interp.CUBIC)
        cubic_share = float(np.mean([m == interp.CUBIC for m in modes]))
        return dyn_payload, lin, cub, cubic_share

    dyn, lin, cub, cubic_share = run_once(benchmark, build)
    rows = [
        ["dynamic (SZ3)", f"{data.nbytes / dyn:.2f}", f"{cubic_share * 100:.0f}% cubic passes"],
        ["fixed linear", f"{data.nbytes / lin:.2f}", ""],
        ["fixed cubic", f"{data.nbytes / cub:.2f}", ""],
    ]
    text = format_table(
        ["interpolator", "approx CR", "notes"],
        rows,
        title="Ablation - interpolation order on NYX @ eps=1e-3",
    )
    emit("ablation_interp", text)

    # Dynamic selection must never lose to the worse fixed choice and must
    # match (or beat, within noise) the better fixed choice.
    assert dyn <= max(lin, cub)
    assert dyn <= min(lin, cub) * 1.05
