"""Shared benchmark fixtures: one Testbed per session, results directory.

Every bench regenerates a paper table/figure through the virtual testbed,
renders it as text, writes it under ``benchmarks/results/`` and echoes it to
stdout (visible with ``pytest -s``).  Compression round-trips are memoized
inside the testbed, so the figure benches share one sweep per session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.experiments import Testbed

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def testbed():
    """Bench-scale testbed shared by every figure/table bench."""
    return Testbed(scale="bench", sample_interval=0.010)


@pytest.fixture(scope="session")
def engine(testbed):
    """The testbed's own sweep engine, for SweepSpec-driven benches."""
    return testbed.engine


@pytest.fixture(scope="session")
def emit():
    """Writer: emit(artifact_id, text) -> results/<artifact_id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(artifact_id: str, text: str) -> str:
        path = RESULTS_DIR / f"{artifact_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _emit


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
