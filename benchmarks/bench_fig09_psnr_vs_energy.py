"""Figure 9: PSNR vs total energy, S3D, MAX 9480.

Paper shape: the mirror of Fig. 8 — higher fidelity costs more energy; QoZ
is the exception whose quality stays high regardless of the nominal bound.
"""

from conftest import run_once

from repro.core.report import format_table

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")


def test_fig09_psnr_vs_energy(benchmark, testbed, emit):
    points = run_once(
        benchmark,
        lambda: testbed.run_serial_sweep(
            datasets=("s3d",), codecs=CODECS, bounds=BOUNDS, cpus=("max9480",)
        ),
    )
    rows = [
        [
            p.codec,
            f"{p.rel_bound:.0e}",
            f"{p.roundtrip.psnr_db:.2f}",
            f"{p.total_energy_j:.0f}",
        ]
        for p in points
    ]
    text = format_table(
        ["codec", "REL", "PSNR [dB]", "total energy [J]"],
        rows,
        title="Fig. 9 - PSNR vs total energy, one S3D field, Intel Xeon CPU MAX 9480",
    )
    emit("fig09_psnr_vs_energy", text)

    by = {(p.codec, p.rel_bound): p for p in points}
    # Within every codec: more energy <-> higher PSNR across the bound sweep.
    for codec in CODECS:
        seq = [by[(codec, b)] for b in BOUNDS]
        psnrs = [p.roundtrip.psnr_db for p in seq]
        energies = [p.total_energy_j for p in seq]
        assert all(b >= a for a, b in zip(psnrs, psnrs[1:])), codec
        assert all(b >= a * 0.999 for a, b in zip(energies, energies[1:])), codec
    # QoZ's loose-bound PSNR beats SZ3's (quality-oriented tuning).
    assert (
        by[("qoz", 1e-1)].roundtrip.psnr_db >= by[("sz3", 1e-1)].roundtrip.psnr_db
    )
