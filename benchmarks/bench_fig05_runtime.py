"""Figure 5: serial compression+decompression runtime vs error bound.

Paper shape: runtime rises as the bound tightens on the Intel Xeon CPU MAX
9480, for all five EBLCs across CESM/HACC/NYX/S3D; HACC is the slowest set
(tens of seconds), SZx the fastest codec everywhere.
"""

from conftest import run_once

from repro.core.report import format_series
from repro.runtime.spec import SweepSpec

BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")
DATASETS = ("cesm", "hacc", "nyx", "s3d")

SPEC = SweepSpec(
    kind="serial", datasets=DATASETS, codecs=CODECS, bounds=BOUNDS, cpus=("max9480",)
)


def test_fig05_runtime_vs_bound(benchmark, engine, emit):
    points = run_once(benchmark, lambda: engine.run(SPEC))
    by = {(p.dataset, p.codec, p.rel_bound): p for p in points}
    blocks = []
    for ds in DATASETS:
        series = {
            codec: [by[(ds, codec, b)].total_time_s for b in BOUNDS]
            for codec in CODECS
        }
        blocks.append(
            format_series(
                f"Fig. 5({'abcd'[DATASETS.index(ds)]}) - {ds.upper()} runtime [s], Intel Xeon CPU MAX 9480",
                "REL bound",
                [f"{b:.0e}" for b in BOUNDS],
                series,
                y_format="{:.2f}",
            )
        )
    emit("fig05_runtime", "\n\n".join(blocks))

    # Shape: runtime monotone non-decreasing as the bound tightens; SZx fastest.
    for ds in DATASETS:
        for codec in CODECS:
            ts = [by[(ds, codec, b)].total_time_s for b in BOUNDS]
            assert all(b >= a * 0.999 for a, b in zip(ts, ts[1:])), (ds, codec)
        for b in BOUNDS:
            others = [by[(ds, c, b)].total_time_s for c in CODECS if c != "szx"]
            assert by[(ds, "szx", b)].total_time_s <= min(others), (ds, b)
