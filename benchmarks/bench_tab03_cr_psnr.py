"""Table III: compression ratio and PSNR for SZ3/ZFP/SZx on NYX/HACC/S3D.

Paper shape: CR falls and PSNR rises as the bound tightens; SZ3 posts the
largest ratios, ZFP the best PSNR at a given bound, SZx the lowest ratios.
"""

from conftest import run_once

from repro.core.report import format_table

BOUNDS = (1e-1, 1e-3, 1e-5)
CODECS = ("sz3", "zfp", "szx")
DATASETS = ("nyx", "hacc", "s3d")


def test_tab03_cr_psnr(benchmark, testbed, emit):
    rows = run_once(
        benchmark,
        lambda: testbed.run_quality_table(
            datasets=DATASETS, codecs=CODECS, bounds=BOUNDS
        ),
    )
    by = {(r.dataset, r.codec, r.rel_bound): r for r in rows}
    table = []
    for ds in DATASETS:
        for b in BOUNDS:
            line = [ds.upper(), f"{b:.0e}"]
            for codec in CODECS:
                rec = by[(ds, codec, b)]
                line += [f"{rec.ratio:.2f}", f"{rec.psnr_db:.2f}"]
            table.append(line)
    headers = ["Data Set", "REL"]
    for codec in CODECS:
        headers += [f"{codec} CR", f"{codec} PSNR"]
    text = format_table(
        headers, table, title="Table III - Select EBLC Statistics (CR, PSNR dB)"
    )
    emit("tab03_cr_psnr", text)

    for ds in DATASETS:
        for codec in CODECS:
            crs = [by[(ds, codec, b)].ratio for b in BOUNDS]
            psnrs = [by[(ds, codec, b)].psnr_db for b in BOUNDS]
            assert crs[0] >= crs[1] >= crs[2], (ds, codec)
            assert psnrs[0] <= psnrs[1] <= psnrs[2], (ds, codec)
        # SZ3 highest ratio, ZFP best quality at 1e-3 (paper's ordering).
        assert by[(ds, "sz3", 1e-3)].ratio >= by[(ds, "szx", 1e-3)].ratio
        assert by[(ds, "zfp", 1e-3)].psnr_db >= by[(ds, "sz3", 1e-3)].psnr_db
