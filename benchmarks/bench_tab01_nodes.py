"""Table I: node specifications of the three experimental platforms."""

from conftest import run_once

from repro.core.report import format_table
from repro.energy.cpus import CPUS, PAPER_CPUS


def test_tab01_node_specifications(benchmark, emit):
    rows = run_once(
        benchmark,
        lambda: [
            [
                CPUS[name].system,
                CPUS[name].model,
                CPUS[name].cores,
                CPUS[name].ram,
                f"{CPUS[name].tdp_w:.0f}W",
            ]
            for name in PAPER_CPUS
        ],
    )
    text = format_table(
        ["System", "Intel CPU Model", "Cores", "RAM", "CPU TDP"],
        rows,
        title="Table I - Summary of Node Specifications",
    )
    emit("tab01_nodes", text)
    assert len(rows) == 3
