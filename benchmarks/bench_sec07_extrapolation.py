"""Section VII: the headline extrapolations.

- S3D/SZ2 @ 1e-3: write-energy reduction vs uncompressed I/O (paper: 262.5x,
  which equals the compression ratio because write energy tracks bytes).
- Storage devices and embodied carbon: CR of 10-100x shrinks device counts
  by the same factor and rack embodied emissions by ~70-75% (SSD) / ~40% (HDD).
"""

from conftest import run_once

from repro.core.extrapolation import (
    embodied_carbon_saving_fraction,
    project_facility,
)
from repro.core.report import format_table
from repro.iolib.devices import get_device


def test_sec07_extrapolation(benchmark, testbed, emit):
    def build():
        orig = testbed.io_point("s3d", None, None, "hdf5", "max9480")
        comp = testbed.io_point("s3d", "sz2", 1e-3, "hdf5", "max9480")
        reduction = orig.write_energy_j / comp.write_energy_j
        ratio = testbed.roundtrip("s3d", "sz2", 1e-3).ratio
        j_per_tb = orig.write_energy_j / (orig.bytes_written / 1e12)
        proj = project_facility(
            daily_output_tb=100.0,
            compression_ratio=ratio,
            io_energy_reduction=reduction,
            write_energy_j_per_tb=j_per_tb,
        )
        return orig, comp, reduction, ratio, proj

    orig, comp, reduction, ratio, proj = run_once(benchmark, build)
    ssd = get_device("ssd-15tb")
    hdd = get_device("hdd-18tb")
    rows = [
        ["S3D write energy, uncompressed (HDF5)", f"{orig.write_energy_j:.0f} J"],
        ["S3D write energy, SZ2 @ 1e-3", f"{comp.write_energy_j:.1f} J"],
        ["I/O energy reduction", f"{reduction:.1f}x  (paper: 262.5x at CR 262.5)"],
        ["Measured SZ2 ratio (synthetic S3D)", f"{ratio:.1f}x"],
        ["Facility devices, uncompressed/yr", str(proj.devices_uncompressed)],
        ["Facility devices, compressed/yr", str(proj.devices_compressed)],
        [
            "Rack embodied-carbon saving (SSD)",
            f"{embodied_carbon_saving_fraction(100.0, ssd) * 100:.1f}% at CR 100",
        ],
        [
            "Rack embodied-carbon saving (HDD)",
            f"{embodied_carbon_saving_fraction(100.0, hdd) * 100:.1f}% at CR 100",
        ],
        [
            "Annual I/O energy saved (100 TB/day)",
            f"{proj.annual_io_energy_saved_j / 1e6:.1f} MJ",
        ],
    ]
    text = format_table(
        ["quantity", "value"], rows, title="Section VII - Facility-scale extrapolation"
    )
    emit("sec07_extrapolation", text)

    # Write-energy reduction tracks the measured ratio (the paper mechanism).
    assert reduction > 0.3 * ratio
    assert proj.devices_compressed < proj.devices_uncompressed
    assert 0.7 < embodied_carbon_saving_fraction(100.0, ssd) < 0.8
