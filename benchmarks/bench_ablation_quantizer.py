"""Ablation: quantizer bin width (the classic 2-eps bins vs narrower bins).

DESIGN.md question: SZ quantizes residuals on a 2*eps grid, the widest bins
that still guarantee the bound.  Narrower bins waste ratio without PSNR
gains proportional to the cost — quantified here on NYX with the SZ3
interpolation pipeline.
"""

import numpy as np
from conftest import run_once

from repro.compressors.huffman import huffman_encode
from repro.compressors.interpolation import interp_encode
from repro.core.report import format_table
from repro.data import generate
from repro.metrics import psnr


def test_ablation_quantizer_bin_width(benchmark, emit):
    data = np.array(generate("nyx", "test"), dtype=np.float64)
    eps = 1e-3 * float(data.max() - data.min())

    def build():
        rows = []
        for divisor in (1.0, 2.0, 4.0):
            eb = eps / divisor
            anchors, modes, codes, outliers, recon = interp_encode(data, eb)
            payload = len(huffman_encode(codes)) + outliers.nbytes + anchors.nbytes
            rows.append(
                [
                    f"2*eps/{divisor:.0f}",
                    f"{data.nbytes / payload:.2f}",
                    f"{psnr(data, recon):.2f}",
                    f"{np.abs(recon - data).max() / eps:.3f}",
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    text = format_table(
        ["bin width", "approx CR", "PSNR [dB]", "max err / eps"],
        rows,
        title="Ablation - quantizer bin width on NYX @ eps=1e-3 (SZ3 pipeline)",
    )
    emit("ablation_quantizer", text)

    crs = [float(r[1]) for r in rows]
    psnrs = [float(r[2]) for r in rows]
    # Narrowing bins always costs ratio and buys ~6 dB per halving.
    assert crs[0] > crs[1] > crs[2]
    assert psnrs[2] > psnrs[1] > psnrs[0]
    assert 4.0 < psnrs[1] - psnrs[0] < 8.0
