"""Extension: read-path energy (paper Section VI-A's 'doubly effective' note).

The paper observes that the write-side savings repeat when compressed data
is pulled back out of storage for analysis.  This bench quantifies that
claim with the read-path driver: fetch + decompress vs fetch-uncompressed,
per codec, on the HACC set.
"""

from conftest import run_once

from repro.core.report import format_table

CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")


def test_ext_read_path(benchmark, testbed, emit):
    def build():
        orig = testbed.read_point("hacc", None, None, "hdf5", "max9480")
        rows = []
        for codec in CODECS:
            p = testbed.read_point("hacc", codec, 1e-3, "hdf5", "max9480")
            rows.append((codec, p))
        return orig, rows

    orig, rows = run_once(benchmark, build)
    table = [
        [
            codec,
            f"{p.fetch_energy_j:.1f}",
            f"{p.decompress_energy_j:.1f}",
            f"{p.total_energy_j:.1f}",
            f"{orig.fetch_energy_j / p.fetch_energy_j:.1f}x",
        ]
        for codec, p in rows
    ] + [["original", f"{orig.fetch_energy_j:.1f}", "0.0", f"{orig.fetch_energy_j:.1f}", "1.0x"]]
    text = format_table(
        ["codec", "fetch E [J]", "decompress E [J]", "total [J]", "fetch reduction"],
        table,
        title="Extension - read-path energy, HACC @ eps=1e-3, HDF5, MAX 9480",
    )
    emit("ext_read_path", text)

    # Fetching compressed bytes always beats fetching raw (the paper's
    # "doubly effective" claim is about this transfer term).
    for codec, p in rows:
        assert p.fetch_energy_j < orig.fetch_energy_j, codec
    # The *total* read path (fetch + decompress) mirrors the write side:
    # codec work dominates for single streams, so the strict total benefit
    # fails here just as Eq. 4 usually fails on the write side — SZx comes
    # closest thanks to its decompression speed.
    totals = {codec: p.total_energy_j for codec, p in rows}
    assert min(totals, key=totals.get) == "szx"
