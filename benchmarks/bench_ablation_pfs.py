"""Ablation: PFS capacity sensitivity of the Fig. 12 crossover.

DESIGN.md question: how much does the "original jumps at 512 cores" result
depend on the aggregate-bandwidth saturation model?  Sweep the OST count
(aggregate capacity) and report where the EBLC-vs-original crossover lands.
"""

from conftest import run_once

from repro.core.experiments import Testbed
from repro.core.report import format_table
from repro.iolib.pfs import PFSModel

CORES = (16, 64, 256, 512)


def test_ablation_pfs_capacity(benchmark, emit):
    def build():
        rows = []
        for n_osts in (4, 8, 32):
            tb = Testbed(scale="bench", pfs=PFSModel(n_osts=n_osts))
            res = tb.run_multinode(cores=CORES, codecs=("sz3",))
            by = {(r.codec, r.total_cores): r for r in res}
            crossover = None
            for c in CORES:
                if by[("sz3", c)].total_energy_j < by[(None, c)].total_energy_j:
                    crossover = c
                    break
            rows.append(
                [
                    n_osts,
                    f"{n_osts * 500 / 1000:.0f} GB/s",
                    crossover if crossover is not None else ">512",
                    f"{by[(None, 512)].total_energy_j:.0f}",
                    f"{by[('sz3', 512)].total_energy_j:.0f}",
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    text = format_table(
        ["OSTs", "aggregate BW", "EBLC wins at cores >=", "orig E@512 [J]", "sz3 E@512 [J]"],
        rows,
        title="Ablation - Fig. 12 crossover vs PFS aggregate capacity",
    )
    emit("ablation_pfs", text)

    # A fatter PFS pushes the crossover to higher core counts (or past 512).
    crossovers = [r[2] for r in rows]
    numeric = [c if isinstance(c, int) else 10_000 for c in crossovers]
    assert numeric[0] <= numeric[-1]
    # Original baseline at 512 cores gets cheaper as capacity grows.
    orig = [float(r[3]) for r in rows]
    assert orig[0] > orig[-1]
