"""Figure 1: lossless versus EBLC compression ratios on the SDRBench sets.

Paper shape to reproduce: on QMCPack, ISABEL, CESM-ATM and EXAFEL, the
lossless codecs (zstd, C-Blosc2, fpzip, FPC) land in low single digits while
the EBLC band (SZ2, ZFP) reaches tens of x.
"""

from conftest import run_once

from repro.core.report import format_table
from repro.data.registry import FIG1_DATASETS


def test_fig01_lossless_vs_eblc(benchmark, testbed, emit):
    rows = run_once(
        benchmark,
        lambda: testbed.run_lossless_comparison(datasets=FIG1_DATASETS),
    )
    by = {(r.dataset, r.codec): r for r in rows}
    codecs = ["zstd", "blosc", "fpzip", "fpc", "sz2", "zfp"]
    table = [
        [ds] + [f"{by[(ds, c)].ratio:.2f}" for c in codecs] for ds in FIG1_DATASETS
    ]
    text = format_table(
        ["dataset"] + codecs,
        table,
        title="Fig. 1 - Compression ratio: lossless (zstd/blosc/fpzip/fpc) vs EBLC (sz2/zfp @ eps=1e-2)",
    )
    emit("fig01_lossless_vs_eblc", text)

    # Shape assertions: every EBLC beats every lossless codec per dataset.
    for ds in FIG1_DATASETS:
        best_lossless = max(by[(ds, c)].ratio for c in codecs[:4])
        worst_eblc = min(by[(ds, c)].ratio for c in codecs[4:])
        assert worst_eblc > best_lossless, ds
