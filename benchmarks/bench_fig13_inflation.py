"""Figure 13: serial energy vs inflated NYX sizes on the Xeon Platinum 8260M.

Paper shape: inflating each dimension by 2..5 grows bytes cubically (0.5 to
62.5 GB at paper scale) and compressor energy scales nearly linearly with
bytes (constant throughput per codec).
"""

from conftest import run_once

from repro.core.report import format_series

FACTORS = (1, 2, 3, 4, 5)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")


def test_fig13_inflation(benchmark, testbed, emit):
    points = run_once(
        benchmark,
        lambda: testbed.run_inflation(
            factors=FACTORS, codecs=CODECS, base_scale="test"
        ),
    )
    by = {(p.codec, p.factor): p for p in points}
    xs = [f"{by[('sz3', f)].paper_gb:.1f}" for f in FACTORS]
    series = {
        codec: [by[(codec, f)].total_energy_j for f in FACTORS] for codec in CODECS
    }
    text = format_series(
        "Fig. 13 - Serial energy [J] vs inflated NYX size, eps=1e-3, Xeon Platinum 8260M",
        "size [GB]",
        xs,
        series,
        y_format="{:.0f}",
    )
    ratios = format_series(
        "Fig. 13 (aux) - measured compression ratio of the inflated synthetic data",
        "factor",
        list(FACTORS),
        {codec: [by[(codec, f)].ratio for f in FACTORS] for codec in CODECS},
        y_format="{:.1f}",
    )
    emit("fig13_inflation", text + "\n\n" + ratios)

    # Near-linear scaling in bytes: E(f)/E(1) ~ f^3 once overhead amortizes.
    for codec in CODECS:
        e1 = by[(codec, 1)].total_energy_j
        e5 = by[(codec, 5)].total_energy_j
        assert 60.0 < e5 / e1 < 135.0, codec  # f^3 = 125 within a band
    # Paper x-axis: 0.5 ... 62.5 GB.
    assert abs(by[("sz3", 1)].paper_gb - 0.537) < 0.01
    assert abs(by[("sz3", 5)].paper_gb - 67.1) < 0.5
