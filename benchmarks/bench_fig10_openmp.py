"""Figure 10: OpenMP energy vs thread count (1..64) at eps = 1e-3.

Paper shape: energy falls with threads and plateaus; SZx scales best (~6x on
S3D/Sapphire Rapids), SZ3 scales well, SZ2 and ZFP effectively do not; the
benefit is weakest for the small CESM set.
"""

from conftest import run_once

from repro.core.report import format_series
from repro.energy.cpus import PAPER_CPUS

THREADS = (1, 2, 4, 8, 16, 32, 64)
CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")
DATASETS = ("cesm", "hacc", "nyx", "s3d")


def test_fig10_openmp_energy(benchmark, testbed, emit):
    points = run_once(
        benchmark,
        lambda: testbed.run_thread_sweep(
            datasets=DATASETS, codecs=CODECS, threads=THREADS, cpus=PAPER_CPUS
        ),
    )
    by = {(p.cpu, p.dataset, p.codec, p.threads): p for p in points}
    blocks = []
    for cpu in PAPER_CPUS:
        for ds in DATASETS:
            series = {
                codec: [by[(cpu, ds, codec, t)].total_energy_j for t in THREADS]
                for codec in CODECS
            }
            blocks.append(
                format_series(
                    f"Fig. 10 - {ds.upper()} OpenMP energy [J] @ eps=1e-3 on {cpu}",
                    "threads",
                    list(THREADS),
                    series,
                    y_format="{:.0f}",
                )
            )
    emit("fig10_openmp", "\n\n".join(blocks))

    # Shape: scaling factors on S3D / Sapphire Rapids.
    def reduction(codec):
        e1 = by[("max9480", "s3d", codec, 1)].total_energy_j
        e64 = by[("max9480", "s3d", codec, 64)].total_energy_j
        return e1 / e64

    assert reduction("szx") > 3.5  # paper: ~6x
    assert reduction("sz3") > 2.0  # scales well
    assert reduction("zfp") < 1.3  # paper: no benefit
    assert reduction("sz2") < 1.3
    # CESM benefits least among datasets for the scaling codecs.
    czx = (
        by[("max9480", "cesm", "szx", 1)].total_energy_j
        / by[("max9480", "cesm", "szx", 64)].total_energy_j
    )
    assert czx <= reduction("szx") * 1.05
