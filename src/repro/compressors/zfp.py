"""ZFP: transform-based fixed-accuracy EBLC (Lindstrom, TVCG 2014).

Pipeline per 4^d block (d = min(rank, 3); higher-rank arrays are processed as
independent 3-D slabs, the common practice for multi-field data):

1. block-floating-point: align all values to the block's largest exponent
   ``e`` and round to int64 fixed point with :data:`PRECISION` fraction bits;
2. separable integer lifting transform (:mod:`repro.compressors.transform`);
3. total-sequency coefficient reordering, negabinary mapping;
4. embedded **bitplane coding with group testing** from the most significant
   plane down to a cut-off plane derived from the absolute error bound and
   the inverse-transform gain — ZFP's fixed-accuracy mode.

The error bound is guaranteed analytically: truncating planes below ``kmin``
perturbs each coefficient by less than ``2^(kmin+1)``, the inverse lift's
L∞ gain is ``(15/4)^d``, and fixed-point rounding adds half a unit, all of
which the cut-off computation budgets for (see :func:`_kmin_for`).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.compressors.bitstream import BitReader, BitWriter
from repro.compressors.blocks import blockify, unblockify
from repro.compressors.transform import (
    forward_transform,
    int_to_negabinary,
    inverse_transform,
    negabinary_to_int,
    sequency_order,
)
from repro.errors import DecompressionError

__all__ = ["ZFP", "PRECISION"]

#: Fraction bits of the block-floating-point representation.  54 leaves
#: 2 bits/dimension of transform headroom plus sign inside int64 (3-D worst
#: case: 54 + 6 + sign < 64) while keeping conversion rounding (2^(e-55))
#: far below any practical bound.
PRECISION = 54

_E_BIAS = 2048  # stored exponent bias (12-bit field)
_E_BITS = 12
_K_BITS = 6


def _block_for_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    ndim = len(shape)
    core = min(ndim, 3)
    return (1,) * (ndim - core) + (4,) * core


def _needs_raw_escape(e: int, abs_bound: float) -> bool:
    """True when fixed-point conversion alone could breach the bound.

    Happens only for huge common exponents with bounds near (or below) the
    conversion resolution 2^(e - PRECISION) — e.g. fields riding a 1e8
    offset with a micro-scale value range.  Such blocks are stored verbatim.
    """
    if abs_bound <= 0:
        return True
    bound_q = abs_bound * 2.0 ** (PRECISION - e)
    # 32 q-units of margin covers fixed-point rounding plus the lifted
    # transform's few-unit roundtrip slack after 3-D gain amplification.
    return bound_q < 32.0


def _kmin_for(e: int, abs_bound: float, core_dims: int) -> int:
    """Lowest encoded bitplane for fixed-accuracy mode.

    Budget: plane truncation (< 2^(kmin+1) per coefficient) amplified by the
    inverse-transform gain (< 4 per dimension) plus fixed-point rounding must
    stay under ``abs_bound`` in the value domain.
    """
    if abs_bound <= 0:
        return 0
    # abs_bound expressed in fixed-point (q) units.
    bound_q = abs_bound * 2.0 ** (PRECISION - e)
    if bound_q <= 1.0:
        return 0
    # Budget: negabinary truncation of planes < kmin perturbs a coefficient
    # by at most (2/3)*2^kmin; the inverse lift's per-dimension L-inf gain is
    # 15/4 < 2^1.91, so a guard of 2 bits/dimension keeps the value-domain
    # error under (2/3)*2^(1.91d - 2d) * bound < bound (fixed-point rounding
    # of 1/2 q-unit rides inside the remaining margin).
    kmin = int(np.floor(np.log2(bound_q))) - 2 * core_dims
    return max(kmin, 0)


def _rev_bits(value: int, n: int) -> int:
    """Reverse the low ``n`` bits of ``value`` (LSB-first <-> MSB-first)."""
    if n == 0:
        return 0
    return int(f"{value:0{n}b}"[::-1], 2)


def _encode_plane(writer: BitWriter, x: int, n: int, size: int) -> int:
    """ZFP group-testing bitplane pass; returns the updated significance count.

    The whole plane — known-significant prefix, per-group test bits and the
    group payloads — is assembled into one integer and emitted with a single
    ``write_bits`` call, so the writer is driven per *bitplane* rather than
    per bit.
    """
    acc = 0
    nbits = 0
    if n:
        acc = _rev_bits(x & ((1 << n) - 1), n)
        nbits = n
    rest = x >> n
    pos = n
    while rest:
        # Group: a '1' test bit, then the plane bits up to and including the
        # next significant coefficient (LSB-first from position `pos`).
        glen = (rest & -rest).bit_length()
        group = _rev_bits((x >> pos) & ((1 << glen) - 1), glen)
        acc = (acc << (1 + glen)) | (1 << glen) | group
        nbits += 1 + glen
        pos += glen
        rest >>= glen
    if pos < size:
        acc <<= 1  # '0' test bit: no further significant coefficients
        nbits += 1
    writer.write_bits(acc, nbits)
    return pos


def _decode_plane(reader: BitReader, n: int, size: int) -> tuple[int, int]:
    """Inverse of :func:`_encode_plane`; returns (plane integer, new n).

    Group payloads are scanned with one chunked ``read_bits`` peek per group
    (then the bit cursor is snapped back to just past the terminating '1'),
    instead of the original bit-by-bit reads.
    """
    x = 0
    if n:
        x = _rev_bits(reader.read_bits(n), n)
    pos = n
    while pos < size:
        if not reader.read_bit():
            break
        span = size - pos
        start = reader.bit_position
        take = min(span, reader.bit_size - start)
        if take <= 0:
            raise DecompressionError("bit stream exhausted")
        chunk = reader.read_bits(take)
        if chunk == 0:
            if take < span:
                raise DecompressionError("bit stream exhausted")
            raise DecompressionError("zfp plane ran past block size")
        zeros = take - chunk.bit_length()
        x |= 1 << (pos + zeros)
        pos += zeros + 1
        reader.seek_bit(start + zeros + 1)
    return x, pos


@register_compressor
class ZFP(Compressor):
    """Fixed-accuracy transform codec; fast, with graceful quality scaling."""

    name = "zfp"

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        shape = values.shape
        block = _block_for_shape(shape)
        core_dims = sum(1 for b in block if b == 4)
        blocks = blockify(values, block)
        n_blocks = blocks.shape[0]
        core = blocks.reshape((n_blocks,) + (4,) * core_dims)
        bsize = 4**core_dims

        # Block-floating-point conversion.
        fmax = np.abs(core).reshape(n_blocks, -1).max(axis=1)
        nonzero = fmax > 0.0
        exps = np.zeros(n_blocks, dtype=np.int64)
        if nonzero.any():
            _, e = np.frexp(fmax[nonzero])
            exps[nonzero] = e
        scale = np.exp2(PRECISION - exps.astype(np.float64))
        q = np.rint(core * scale.reshape((n_blocks,) + (1,) * core_dims)).astype(
            np.int64
        )

        coeff = forward_transform(q).reshape(n_blocks, bsize)
        order = sequency_order(core_dims)
        neg = int_to_negabinary(coeff[:, order])

        # Plane integers, vectorized: P[k][b] packs plane k of block b.
        kmax_arr = np.zeros(n_blocks, dtype=np.int64)
        any_bits = neg.max(axis=1)
        nz = any_bits > 0
        if nz.any():
            kmax_arr[nz] = (
                np.floor(np.log2(any_bits[nz].astype(np.float64))).astype(np.int64)
            )
        # Guard against float log2 off-by-one at powers of two.
        kmax_arr = np.minimum(kmax_arr + 1, 63)
        global_kmax = int(kmax_arr.max()) if n_blocks else 0
        planes = np.zeros((global_kmax + 1, n_blocks), dtype=np.uint64)
        pad_to = -(-bsize // 8) * 8
        for k in range(global_kmax + 1):
            bits = ((neg >> np.uint64(k)) & np.uint64(1)).astype(np.uint8)
            packed = np.packbits(bits, axis=1, bitorder="little")
            if packed.shape[1] < 8:
                packed = np.pad(packed, ((0, 0), (0, 8 - packed.shape[1])))
            planes[k] = packed[:, :8].copy().view(np.uint64).ravel()
        del pad_to

        writer = BitWriter()
        kmins = np.array(
            [_kmin_for(int(e), abs_bound, core_dims) for e in exps], dtype=np.int64
        )
        flat_core = core.reshape(n_blocks, bsize)
        for b in range(n_blocks):
            if not nonzero[b]:
                writer.write_bit(0)
                continue
            writer.write_bit(1)
            e = int(exps[b])
            if _needs_raw_escape(e, abs_bound):
                # Verbatim escape: 1 flag bit + 64 bits/value, exact.
                writer.write_bit(1)
                writer.write_many(
                    flat_core[b].view(np.uint64), np.full(bsize, 64, dtype=np.int64)
                )
                continue
            # True top plane of this block (exact scan fixes the +1 guard).
            kmax = int(kmax_arr[b])
            while kmax > 0 and planes[kmax, b] == 0:
                kmax -= 1
            # One batched header write: escape flag, exponent, top plane.
            writer.write_bits(
                ((e + _E_BIAS) << _K_BITS) | kmax, 1 + _E_BITS + _K_BITS
            )
            kmin = int(kmins[b])
            n = 0
            for k in range(kmax, kmin - 1, -1):
                n = _encode_plane(writer, int(planes[k, b]), n, bsize)

        header = struct.pack("<BQ", core_dims, n_blocks)
        return header + writer.getvalue()

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        core_dims, n_blocks = struct.unpack_from("<BQ", payload, 0)
        bsize = 4**core_dims
        reader = BitReader(payload[9:])

        neg = np.zeros((n_blocks, bsize), dtype=np.uint64)
        exps = np.zeros(n_blocks, dtype=np.int64)
        nonzero = np.zeros(n_blocks, dtype=bool)
        raw_blocks: dict[int, np.ndarray] = {}
        for b in range(n_blocks):
            if not reader.read_bit():
                continue
            nonzero[b] = True
            if reader.read_bit():  # verbatim escape
                raw = reader.read_many(np.full(bsize, 64, dtype=np.int64))
                raw_blocks[b] = raw.view(np.float64)
                continue
            e = reader.read_bits(_E_BITS) - _E_BIAS
            exps[b] = e
            kmax = reader.read_bits(_K_BITS)
            kmin = _kmin_for(e, abs_bound, core_dims)
            n = 0
            row = neg[b]
            for k in range(kmax, kmin - 1, -1):
                x, n = _decode_plane(reader, n, bsize)
                if x:
                    kshift = np.uint64(k)
                    xb = np.frombuffer(
                        int(x).to_bytes(8, "little"), dtype=np.uint8
                    )
                    bits = np.unpackbits(xb, bitorder="little")[:bsize]
                    row |= bits.astype(np.uint64) << kshift

        coeff = negabinary_to_int(neg)
        order = sequency_order(core_dims)
        inv_order = np.argsort(order)
        coeff = coeff[:, inv_order].reshape((n_blocks,) + (4,) * core_dims)
        q = inverse_transform(coeff)
        scale = np.exp2(exps.astype(np.float64) - PRECISION)
        vals = q.astype(np.float64) * scale.reshape((n_blocks,) + (1,) * core_dims)
        vals[~nonzero] = 0.0
        for b, raw in raw_blocks.items():
            vals[b] = raw.reshape((4,) * core_dims)

        block = _block_for_shape(shape)
        full = vals.reshape((n_blocks,) + tuple(block))
        return unblockify(full, shape, tuple(block))
