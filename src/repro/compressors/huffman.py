"""Canonical Huffman codec for quantization-code streams.

The SZ family entropy-codes quantization indices with Huffman before a final
DEFLATE pass.  This module implements a canonical Huffman code:

- tree construction with a heap over symbol frequencies,
- code lengths limited to :data:`MAX_CODE_LENGTH` via the standard
  length-limiting adjustment (rarely triggered for quantization data),
- a compact header storing only the symbol list and code lengths,
- vectorized encoding through :func:`repro.compressors.bitstream.pack_bits`,
- table-accelerated decoding (single :data:`PEEK_BITS`-bit lookup for short
  codes, canonical first-code search for long ones).

Encoding of ``n`` symbols costs O(n) NumPy work plus O(distinct lengths)
passes; decoding is a tight per-symbol loop over a 4096-entry lookup table,
which is the best pure-Python trade-off for the array sizes this package
processes.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.compressors.bitstream import pack_bits
from repro.errors import DecompressionError

__all__ = ["HuffmanCodec", "huffman_encode", "huffman_decode"]

MAX_CODE_LENGTH = 32
PEEK_BITS = 12

_HEADER = struct.Struct("<IHI")  # n_symbols_encoded, n_distinct, payload_bits


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol (0 for absent symbols).

    Uses the classic two-queue/heap algorithm on (frequency, tiebreak) pairs.
    A single distinct symbol gets length 1 so the stream is still decodable.
    """
    present = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Heap items: (freq, tiebreak, leaf symbols under this node)
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in present
    ]
    heapq.heapify(heap)
    tiebreak = int(freqs.size)
    while len(heap) > 1:
        fa, _, la = heapq.heappop(heap)
        fb, _, lb = heapq.heappop(heap)
        for s in la:
            lengths[s] += 1
        for s in lb:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, la + lb))
        tiebreak += 1

    # Limit code lengths (defensive; extremely skewed inputs only).
    if lengths.max() > MAX_CODE_LENGTH:
        lengths = np.minimum(lengths, MAX_CODE_LENGTH)
        # Repair Kraft inequality by lengthening the shortest codes.
        while _kraft(lengths) > 1.0:
            cand = np.flatnonzero((lengths > 0) & (lengths < MAX_CODE_LENGTH))
            shortest = cand[np.argmin(lengths[cand])]
            lengths[shortest] += 1
    return lengths


def _kraft(lengths: np.ndarray) -> float:
    nz = lengths[lengths > 0]
    return float(np.sum(2.0 ** (-nz.astype(np.float64))))


def _canonical_codes(symbols: np.ndarray, lengths: np.ndarray):
    """Assign canonical codes: sort by (length, symbol), count upward."""
    order = np.lexsort((symbols, lengths))
    sorted_syms = symbols[order]
    sorted_lens = lengths[order]
    codes = np.zeros(symbols.size, dtype=np.uint64)
    code = 0
    prev_len = int(sorted_lens[0]) if symbols.size else 0
    for i in range(symbols.size):
        ln = int(sorted_lens[i])
        code <<= ln - prev_len
        codes[i] = code
        code += 1
        prev_len = ln
    return sorted_syms, sorted_lens, codes


class HuffmanCodec:
    """Encode/decode integer symbol arrays with a canonical Huffman code."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode a 1-D array of non-negative integers.

        The output is self-describing: header + symbol/length table + packed
        payload.  An empty input encodes to a valid empty stream.
        """
        symbols = np.ascontiguousarray(symbols)
        if symbols.ndim != 1:
            raise ValueError("HuffmanCodec.encode expects a 1-D array")
        n = symbols.size
        if n == 0:
            return _HEADER.pack(0, 0, 0)
        if symbols.min() < 0:
            raise ValueError("symbols must be non-negative")

        values, inverse, counts = np.unique(
            symbols, return_inverse=True, return_counts=True
        )
        if values.size == 1:
            # Degenerate alphabet: the count alone reconstructs the stream.
            header = _HEADER.pack(n, 1, 0)
            table = values.astype(np.uint64).tobytes() + b"\x01"
            return header + table
        freqs = counts.astype(np.int64)
        lengths = _code_lengths(freqs)
        sorted_syms, sorted_lens, codes = _canonical_codes(
            np.arange(values.size), lengths
        )
        # Per-distinct-symbol code/length, indexed by position in `values`.
        sym_code = np.zeros(values.size, dtype=np.uint64)
        sym_len = np.zeros(values.size, dtype=np.int64)
        sym_code[sorted_syms] = codes
        sym_len[sorted_syms] = sorted_lens

        payload = pack_bits(sym_code[inverse], sym_len[inverse])
        payload_bits = int(sym_len[inverse].sum())

        header = _HEADER.pack(n, values.size, payload_bits)
        table = values.astype(np.uint64).tobytes() + sym_len.astype(np.uint8).tobytes()
        return header + table + payload

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode` (returns ``int64``)."""
        if len(data) < _HEADER.size:
            raise DecompressionError("huffman stream too short for header")
        n, n_distinct, payload_bits = _HEADER.unpack_from(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        off = _HEADER.size
        table_bytes = n_distinct * 8 + n_distinct
        if len(data) < off + table_bytes:
            raise DecompressionError("huffman stream truncated in symbol table")
        values = np.frombuffer(data, dtype=np.uint64, count=n_distinct, offset=off)
        off += n_distinct * 8
        lengths = np.frombuffer(
            data, dtype=np.uint8, count=n_distinct, offset=off
        ).astype(np.int64)
        off += n_distinct

        if n_distinct == 1:
            return np.full(n, int(values[0]), dtype=np.int64)

        sorted_idx, sorted_lens, codes = _canonical_codes(
            np.arange(n_distinct), lengths
        )
        sorted_values = values[sorted_idx].astype(np.int64)

        # Fast path table: PEEK_BITS-bit prefix -> (value, length) for short codes.
        table_val = np.full(1 << PEEK_BITS, -1, dtype=np.int64)
        table_len = np.zeros(1 << PEEK_BITS, dtype=np.int64)
        for i in range(n_distinct):
            ln = int(sorted_lens[i])
            if ln <= PEEK_BITS:
                base = int(codes[i]) << (PEEK_BITS - ln)
                span = 1 << (PEEK_BITS - ln)
                table_val[base : base + span] = sorted_values[i]
                table_len[base : base + span] = ln
        # Canonical decode bounds for the slow path (codes longer than PEEK_BITS).
        first_code = {}
        first_index = {}
        count_by_len = {}
        for i in range(n_distinct):
            ln = int(sorted_lens[i])
            if ln not in first_code:
                first_code[ln] = int(codes[i])
                first_index[ln] = i
                count_by_len[ln] = 0
            count_by_len[ln] += 1

        # Pack payload bits into one big integer for O(1) windowed peeks.
        stream = int.from_bytes(data[off:], "big")
        total_bits = 8 * (len(data) - off)
        if total_bits < payload_bits:
            raise DecompressionError("huffman payload truncated")

        out = np.empty(n, dtype=np.int64)
        pos = 0
        tv = table_val
        tl = table_len
        for i in range(n):
            if pos + PEEK_BITS <= total_bits:
                window = (stream >> (total_bits - pos - PEEK_BITS)) & (
                    (1 << PEEK_BITS) - 1
                )
            else:
                avail = total_bits - pos
                if avail <= 0:
                    raise DecompressionError("huffman payload exhausted")
                window = (stream & ((1 << avail) - 1)) << (PEEK_BITS - avail)
            val = tv[window]
            if val >= 0:
                out[i] = val
                # Keep `pos` a Python int: numpy int64 would poison the
                # arbitrary-precision shifts on `stream`.
                pos += int(tl[window])
                continue
            # Slow path: canonical search over lengths > PEEK_BITS.  Short
            # lengths cannot match here: any short code that prefixes this
            # window would have populated the lookup table.
            ln = PEEK_BITS
            while True:
                ln += 1
                if pos + ln > total_bits or ln > MAX_CODE_LENGTH:
                    raise DecompressionError("invalid huffman code")
                code = (stream >> (total_bits - pos - ln)) & ((1 << ln) - 1)
                if ln in first_code:
                    offset = code - first_code[ln]
                    if 0 <= offset < count_by_len[ln]:
                        out[i] = sorted_values[first_index[ln] + offset]
                        pos += ln
                        break
        if pos != payload_bits:
            raise DecompressionError(
                f"huffman payload length mismatch: consumed {pos}, expected {payload_bits}"
            )
        return out


_DEFAULT = HuffmanCodec()


def huffman_encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec`."""
    return _DEFAULT.encode(symbols)


def huffman_decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec`."""
    return _DEFAULT.decode(data)
