"""Canonical Huffman codec for quantization-code streams.

The SZ family entropy-codes quantization indices with Huffman before a final
DEFLATE pass.  This module implements a canonical Huffman code:

- tree construction with a heap over symbol frequencies,
- code lengths limited to :data:`MAX_CODE_LENGTH` via the standard
  length-limiting adjustment (rarely triggered for quantization data),
- a compact header storing only the symbol list and code lengths,
- vectorized encoding through :func:`repro.compressors.bitstream.pack_bits`,
- fully vectorized decoding: a :data:`PEEK_BITS`-bit window is gathered at
  *every* candidate bit offset of the word-packed payload, decoded
  speculatively through the lookup table (with a per-length canonical search
  for the rare codes longer than :data:`PEEK_BITS`), and the true symbol
  boundaries are then recovered by pointer-doubling over the resulting
  offset-successor array.

Both directions are O(n) NumPy passes (decode adds a log₂(n) factor for the
pointer doubling); no per-symbol Python loop remains on either path.  The
byte format is identical to the original per-symbol implementation.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.compressors.bitstream import _words_from_bytes, pack_bits
from repro.errors import DecompressionError

__all__ = ["HuffmanCodec", "huffman_encode", "huffman_decode"]

MAX_CODE_LENGTH = 32
PEEK_BITS = 12

_HEADER = struct.Struct("<IHI")  # n_symbols_encoded, n_distinct, payload_bits


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol (0 for absent symbols).

    Uses the classic two-queue/heap algorithm on (frequency, tiebreak) pairs.
    A single distinct symbol gets length 1 so the stream is still decodable.
    """
    present = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.int64)
    if present.size == 0:
        return lengths
    if present.size == 1:
        lengths[present[0]] = 1
        return lengths

    # Heap items: (freq, tiebreak, leaf symbols under this node)
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in present
    ]
    heapq.heapify(heap)
    tiebreak = int(freqs.size)
    while len(heap) > 1:
        fa, _, la = heapq.heappop(heap)
        fb, _, lb = heapq.heappop(heap)
        for s in la:
            lengths[s] += 1
        for s in lb:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, la + lb))
        tiebreak += 1

    # Limit code lengths (defensive; extremely skewed inputs only).
    if lengths.max() > MAX_CODE_LENGTH:
        lengths = np.minimum(lengths, MAX_CODE_LENGTH)
        # Repair Kraft inequality by lengthening the shortest codes.
        while _kraft(lengths) > 1.0:
            cand = np.flatnonzero((lengths > 0) & (lengths < MAX_CODE_LENGTH))
            shortest = cand[np.argmin(lengths[cand])]
            lengths[shortest] += 1
    return lengths


def _kraft(lengths: np.ndarray) -> float:
    nz = lengths[lengths > 0]
    return float(np.sum(2.0 ** (-nz.astype(np.float64))))


def _canonical_codes(symbols: np.ndarray, lengths: np.ndarray):
    """Assign canonical codes: sort by (length, symbol), count upward.

    Vectorized: within one length run the codes are ``first_code + rank``;
    across lengths the canonical recurrence ``first <<= (len - prev_len)``
    only needs one Python iteration per *distinct* length (≤ 32).
    """
    order = np.lexsort((symbols, lengths))
    sorted_syms = symbols[order]
    sorted_lens = lengths[order]
    codes = np.zeros(symbols.size, dtype=np.uint64)
    if symbols.size == 0:
        return sorted_syms, sorted_lens, codes
    distinct, run_start, run_count = np.unique(
        sorted_lens, return_index=True, return_counts=True
    )
    first = 0
    prev_len = int(distinct[0])
    first_codes = np.zeros(distinct.size, dtype=np.uint64)
    for j in range(distinct.size):
        ln = int(distinct[j])
        first <<= ln - prev_len
        first_codes[j] = first
        first += int(run_count[j])
        prev_len = ln
    rank = np.arange(symbols.size, dtype=np.uint64) - run_start.astype(np.uint64).repeat(
        run_count
    )
    codes = first_codes.repeat(run_count) + rank
    return sorted_syms, sorted_lens, codes


def _build_peek_table(
    sorted_lens: np.ndarray, codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """PEEK_BITS-bit prefix -> (sorted-symbol index, code length) for short codes.

    Unfilled entries (long-code prefixes) keep index -1 / length 0.
    """
    table_idx = np.full(1 << PEEK_BITS, -1, dtype=np.int32)
    table_len = np.zeros(1 << PEEK_BITS, dtype=np.int8)
    for ln in np.unique(sorted_lens):
        ln = int(ln)
        if ln <= 0 or ln > PEEK_BITS:
            continue
        sel = np.flatnonzero(sorted_lens == ln)
        span = 1 << (PEEK_BITS - ln)
        base = (codes[sel].astype(np.int64) << (PEEK_BITS - ln))[:, None]
        idx = (base + np.arange(span, dtype=np.int64)[None, :]).ravel()
        table_idx[idx] = np.repeat(sel.astype(np.int32), span)
        table_len[idx] = ln
    return table_idx, table_len


class HuffmanCodec:
    """Encode/decode integer symbol arrays with a canonical Huffman code."""

    def encode(self, symbols: np.ndarray) -> bytes:
        """Encode a 1-D array of non-negative integers.

        The output is self-describing: header + symbol/length table + packed
        payload.  An empty input encodes to a valid empty stream.
        """
        symbols = np.ascontiguousarray(symbols)
        if symbols.ndim != 1:
            raise ValueError("HuffmanCodec.encode expects a 1-D array")
        n = symbols.size
        if n == 0:
            return _HEADER.pack(0, 0, 0)
        if symbols.min() < 0:
            raise ValueError("symbols must be non-negative")

        values, inverse, counts = np.unique(
            symbols, return_inverse=True, return_counts=True
        )
        if values.size == 1:
            # Degenerate alphabet: the count alone reconstructs the stream.
            header = _HEADER.pack(n, 1, 0)
            return b"".join((header, values.astype(np.uint64).tobytes(), b"\x01"))
        freqs = counts.astype(np.int64)
        lengths = _code_lengths(freqs)
        sorted_syms, sorted_lens, codes = _canonical_codes(
            np.arange(values.size), lengths
        )
        # Per-distinct-symbol code/length, indexed by position in `values`.
        sym_code = np.zeros(values.size, dtype=np.uint64)
        sym_len = np.zeros(values.size, dtype=np.int64)
        sym_code[sorted_syms] = codes
        sym_len[sorted_syms] = sorted_lens

        stream_lens = sym_len[inverse]
        payload = pack_bits(sym_code[inverse], stream_lens)
        payload_bits = int(stream_lens.sum())

        header = _HEADER.pack(n, values.size, payload_bits)
        return b"".join(
            (
                header,
                values.astype(np.uint64).tobytes(),
                sym_len.astype(np.uint8).tobytes(),
                payload,
            )
        )

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a stream produced by :meth:`encode` (returns ``int64``)."""
        if len(data) < _HEADER.size:
            raise DecompressionError("huffman stream too short for header")
        n, n_distinct, payload_bits = _HEADER.unpack_from(data, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        off = _HEADER.size
        table_bytes = n_distinct * 8 + n_distinct
        if len(data) < off + table_bytes:
            raise DecompressionError("huffman stream truncated in symbol table")
        values = np.frombuffer(data, dtype=np.uint64, count=n_distinct, offset=off)
        off += n_distinct * 8
        lengths = np.frombuffer(
            data, dtype=np.uint8, count=n_distinct, offset=off
        ).astype(np.int64)
        off += n_distinct
        if lengths.size and lengths.max() > MAX_CODE_LENGTH:
            raise DecompressionError(
                f"huffman code length {int(lengths.max())} exceeds "
                f"MAX_CODE_LENGTH={MAX_CODE_LENGTH}"
            )

        if n_distinct == 1:
            return np.full(n, int(values[0]), dtype=np.int64)

        # Untrusted table: every symbol needs a code, and the lengths must
        # satisfy the Kraft inequality or the canonical code space overflows
        # (which would corrupt the decode tables rather than fail cleanly).
        if (lengths < 1).any() or _kraft(lengths) > 1.0:
            raise DecompressionError("invalid huffman code-length table")
        # Every symbol consumes at least one payload bit, so a symbol count
        # beyond payload_bits is corrupt; reject it before sizing the chain.
        if n > payload_bits:
            raise DecompressionError(
                f"huffman symbol count {n} exceeds payload capacity {payload_bits}"
            )

        sorted_idx, sorted_lens, codes = _canonical_codes(
            np.arange(n_distinct), lengths
        )
        sorted_values = values[sorted_idx].astype(np.int64)

        payload = data[off:]
        total_bits = 8 * len(payload)
        if total_bits < payload_bits:
            raise DecompressionError("huffman payload truncated")

        # Speculative decode at *every* bit offset: gather a 64-bit window
        # per offset from the word-packed payload, classify the top
        # PEEK_BITS through the lookup table, and resolve the rare long-code
        # escapes with a vectorized per-length canonical search.
        table_idx, table_len = _build_peek_table(sorted_lens, codes)
        words = _words_from_bytes(payload)
        pos = np.arange(total_bits, dtype=np.int64)
        wi = pos >> 6
        boff = (pos & 63).astype(np.uint64)
        win64 = words[wi] << boff
        np.bitwise_or(
            win64,
            np.where(
                boff > 0,
                words[wi + 1] >> ((np.uint64(64) - boff) & np.uint64(63)),
                np.uint64(0),
            ),
            out=win64,
        )
        peek = (win64 >> np.uint64(64 - PEEK_BITS)).astype(np.int64)
        idx_at = table_idx[peek]
        len_at = table_len[peek].astype(np.int64)

        escapes = np.flatnonzero(idx_at < 0)
        if escapes.size:
            # Ascending-length first-match mirrors the scalar slow path.
            esc_win = win64[escapes]
            unresolved = np.ones(escapes.size, dtype=bool)
            for ln in np.unique(sorted_lens):
                ln = int(ln)
                if ln <= PEEK_BITS or ln > MAX_CODE_LENGTH:
                    continue
                lo = int(np.searchsorted(sorted_lens, ln, side="left"))
                hi = int(np.searchsorted(sorted_lens, ln, side="right"))
                cand = np.flatnonzero(unresolved)
                if cand.size == 0:
                    break
                code = (esc_win[cand] >> np.uint64(64 - ln)).astype(np.int64)
                delta = code - int(codes[lo])
                ok = (
                    (delta >= 0)
                    & (delta < hi - lo)
                    & (escapes[cand] + ln <= total_bits)
                )
                hit = cand[ok]
                idx_at[escapes[hit]] = (lo + delta[ok]).astype(np.int32)
                len_at[escapes[hit]] = ln
                unresolved[hit] = False

        # Offset-successor chain: position -> position of the next symbol.
        # Invalid offsets jump to the absorbing sentinel `total_bits`.
        nxt = np.where(idx_at >= 0, np.minimum(pos + len_at, total_bits), total_bits)
        nxt = np.append(nxt, total_bits)
        idx_at = np.append(idx_at, np.int32(-1))
        len_at = np.append(len_at, 0)

        # Pointer doubling: `adv` advances m symbols at once, so each round
        # doubles the known prefix of the symbol-boundary chain.
        chain = np.zeros(1, dtype=np.int64)
        adv = nxt
        m = 1
        while m < n:
            chain = np.concatenate((chain, adv[chain]))[:n]
            m = min(2 * m, n)
            if m >= n:
                break
            adv = adv[adv]

        sym_indices = idx_at[chain]
        if (sym_indices < 0).any():
            raise DecompressionError("invalid huffman code or exhausted payload")
        consumed = int(chain[-1]) + int(len_at[chain[-1]])
        if consumed != payload_bits:
            raise DecompressionError(
                f"huffman payload length mismatch: consumed {consumed}, "
                f"expected {payload_bits}"
            )
        return sorted_values[sym_indices]


_DEFAULT = HuffmanCodec()


def huffman_encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec`."""
    return _DEFAULT.encode(symbols)


def huffman_decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec`."""
    return _DEFAULT.decode(data)
