"""SZx: ultra-fast error-bounded compressor (Yu et al., HPDC '22).

SZx trades ratio for speed using only lightweight block operations:

1. the flattened array is cut into fixed 128-element blocks;
2. a block whose value radius fits inside the error bound becomes a
   **constant block** (one stored centre value);
3. other blocks store, per element, a fixed-width quantization index of the
   offset from the block centre — the width is the fewest bits that cover
   the block's radius at the requested bound (SZx's "required bit count").

No prediction, no entropy coding: every stage is a single vectorized pass,
mirroring why the real SZx is an order of magnitude faster than SZ2/SZ3 at
the cost of lower ratios (paper Table III / Fig. 8).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.compressors.bitstream import pack_bits, unpack_bits
from repro.errors import DecompressionError

__all__ = ["SZx", "BLOCK_ELEMS"]

#: Elements per SZx block (matches the reference implementation default).
BLOCK_ELEMS = 128


@register_compressor
class SZx(Compressor):
    """Constant-block + fixed-width offset coding; fastest, lowest ratio."""

    name = "szx"

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        flat = values.reshape(-1)
        n = flat.size
        n_blocks = -(-n // BLOCK_ELEMS)
        padded = np.empty(n_blocks * BLOCK_ELEMS, dtype=np.float64)
        padded[:n] = flat
        if padded.size > n:
            padded[n:] = flat[-1]
        blocks = padded.reshape(n_blocks, BLOCK_ELEMS)

        vmin = blocks.min(axis=1)
        vmax = blocks.max(axis=1)
        center = 0.5 * (vmin + vmax)
        radius = 0.5 * (vmax - vmin)
        const_mask = radius <= abs_bound

        nc_idx = np.flatnonzero(~const_mask)
        widths_per_block = np.zeros(n_blocks, dtype=np.int64)
        payload_codes = b""
        if nc_idx.size:
            width = 2.0 * abs_bound
            k = np.rint((blocks[nc_idx] - center[nc_idx, None]) / width).astype(
                np.int64
            )
            kmax = np.abs(k).max(axis=1)
            # Bits for sign + magnitude; at least 1 bit even if kmax == 0.
            m = np.ceil(np.log2(kmax.astype(np.float64) + 1.0)).astype(np.int64) + 1
            m = np.maximum(m, 1)
            widths_per_block[nc_idx] = m
            offset = (np.int64(1) << (m - 1))[:, None]
            stored = (k + offset).astype(np.uint64)
            elem_widths = np.repeat(m, BLOCK_ELEMS)
            payload_codes = pack_bits(stored.reshape(-1), elem_widths)

        flags = np.packbits(const_mask.astype(np.uint8)).tobytes()
        header = struct.pack("<QQQ", n, n_blocks, len(payload_codes))
        parts = [
            header,
            flags,
            widths_per_block[nc_idx].astype(np.uint8).tobytes(),
            center.astype(np.float64).tobytes(),
            payload_codes,
        ]
        return b"".join(parts)

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        n, n_blocks, code_len = struct.unpack_from("<QQQ", payload, 0)
        off = 24
        n_flag_bytes = -(-n_blocks // 8)
        const_mask = (
            np.unpackbits(
                np.frombuffer(payload, dtype=np.uint8, count=n_flag_bytes, offset=off)
            )[:n_blocks]
            .astype(bool)
        )
        off += n_flag_bytes
        nc_idx = np.flatnonzero(~const_mask)
        m = np.frombuffer(payload, dtype=np.uint8, count=nc_idx.size, offset=off).astype(
            np.int64
        )
        off += nc_idx.size
        center = np.frombuffer(payload, dtype=np.float64, count=n_blocks, offset=off)
        off += 8 * n_blocks
        codes_raw = payload[off : off + code_len]

        out = np.empty((n_blocks, BLOCK_ELEMS), dtype=np.float64)
        out[:] = center[:, None]
        if nc_idx.size:
            elem_widths = np.repeat(m, BLOCK_ELEMS)
            stored = unpack_bits(codes_raw, elem_widths).reshape(
                nc_idx.size, BLOCK_ELEMS
            )
            offset = (np.int64(1) << (m - 1))[:, None]
            k = stored.astype(np.int64) - offset
            width = 2.0 * abs_bound
            out[nc_idx] = center[nc_idx, None] + k.astype(np.float64) * width
        flat = out.reshape(-1)[:n]
        if flat.size != int(np.prod(shape)):
            raise DecompressionError("szx element count mismatch")
        return flat.reshape(shape)
