"""Block predictors for the SZ2 pipeline: Lorenzo and linear regression.

SZ2 processes each block with one of two predictors (chosen per block by
estimated residual magnitude):

- **Lorenzo** — predicts each element from its already-reconstructed causal
  neighbours inside the block (out-of-block neighbours read as zero, matching
  SZ2's block-local semantics).  Compression must therefore walk the block in
  raster order, but the walk is vectorized *across* blocks: every step updates
  one in-block position for all blocks at once.
- **Regression** — fits an affine model ``v ≈ c0 + Σ c_d · x_d`` per block by
  least squares on the *original* values.  The coefficients are stored
  (float32) so compressor and decompressor evaluate the identical prediction,
  making the prediction independent of reconstruction order and fully
  vectorizable.

Both predictors feed the shared :class:`~repro.compressors.quantizer.LinearQuantizer`.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.quantizer import LinearQuantizer, zigzag_decode

__all__ = [
    "lorenzo_encode_blocks",
    "lorenzo_decode_blocks",
    "regression_fit",
    "regression_predict",
    "estimate_lorenzo_error",
]

# In-block raster offsets and inclusion-exclusion signs of the Lorenzo stencil
# per rank: 1-D uses the left neighbour; 2-D/3-D the full corner stencil.
_LORENZO_TERMS = {
    1: [((1,), +1.0)],
    2: [((1, 0), +1.0), ((0, 1), +1.0), ((1, 1), -1.0)],
    3: [
        ((1, 0, 0), +1.0),
        ((0, 1, 0), +1.0),
        ((0, 0, 1), +1.0),
        ((1, 1, 0), -1.0),
        ((1, 0, 1), -1.0),
        ((0, 1, 1), -1.0),
        ((1, 1, 1), +1.0),
    ],
}


def _block_positions(block: tuple[int, ...]):
    """Raster-order in-block multi-indices."""
    return list(np.ndindex(*block))


def lorenzo_encode_blocks(
    blocks: np.ndarray, quantizer: LinearQuantizer
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize blocks with the causal Lorenzo predictor.

    Parameters
    ----------
    blocks:
        ``(n_blocks, *block_shape)`` float64 array.
    quantizer:
        Shared linear quantizer.

    Returns
    -------
    codes, recon, outlier_mask
        ``codes`` has the blocks' shape; ``recon`` is the decompressor-visible
        reconstruction; ``outlier_mask`` flags escape-coded elements.
    """
    block = blocks.shape[1:]
    ndim = len(block)
    terms = _LORENZO_TERMS[ndim]
    codes = np.zeros_like(blocks, dtype=np.int64)
    recon = np.zeros_like(blocks, dtype=np.float64)
    for pos in _block_positions(block):
        pred = np.zeros(blocks.shape[0], dtype=np.float64)
        for offset, sign in terms:
            nb = tuple(p - o for p, o in zip(pos, offset))
            if any(c < 0 for c in nb):
                continue
            pred += sign * recon[(slice(None),) + nb]
        col = blocks[(slice(None),) + pos]
        q = quantizer.quantize(col, pred)
        codes[(slice(None),) + pos] = q.codes
        recon[(slice(None),) + pos] = q.recon
    return codes, recon, codes == 0


def lorenzo_decode_blocks(
    codes: np.ndarray,
    outlier_values: np.ndarray,
    outlier_slots: np.ndarray,
    quantizer: LinearQuantizer,
) -> np.ndarray:
    """Reverse :func:`lorenzo_encode_blocks`.

    ``outlier_slots`` maps each element to its index in ``outlier_values``
    (or -1); it is derived from the global code stream by the caller so the
    escape ordering matches compression exactly.
    """
    block = codes.shape[1:]
    ndim = len(block)
    terms = _LORENZO_TERMS[ndim]
    width = 2.0 * quantizer.abs_bound
    recon = np.zeros(codes.shape, dtype=np.float64)
    for pos in _block_positions(block):
        pred = np.zeros(codes.shape[0], dtype=np.float64)
        for offset, sign in terms:
            nb = tuple(p - o for p, o in zip(pos, offset))
            if any(c < 0 for c in nb):
                continue
            pred += sign * recon[(slice(None),) + nb]
        code_col = codes[(slice(None),) + pos]
        signed = zigzag_decode(np.maximum(code_col - 1, 0))
        vals = pred + signed.astype(np.float64) * width
        slots = outlier_slots[(slice(None),) + pos]
        esc = code_col == 0
        if esc.any():
            vals = np.where(esc, outlier_values[np.maximum(slots, 0)], vals)
        recon[(slice(None),) + pos] = vals
    return recon


def _design_matrix(block: tuple[int, ...]) -> np.ndarray:
    """(block_elems, ndim+1) design matrix [1, x0, x1, ...] for the affine fit."""
    coords = np.stack(
        [g.ravel().astype(np.float64) for g in np.meshgrid(*[np.arange(b) for b in block], indexing="ij")],
        axis=1,
    )
    ones = np.ones((coords.shape[0], 1))
    return np.concatenate([ones, coords], axis=1)


def regression_fit(blocks: np.ndarray) -> np.ndarray:
    """Least-squares affine coefficients per block.

    Returns ``(n_blocks, ndim + 1)`` float32 — float32 because the codec
    stores them at that precision; fitting *and* prediction use the stored
    values so both sides agree bit-for-bit.
    """
    block = blocks.shape[1:]
    X = _design_matrix(block)
    # Solve (X^T X) beta = X^T y for all blocks at once.
    gram_inv = np.linalg.pinv(X.T @ X)
    flat = blocks.reshape(blocks.shape[0], -1)
    beta = flat @ X @ gram_inv.T
    return beta.astype(np.float32)


def regression_predict(coeffs: np.ndarray, block: tuple[int, ...]) -> np.ndarray:
    """Evaluate stored affine coefficients; returns ``(n_blocks, *block)``."""
    X = _design_matrix(block)
    pred = coeffs.astype(np.float64) @ X.T
    return pred.reshape((coeffs.shape[0],) + tuple(block))


def estimate_lorenzo_error(blocks: np.ndarray) -> np.ndarray:
    """Cheap per-block proxy for Lorenzo residual magnitude.

    Uses original-value neighbours (one vectorized stencil pass) rather than
    the sequential reconstruction — the same sampling shortcut SZ2 uses for
    predictor selection.  Returns the mean absolute residual per block.
    """
    block = blocks.shape[1:]
    ndim = len(block)
    terms = _LORENZO_TERMS[ndim]
    pred = np.zeros_like(blocks)
    for offset, sign in terms:
        slicer = [slice(None)]
        src = [slice(None)]
        for o in offset:
            if o == 0:
                slicer.append(slice(None))
                src.append(slice(None))
            else:
                slicer.append(slice(o, None))
                src.append(slice(None, -o))
        shifted = np.zeros_like(blocks)
        shifted[tuple(slicer)] = blocks[tuple(src)]
        pred += sign * shifted
    resid = np.abs(blocks - pred)
    return resid.reshape(blocks.shape[0], -1).mean(axis=1)
