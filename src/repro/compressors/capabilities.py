"""Reference-implementation capability matrix (paper Section IV-C).

The paper notes two limitations of the *reference* codebases at the time of
the study: "QoZ is not capable of compressing 1D data, and the OpenMP
version of SZ2 is not capable of compressing 1D or 4D data."  Our pure-NumPy
reimplementations do not share those limitations, but experiments that aim
for strict fidelity to the paper's measurement matrix (which bars/panels are
missing from its figures) can consult this table.

``supported(codec, ndim, mode)`` answers whether the paper's toolchain could
run that combination; drivers pass ``paper_fidelity=True`` to honour it.
"""

from __future__ import annotations

__all__ = ["supported", "unsupported_reason", "REFERENCE_LIMITATIONS"]

#: (codec, ndim, mode) -> reason.  mode is "serial" or "openmp"; ndim is the
#: dataset rank.  Absence means supported.
REFERENCE_LIMITATIONS: dict[tuple[str, int, str], str] = {
    ("qoz", 1, "serial"): "QoZ (2023.11.07) cannot compress 1D data",
    ("qoz", 1, "openmp"): "QoZ (2023.11.07) cannot compress 1D data",
    ("sz2", 1, "openmp"): "OpenMP SZ2 (1.12.5) cannot compress 1D data",
    ("sz2", 4, "openmp"): "OpenMP SZ2 (1.12.5) cannot compress 4D data",
}


def supported(codec: str, ndim: int, mode: str = "serial") -> bool:
    """Could the paper's reference toolchain run this combination?"""
    if mode not in ("serial", "openmp"):
        raise ValueError(f"mode must be serial/openmp, got {mode!r}")
    return (codec, ndim, mode) not in REFERENCE_LIMITATIONS


def unsupported_reason(codec: str, ndim: int, mode: str = "serial") -> str | None:
    """The paper's stated reason, or None if the combination is supported."""
    if mode not in ("serial", "openmp"):
        raise ValueError(f"mode must be serial/openmp, got {mode!r}")
    return REFERENCE_LIMITATIONS.get((codec, ndim, mode))
