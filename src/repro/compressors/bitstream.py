"""Bit-level stream I/O backed by NumPy.

The SZ-family codecs need two access patterns:

- **Vectorized packing** of many variable-width fields at once (Huffman codes,
  truncated mantissas).  :func:`pack_bits` / :func:`unpack_bits` handle that in
  O(distinct widths) NumPy passes instead of a per-symbol Python loop.
- **Sequential access** for the ZFP bitplane coder whose control flow is
  data-dependent.  :class:`BitWriter` / :class:`BitReader` provide a compact
  MSB-first stream with ``write_bit``/``write_bits``/``read_bit``/``read_bits``.

Bit order is MSB-first within each byte for both paths, so the two interfaces
can read each other's output.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecompressionError

__all__ = ["BitWriter", "BitReader", "pack_bits", "unpack_bits"]


def pack_bits(values: np.ndarray, widths: np.ndarray) -> bytes:
    """Pack ``values[i]`` into ``widths[i]`` bits, MSB-first, concatenated.

    Parameters
    ----------
    values:
        Non-negative integers; ``values[i] < 2**widths[i]`` (only the low
        ``widths[i]`` bits are kept).
    widths:
        Per-value bit widths in ``[0, 64]``.  Zero-width entries contribute
        nothing to the stream.

    Returns
    -------
    bytes
        The packed stream, padded with zero bits to a byte boundary.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    if values.shape != widths.shape:
        raise ValueError("values and widths must have the same shape")
    if values.size == 0:
        return b""
    if widths.min() < 0 or widths.max() > 64:
        raise ValueError("bit widths must be in [0, 64]")

    total_bits = int(widths.sum())
    if total_bits == 0:
        return b""
    bits = np.zeros(total_bits, dtype=np.uint8)
    # Start offset of each value's field in the bit array.
    starts = np.concatenate(([0], np.cumsum(widths)[:-1]))
    # One vectorized scatter per distinct width: for width w, bit j of the
    # field (MSB-first) is (value >> (w - 1 - j)) & 1.
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = widths == w
        vals = values[sel]
        field_starts = starts[sel]
        shifts = np.arange(w - 1, -1, -1, dtype=np.uint64)
        field_bits = (vals[:, None] >> shifts[None, :]) & np.uint64(1)
        idx = field_starts[:, None] + np.arange(w, dtype=np.int64)[None, :]
        bits[idx.ravel()] = field_bits.astype(np.uint8).ravel()
    return np.packbits(bits).tobytes()


def unpack_bits(data: bytes, widths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`: read ``len(widths)`` fields.

    Returns a ``uint64`` array of the decoded values.
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.size == 0:
        return np.zeros(0, dtype=np.uint64)
    if widths.min() < 0 or widths.max() > 64:
        raise ValueError("bit widths must be in [0, 64]")
    total_bits = int(widths.sum())
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    if bits.size < total_bits:
        raise DecompressionError(
            f"bit stream too short: need {total_bits} bits, have {bits.size}"
        )
    starts = np.concatenate(([0], np.cumsum(widths)[:-1]))
    out = np.zeros(widths.size, dtype=np.uint64)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = widths == w
        field_starts = starts[sel]
        idx = field_starts[:, None] + np.arange(w, dtype=np.int64)[None, :]
        field_bits = bits[idx.ravel()].reshape(-1, w).astype(np.uint64)
        shifts = np.arange(w - 1, -1, -1, dtype=np.uint64)
        out[sel] = (field_bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)
    return out


class BitWriter:
    """Sequential MSB-first bit writer.

    Bits are accumulated in a Python integer window and flushed to a
    ``bytearray`` in 8-bit groups; this keeps single-bit writes cheap enough
    for the ZFP group-testing coder while remaining exactly byte-compatible
    with :func:`pack_bits`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # bit accumulator, MSB side filled first
        self._nacc = 0  # number of valid bits in the accumulator

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nacc += 1
        if self._nacc == 8:
            self._buf.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, MSB-first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return
        value &= (1 << width) - 1
        self._acc = (self._acc << width) | value
        self._nacc += width
        while self._nacc >= 8:
            self._nacc -= 8
            self._buf.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buf) + self._nacc

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        if self._nacc:
            return bytes(self._buf) + bytes([(self._acc << (8 - self._nacc)) & 0xFF])
        return bytes(self._buf)


class BitReader:
    """Sequential MSB-first bit reader over a ``bytes`` buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    def seek_bit(self, position: int) -> None:
        """Jump to an absolute bit offset."""
        if position < 0 or position > 8 * len(self._data):
            raise DecompressionError("bit seek out of range")
        self._pos = position

    def read_bit(self) -> int:
        """Read a single bit; raises :class:`DecompressionError` at EOF."""
        byte_idx = self._pos >> 3
        if byte_idx >= len(self._data):
            raise DecompressionError("bit stream exhausted")
        bit = (self._data[byte_idx] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first and return them as an int."""
        if width < 0:
            raise ValueError("width must be non-negative")
        end = self._pos + width
        if end > 8 * len(self._data):
            raise DecompressionError("bit stream exhausted")
        out = 0
        pos = self._pos
        remaining = width
        while remaining > 0:
            byte_idx = pos >> 3
            offset = pos & 7
            take = min(8 - offset, remaining)
            chunk = (self._data[byte_idx] >> (8 - offset - take)) & ((1 << take) - 1)
            out = (out << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return out
