"""Bit-level stream I/O backed by NumPy, word-at-a-time.

The SZ-family codecs need two access patterns:

- **Vectorized packing** of many variable-width fields at once (Huffman codes,
  truncated mantissas).  :func:`pack_bits` / :func:`unpack_bits` shift-and-or
  every field directly into/out of ``uint64`` words — no one-byte-per-bit
  intermediate — so both directions are a handful of O(n) NumPy passes.
- **Sequential access** for the ZFP bitplane coder whose control flow is
  data-dependent.  :class:`BitWriter` / :class:`BitReader` provide a compact
  MSB-first stream with ``write_bit``/``write_bits``/``read_bit``/``read_bits``
  plus batch variants ``write_many``/``read_many`` that reuse the vectorized
  word kernels for runs of fields with known widths.

Bit order is MSB-first within each byte for both paths, so the two interfaces
can read each other's output; the on-disk byte format is unchanged from the
original per-bit implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecompressionError

__all__ = ["BitWriter", "BitReader", "pack_bits", "unpack_bits"]

_U64 = np.uint64
_ZERO = np.uint64(0)
_SIXTYFOUR = np.uint64(64)
_MASK6 = np.uint64(63)


def _check_widths(widths: np.ndarray) -> None:
    if widths.size and (widths.min() < 0 or widths.max() > 64):
        raise ValueError("bit widths must be in [0, 64]")


def _mask_to_width(values: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Drop bits above each field's declared width (oversized inputs must not
    bleed into neighbouring fields; the bit-scatter implementation did this
    per bit)."""
    wu = widths.astype(_U64)
    return np.where(widths >= 64, values, values & ((_U64(1) << wu) - _U64(1)))


def _pack_to_words(values: np.ndarray, widths: np.ndarray) -> tuple[np.ndarray, int]:
    """Shift-and-or MSB-first fields into big-bit-order ``uint64`` words.

    Word ``bit 63`` is the first bit of the stream chunk the word covers, so
    serializing the words big-endian yields the MSB-first byte stream.
    Returns ``(words, total_bits)``; the word array carries one padding word.
    """
    total_bits = int(widths.sum())
    n_words = (total_bits + 63) // 64 + 1
    words = np.zeros(n_words, dtype=_U64)
    if total_bits == 0:
        return words, 0

    nz = widths > 0
    w = widths[nz].astype(_U64)
    v = values[nz]
    ends = np.cumsum(widths[nz])
    starts = (ends - widths[nz]).astype(np.int64)

    wi = starts >> 6
    off = (starts & 63).astype(_U64)
    spill = (off + w) > _SIXTYFOUR

    # High part: the bits of the field that land in word `wi`.
    sh_left = np.where(spill, _ZERO, (_SIXTYFOUR - off - w) & _MASK6)
    sh_right = np.where(spill, off + w - _SIXTYFOUR, _ZERO)
    hi = np.where(spill, v >> sh_right, v << sh_left)
    # Low part: spill-over bits into word `wi + 1`.
    sh_lo = np.where(spill, (np.uint64(128) - off - w) & _MASK6, _ZERO)
    lo = np.where(spill, v << sh_lo, _ZERO)

    # `starts` is non-decreasing, so fields sharing a word are contiguous:
    # one bitwise-or segment reduction per distinct word index.
    seg = np.flatnonzero(np.diff(wi)) + 1
    seg = np.concatenate(([0], seg))
    words[wi[seg]] |= np.bitwise_or.reduceat(hi, seg)

    if spill.any():
        wj = wi[spill] + 1
        lo = lo[spill]
        seg = np.flatnonzero(np.diff(wj)) + 1
        seg = np.concatenate(([0], seg))
        words[wj[seg]] |= np.bitwise_or.reduceat(lo, seg)
    return words, total_bits


def _words_from_bytes(data: bytes) -> np.ndarray:
    """Big-bit-order ``uint64`` view of an MSB-first byte stream.

    Two zero words of padding guarantee windowed gathers may touch
    ``wi + 1`` for any in-range bit offset, including on an empty stream.
    """
    pad = (-len(data)) % 8 + 16
    return np.frombuffer(data + b"\x00" * pad, dtype=">u8").astype(_U64, copy=False)


def _gather_fields(
    words: np.ndarray, starts: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Read ``widths[i]`` bits at absolute bit offset ``starts[i]`` for all i."""
    w = widths.astype(_U64)
    starts = np.where(widths > 0, starts, 0)
    wi = starts >> 6
    off = (starts & 63).astype(_U64)
    hi = words[wi] << off
    lo = np.where(off > _ZERO, words[wi + 1] >> ((_SIXTYFOUR - off) & _MASK6), _ZERO)
    window = hi | lo
    return np.where(widths > 0, window >> ((_SIXTYFOUR - w) & _MASK6), _ZERO)


def pack_bits(values: np.ndarray, widths: np.ndarray) -> bytes:
    """Pack ``values[i]`` into ``widths[i]`` bits, MSB-first, concatenated.

    Parameters
    ----------
    values:
        Non-negative integers; ``values[i] < 2**widths[i]`` (only the low
        ``widths[i]`` bits are kept).
    widths:
        Per-value bit widths in ``[0, 64]``.  Zero-width entries contribute
        nothing to the stream.

    Returns
    -------
    bytes
        The packed stream, padded with zero bits to a byte boundary.
    """
    values = np.asarray(values, dtype=_U64)
    widths = np.asarray(widths, dtype=np.int64)
    if values.shape != widths.shape:
        raise ValueError("values and widths must have the same shape")
    if values.size == 0:
        return b""
    _check_widths(widths)
    words, total_bits = _pack_to_words(_mask_to_width(values, widths), widths)
    if total_bits == 0:
        return b""
    return words.astype(">u8").tobytes()[: (total_bits + 7) // 8]


def unpack_bits(data: bytes, widths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`: read ``len(widths)`` fields.

    Returns a ``uint64`` array of the decoded values.
    """
    widths = np.asarray(widths, dtype=np.int64)
    if widths.size == 0:
        return np.zeros(0, dtype=_U64)
    _check_widths(widths)
    total_bits = int(widths.sum())
    avail = 8 * len(data)
    if avail < total_bits:
        raise DecompressionError(
            f"bit stream too short: need {total_bits} bits, have {avail}"
        )
    ends = np.cumsum(widths)
    starts = ends - widths
    return _gather_fields(_words_from_bytes(data), starts, widths)


class BitWriter:
    """Sequential MSB-first bit writer.

    Bits are accumulated in a Python integer window and flushed to a
    ``bytearray`` in 8-bit groups; this keeps single-bit writes cheap enough
    for the ZFP group-testing coder while remaining exactly byte-compatible
    with :func:`pack_bits`.  Runs of fields with known widths should go
    through :meth:`write_many`, which packs whole words vectorized.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # bit accumulator, MSB side filled first
        self._nacc = 0  # number of valid bits in the accumulator

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nacc += 1
        if self._nacc == 8:
            self._buf.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, MSB-first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return
        value &= (1 << width) - 1
        self._acc = (self._acc << width) | value
        self._nacc += width
        while self._nacc >= 8:
            self._nacc -= 8
            self._buf.append((self._acc >> self._nacc) & 0xFF)
        self._acc &= (1 << self._nacc) - 1

    def write_many(self, values: np.ndarray, widths: np.ndarray) -> None:
        """Append ``len(values)`` fields in one vectorized pass.

        Equivalent to ``for v, w in zip(values, widths): self.write_bits(v, w)``
        but packed word-at-a-time; widths must be in ``[0, 64]``.
        """
        values = np.asarray(values, dtype=_U64)
        widths = np.asarray(widths, dtype=np.int64)
        if values.shape != widths.shape:
            raise ValueError("values and widths must have the same shape")
        if values.size == 0:
            return
        _check_widths(widths)
        # Prepend the partial accumulator as field 0 so the packed stream is
        # already aligned with the flushed byte buffer.
        all_values = np.concatenate(([np.uint64(self._acc)], values))
        all_widths = np.concatenate(([self._nacc], widths))
        words, total_bits = _pack_to_words(
            _mask_to_width(all_values, all_widths), all_widths
        )
        if total_bits == 0:
            return
        packed = words.astype(">u8").tobytes()
        full, rem = divmod(total_bits, 8)
        self._buf += packed[:full]
        self._acc = packed[full] >> (8 - rem) if rem else 0
        self._nacc = rem

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buf) + self._nacc

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        if self._nacc:
            return bytes(self._buf) + bytes([(self._acc << (8 - self._nacc)) & 0xFF])
        return bytes(self._buf)


class BitReader:
    """Sequential MSB-first bit reader over a ``bytes`` buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # absolute bit position
        self._words: np.ndarray | None = None  # lazy word view for read_many

    @property
    def bit_position(self) -> int:
        """Current absolute bit offset from the start of the buffer."""
        return self._pos

    @property
    def bit_size(self) -> int:
        """Total number of bits in the underlying buffer."""
        return 8 * len(self._data)

    def seek_bit(self, position: int) -> None:
        """Jump to an absolute bit offset."""
        if position < 0 or position > 8 * len(self._data):
            raise DecompressionError("bit seek out of range")
        self._pos = position

    def read_bit(self) -> int:
        """Read a single bit; raises :class:`DecompressionError` at EOF."""
        byte_idx = self._pos >> 3
        if byte_idx >= len(self._data):
            raise DecompressionError("bit stream exhausted")
        bit = (self._data[byte_idx] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits MSB-first and return them as an int."""
        if width < 0:
            raise ValueError("width must be non-negative")
        end = self._pos + width
        if end > 8 * len(self._data):
            raise DecompressionError("bit stream exhausted")
        out = 0
        pos = self._pos
        remaining = width
        while remaining > 0:
            byte_idx = pos >> 3
            offset = pos & 7
            take = min(8 - offset, remaining)
            chunk = (self._data[byte_idx] >> (8 - offset - take)) & ((1 << take) - 1)
            out = (out << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return out

    def read_many(self, widths: np.ndarray) -> np.ndarray:
        """Read ``len(widths)`` consecutive fields in one vectorized gather.

        Equivalent to ``np.array([self.read_bits(w) for w in widths])`` but
        word-at-a-time; returns ``uint64`` and advances the bit position.
        """
        widths = np.asarray(widths, dtype=np.int64)
        if widths.size == 0:
            return np.zeros(0, dtype=_U64)
        _check_widths(widths)
        total_bits = int(widths.sum())
        end = self._pos + total_bits
        if end > 8 * len(self._data):
            raise DecompressionError("bit stream exhausted")
        if self._words is None:
            self._words = _words_from_bytes(self._data)
        ends = np.cumsum(widths)
        starts = self._pos + (ends - widths)
        out = _gather_fields(self._words, starts, widths)
        self._pos = end
        return out
