"""Blocking helpers shared by the block-based codecs (SZ2, ZFP, SZx).

Arrays are padded (edge-replicated) to a multiple of the block side along
every axis, then reshaped into a ``(n_blocks, block_elems)`` matrix so the
per-block kernels can be vectorized across blocks.  ``unblockify`` inverts the
operation and crops back to the original shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["blockify", "unblockify", "padded_shape"]


def padded_shape(shape: tuple[int, ...], block: tuple[int, ...]) -> tuple[int, ...]:
    """Shape after padding each axis up to a multiple of the block side."""
    if len(shape) != len(block):
        raise ValueError("shape and block must have equal rank")
    return tuple(-(-n // b) * b for n, b in zip(shape, block))


def blockify(values: np.ndarray, block: tuple[int, ...]) -> np.ndarray:
    """Split ``values`` into blocks; returns ``(n_blocks, *block)``.

    Blocks are ordered raster-wise over the block grid.  Padding replicates
    edge values, which keeps padded residuals near zero for smooth fields.
    """
    values = np.asarray(values)
    ndim = values.ndim
    if len(block) != ndim:
        raise ValueError("block rank must match array rank")
    target = padded_shape(values.shape, block)
    pad = [(0, t - n) for n, t in zip(values.shape, target)]
    if any(p[1] for p in pad):
        values = np.pad(values, pad, mode="edge")
    # Reshape to interleaved (grid0, b0, grid1, b1, ...) then bring grid axes first.
    inter = []
    for n, b in zip(values.shape, block):
        inter.extend([n // b, b])
    arr = values.reshape(inter)
    grid_axes = tuple(range(0, 2 * ndim, 2))
    block_axes = tuple(range(1, 2 * ndim, 2))
    arr = arr.transpose(grid_axes + block_axes)
    n_blocks = int(np.prod([values.shape[d] // block[d] for d in range(ndim)]))
    return np.ascontiguousarray(arr.reshape((n_blocks,) + tuple(block)))


def unblockify(
    blocks: np.ndarray, shape: tuple[int, ...], block: tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`blockify`; crops the padding back off."""
    ndim = len(shape)
    target = padded_shape(shape, block)
    grid = [t // b for t, b in zip(target, block)]
    arr = blocks.reshape(tuple(grid) + tuple(block))
    # (g0, g1, ..., b0, b1, ...) -> (g0, b0, g1, b1, ...)
    perm = []
    for d in range(ndim):
        perm.extend([d, ndim + d])
    arr = arr.transpose(perm).reshape(target)
    crop = tuple(slice(0, n) for n in shape)
    return np.ascontiguousarray(arr[crop])
