"""SZ2: blockwise Lorenzo/regression prediction compressor.

Pipeline (faithful to Liang et al., IEEE Big Data 2018):

1. split the array into small blocks (128 for 1-D, 16x16 for 2-D, 6x6x6 for
   3-D; higher-rank arrays use unit-length leading block sides so each block
   is a 3-D tile);
2. per block, choose between the causal **Lorenzo** predictor and a stored
   **linear-regression** (affine) predictor, by estimated residual magnitude;
3. quantize prediction residuals on a ``2·eb`` grid with an outlier escape;
4. entropy-code the quantization symbols with canonical **Huffman**, then a
   **DEFLATE** pass (zlib stands in for the paper's Zstd final stage).

The value-range relative error bound is guaranteed element-wise: quantized
elements by the quantizer contract, escaped elements verbatim.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.compressors.blocks import blockify, unblockify
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.predictors import (
    estimate_lorenzo_error,
    lorenzo_decode_blocks,
    lorenzo_encode_blocks,
    regression_fit,
    regression_predict,
)
from repro.compressors.quantizer import LinearQuantizer, zigzag_decode
from repro.errors import DecompressionError

__all__ = ["SZ2"]

_ZLIB_LEVEL = 6


def _block_for_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    ndim = len(shape)
    if ndim == 1:
        return (128,)
    if ndim == 2:
        return (16, 16)
    if ndim == 3:
        return (6, 6, 6)
    return (1,) * (ndim - 3) + (6, 6, 6)


def _pack_chunk(raw: bytes) -> bytes:
    comp = zlib.compress(raw, _ZLIB_LEVEL)
    return struct.pack("<QQ", len(comp), len(raw)) + comp


def _unpack_chunk(data: bytes, off: int) -> tuple[bytes, int]:
    if len(data) < off + 16:
        raise DecompressionError("sz2 stream truncated in chunk header")
    clen, rlen = struct.unpack_from("<QQ", data, off)
    off += 16
    if len(data) < off + clen:
        raise DecompressionError("sz2 stream truncated in chunk body")
    raw = zlib.decompress(data[off : off + clen])
    if len(raw) != rlen:
        raise DecompressionError("sz2 chunk length mismatch after inflate")
    return raw, off + clen


@register_compressor
class SZ2(Compressor):
    """Prediction-based EBLC with hybrid Lorenzo + regression blocks."""

    name = "sz2"

    def __init__(self, regression_bias: float = 1.0):
        #: Multiplier on the regression error estimate before comparing with
        #: Lorenzo; >1 biases block selection toward Lorenzo.
        self.regression_bias = float(regression_bias)

    # -- compression --------------------------------------------------------

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        shape = values.shape
        block = _block_for_shape(shape)
        blocks = blockify(values, block)
        n_blocks = blocks.shape[0]
        core = blocks.reshape((n_blocks,) + tuple(s for s in block if s > 1))
        core_block = core.shape[1:]

        quantizer = LinearQuantizer(abs_bound)

        # Predictor selection: regression wins when its fitted residual beats
        # the (original-neighbour) Lorenzo estimate.
        coeffs_all = regression_fit(core)
        reg_pred_all = regression_predict(coeffs_all, core_block)
        reg_err = (
            np.abs(core - reg_pred_all).reshape(n_blocks, -1).mean(axis=1)
            * self.regression_bias
        )
        lor_err = estimate_lorenzo_error(core)
        reg_mask = reg_err < lor_err

        codes = np.zeros_like(core, dtype=np.int64)
        reg_idx = np.flatnonzero(reg_mask)
        lor_idx = np.flatnonzero(~reg_mask)
        if reg_idx.size:
            q = quantizer.quantize(core[reg_idx], reg_pred_all[reg_idx])
            codes[reg_idx] = q.codes
        if lor_idx.size:
            lcodes, _, _ = lorenzo_encode_blocks(core[lor_idx], quantizer)
            codes[lor_idx] = lcodes

        flat_codes = codes.reshape(-1)
        outliers = core.reshape(-1)[flat_codes == 0]

        mode_bytes = np.packbits(reg_mask.astype(np.uint8)).tobytes()
        coeffs = coeffs_all[reg_idx]

        parts = [
            struct.pack("<B", len(block)),
            struct.pack(f"<{len(block)}H", *block),
            struct.pack("<QQ", n_blocks, reg_idx.size),
            mode_bytes,
            _pack_chunk(coeffs.astype(np.float32).tobytes()),
            _pack_chunk(outliers.astype(np.float64).tobytes()),
            _pack_chunk(huffman_encode(flat_codes)),
        ]
        return b"".join(parts)

    # -- decompression ------------------------------------------------------

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        off = 0
        (block_rank,) = struct.unpack_from("<B", payload, off)
        off += 1
        block = struct.unpack_from(f"<{block_rank}H", payload, off)
        off += 2 * block_rank
        n_blocks, n_reg = struct.unpack_from("<QQ", payload, off)
        off += 16
        n_mode_bytes = -(-n_blocks // 8)
        reg_mask = (
            np.unpackbits(
                np.frombuffer(payload, dtype=np.uint8, count=n_mode_bytes, offset=off)
            )[:n_blocks]
            .astype(bool)
        )
        off += n_mode_bytes
        coeff_raw, off = _unpack_chunk(payload, off)
        outlier_raw, off = _unpack_chunk(payload, off)
        huff_raw, off = _unpack_chunk(payload, off)

        core_block = tuple(s for s in block if s > 1)
        coeffs = np.frombuffer(coeff_raw, dtype=np.float32).reshape(
            n_reg, len(core_block) + 1
        )
        outliers = np.frombuffer(outlier_raw, dtype=np.float64)
        flat_codes = huffman_decode(huff_raw)
        codes = flat_codes.reshape((n_blocks,) + core_block)

        # Global escape-slot map (flattened block-major order).
        esc = flat_codes == 0
        slots_flat = np.where(esc, np.cumsum(esc) - 1, -1)
        slots = slots_flat.reshape(codes.shape)
        if int(esc.sum()) != outliers.size:
            raise DecompressionError("sz2 outlier pool size mismatch")

        quantizer = LinearQuantizer(abs_bound)
        recon = np.zeros(codes.shape, dtype=np.float64)
        reg_idx = np.flatnonzero(reg_mask)
        lor_idx = np.flatnonzero(~reg_mask)
        if reg_idx.size:
            pred = regression_predict(coeffs, core_block)
            width = 2.0 * abs_bound
            sub_codes = codes[reg_idx]
            signed = zigzag_decode(np.maximum(sub_codes - 1, 0))
            vals = pred + signed.astype(np.float64) * width
            sub_slots = slots[reg_idx]
            esc_mask = sub_codes == 0
            if esc_mask.any():
                vals = np.where(
                    esc_mask, outliers[np.maximum(sub_slots, 0)], vals
                )
            recon[reg_idx] = vals
        if lor_idx.size:
            recon[lor_idx] = lorenzo_decode_blocks(
                codes[lor_idx], outliers, slots[lor_idx], quantizer
            )

        full = recon.reshape((n_blocks,) + tuple(block))
        return unblockify(full, shape, tuple(block))
