"""Error-bounded lossy compressors (EBLCs) and lossless baselines.

This subpackage reimplements, from scratch and in pure NumPy, the compression
pipelines profiled by the paper:

- :class:`~repro.compressors.sz2.SZ2` — blockwise Lorenzo + linear-regression
  prediction, linear-scale quantization, canonical Huffman, DEFLATE.
- :class:`~repro.compressors.sz3.SZ3` — multilevel dynamic spline
  interpolation prediction, quantization, Huffman, DEFLATE.
- :class:`~repro.compressors.qoz.QoZ` — SZ3's interpolation engine with
  quality-oriented per-level error-bound tuning.
- :class:`~repro.compressors.zfp.ZFP` — block-float fixed-point conversion,
  orthogonal lifting transform, negabinary, group-tested bitplane coding.
- :class:`~repro.compressors.szx.SZx` — ultra-fast constant-block detection
  plus bounded mantissa truncation.

plus the Figure-1 lossless baselines in :mod:`repro.compressors.lossless`.

Every EBLC honours the value-range relative error bound: for input ``D`` and
bound ``eps``, every reconstructed element satisfies
``|D[k] - Dhat[k]| <= eps * (max(D) - min(D))``.
"""

from repro.compressors.base import (
    CompressedBuffer,
    Compressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.sz2 import SZ2
from repro.compressors.sz3 import SZ3
from repro.compressors.qoz import QoZ
from repro.compressors.zfp import ZFP
from repro.compressors.szx import SZx

__all__ = [
    "CompressedBuffer",
    "Compressor",
    "available_compressors",
    "get_compressor",
    "register_compressor",
    "SZ2",
    "SZ3",
    "QoZ",
    "ZFP",
    "SZx",
]
