"""SZ3: interpolation-based EBLC (Liang et al., IEEE TBD 2023).

SZ3 replaces SZ2's block regression with multilevel dynamic spline
interpolation (see :mod:`repro.compressors.interpolation`), which needs no
stored coefficients and wins at loose-to-moderate error bounds.  The encoded
stream is: exact anchors, per-pass interpolator choice bits, Huffman-coded
quantization symbols, DEFLATE-compressed, plus the escape pool.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.interpolation import interp_decode, interp_encode
from repro.errors import DecompressionError

__all__ = ["SZ3"]

_ZLIB_LEVEL = 6


def _pack_chunk(raw: bytes) -> bytes:
    comp = zlib.compress(raw, _ZLIB_LEVEL)
    return struct.pack("<QQ", len(comp), len(raw)) + comp


def _unpack_chunk(data: bytes, off: int) -> tuple[bytes, int]:
    if len(data) < off + 16:
        raise DecompressionError("sz3 stream truncated in chunk header")
    clen, rlen = struct.unpack_from("<QQ", data, off)
    off += 16
    if len(data) < off + clen:
        raise DecompressionError("sz3 stream truncated in chunk body")
    raw = zlib.decompress(data[off : off + clen])
    if len(raw) != rlen:
        raise DecompressionError("sz3 chunk length mismatch after inflate")
    return raw, off + clen


@register_compressor
class SZ3(Compressor):
    """Interpolation-predictor EBLC; highest CR of the suite at loose bounds."""

    name = "sz3"

    def _level_bound(self, abs_bound: float):
        """SZ3 uses the uniform bound at every level (QoZ overrides this)."""
        return None

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        anchors, modes, codes, outliers, _ = interp_encode(
            values, abs_bound, self._level_bound(abs_bound)
        )
        mode_bytes = np.packbits(np.asarray(modes, dtype=np.uint8)).tobytes()
        parts = [
            struct.pack("<II", len(modes), anchors.size),
            mode_bytes,
            _pack_chunk(anchors.astype(np.float64).tobytes()),
            _pack_chunk(outliers.astype(np.float64).tobytes()),
            _pack_chunk(huffman_encode(codes)),
        ]
        return b"".join(parts)

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        off = 0
        n_modes, n_anchor = struct.unpack_from("<II", payload, off)
        off += 8
        n_mode_bytes = -(-n_modes // 8)
        modes = (
            np.unpackbits(
                np.frombuffer(payload, dtype=np.uint8, count=n_mode_bytes, offset=off)
            )[:n_modes]
            .astype(int)
            .tolist()
        )
        off += n_mode_bytes
        anchor_raw, off = _unpack_chunk(payload, off)
        outlier_raw, off = _unpack_chunk(payload, off)
        huff_raw, off = _unpack_chunk(payload, off)
        anchors = np.frombuffer(anchor_raw, dtype=np.float64)
        if anchors.size != n_anchor:
            raise DecompressionError("sz3 anchor count mismatch")
        outliers = np.frombuffer(outlier_raw, dtype=np.float64)
        codes = huffman_decode(huff_raw)
        return interp_decode(
            shape,
            abs_bound,
            anchors,
            modes,
            codes,
            outliers,
            self._level_bound(abs_bound),
        )
