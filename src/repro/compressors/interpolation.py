"""Multilevel spline-interpolation prediction engine (SZ3 / QoZ core).

SZ3 predicts values hierarchically: anchor points on a coarse ``2^L`` grid
are stored exactly; every level then halves the grid spacing dimension by
dimension, predicting each new point by 1-D **linear** or **cubic** (4-point
spline) interpolation from already-reconstructed neighbours along the active
dimension.  Residuals are quantized immediately, so predictions always read
*reconstructed* values and the error bound never compounds.

The interpolator (linear vs cubic) is chosen dynamically per (level,
dimension) pass — the paper's "multi-dimensional dynamic spline
interpolation" — by comparing trial residuals; the choice bits travel in the
stream so the decoder replays the identical traversal.

QoZ reuses this engine with per-level error-bound tightening (see
:mod:`repro.compressors.qoz`), passed in via ``level_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.compressors.quantizer import LinearQuantizer

__all__ = ["InterpolationPlan", "interp_encode", "interp_decode", "num_levels"]

LINEAR, CUBIC = 0, 1


def num_levels(shape: tuple[int, ...]) -> int:
    """Number of halving levels so the anchor grid has stride ``2**L``."""
    longest = max(shape)
    levels = 1
    while (1 << levels) < longest:
        levels += 1
    return levels


@dataclass
class InterpolationPlan:
    """One (level, dimension) refinement pass of the traversal."""

    level: int
    dim: int
    #: Coordinate vectors of the target grid (Cartesian product via np.ix_).
    coords: tuple[np.ndarray, ...]


def _passes(shape: tuple[int, ...], levels: int):
    """Deterministic traversal shared by encoder and decoder."""
    ndim = len(shape)
    plans: list[InterpolationPlan] = []
    for level in range(levels, 0, -1):
        stride = 1 << level
        h = stride >> 1
        for d in range(ndim):
            coords = []
            empty = False
            for k in range(ndim):
                n = shape[k]
                if k < d:
                    c = np.arange(0, n, h, dtype=np.int64)
                elif k == d:
                    c = np.arange(h, n, stride, dtype=np.int64)
                else:
                    c = np.arange(0, n, stride, dtype=np.int64)
                if c.size == 0:
                    empty = True
                    break
                coords.append(c)
            if not empty:
                plans.append(InterpolationPlan(level, d, tuple(coords)))
    return plans


def _axis_shape(ndim: int, d: int, n: int) -> tuple[int, ...]:
    """Broadcast shape placing ``n`` on axis ``d``."""
    s = [1] * ndim
    s[d] = n
    return tuple(s)


def _predict(
    recon: np.ndarray, plan: InterpolationPlan, mode: int, h: int
) -> np.ndarray:
    """Interpolate the target grid of ``plan`` from reconstructed values."""
    d = plan.dim
    ndim = recon.ndim
    n_d = recon.shape[d]
    cd = plan.coords[d]

    def grid(shift_coord: np.ndarray) -> np.ndarray:
        cs = list(plan.coords)
        cs[d] = shift_coord
        return recon[np.ix_(*cs)]

    left = grid(cd - h)
    right_ok = cd + h < n_d
    right = grid(np.where(right_ok, cd + h, cd - h))
    ok = right_ok.reshape(_axis_shape(ndim, d, cd.size))
    linear = np.where(ok, 0.5 * (left + right), left)
    if mode == LINEAR:
        return linear

    cubic_ok = (cd - 3 * h >= 0) & (cd + 3 * h < n_d)
    if not cubic_ok.any():
        return linear
    far_left = grid(np.where(cubic_ok, cd - 3 * h, cd - h))
    far_right = grid(np.where(cubic_ok, cd + 3 * h, cd - h))
    cubic = (-far_left + 9.0 * left + 9.0 * right - far_right) / 16.0
    okc = cubic_ok.reshape(_axis_shape(ndim, d, cd.size))
    return np.where(okc & ok, cubic, linear)


def _anchor_coords(shape: tuple[int, ...], levels: int):
    stride = 1 << levels
    return tuple(np.arange(0, n, stride, dtype=np.int64) for n in shape)


def interp_encode(
    values: np.ndarray,
    abs_bound: float,
    level_bound: Callable[[int], float] | None = None,
):
    """Encode with the multilevel interpolation predictor.

    Parameters
    ----------
    values:
        float64 array, any rank >= 1.
    abs_bound:
        Global absolute error bound.
    level_bound:
        Optional ``level -> abs_bound`` override (QoZ tightening).  Returned
        bounds are clamped to ``(0, abs_bound]``.

    Returns
    -------
    anchors : np.ndarray
        Exact float64 anchor values (traversal order).
    modes : list[int]
        Per-pass interpolator choice (LINEAR/CUBIC).
    codes : np.ndarray
        Concatenated quantization symbols (traversal order).
    outliers : np.ndarray
        Escape-coded exact values (traversal order).
    recon : np.ndarray
        The decoder-visible reconstruction.
    """
    shape = values.shape
    levels = num_levels(shape)
    recon = np.zeros_like(values, dtype=np.float64)
    a_coords = _anchor_coords(shape, levels)
    anchors = values[np.ix_(*a_coords)].astype(np.float64).copy()
    recon[np.ix_(*a_coords)] = anchors

    modes: list[int] = []
    code_parts: list[np.ndarray] = []
    outlier_parts: list[np.ndarray] = []
    for plan in _passes(shape, levels):
        h = 1 << (plan.level - 1)
        eb = abs_bound if level_bound is None else min(abs_bound, level_bound(plan.level))
        eb = max(eb, np.finfo(np.float64).tiny)
        quantizer = LinearQuantizer(eb)
        target = values[np.ix_(*plan.coords)]

        pred_lin = _predict(recon, plan, LINEAR, h)
        pred_cub = _predict(recon, plan, CUBIC, h)
        err_lin = float(np.abs(target - pred_lin).sum())
        err_cub = float(np.abs(target - pred_cub).sum())
        mode = CUBIC if err_cub < err_lin else LINEAR
        pred = pred_cub if mode == CUBIC else pred_lin
        modes.append(mode)

        q = quantizer.quantize(target, pred)
        recon[np.ix_(*plan.coords)] = q.recon
        code_parts.append(q.codes.ravel())
        outlier_parts.append(q.outliers)

    codes = (
        np.concatenate(code_parts) if code_parts else np.zeros(0, dtype=np.int64)
    )
    outliers = (
        np.concatenate(outlier_parts) if outlier_parts else np.zeros(0)
    )
    return anchors.ravel(), modes, codes, outliers, recon


def interp_decode(
    shape: tuple[int, ...],
    abs_bound: float,
    anchors: np.ndarray,
    modes: list[int],
    codes: np.ndarray,
    outliers: np.ndarray,
    level_bound: Callable[[int], float] | None = None,
) -> np.ndarray:
    """Replay :func:`interp_encode`'s traversal to reconstruct the array."""
    levels = num_levels(shape)
    recon = np.zeros(shape, dtype=np.float64)
    a_coords = _anchor_coords(shape, levels)
    a_shape = tuple(c.size for c in a_coords)
    recon[np.ix_(*a_coords)] = np.asarray(anchors, dtype=np.float64).reshape(a_shape)

    code_pos = 0
    out_pos = 0
    plans = _passes(shape, levels)
    if len(modes) != len(plans):
        raise ValueError(
            f"interpolation mode list length {len(modes)} != {len(plans)} passes"
        )
    for plan, mode in zip(plans, modes):
        h = 1 << (plan.level - 1)
        eb = abs_bound if level_bound is None else min(abs_bound, level_bound(plan.level))
        eb = max(eb, np.finfo(np.float64).tiny)
        quantizer = LinearQuantizer(eb)
        tshape = tuple(c.size for c in plan.coords)
        n = int(np.prod(tshape))
        sub_codes = codes[code_pos : code_pos + n].reshape(tshape)
        code_pos += n
        n_esc = int((sub_codes == 0).sum())
        sub_out = outliers[out_pos : out_pos + n_esc]
        out_pos += n_esc

        pred = _predict(recon, plan, mode, h)
        recon[np.ix_(*plan.coords)] = quantizer.dequantize(sub_codes, pred, sub_out)
    if code_pos != codes.size:
        raise ValueError("interpolation code stream length mismatch")
    return recon
