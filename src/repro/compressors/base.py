"""Compressor interface, shared stream framing, and the codec registry.

Every codec in this package — the five EBLCs and the lossless baselines —
implements :class:`Compressor`.  The base class owns the parts that must be
identical across codecs so the paper's comparisons are apples-to-apples:

- validation and the **value-range relative** error bound conversion
  ``abs_bound = rel_bound * (max(D) - min(D))`` (paper Eq. 1, footnote 1);
- the constant-array fast path (range 0 reproduces exactly);
- a self-describing stream header (codec name, shape, dtype, bounds) so any
  buffer can be decompressed without external metadata;
- compression-ratio accounting.

Subclasses implement ``_compress_impl`` / ``_decompress_impl`` on float64
arrays with an absolute bound.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.errors import CompressionError, DecompressionError
from repro.obs.trace import active_tracer

__all__ = [
    "CompressedBuffer",
    "Compressor",
    "register_compressor",
    "get_compressor",
    "available_compressors",
]

_MAGIC = b"RPRC"
_FLAG_NORMAL = 0
_FLAG_CONSTANT = 1
_FLAG_LOSSLESS = 2

_DTYPE_CODES = {"f": np.float32, "d": np.float64}
_DTYPE_CHARS = {np.dtype(np.float32): b"f", np.dtype(np.float64): b"d"}


@dataclass(frozen=True)
class CompressedBuffer:
    """A compressed array plus the metadata needed to reconstruct it.

    Attributes
    ----------
    data:
        The full self-describing stream (header + payload).
    codec:
        Registered codec name (e.g. ``"sz3"``).
    shape, dtype:
        Original array geometry.
    rel_bound:
        Requested value-range relative bound (0.0 for lossless codecs).
    original_nbytes:
        Size of the uncompressed array in bytes.
    """

    data: bytes
    codec: str
    shape: tuple[int, ...]
    dtype: np.dtype
    rel_bound: float
    original_nbytes: int
    meta: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes (header included)."""
        return len(self.data)

    @property
    def ratio(self) -> float:
        """Compression ratio ``original bytes / compressed bytes``."""
        return self.original_nbytes / max(1, len(self.data))

    @property
    def bitrate(self) -> float:
        """Compressed bits per original element."""
        n_elems = self.original_nbytes // np.dtype(self.dtype).itemsize
        return 8.0 * len(self.data) / max(1, n_elems)


class Compressor:
    """Abstract error-bounded lossy compressor.

    Subclasses set :attr:`name` and implement the two ``*_impl`` hooks.  The
    public API is :meth:`compress` and :meth:`decompress`.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""
    #: Whether the codec is lossless (``rel_bound`` is ignored if so).
    lossless: ClassVar[bool] = False

    # -- public API -------------------------------------------------------

    def compress(self, array: np.ndarray, rel_bound: float = 0.0) -> CompressedBuffer:
        """Compress ``array`` under a value-range relative error bound.

        Parameters
        ----------
        array:
            float32 or float64 array of any dimensionality >= 1.
        rel_bound:
            ε in (0, 1]; every reconstructed element will satisfy
            ``|D[k] - Dhat[k]| <= ε * (max(D) - min(D))``.  Ignored (and
            recorded as 0) for lossless codecs.
        """
        array = np.ascontiguousarray(array)
        if array.dtype not in (np.float32, np.float64):
            raise CompressionError(
                f"{self.name}: only float32/float64 supported, got {array.dtype}"
            )
        if array.size == 0:
            raise CompressionError(f"{self.name}: cannot compress an empty array")
        if not self.lossless:
            if not (0.0 < rel_bound <= 1.0):
                raise CompressionError(
                    f"{self.name}: rel_bound must be in (0, 1], got {rel_bound}"
                )
        else:
            rel_bound = 0.0

        if self.lossless:
            # Lossless codecs compress the original-dtype bytes so their
            # ratios are comparable with the EBLCs (Fig. 1 semantics).
            payload = self._timed_compress(array, 0.0)
            flag = _FLAG_LOSSLESS
            abs_bound = 0.0
            values = array
        else:
            values = array.astype(np.float64, copy=False)
            if not np.all(np.isfinite(values)):
                raise CompressionError(
                    f"{self.name}: input contains non-finite values"
                )
            vmin = float(values.min())
            vmax = float(values.max())
            value_range = vmax - vmin
            abs_bound = rel_bound * value_range
            if value_range == 0.0:
                payload = struct.pack("<d", vmin)
                flag = _FLAG_CONSTANT
            else:
                # The codecs guarantee the bound in exact arithmetic terms;
                # the reconstruction then rounds a handful of times (the
                # final prediction+residual addition, and for float32 the
                # cast back).  Tighten the working bound by the worst-case
                # rounding at the data's magnitude so the *returned* array
                # stays within contract even for tiny ranges riding huge
                # offsets.
                eps_mach = 2.0**-24 if array.dtype == np.float32 else 2.0**-50
                margin = max(abs(vmin), abs(vmax)) * eps_mach
                abs_bound = max(abs_bound - margin, 0.5 * abs_bound)
                payload = self._timed_compress(values, abs_bound)
                flag = _FLAG_NORMAL

        header = self._pack_header(array, rel_bound, abs_bound, flag)
        return CompressedBuffer(
            data=header + payload,
            codec=self.name,
            shape=array.shape,
            dtype=array.dtype,
            rel_bound=rel_bound,
            original_nbytes=array.nbytes,
        )

    def decompress(self, buf: CompressedBuffer | bytes) -> np.ndarray:
        """Reconstruct the array from a buffer produced by :meth:`compress`."""
        data = buf.data if isinstance(buf, CompressedBuffer) else buf
        codec, shape, dtype, rel_bound, abs_bound, flag, payload = self._unpack_header(
            data
        )
        if codec != self.name:
            raise DecompressionError(
                f"stream was produced by codec {codec!r}, not {self.name!r}"
            )
        if flag == _FLAG_CONSTANT:
            (value,) = struct.unpack_from("<d", payload, 0)
            return np.full(shape, value, dtype=dtype)
        if flag == _FLAG_LOSSLESS:
            out = self._timed_decompress(payload, shape, 0.0)
        else:
            out = self._timed_decompress(payload, shape, abs_bound)
        return np.asarray(out, dtype=dtype).reshape(shape)

    # -- tracing shims ------------------------------------------------------

    def _timed_compress(self, values: np.ndarray, abs_bound: float) -> bytes:
        """``_compress_impl`` under an optional wall span (codec track)."""
        tracer = active_tracer()
        if tracer is None:
            return self._compress_impl(values, abs_bound)
        t0 = tracer.now()
        payload = self._compress_impl(values, abs_bound)
        tracer.add_span(
            f"compress:{self.name}", "codec", t0, tracer.now(), clock="wall",
            codec=self.name, in_nbytes=int(values.nbytes),
            out_nbytes=len(payload),
        )
        return payload

    def _timed_decompress(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        """``_decompress_impl`` under an optional wall span (codec track)."""
        tracer = active_tracer()
        if tracer is None:
            return self._decompress_impl(payload, shape, abs_bound)
        t0 = tracer.now()
        out = self._decompress_impl(payload, shape, abs_bound)
        tracer.add_span(
            f"decompress:{self.name}", "codec", t0, tracer.now(), clock="wall",
            codec=self.name, in_nbytes=len(payload),
        )
        return out

    # -- hooks for subclasses ----------------------------------------------

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        raise NotImplementedError

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        raise NotImplementedError

    # -- framing -----------------------------------------------------------

    def _pack_header(
        self, array: np.ndarray, rel_bound: float, abs_bound: float, flag: int
    ) -> bytes:
        name_b = self.name.encode("ascii")
        parts = [
            _MAGIC,
            struct.pack("<B", len(name_b)),
            name_b,
            _DTYPE_CHARS[array.dtype],
            struct.pack("<BB", flag, array.ndim),
            struct.pack(f"<{array.ndim}Q", *array.shape),
            struct.pack("<dd", rel_bound, abs_bound),
        ]
        return b"".join(parts)

    @staticmethod
    def _unpack_header(data: bytes):
        if len(data) < 6 or data[:4] != _MAGIC:
            raise DecompressionError("not a repro compressed stream (bad magic)")
        off = 4
        name_len = data[off]
        off += 1
        codec = data[off : off + name_len].decode("ascii")
        off += name_len
        dtype_char = chr(data[off])
        off += 1
        if dtype_char not in _DTYPE_CODES:
            raise DecompressionError(f"unknown dtype code {dtype_char!r}")
        dtype = np.dtype(_DTYPE_CODES[dtype_char])
        flag, ndim = struct.unpack_from("<BB", data, off)
        off += 2
        shape = struct.unpack_from(f"<{ndim}Q", data, off)
        off += 8 * ndim
        rel_bound, abs_bound = struct.unpack_from("<dd", data, off)
        off += 16
        return codec, tuple(shape), dtype, rel_bound, abs_bound, flag, data[off:]


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type[Compressor]] = {}


def register_compressor(cls: type[Compressor]) -> type[Compressor]:
    """Class decorator adding a codec to the global registry."""
    if not cls.name:
        raise ValueError("compressor class must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"compressor {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered codec by name (e.g. ``get_compressor("sz3")``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_compressors(include_lossless: bool = True) -> list[str]:
    """Sorted names of all registered codecs."""
    names = [
        n for n, c in _REGISTRY.items() if include_lossless or not c.lossless
    ]
    return sorted(names)
