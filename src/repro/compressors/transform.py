"""ZFP's decorrelating block transform and coefficient ordering.

ZFP (Lindstrom, TVCG 2014) converts each 4^d block to a block-floating-point
integer representation, applies a separable orthogonal-ish lifting transform
along each dimension, and reorders coefficients by total sequency so energy
concentrates at the front of the scan.  This module provides:

- :func:`forward_lift` / :func:`inverse_lift` — the 4-point integer lifting
  scheme, vectorized over an arbitrary leading batch axis;
- :func:`forward_transform` / :func:`inverse_transform` — separable
  application along every dimension of a ``(n_blocks, 4, ..., 4)`` batch;
- :func:`sequency_order` — the coefficient permutation;
- :func:`int_to_negabinary` / :func:`negabinary_to_int` — sign-free
  coefficient mapping so bitplane coding needs no sign bits.

All integer math uses int64 with headroom: the lifting gain is bounded by
``< 2^2`` per dimension, so 3-D transforms of inputs bounded by ``2^box``
stay below ``2^(box + 6)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "forward_lift",
    "inverse_lift",
    "forward_transform",
    "inverse_transform",
    "sequency_order",
    "int_to_negabinary",
    "negabinary_to_int",
]

_NBMASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def forward_lift(v: np.ndarray, axis: int) -> np.ndarray:
    """In-place-style forward lift of 4-point groups along ``axis``.

    Implements ZFP's non-orthogonal lifted transform::

        x += w; x >>= 1; w -= x
        z += y; z >>= 1; y -= z
        x += z; x >>= 1; z -= x
        w += y; w >>= 1; y -= w
        w += y >> 1;     y -= w >> 1
    """
    v = np.moveaxis(v, axis, -1)
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    out = np.stack([x, y, z, w], axis=-1)
    return np.moveaxis(out, -1, axis)


def inverse_lift(v: np.ndarray, axis: int) -> np.ndarray:
    """Exact inverse of :func:`forward_lift`."""
    v = np.moveaxis(v, axis, -1)
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    out = np.stack([x, y, z, w], axis=-1)
    return np.moveaxis(out, -1, axis)


def forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Apply the lift along every block dimension of ``(n, 4, ..., 4)``."""
    out = blocks
    for axis in range(1, blocks.ndim):
        out = forward_lift(out, axis)
    return out


def inverse_transform(blocks: np.ndarray) -> np.ndarray:
    """Invert :func:`forward_transform` (reverse dimension order)."""
    out = blocks
    for axis in range(blocks.ndim - 1, 0, -1):
        out = inverse_lift(out, axis)
    return out


def sequency_order(ndim: int) -> np.ndarray:
    """Permutation of a flattened 4^ndim block sorted by total sequency.

    Coefficients are ranked by the sum of their per-dimension frequencies
    (then lexicographically for determinism), which fronts low-frequency
    content for the embedded bitplane coder.
    """
    grids = np.meshgrid(*[np.arange(4)] * ndim, indexing="ij")
    total = sum(g.ravel() for g in grids)
    keys = [g.ravel() for g in grids]
    return np.lexsort(tuple(reversed(keys)) + (total,))


def int_to_negabinary(x: np.ndarray) -> np.ndarray:
    """Map int64 to unsigned negabinary (ZFP's ``int2uint``)."""
    u = x.astype(np.int64).view(np.uint64)
    return (u + _NBMASK) ^ _NBMASK


def negabinary_to_int(u: np.ndarray) -> np.ndarray:
    """Inverse of :func:`int_to_negabinary`."""
    u = u.astype(np.uint64)
    return ((u ^ _NBMASK) - _NBMASK).view(np.int64)
