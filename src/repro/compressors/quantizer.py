"""Error-bounded linear-scale quantizer with outlier escape.

The SZ-family codecs predict each value and quantize the prediction residual
onto a uniform grid of width ``2 * abs_bound`` centred on the prediction:

    code  = round(residual / (2 * abs_bound))
    recon = prediction + code * (2 * abs_bound)

which guarantees ``|recon - original| <= abs_bound`` pointwise whenever the
code fits in the configured code range.  Residuals too large for the range
(or non-finite predictions) take the *outlier escape*: the original value is
stored verbatim (float64) and the reconstruction is exact.

Codes are stored zig-zag folded (0, -1, +1, -2, ...) + 1, with 0 reserved for
the outlier escape, mirroring SZ's "unpredictable" marker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizerResult", "LinearQuantizer", "zigzag_encode", "zigzag_decode"]


def zigzag_encode(signed: np.ndarray) -> np.ndarray:
    """Map signed integers to non-negative: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    signed = signed.astype(np.int64)
    return np.where(signed >= 0, 2 * signed, -2 * signed - 1).astype(np.int64)


def zigzag_decode(unsigned: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    unsigned = unsigned.astype(np.int64)
    return np.where(unsigned % 2 == 0, unsigned // 2, -(unsigned + 1) // 2).astype(
        np.int64
    )


@dataclass(frozen=True)
class QuantizerResult:
    """Output of one quantization pass.

    Attributes
    ----------
    codes:
        Non-negative symbol per element; 0 marks an outlier, ``k >= 1`` is the
        zig-zag folded quantization bin ``k - 1``.
    outliers:
        Exact float64 values of outlier elements, in element order.
    recon:
        Reconstructed values (what the decompressor will reproduce), same
        shape/dtype float64 as the input residual's base.
    """

    codes: np.ndarray
    outliers: np.ndarray
    recon: np.ndarray


class LinearQuantizer:
    """Uniform quantizer with bin width ``2 * abs_bound`` and outlier escape.

    Parameters
    ----------
    abs_bound:
        Absolute error bound (already converted from the value-range relative
        bound by the caller).  Must be positive; callers handle the
        ``abs_bound == 0`` (lossless/constant) case themselves.
    max_code:
        Largest zig-zag symbol allowed (bounds the Huffman alphabet).  SZ uses
        a radius of 2^15 by default; we keep the same default.
    """

    def __init__(self, abs_bound: float, max_code: int = 65536):
        if abs_bound <= 0:
            raise ValueError("abs_bound must be positive")
        if max_code < 2:
            raise ValueError("max_code must be at least 2")
        self.abs_bound = float(abs_bound)
        self.max_code = int(max_code)

    def quantize(self, values: np.ndarray, predictions: np.ndarray) -> QuantizerResult:
        """Quantize ``values - predictions``; see class docstring."""
        values = np.asarray(values, dtype=np.float64)
        predictions = np.asarray(predictions, dtype=np.float64)
        width = 2.0 * self.abs_bound
        residual = values - predictions
        with np.errstate(invalid="ignore", over="ignore"):
            raw = np.rint(residual / width)
        finite = np.isfinite(raw) & np.isfinite(predictions)
        # Clip before casting to avoid undefined int conversion of huge floats.
        raw = np.where(finite, raw, 0.0)
        raw = np.clip(raw, -(2**62), 2**62)
        signed = raw.astype(np.int64)
        recon = predictions + signed.astype(np.float64) * width
        folded = zigzag_encode(signed) + 1
        within = (
            finite
            & (np.abs(recon - values) <= self.abs_bound * (1 + 1e-12))
            & (folded < self.max_code)
        )
        codes = np.where(within, folded, 0).astype(np.int64)
        outlier_mask = ~within
        outliers = values[outlier_mask].astype(np.float64)
        recon = np.where(within, recon, values)
        return QuantizerResult(codes=codes, outliers=outliers, recon=recon)

    def dequantize(
        self, codes: np.ndarray, predictions: np.ndarray, outliers: np.ndarray
    ) -> np.ndarray:
        """Reconstruct values from codes, predictions and the outlier pool.

        ``outliers`` must contain exactly ``(codes == 0).sum()`` values in
        element order.
        """
        codes = np.asarray(codes, dtype=np.int64)
        predictions = np.asarray(predictions, dtype=np.float64)
        width = 2.0 * self.abs_bound
        signed = zigzag_decode(np.maximum(codes - 1, 0))
        recon = predictions + signed.astype(np.float64) * width
        outlier_mask = codes == 0
        n_out = int(outlier_mask.sum())
        if n_out != np.asarray(outliers).size:
            raise ValueError(
                f"outlier count mismatch: {n_out} escapes vs {np.asarray(outliers).size} stored"
            )
        if n_out:
            recon = recon.copy()
            recon[outlier_mask] = np.asarray(outliers, dtype=np.float64)
        return recon
