"""QoZ: quality-oriented interpolation compressor (Liu et al., SC '22).

QoZ builds on SZ3's interpolation engine with two changes we reproduce:

1. **Per-level error-bound tightening.**  Coarse-level points are read many
   times as interpolation sources, so QoZ quantizes level ``l`` with
   ``eb_l = eb / min(alpha**(l-1), beta)`` — tighter at coarse levels.  This
   costs a little ratio but buys disproportionate reconstruction quality,
   which is why the paper observes QoZ holding PSNR nearly independent of the
   nominal bound (Fig. 9's outlier trend).
2. **Quality-target auto-tuning.**  :meth:`compress_to_psnr` searches the
   error bound so the reconstruction meets a requested PSNR, the paper's
   "optimize compression based on user-specified quality metrics".

``alpha``/``beta`` travel in the stream so decode replays identical bounds.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import CompressedBuffer, register_compressor
from repro.compressors.sz3 import SZ3
from repro.errors import CompressionError

__all__ = ["QoZ"]


@register_compressor
class QoZ(SZ3):
    """SZ3 derivative with level-aware bounds and PSNR targeting."""

    name = "qoz"

    def __init__(self, alpha: float = 1.5, beta: float = 4.0):
        if alpha < 1.0 or beta < 1.0:
            raise CompressionError("qoz requires alpha >= 1 and beta >= 1")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def _level_bound(self, abs_bound: float):
        alpha, beta = self.alpha, self.beta

        def bound(level: int) -> float:
            return abs_bound / min(alpha ** max(level - 1, 0), beta)

        return bound

    # QoZ prepends its tuning parameters to the SZ3 stream.
    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        body = super()._compress_impl(values, abs_bound)
        return struct.pack("<dd", self.alpha, self.beta) + body

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        alpha, beta = struct.unpack_from("<dd", payload, 0)
        # Decode with the *stored* parameters, not the instance's.
        saved = self.alpha, self.beta
        try:
            self.alpha, self.beta = alpha, beta
            return super()._decompress_impl(payload[16:], shape, abs_bound)
        finally:
            self.alpha, self.beta = saved

    # -- quality-target mode -------------------------------------------------

    def compress_to_psnr(
        self,
        array: np.ndarray,
        target_psnr: float,
        max_iters: int = 12,
        rel_lo: float = 1e-7,
        rel_hi: float = 1e-1,
    ) -> tuple[CompressedBuffer, float]:
        """Binary-search the relative bound to achieve ``target_psnr`` dB.

        Returns the compressed buffer and the achieved PSNR.  PSNR increases
        monotonically as the bound tightens, so bisection on ``log10(eps)``
        converges; the loosest bound meeting the target is kept (maximum
        ratio at acceptable quality).
        """
        from repro.metrics.quality import psnr  # local import to avoid cycle

        array = np.asarray(array)
        lo, hi = np.log10(rel_lo), np.log10(rel_hi)
        best: tuple[CompressedBuffer, float] | None = None
        for _ in range(max_iters):
            mid = 0.5 * (lo + hi)
            eps = 10.0**mid
            buf = self.compress(array, eps)
            achieved = psnr(array, self.decompress(buf))
            if achieved >= target_psnr:
                best = (buf, achieved)
                lo = mid  # try looser (higher ratio)
            else:
                hi = mid  # tighten
        if best is None:
            buf = self.compress(array, rel_lo)
            best = (buf, psnr(array, self.decompress(buf)))
        return best
