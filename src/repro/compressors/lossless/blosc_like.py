"""C-Blosc2 stand-in: byte-shuffle filter + blocked DEFLATE.

Blosc's ratio advantage on floats comes from its shuffle filter (grouping
the i-th byte of every element so slowly-varying exponent bytes become long
runs) and cache-sized blocking.  Both are reproduced; DEFLATE replaces the
internal codec.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.errors import DecompressionError

__all__ = ["BloscLike"]

_BLOCK_BYTES = 1 << 18  # 256 KiB blocks, Blosc's default neighbourhood


@register_compressor
class BloscLike(Compressor):
    """Shuffle + blocked DEFLATE lossless codec."""

    name = "blosc"
    lossless = True

    def __init__(self, level: int = 5):
        self.level = int(level)

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        arr = np.ascontiguousarray(values)
        itemsize = arr.dtype.itemsize
        raw = arr.view(np.uint8).reshape(-1, itemsize)
        # Shuffle: transpose so byte-plane i of all elements is contiguous.
        shuffled = np.ascontiguousarray(raw.T).tobytes()
        chunks = [
            zlib.compress(shuffled[i : i + _BLOCK_BYTES], self.level)
            for i in range(0, len(shuffled), _BLOCK_BYTES)
        ]
        head = struct.pack("<QBI", len(shuffled), itemsize, len(chunks))
        body = b"".join(struct.pack("<I", len(c)) + c for c in chunks)
        return head + body

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        total, itemsize, n_chunks = struct.unpack_from("<QBI", payload, 0)
        off = 13
        parts = []
        for _ in range(n_chunks):
            (clen,) = struct.unpack_from("<I", payload, off)
            off += 4
            parts.append(zlib.decompress(payload[off : off + clen]))
            off += clen
        shuffled = b"".join(parts)
        if len(shuffled) != total:
            raise DecompressionError("blosc-like shuffled length mismatch")
        n = total // itemsize
        planes = np.frombuffer(shuffled, dtype=np.uint8).reshape(itemsize, n)
        raw = np.ascontiguousarray(planes.T).reshape(-1)
        dtype = np.float32 if itemsize == 4 else np.float64
        return raw.view(dtype).reshape(shape)
