"""Zstd stand-in: framed DEFLATE over the raw float bytes.

Zstandard itself is unavailable offline; DEFLATE at a moderate level has the
same *qualitative* behaviour on floating-point scientific data — single-digit
ratios driven by repeated byte patterns, insensitive to the error-bound axis —
which is all Figure 1 asks of it.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.errors import DecompressionError

__all__ = ["ZstdLike"]


@register_compressor
class ZstdLike(Compressor):
    """General-purpose lossless codec (LZ77 + Huffman via zlib)."""

    name = "zstd"
    lossless = True

    def __init__(self, level: int = 3):
        if not 1 <= level <= 9:
            raise ValueError("zlib level must be in [1, 9]")
        self.level = level

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        raw = np.ascontiguousarray(values).tobytes()
        comp = zlib.compress(raw, self.level)
        return struct.pack("<Q", len(raw)) + comp

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        (rlen,) = struct.unpack_from("<Q", payload, 0)
        raw = zlib.decompress(payload[8:])
        if len(raw) != rlen:
            raise DecompressionError("zstd-like frame length mismatch")
        n = int(np.prod(shape))
        itemsize = rlen // max(n, 1)
        dtype = np.float32 if itemsize == 4 else np.float64
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
