"""Lossless floating-point baselines for the Figure-1 comparison.

The paper contrasts EBLC ratios against four lossless compressors; each is
reimplemented here with the algorithmic character that determines its ratio
on floating-point data:

- :class:`~repro.compressors.lossless.zstd_like.ZstdLike` — general-purpose
  LZ + entropy coding (DEFLATE stands in for Zstd's engine);
- :class:`~repro.compressors.lossless.blosc_like.BloscLike` — byte shuffle
  filter + blocked DEFLATE (C-Blosc2's shuffle+codec structure);
- :class:`~repro.compressors.lossless.fpzip_like.FpzipLike` — predictive
  coding of float bit patterns with residual byte-plane compression;
- :class:`~repro.compressors.lossless.fpc.FPC` — value-XOR prediction with
  leading-zero-byte elimination (Burtscher & Ratanaworabhan's FPC, using the
  previous-value predictor; decode is a vectorized XOR prefix scan).

All four roundtrip bit-exactly (verified by property tests).
"""

from repro.compressors.lossless.zstd_like import ZstdLike
from repro.compressors.lossless.blosc_like import BloscLike
from repro.compressors.lossless.fpzip_like import FpzipLike
from repro.compressors.lossless.fpc import FPC

__all__ = ["ZstdLike", "BloscLike", "FpzipLike", "FPC"]
