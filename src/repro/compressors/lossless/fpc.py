"""FPC: leading-zero-elimination float compressor (Burtscher 2009).

FPC XORs each value with a prediction and stores only the non-zero low bytes
of the XOR plus a 3-bit leading-zero-byte count.  The reference uses FCM and
DFCM hash predictors; those are inherently sequential, so this reproduction
uses the previous-value predictor (FCM's strongest entry for smooth streams),
which keeps both directions fully vectorized — decode is an XOR prefix scan
(``np.bitwise_xor.accumulate``).  The simplification is documented in
DESIGN.md; the ratio behaviour on smooth scientific data (1.1–1.6×) matches
the regime Figure 1 reports for lossless floats.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.compressors.bitstream import pack_bits, unpack_bits
from repro.errors import DecompressionError

__all__ = ["FPC"]


@register_compressor
class FPC(Compressor):
    """XOR-predictive lossless codec with leading-zero-byte elimination."""

    name = "fpc"
    lossless = True

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        arr = np.ascontiguousarray(values)
        itemsize = arr.dtype.itemsize
        if itemsize == 4:
            bits = arr.view(np.uint32).astype(np.uint64)
            width_field = 3  # leading-zero bytes in [0, 4]
        else:
            bits = arr.view(np.uint64)
            width_field = 4  # leading-zero bytes in [0, 8]
        flat = bits.reshape(-1)
        xored = np.empty_like(flat)
        xored[0] = flat[0]
        xored[1:] = flat[1:] ^ flat[:-1]

        # Leading-zero byte count of each XOR value (from the top of itemsize).
        lzb = np.zeros(flat.size, dtype=np.int64)
        remaining = xored.copy()
        for b in range(itemsize):
            top_shift = np.uint64(8 * (itemsize - 1 - b))
            top_byte = (xored >> top_shift) & np.uint64(0xFF)
            still_zero = lzb == b
            lzb = np.where(still_zero & (top_byte == 0), b + 1, lzb)
        del remaining
        body_bytes = itemsize - lzb
        # The LZB counts travel in their own fixed-width stream (below); the
        # packed payload holds only the surviving low bytes of each XOR.
        widths = 8 * body_bytes
        mask = np.where(
            body_bytes == itemsize,
            np.uint64(0xFFFFFFFFFFFFFFFF) if itemsize == 8 else np.uint64(0xFFFFFFFF),
            (np.uint64(1) << (np.uint64(8) * body_bytes.astype(np.uint64)))
            - np.uint64(1),
        )
        packed = pack_bits(xored & mask, widths)
        head = struct.pack("<QB", flat.size, itemsize)
        lzb_bytes = np.packbits(
            ((lzb[:, None] >> np.arange(width_field - 1, -1, -1)) & 1).astype(
                np.uint8
            ).reshape(-1)
        ).tobytes()
        return head + struct.pack("<Q", len(lzb_bytes)) + lzb_bytes + packed

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        n, itemsize = struct.unpack_from("<QB", payload, 0)
        (lzb_len,) = struct.unpack_from("<Q", payload, 9)
        off = 17
        width_field = 3 if itemsize == 4 else 4
        lzb_bits = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8, count=lzb_len, offset=off)
        )[: n * width_field].reshape(n, width_field)
        shifts = np.arange(width_field - 1, -1, -1)
        lzb = (lzb_bits.astype(np.int64) << shifts).sum(axis=1)
        off += lzb_len
        body_bytes = itemsize - lzb
        widths = 8 * body_bytes
        xored = unpack_bits(payload[off:], widths)
        flat = np.bitwise_xor.accumulate(xored)
        if itemsize == 4:
            out = flat.astype(np.uint32).view(np.float32)
        else:
            out = flat.view(np.float64)
        if out.size != int(np.prod(shape)):
            raise DecompressionError("fpc element count mismatch")
        return out.reshape(shape)
