"""fpzip stand-in: predictive lossless coding of float bit patterns.

fpzip (Lindstrom & Isenburg, TVCG 2006) predicts each value with a Lorenzo
stencil, maps floats to sign-magnitude-ordered integers so residuals are
small ints for smooth data, and entropy-codes the residuals.  We reproduce
the structure: monotonic integer mapping, last-axis Lorenzo-1 (delta)
prediction, zig-zag folding, and byte-plane DEFLATE of the residual stream
(byte planes expose the many-leading-zero structure to the entropy coder).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compressors.base import Compressor, register_compressor
from repro.errors import DecompressionError

__all__ = ["FpzipLike"]


def _zigzag64(signed: np.ndarray) -> np.ndarray:
    """Wrap-safe zig-zag fold valid on the full int64 range."""
    s = signed.astype(np.int64)
    return ((s << 1) ^ (s >> 63)).view(np.uint64)


def _unzigzag64(folded: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag64`."""
    u = folded.astype(np.uint64)
    return ((u >> np.uint64(1)).view(np.int64)) ^ (
        -(u & np.uint64(1)).view(np.int64)
    )


def _float_to_ordered_int(arr: np.ndarray) -> np.ndarray:
    """Map IEEE floats to int64 preserving numeric order (bit-exact)."""
    if arr.dtype == np.float32:
        u = arr.view(np.int32).astype(np.int64)
        sign_fix = np.where(u < 0, np.int64(-(2**31)) - u - 1, u)
        return sign_fix
    u = arr.view(np.int64)
    return np.where(u < 0, np.int64(-(2**63)) - u - 1, u)


def _ordered_int_to_float(vals: np.ndarray, dtype: np.dtype) -> np.ndarray:
    if dtype == np.float32:
        u = np.where(vals < 0, (np.int64(-(2**31)) - vals - 1), vals)
        return u.astype(np.int32).view(np.float32)
    u = np.where(vals < 0, (np.int64(-(2**63)) - vals - 1), vals)
    return u.view(np.float64)


@register_compressor
class FpzipLike(Compressor):
    """Predictive float coder: ordered-int mapping + delta + byte planes."""

    name = "fpzip"
    lossless = True

    def _compress_impl(self, values: np.ndarray, abs_bound: float) -> bytes:
        arr = np.ascontiguousarray(values)
        ints = _float_to_ordered_int(arr).reshape(-1)
        resid = np.empty_like(ints)
        resid[0] = ints[0]
        # int64 wraparound is well-defined for the inverse cumsum.
        with np.errstate(over="ignore"):
            resid[1:] = ints[1:] - ints[:-1]
        folded = _zigzag64(resid)
        planes = folded.view(np.uint8).reshape(-1, 8).T
        comp = zlib.compress(np.ascontiguousarray(planes).tobytes(), 6)
        return struct.pack("<QB", ints.size, arr.dtype.itemsize) + comp

    def _decompress_impl(
        self, payload: bytes, shape: tuple[int, ...], abs_bound: float
    ) -> np.ndarray:
        n, itemsize = struct.unpack_from("<QB", payload, 0)
        raw = zlib.decompress(payload[9:])
        if len(raw) != 8 * n:
            raise DecompressionError("fpzip-like residual length mismatch")
        planes = np.frombuffer(raw, dtype=np.uint8).reshape(8, n)
        folded = np.ascontiguousarray(planes.T).reshape(-1).view(np.uint64)
        resid = _unzigzag64(folded)
        with np.errstate(over="ignore"):
            ints = np.cumsum(resid, dtype=np.int64)
        dtype = np.dtype(np.float32) if itemsize == 4 else np.dtype(np.float64)
        return _ordered_int_to_float(ints, dtype).reshape(shape)
