"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate the failure domain (compression, I/O, simulation,
configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CompressionError(ReproError):
    """A compressor failed to produce or parse a compressed stream."""


class DecompressionError(CompressionError):
    """A compressed stream is malformed, truncated, or of the wrong codec."""


class ErrorBoundViolation(CompressionError):
    """Reconstruction violated the requested error bound.

    This is raised by verification helpers, never silently ignored: the
    value-range relative bound is the contract every EBLC in this package
    guarantees (paper Eq. 1 with footnote-1 semantics).
    """

    def __init__(self, max_error: float, bound: float, message: str | None = None):
        self.max_error = float(max_error)
        self.bound = float(bound)
        super().__init__(
            message
            or f"error bound violated: max abs error {max_error:.6g} > bound {bound:.6g}"
        )


class IOModelError(ReproError):
    """Invalid I/O-stack configuration or malformed container file."""


class SimulationError(ReproError):
    """The discrete-event cluster simulation reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment or model was configured with invalid parameters."""


class BenchmarkRegression(ReproError):
    """A kernel benchmark ran slower than the allowed regression budget.

    Carries the offending delta records (kernel, dataset, old/new seconds,
    speedup) so CI logs show exactly which kernels regressed and by how much.
    """

    def __init__(self, max_regression_pct: float, offenders: list[dict]):
        self.max_regression_pct = float(max_regression_pct)
        self.offenders = list(offenders)
        worst = min(offenders, key=lambda d: d["speedup"])
        super().__init__(
            f"{len(offenders)} kernel(s) regressed more than "
            f"{max_regression_pct:g}% (worst: {worst['kernel']}/{worst['dataset']} "
            f"at {1 / worst['speedup']:.2f}x slower)"
        )
