"""Quality, error, ratio and statistics metrics used throughout the study."""

from repro.metrics.error import (
    check_error_bound,
    max_abs_error,
    max_rel_error,
    value_range,
)
from repro.metrics.quality import autocorrelation, mse, nrmse, psnr
from repro.metrics.ratio import bitrate, compression_ratio
from repro.metrics.stats import AdaptiveRepeater, MeasurementSummary, mean_ci

__all__ = [
    "check_error_bound",
    "max_abs_error",
    "max_rel_error",
    "value_range",
    "autocorrelation",
    "mse",
    "nrmse",
    "psnr",
    "bitrate",
    "compression_ratio",
    "AdaptiveRepeater",
    "MeasurementSummary",
    "mean_ci",
]
