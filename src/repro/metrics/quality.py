"""Reconstruction quality metrics: MSE, NRMSE, PSNR (paper Eq. 2), autocorrelation."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "nrmse", "psnr", "autocorrelation"]


def mse(original: np.ndarray, recon: np.ndarray) -> float:
    """Mean squared error."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(recon, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    d = a - b
    return float(np.mean(d * d))


def nrmse(original: np.ndarray, recon: np.ndarray) -> float:
    """Root mean squared error normalized by the value range."""
    a = np.asarray(original, dtype=np.float64)
    rng = float(a.max() - a.min())
    if rng == 0.0:
        return 0.0 if mse(original, recon) == 0.0 else float("inf")
    return float(np.sqrt(mse(original, recon)) / rng)


def psnr(original: np.ndarray, recon: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, exactly the paper's Eq. 2.

    ``PSNR = 20 log10( max(D) / sqrt(MSE) )`` — note the paper normalizes by
    the data *maximum* (SDRBench convention uses the range; we follow the
    equation as printed).  A perfect reconstruction returns ``inf``.
    """
    a = np.asarray(original, dtype=np.float64)
    err = mse(original, recon)
    if err == 0.0:
        return float("inf")
    peak = float(np.abs(a).max())
    if peak == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(peak / np.sqrt(err)))


def autocorrelation(original: np.ndarray, recon: np.ndarray, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of the pointwise error field.

    QoZ optimizes this to keep compression artifacts noise-like; values near
    zero mean uncorrelated (benign) errors.
    """
    e = (np.asarray(original, dtype=np.float64) - np.asarray(recon, dtype=np.float64)).ravel()
    if e.size <= lag:
        return 0.0
    e = e - e.mean()
    denom = float(np.dot(e, e))
    if denom == 0.0:
        return 0.0
    num = float(np.dot(e[:-lag], e[lag:]))
    return num / denom
