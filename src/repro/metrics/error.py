"""Pointwise error metrics and the error-bound contract check (paper Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.errors import ErrorBoundViolation

__all__ = ["value_range", "max_abs_error", "max_rel_error", "check_error_bound"]


def value_range(original: np.ndarray) -> float:
    """``max(D) - min(D)``, the denominator of the value-range relative bound."""
    original = np.asarray(original)
    return float(original.max() - original.min())


def max_abs_error(original: np.ndarray, recon: np.ndarray) -> float:
    """Largest absolute pointwise deviation."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(recon, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.abs(a - b).max())


def max_rel_error(original: np.ndarray, recon: np.ndarray) -> float:
    """Largest pointwise error relative to the value range (Eq. 1 semantics).

    Returns ``inf`` only if the range is zero while the error is not, which
    no conforming codec can produce.
    """
    rng = value_range(original)
    err = max_abs_error(original, recon)
    if rng == 0.0:
        return 0.0 if err == 0.0 else float("inf")
    return err / rng


def check_error_bound(
    original: np.ndarray,
    recon: np.ndarray,
    rel_bound: float,
    *,
    slack: float = 1e-9,
    raise_on_violation: bool = True,
) -> float:
    """Verify the value-range relative bound; returns the max abs error.

    ``slack`` absorbs the half-ulp of casting reconstructions back to the
    original dtype (float32 outputs round once more after the float64
    arithmetic the codecs guarantee the bound in).
    """
    rng = value_range(original)
    bound = rel_bound * rng
    err = max_abs_error(original, recon)
    limit = bound * (1.0 + 1e-9) + slack * max(rng, 1.0)
    if err > limit and raise_on_violation:
        raise ErrorBoundViolation(err, bound)
    return err
