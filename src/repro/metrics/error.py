"""Pointwise error metrics and the error-bound contract check (paper Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.errors import ErrorBoundViolation

__all__ = ["value_range", "max_abs_error", "max_rel_error", "check_error_bound"]


def value_range(original: np.ndarray) -> float:
    """``max(D) - min(D)``, the denominator of the value-range relative bound."""
    original = np.asarray(original)
    return float(original.max() - original.min())


def max_abs_error(original: np.ndarray, recon: np.ndarray) -> float:
    """Largest absolute pointwise deviation."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(recon, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.abs(a - b).max())


def max_rel_error(original: np.ndarray, recon: np.ndarray) -> float:
    """Largest pointwise error relative to the value range (Eq. 1 semantics).

    A constant variable has zero value range, so Eq. 1's denominator
    degenerates; rather than reporting ``inf`` for any nonzero deviation,
    fall back to the variable's magnitude (``max|D|``) as the denominator —
    the same normalisation NRMSE-style metrics use for flat fields.
    ``inf`` remains only for the truly degenerate case of a deviation from
    an all-zero variable.
    """
    rng = value_range(original)
    err = max_abs_error(original, recon)
    if rng == 0.0:
        if err == 0.0:
            return 0.0
        magnitude = float(np.abs(np.asarray(original, dtype=np.float64)).max())
        return err / magnitude if magnitude > 0.0 else float("inf")
    return err / rng


def check_error_bound(
    original: np.ndarray,
    recon: np.ndarray,
    rel_bound: float,
    *,
    slack: float = 1e-9,
    raise_on_violation: bool = True,
) -> float:
    """Verify the value-range relative bound; returns the max abs error.

    ``slack`` absorbs the half-ulp of casting reconstructions back to the
    original dtype (float32 outputs round once more after the float64
    arithmetic the codecs guarantee the bound in).

    A constant (zero-range) variable would otherwise turn the bound into an
    exact-equality test; there the bound falls back to magnitude-relative
    (``rel_bound * max|D|``), matching :func:`max_rel_error`.
    """
    rng = value_range(original)
    if rng == 0.0:
        rng = float(np.abs(np.asarray(original, dtype=np.float64)).max())
    bound = rel_bound * rng
    err = max_abs_error(original, recon)
    limit = bound * (1.0 + 1e-9) + slack * max(rng, 1.0)
    if err > limit and raise_on_violation:
        raise ErrorBoundViolation(err, bound)
    return err
