"""Compression ratio and bitrate accounting."""

from __future__ import annotations

import numpy as np

__all__ = ["compression_ratio", "bitrate"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """``original / compressed`` bytes; the paper's CR columns."""
    if compressed_nbytes <= 0:
        raise ValueError("compressed size must be positive")
    return original_nbytes / compressed_nbytes


def bitrate(original: np.ndarray, compressed_nbytes: int) -> float:
    """Compressed bits per element of the original array."""
    n = int(np.asarray(original).size)
    if n == 0:
        raise ValueError("original array is empty")
    return 8.0 * compressed_nbytes / n
