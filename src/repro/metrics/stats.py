"""Measurement statistics implementing the paper's repetition protocol.

Section IV-C: *"we conduct up to twenty-five runs of each compression and
decompression, or until achieving a 95% confidence interval about the mean of
the recorded energy."*  :class:`AdaptiveRepeater` reproduces exactly that
loop; :func:`mean_ci` provides the Student-t interval it relies on.

The t quantiles are tabulated (two-sided 95 %) so the package needs no SciPy
at runtime; SciPy, when present, is used only in tests to validate the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["mean_ci", "MeasurementSummary", "AdaptiveRepeater"]

# Two-sided 95% Student-t critical values for df = 1..30 (then ~normal).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.960


def mean_ci(samples: np.ndarray, confidence: float = 0.95) -> tuple[float, float]:
    """Sample mean and 95 % CI half-width (0 half-width for n < 2)."""
    if confidence != 0.95:
        raise ValueError("only the paper's 95% level is tabulated")
    x = np.asarray(samples, dtype=np.float64)
    n = x.size
    if n == 0:
        raise ValueError("no samples")
    mean = float(x.mean())
    if n < 2:
        return mean, 0.0
    sem = float(x.std(ddof=1) / np.sqrt(n))
    return mean, t_critical_95(n - 1) * sem


@dataclass(frozen=True)
class MeasurementSummary:
    """Result of an adaptive measurement campaign."""

    mean: float
    ci_halfwidth: float
    n_runs: int
    samples: tuple[float, ...]

    @property
    def rel_ci(self) -> float:
        """CI half-width relative to |mean| (0 for a zero mean).

        The magnitude is what matters — a negative-mean sample (energy
        *savings*, time deltas) must not report a negative relative CI.
        Matches :class:`AdaptiveRepeater`'s stop rule, which compares the
        half-width against ``rel_tolerance * abs(mean)``.
        """
        return self.ci_halfwidth / abs(self.mean) if self.mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ± {self.ci_halfwidth:.3g} (n={self.n_runs})"


class AdaptiveRepeater:
    """Repeat a measurement until the 95 % CI tightens or the cap is hit.

    Parameters
    ----------
    max_runs:
        The paper's cap of 25 repetitions.
    rel_tolerance:
        Stop once the CI half-width falls below this fraction of the mean.
    min_runs:
        Always take at least this many samples (a CI needs >= 2).
    """

    def __init__(
        self,
        max_runs: int = 25,
        rel_tolerance: float = 0.05,
        min_runs: int = 3,
    ):
        if max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        if rel_tolerance < 0:
            raise ValueError("rel_tolerance must be non-negative")
        if min_runs < 1 or min_runs > max_runs:
            raise ValueError("need 1 <= min_runs <= max_runs")
        self.max_runs = max_runs
        self.rel_tolerance = rel_tolerance
        self.min_runs = min_runs

    def run(self, measure: Callable[[], float]) -> MeasurementSummary:
        """Call ``measure`` repeatedly per the protocol and summarize."""
        samples: list[float] = []
        while len(samples) < self.max_runs:
            samples.append(float(measure()))
            if len(samples) >= max(self.min_runs, 2):
                mean, hw = mean_ci(np.array(samples))
                if mean == 0.0 or hw <= self.rel_tolerance * abs(mean):
                    break
        mean, hw = mean_ci(np.array(samples))
        return MeasurementSummary(
            mean=mean, ci_halfwidth=hw, n_runs=len(samples), samples=tuple(samples)
        )
