"""Random-field synthesis primitives for the dataset generators.

Scientific float data compresses the way it does because of its *spectrum*:
smooth fields (steep spectra) interpolate well, noisy fields do not.  All
generators are built from three primitives:

- :func:`gaussian_random_field` — FFT spectral synthesis with a power-law
  spectrum ``P(k) ~ k^-beta``; ``beta`` is the smoothness dial;
- :func:`tanh_front` — sharp-but-smooth moving interfaces (flame fronts,
  shock-like features) that stress block predictors;
- :func:`coherent_walk` — 1-D trajectories with large-scale coherence and a
  tunable fine-scale noise floor (HACC particle coordinates).

All primitives are deterministic given the NumPy Generator passed in.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_random_field", "tanh_front", "coherent_walk", "rescale"]


def gaussian_random_field(
    shape: tuple[int, ...],
    beta: float,
    rng: np.random.Generator,
    anisotropy: tuple[float, ...] | None = None,
) -> np.ndarray:
    """Real Gaussian random field with isotropic power spectrum ``k^-beta``.

    ``beta`` around 2 is rough (fractional-Brownian-like), 3.5+ is very
    smooth.  ``anisotropy`` stretches the wavenumber of each axis (values >1
    make that axis smoother).  Output is zero-mean, unit-std float64.
    """
    if any(n < 1 for n in shape):
        raise ValueError("all dimensions must be >= 1")
    freqs = []
    for d, n in enumerate(shape):
        f = np.fft.fftfreq(n) * n
        if anisotropy is not None:
            f = f / anisotropy[d]
        freqs.append(f)
    grids = np.meshgrid(*freqs, indexing="ij")
    k2 = sum(g * g for g in grids)
    k2[(0,) * len(shape)] = 1.0  # avoid the DC singularity
    amplitude = k2 ** (-beta / 4.0)  # P(k) ~ k^-beta => |A| ~ k^(-beta/2)
    amplitude[(0,) * len(shape)] = 0.0
    noise = rng.standard_normal(shape)
    field = np.fft.ifftn(np.fft.fftn(noise) * amplitude).real
    std = field.std()
    if std > 0:
        field /= std
    return field


def tanh_front(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    n_fronts: int = 3,
    sharpness: float = 12.0,
) -> np.ndarray:
    """Superposed smooth interfaces: ``tanh(sharpness * signed distance)``.

    Each front is a plane with a random orientation warped by a smooth
    displacement field — the structure of combustion/shock data that makes
    S3D highly compressible away from interfaces yet demanding at them.
    """
    coords = np.meshgrid(
        *[np.linspace(-1.0, 1.0, n) for n in shape], indexing="ij"
    )
    field = np.zeros(shape, dtype=np.float64)
    for _ in range(n_fronts):
        normal = rng.standard_normal(len(shape))
        normal /= np.linalg.norm(normal)
        offset = rng.uniform(-0.5, 0.5)
        dist = sum(c * w for c, w in zip(coords, normal)) - offset
        warp = 0.15 * gaussian_random_field(shape, 4.0, rng)
        field += np.tanh(sharpness * (dist + warp))
    return field / n_fronts


def coherent_walk(
    n: int,
    rng: np.random.Generator,
    coherence: int = 4096,
    noise_level: float = 1e-4,
) -> np.ndarray:
    """1-D coherent trajectory plus a fine noise floor (HACC-like).

    The large-scale component is a smooth random walk (particles ordered by
    identifier retain spatial locality); ``noise_level`` sets the fine-scale
    jitter as a fraction of the overall range, which is what decides the
    error bound at which compressibility collapses (Table III's HACC rows).
    """
    n_knots = max(4, n // coherence)
    knots = np.cumsum(rng.standard_normal(n_knots + 3))
    x = np.linspace(0, n_knots - 1, n)
    base = np.interp(x, np.arange(n_knots + 3), knots)
    rng_span = base.max() - base.min()
    if rng_span == 0:
        rng_span = 1.0
    noise = rng.standard_normal(n) * (noise_level * rng_span)
    return base + noise


def rescale(
    field: np.ndarray, low: float, high: float
) -> np.ndarray:
    """Affinely map a field onto ``[low, high]`` (constant fields -> low)."""
    fmin = field.min()
    fmax = field.max()
    if fmax == fmin:
        return np.full_like(field, low)
    return low + (field - fmin) * ((high - low) / (fmax - fmin))
