"""Dataset catalogue: Table II metadata plus synthetic generators.

Every entry carries two geometries:

- ``paper_shape`` / ``paper_nbytes`` — the production SDRBench snapshot the
  paper measured (what the *energy model* scales to);
- scale presets (``tiny``/``test``/``bench``) — the synthetic sizes actually
  generated so the pure-Python codecs finish in laptop time while the
  compression-ratio and quality measurements remain real.

``generate(name, scale)`` memoizes per (name, scale), so benches reuse the
same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.data.cesm import generate_cesm
from repro.data.extra import generate_exafel, generate_isabel, generate_qmcpack
from repro.data.hacc import generate_hacc
from repro.data.nyx import generate_nyx
from repro.data.s3d import generate_s3d

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "get_dataset", "generate"]


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: paper metadata plus synthetic scale presets."""

    name: str
    domain: str
    paper_shape: tuple[int, ...]
    dtype: np.dtype
    #: shape presets for the synthetic generator
    scales: dict
    _generator: Callable[..., np.ndarray]
    #: Per-byte encoding-difficulty multiplier for the throughput model,
    #: calibrated against Fig. 7's per-dataset joules-per-MB (see DESIGN.md).
    complexity: float = 1.0
    #: Fraction of ``paper_nbytes`` the serial/OpenMP profiling experiments
    #: processed (S3D's Fig. 5/7/8/9 panels use a single field of eleven).
    profile_fraction: float = 1.0

    @property
    def paper_nbytes(self) -> int:
        """Uncompressed size of the paper's snapshot in bytes."""
        n = 1
        for d in self.paper_shape:
            n *= d
        return n * self.dtype.itemsize

    @property
    def profile_nbytes(self) -> int:
        """Bytes processed per (de)compression in the profiling experiments."""
        return int(self.paper_nbytes * self.profile_fraction)

    @property
    def paper_mb(self) -> float:
        """Size in (decimal) MB as Table II reports it."""
        return self.paper_nbytes / 1e6

    def make(self, scale: str = "bench") -> np.ndarray:
        """Generate the synthetic array at a named scale."""
        if scale not in self.scales:
            raise KeyError(
                f"dataset {self.name!r} has no scale {scale!r}; "
                f"available: {sorted(self.scales)}"
            )
        shape = self.scales[scale]
        if self.name == "hacc":
            return self._generator(n=shape[0])
        return self._generator(shape=shape)


def _spec(
    name, domain, paper_shape, dtype, scales, gen, complexity=1.0, profile_fraction=1.0
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        domain=domain,
        paper_shape=tuple(paper_shape),
        dtype=np.dtype(dtype),
        scales=dict(scales),
        _generator=gen,
        complexity=complexity,
        profile_fraction=profile_fraction,
    )


#: The Table II suite plus the Figure-1 extras.
DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        _spec(
            "cesm",
            "climate (CESM-ATM)",
            (26, 1800, 3600),
            np.float32,
            {"tiny": (3, 16, 24), "test": (4, 32, 48), "bench": (6, 64, 128)},
            generate_cesm,
            complexity=0.31,
        ),
        _spec(
            "hacc",
            "cosmology particles (HACC)",
            (280_953_867,),
            np.float32,
            {"tiny": (4096,), "test": (16384,), "bench": (131072,)},
            generate_hacc,
            complexity=2.02,
        ),
        _spec(
            "nyx",
            "cosmology AMR (NYX)",
            (512, 512, 512),
            np.float32,
            {"tiny": (16, 16, 16), "test": (24, 24, 24), "bench": (48, 48, 48)},
            generate_nyx,
            complexity=0.48,
        ),
        _spec(
            "s3d",
            "combustion DNS (S3D)",
            (11, 500, 500, 500),
            np.float64,
            {"tiny": (2, 12, 12, 12), "test": (3, 16, 16, 16), "bench": (4, 32, 32, 32)},
            generate_s3d,
            complexity=1.66,
            profile_fraction=1.0 / 11.0,  # Fig. 5/7/8/9 profile one field
        ),
        _spec(
            "qmcpack",
            "electronic structure (QMCPack)",
            (288, 115, 69, 69),
            np.float32,
            {"tiny": (8, 12, 16), "test": (16, 16, 32), "bench": (32, 32, 64)},
            generate_qmcpack,
        ),
        _spec(
            "isabel",
            "hurricane (ISABEL)",
            (100, 500, 500),
            np.float32,
            {"tiny": (4, 16, 16), "test": (8, 32, 32), "bench": (16, 64, 64)},
            generate_isabel,
        ),
        _spec(
            "exafel",
            "LCLS detector (EXAFEL)",
            (10_000, 512, 512),
            np.float32,
            {"tiny": (48, 48), "test": (96, 96), "bench": (256, 256)},
            generate_exafel,
        ),
    ]
}

#: The four Table-II / main-study datasets, in the paper's column order.
MAIN_DATASETS = ("cesm", "hacc", "nyx", "s3d")
#: The Figure-1 comparison sets, in the paper's x-axis order.
FIG1_DATASETS = ("qmcpack", "isabel", "cesm", "exafel")


def dataset_names(main_only: bool = False) -> list[str]:
    """Names of available datasets (optionally just the Table II four)."""
    return list(MAIN_DATASETS) if main_only else sorted(DATASETS)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


@lru_cache(maxsize=32)
def generate(name: str, scale: str = "bench") -> np.ndarray:
    """Memoized synthetic generation; arrays are read-only to keep the cache safe."""
    arr = get_dataset(name).make(scale)
    arr.setflags(write=False)
    return arr
