"""Dataset inflation for the Figure-13 scaling study.

Section VI-C inflates NYX by stretching each dimension by a factor of 2-5
(cubic growth in bytes) "maintaining the statistical properties and spatial
patterns".  We reproduce that with separable linear interpolation onto the
finer grid plus a matched-amplitude noise floor so the fine-scale statistics
(and therefore per-byte compressibility) stay comparable rather than becoming
artificially smooth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inflate"]


def _interp_axis(arr: np.ndarray, axis: int, factor: int) -> np.ndarray:
    """Linear interpolation stretching one axis by an integer factor."""
    n = arr.shape[axis]
    new_n = n * factor
    old_x = np.arange(n, dtype=np.float64)
    new_x = np.linspace(0.0, n - 1, new_n)
    arr = np.moveaxis(arr, axis, -1)
    lo = np.clip(np.floor(new_x).astype(np.int64), 0, n - 1)
    hi = np.clip(lo + 1, 0, n - 1)
    w = (new_x - old_x[lo]).reshape((1,) * (arr.ndim - 1) + (new_n,))
    out = arr[..., lo] * (1.0 - w) + arr[..., hi] * w
    return np.moveaxis(out, -1, axis)


def inflate(data: np.ndarray, factor: int, seed: int = 7) -> np.ndarray:
    """Stretch every axis of ``data`` by ``factor`` (>=1), preserving statistics.

    The interpolated field is augmented with small-scale noise whose
    amplitude matches the original's nearest-neighbour increments, so the
    inflated array is not trivially more compressible per element than the
    source — the property Fig. 13 relies on ("throughput of each compressor
    remains constant when increasing the size").
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    data = np.asarray(data)
    if factor == 1:
        return data.copy()
    out = data.astype(np.float64)
    for axis in range(data.ndim):
        out = _interp_axis(out, axis, factor)
    # Fine-scale amplitude of the source (mean |nearest-neighbour delta|).
    diffs = [np.abs(np.diff(data.astype(np.float64), axis=a)).mean() for a in range(data.ndim)]
    amp = 0.5 * float(np.mean(diffs))
    rng = np.random.default_rng(seed)
    out = out + rng.standard_normal(out.shape) * amp
    return out.astype(data.dtype)
