"""NYX-like cosmology field generator.

The paper's NYX set is a 512^3 float32 AMR snapshot (536.9 MB); the usual
SDRBench field is baryon density — a *log-normal* field: exponentiating a
smooth Gaussian random field produces the high dynamic range and extreme
smoothness that let SZ3 reach CR ~1e5 at ε = 1e-1 (Table III) while ZFP's
transform still tracks it well.
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import gaussian_random_field

__all__ = ["generate_nyx"]


def generate_nyx(shape: tuple[int, int, int] = (48, 48, 48), seed: int = 2026) -> np.ndarray:
    """3-D float32 baryon-density-like field."""
    rng = np.random.default_rng(seed)
    g = gaussian_random_field(shape, beta=4.0, rng=rng)
    # Strong log-normal: the value range is dominated by rare density peaks,
    # so a value-range relative bound is loose over most of the volume --
    # the trait behind NYX's enormous loose-bound ratios in Table III.
    density = np.exp(2.4 * g)
    return (density * 1e8).astype(np.float32)  # physical-ish magnitudes
