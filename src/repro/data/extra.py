"""Figure-1 datasets: QMCPack, ISABEL, EXAFEL (CESM-ATM reuses :mod:`repro.data.cesm`).

Figure 1 compares lossless vs EBLC ratios on four SDRBench sets.  Each
generator reproduces the structural trait that determines where its bars
land:

- **QMCPack** — electronic wavefunction amplitudes: oscillatory but smooth
  (moderate EBLC ratios, poor lossless);
- **ISABEL** — Hurricane Isabel pressure field: large-scale vortex + smooth
  background (high EBLC ratios);
- **EXAFEL** — LCLS detector images: flat background with Poisson-like
  photon spikes (the hardest set for every codec).
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import gaussian_random_field, rescale

__all__ = ["generate_qmcpack", "generate_isabel", "generate_exafel"]


def generate_qmcpack(
    shape: tuple[int, int, int] = (32, 32, 64), seed: int = 2028
) -> np.ndarray:
    """Oscillatory-smooth wavefunction-amplitude-like float32 field."""
    rng = np.random.default_rng(seed)
    envelope = gaussian_random_field(shape, beta=3.6, rng=rng)
    coords = np.meshgrid(*[np.linspace(0, 1, n) for n in shape], indexing="ij")
    phase = sum((8.0 + 2 * d) * np.pi * c for d, c in enumerate(coords))
    psi = np.exp(0.8 * envelope) * np.cos(phase + 2.0 * envelope)
    return psi.astype(np.float32)


def generate_isabel(
    shape: tuple[int, int, int] = (16, 64, 64), seed: int = 2029
) -> np.ndarray:
    """Hurricane-pressure-like float32 field: background + vortex core."""
    rng = np.random.default_rng(seed)
    z, y, x = np.meshgrid(
        *[np.linspace(-1, 1, n) for n in shape], indexing="ij"
    )
    r2 = (x - 0.1) ** 2 + (y + 0.05) ** 2
    vortex = -45.0 * np.exp(-r2 / 0.08) * (1.0 - 0.3 * z)
    background = 15.0 * gaussian_random_field(shape, beta=3.4, rng=rng)
    field = 1000.0 + vortex + background
    return field.astype(np.float32)


def generate_exafel(
    shape: tuple[int, int] = (256, 256), seed: int = 2030
) -> np.ndarray:
    """Detector-image-like float32 field: flat background + photon spikes."""
    rng = np.random.default_rng(seed)
    background = 10.0 + 0.5 * gaussian_random_field(shape, beta=2.5, rng=rng)
    image = rng.poisson(background).astype(np.float64)
    # Bragg-peak-like hot spots.
    n_peaks = 200
    ij = rng.integers(0, min(shape), size=(n_peaks, 2))
    image[ij[:, 0] % shape[0], ij[:, 1] % shape[1]] += rng.exponential(
        500.0, size=n_peaks
    )
    return rescale(image, 0.0, 4000.0).astype(np.float32)
