"""S3D-like combustion field generator.

The paper's S3D set is 11 species of 500^3 double-precision fields
(10,490.4 MB) from direct numerical simulation of turbulent combustion.  The
structure is smooth species concentrations organized around flame fronts;
each species is a different nonlinear function of the shared front geometry,
so fields correlate without being identical.  Double precision matters: at
64 bits/element, high ratios (Table III: SZ3 ≈ 4056 at 1e-1, 51 at 1e-5)
reflect the data's smoothness rather than float32 quantization.
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import gaussian_random_field, tanh_front

__all__ = ["generate_s3d"]


def generate_s3d(
    shape: tuple[int, int, int, int] = (4, 32, 32, 32), seed: int = 2027
) -> np.ndarray:
    """(species, x, y, z) float64 combustion-like field."""
    species, *grid = shape
    grid = tuple(grid)
    rng = np.random.default_rng(seed)
    # Sharp fronts saturate most of the volume into near-constant plateaus
    # (burned/unburned regions) -- the structure behind S3D's very high
    # ratios at loose-to-moderate bounds (Table III: SZ3 ~4056 at 1e-1,
    # ~309 at 1e-3).
    front = tanh_front(grid, rng, n_fronts=2, sharpness=24.0)
    turb = gaussian_random_field(grid, beta=5.0, rng=rng)
    fields = []
    for s in range(species):
        # Each species: its own saturation curve over the shared front plus
        # weak species-specific turbulence.
        gain = 1.5 + 0.5 * s
        mix = 0.5 * (1.0 + np.tanh(gain * front))
        fields.append(mix * np.exp(0.04 * turb) * (1.0 + 0.1 * s))
    return np.stack(fields).astype(np.float64)
