"""HACC-like cosmology particle coordinate generator.

The paper's HACC set is a single 280,953,867-element float32 vector
(1046.9 MB) of particle x-coordinates.  Particles ordered by identifier keep
spatial locality, so the stream is a coherent trajectory with a fine jitter
floor.  Table III shows the signature this produces: high ratios at loose
bounds (the jitter quantizes away: SZ3 CR ≈ 217 at ε = 1e-1) collapsing to
barely-compressible at tight bounds (CR ≈ 2.7 at 1e-5) — the calibration
target for ``noise_level``.
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import coherent_walk, rescale

__all__ = ["generate_hacc"]


def generate_hacc(n: int = 1 << 17, seed: int = 2025) -> np.ndarray:
    """1-D float32 particle-coordinate-like stream of length ``n``."""
    rng = np.random.default_rng(seed)
    walk = coherent_walk(n, rng, coherence=max(64, n // 512), noise_level=2e-4)
    walk = rescale(walk, 0.2, 0.8)
    # Orbit-scale oscillation: particles sweep a third of the box within a
    # ~40-element window, so SZx's 128-element blocks are never constant
    # (its HACC ratios stay low at every bound, as in Table III) while the
    # sweep remains smooth enough for interpolation to track (SZ3 stays
    # high at loose bounds).
    i = np.arange(n, dtype=np.float64)
    phase_drift = coherent_walk(n, rng, coherence=max(64, n // 256), noise_level=0.0)
    phase_drift = rescale(phase_drift, 0.0, 2.0 * np.pi)
    sweep = 0.18 * np.sin(2.0 * np.pi * i / 40.0 + phase_drift)
    return rescale(walk + sweep, 0.0, 256.0).astype(np.float32)
