"""CESM-ATM-like climate field generator.

The paper's CESM set is 26 atmospheric levels of 1800x3600 lat-lon fields
(float32, 673.9 MB).  The synthetic field reproduces the traits that drive
its compressibility: strong zonal (latitudinal) structure, smooth level-to-
level variation, and a weather-noise floor that keeps tight bounds honest.
"""

from __future__ import annotations

import numpy as np

from repro.data.fields import gaussian_random_field, rescale

__all__ = ["generate_cesm"]


def generate_cesm(
    shape: tuple[int, int, int] = (6, 64, 128), seed: int = 2024
) -> np.ndarray:
    """(levels, lat, lon) float32 climate-like field."""
    levels, nlat, nlon = shape
    rng = np.random.default_rng(seed)
    lat = np.linspace(-np.pi / 2, np.pi / 2, nlat)
    # Zonal mean structure: warm equator, cold poles; amplitude decays with level.
    zonal = np.cos(lat)[None, :, None]
    level_scale = np.linspace(1.0, 0.4, levels)[:, None, None]
    base = 240.0 + 60.0 * zonal * level_scale
    # Planetary waves + weather noise, coherent across adjacent levels.
    waves = gaussian_random_field(
        (levels, nlat, nlon), beta=3.2, rng=rng, anisotropy=(2.0, 1.0, 1.0)
    )
    weather = gaussian_random_field((levels, nlat, nlon), beta=2.0, rng=rng)
    field = base + 8.0 * waves + 0.6 * weather
    return rescale(field, 190.0, 310.0).astype(np.float32)
