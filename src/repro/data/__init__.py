"""Synthetic SDRBench-like scientific datasets.

The paper benchmarks on SDRBench snapshots (Table II): CESM-ATM (climate),
HACC (cosmology particles), NYX (cosmology AMR), S3D (combustion), plus the
Figure-1 sets (QMCPack, ISABEL, CESM-ATM, EXAFEL).  Production files are
hundreds of MB to 10 GB; this package generates *statistically matched*
synthetic fields at laptop scale while the registry carries the paper-scale
metadata for the energy model.

Each generator is calibrated so its compressibility signature — how CR falls
as the bound tightens, per Table III — reproduces the paper's shape; see the
module docstrings for the per-dataset rationale.
"""

from repro.data.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    generate,
    get_dataset,
)
from repro.data.inflate import inflate

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "generate",
    "get_dataset",
    "inflate",
]
