"""Checkpoint/restart mathematics: Young/Daly intervals and closed forms.

The paper prices a *single* compressed write; the dominant HPC scenario is
periodic checkpointing under failures.  Compression shrinks the checkpoint
cost ``δ``, which shifts the Young/Daly-optimal interval ``τ``, which
changes the number of checkpoints, the rework lost per failure, and
therefore the total wasted time and energy — the compress-or-not question
at whole-application scale.

The model (all times in seconds):

- the application needs ``work_s`` of failure-free compute, cut into
  segments of at most ``interval_s``; each segment ends with a checkpoint
  write of duration ``ckpt_s`` (its cost and energy come from the existing
  compressed-I/O write paths);
- failures arrive as a Poisson process with the system MTTF ``M``
  (:mod:`repro.workloads.failures`); a failure anywhere in the vulnerable
  window — compute, checkpoint write, or restart — loses all work since the
  last *committed* checkpoint;
- every failure costs ``downtime_s`` of dead node time (idle power only),
  then a restart of duration ``restart_s`` (fetch + decompress through the
  read path; re-reading the input deck before the first checkpoint is
  charged the same), then rework from the last commit.

Closed forms below follow the standard renewal argument (Daly's exponential
model).  For a segment whose vulnerable window is ``v = w + δ``:

- expected time: first attempt either succeeds after ``v`` or fails after
  ``M(1 - e^{-v/M})`` expected seconds; each subsequent attempt must clear
  ``R + v`` contiguous uptime, costing ``(M + D)(e^{(R+v)/M} - 1)``
  expected seconds including downtime;
- expected failures: ``(1 - e^{-v/M}) e^{(R+v)/M}``.

The first-order *energy* expansion charges, per expected failure, half of
the segment's energy (the average rework), one full restart, and downtime
at node idle power — documented tolerance versus the event-loop simulation
is asserted in ``tests/test_workloads.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "CheckpointSpec",
    "young_interval",
    "daly_interval",
    "resolve_interval",
    "segment_works",
    "expected_makespan",
    "expected_failures",
    "expected_energy",
]


def young_interval(ckpt_s: float, mttf_s: float) -> float:
    """Young's first-order optimum ``τ = sqrt(2 δ M)``."""
    if ckpt_s < 0 or mttf_s <= 0:
        raise ConfigurationError("ckpt_s must be >= 0 and mttf_s > 0")
    if math.isinf(mttf_s):
        return math.inf
    return math.sqrt(2.0 * ckpt_s * mttf_s)


def daly_interval(ckpt_s: float, mttf_s: float, restart_s: float = 0.0) -> float:
    """Daly's refined optimum ``τ = sqrt(2 δ (M + R)) - δ``.

    Falls back to ``δ`` when the formula would go lower (the perturbation
    solution is only valid for ``δ ≪ M``); infinite MTTF yields an infinite
    interval — checkpoint once, at the end.
    """
    if restart_s < 0:
        raise ConfigurationError("restart_s must be >= 0")
    if math.isinf(mttf_s):
        return math.inf
    tau = math.sqrt(2.0 * ckpt_s * (mttf_s + restart_s)) - ckpt_s
    return max(tau, ckpt_s) if ckpt_s > 0 else young_interval(ckpt_s, mttf_s)


def resolve_interval(
    interval: float | str, ckpt_s: float, mttf_s: float, restart_s: float = 0.0
) -> float:
    """Map an interval policy to seconds.

    ``"daly"`` / ``"young"`` use the closed-form optima; a number is an
    explicit interval in seconds (must be positive).
    """
    if isinstance(interval, str):
        if interval == "daly":
            return daly_interval(ckpt_s, mttf_s, restart_s)
        if interval == "young":
            return young_interval(ckpt_s, mttf_s)
        raise ConfigurationError(
            f"unknown interval policy {interval!r}; expected 'daly', 'young', "
            "or a number of seconds"
        )
    value = float(interval)
    if not value > 0:
        raise ConfigurationError("explicit checkpoint interval must be positive")
    return value


def segment_works(work_s: float, interval_s: float) -> list[float]:
    """Split total work into compute segments of at most ``interval_s``.

    Every segment — including the final, possibly short one — ends with a
    checkpoint write: the last checkpoint *is* the application's output
    dump, which is what reduces a one-segment run to the paper's single
    compressed write.
    """
    if not work_s > 0:
        raise ConfigurationError("work_s must be positive")
    if not interval_s > 0:
        raise ConfigurationError("interval_s must be positive")
    if math.isinf(interval_s):
        return [work_s]
    n = max(1, math.ceil(work_s / interval_s - 1e-12))
    works = [interval_s] * (n - 1)
    works.append(work_s - interval_s * (n - 1))
    return works


@dataclass(frozen=True)
class CheckpointSpec:
    """One checkpointed application lifetime, in model scalars.

    The I/O scalars (``ckpt_s``, ``restart_s`` and their energies) are
    *inputs* here — the testbed derives them from its compressed write and
    read paths, so this module stays a pure math layer.
    """

    work_s: float
    interval_s: float  # resolved seconds (inf = single trailing checkpoint)
    ckpt_s: float
    restart_s: float
    mttf_s: float  # system MTTF (inf = failure-free)
    downtime_s: float = 0.0

    def __post_init__(self):
        if not self.work_s > 0:
            raise ConfigurationError("work_s must be positive")
        if not self.interval_s > 0:
            raise ConfigurationError("interval_s must be positive")
        if self.ckpt_s < 0 or self.restart_s < 0 or self.downtime_s < 0:
            raise ConfigurationError("ckpt_s/restart_s/downtime_s must be >= 0")
        if not self.mttf_s > 0:
            raise ConfigurationError("mttf_s must be positive")

    @property
    def segments(self) -> list[float]:
        return segment_works(self.work_s, self.interval_s)

    @property
    def n_checkpoints(self) -> int:
        return len(self.segments)

    @property
    def failure_free_makespan_s(self) -> float:
        return self.work_s + self.n_checkpoints * self.ckpt_s


def _segment_expectations(spec: CheckpointSpec, w: float) -> tuple[float, float]:
    """(expected seconds, expected failures) to commit one segment."""
    v = w + spec.ckpt_s
    if math.isinf(spec.mttf_s):
        return v, 0.0
    m = spec.mttf_s
    p_fail = -math.expm1(-v / m)  # 1 - e^{-v/M}, stable for small v/M
    retries = math.expm1((spec.restart_s + v) / m)  # e^{(R+v)/M} - 1
    t = m * p_fail + p_fail * (spec.downtime_s + (m + spec.downtime_s) * retries)
    failures = p_fail * (1.0 + retries)
    return t, failures


def expected_makespan(spec: CheckpointSpec) -> float:
    """Expected wall time of the whole lifetime (exact renewal model)."""
    return sum(_segment_expectations(spec, w)[0] for w in spec.segments)


def expected_failures(spec: CheckpointSpec) -> float:
    """Expected failure count over the whole lifetime."""
    return sum(_segment_expectations(spec, w)[1] for w in spec.segments)


def expected_energy(
    spec: CheckpointSpec,
    compute_power_w: float,
    ckpt_energy_j: float,
    restart_energy_j: float,
    idle_power_w: float,
) -> float:
    """First-order expected energy of the whole lifetime.

    Per segment: the useful compute and its committed checkpoint, plus — per
    expected failure — half the segment's energy as average rework, one full
    restart, and ``downtime_s`` at node idle power.  This is the energy
    analogue of Daly's first-order time expansion; the event-loop simulator
    is the higher-fidelity reference it is validated against.
    """
    total = 0.0
    for w in spec.segments:
        seg_energy = compute_power_w * w + ckpt_energy_j
        _, failures = _segment_expectations(spec, w)
        total += seg_energy + failures * (
            0.5 * seg_energy + restart_energy_j + idle_power_w * spec.downtime_s
        )
    return total
