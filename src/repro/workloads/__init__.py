"""repro.workloads — failure-aware application-lifetime simulation.

The paper prices one compressed write or read; this layer prices a whole
checkpointed application lifetime under failures, where compression's
effect on the checkpoint cost shifts the Young/Daly-optimal interval and
with it the total wasted work and energy:

- :mod:`repro.workloads.failures` — per-node exponential MTTF with explicit
  seeds, merged into the system-level failure process;
- :mod:`repro.workloads.checkpoint` — :class:`CheckpointSpec`, the
  Young/Daly closed-form optimal intervals, and expected-makespan/energy
  models;
- :mod:`repro.workloads.lifecycle` — the event-loop simulator: compute
  segments, checkpoint writes, failure interrupts, downtime, restart and
  rework as one labelled :class:`~repro.energy.measurement.Interval`
  timeline.

``Testbed.checkpoint_point`` (and the ``checkpoint`` sweep kind, the
``repro advise --checkpoint`` advisor, and
``MultiNodeCampaign.run_checkpointed``) build on these pieces; see
``docs/user-guide/checkpointing.md``.
"""

from repro.workloads.checkpoint import (
    CheckpointSpec,
    daly_interval,
    expected_energy,
    expected_failures,
    expected_makespan,
    resolve_interval,
    segment_works,
    young_interval,
)
from repro.workloads.failures import FailureModel, FailureTimeline
from repro.workloads.lifecycle import (
    LifecycleStats,
    compact_intervals,
    lifecycle_process,
    run_lifecycle,
)

__all__ = [
    "CheckpointSpec",
    "FailureModel",
    "FailureTimeline",
    "LifecycleStats",
    "compact_intervals",
    "daly_interval",
    "expected_energy",
    "expected_failures",
    "expected_makespan",
    "lifecycle_process",
    "resolve_interval",
    "run_lifecycle",
    "segment_works",
    "young_interval",
]
