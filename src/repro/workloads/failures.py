"""Node failure model: per-node exponential MTTF, merged to system scale.

The standard HPC resilience model (Young 1974, Daly 2006): every node fails
independently with exponentially distributed inter-failure times of mean
``node_mttf_s`` (failed nodes are swapped from the spare pool, so each node
is a memoryless Poisson source).  An application spanning ``n_nodes`` dies
when *any* of its nodes dies, so its system-level failure process is the
superposition of the per-node processes — again Poisson, with

    system MTTF = node MTTF / n_nodes

which is the scaling that makes checkpointing progressively more important
as machines grow.  :class:`FailureTimeline` realizes one concrete failure
history from an explicit seed: per-node arrival streams are drawn lazily
(each node gets its own :class:`numpy.random.Generator` spawned from one
``SeedSequence``) and merged through a heap, so the same seed always yields
the same byte-identical history regardless of how far it is consumed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FailureModel", "FailureTimeline"]


@dataclass(frozen=True)
class FailureModel:
    """Per-node exponential failures, scaled to an ``n_nodes`` application.

    ``node_mttf_s=inf`` disables failures entirely (the timeline is empty),
    which is what reduces the checkpoint simulator to the failure-free
    compress-and-write paths.
    """

    node_mttf_s: float
    n_nodes: int = 1

    def __post_init__(self):
        if not self.node_mttf_s > 0:
            raise ConfigurationError("node_mttf_s must be positive")
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        object.__setattr__(self, "node_mttf_s", float(self.node_mttf_s))
        object.__setattr__(self, "n_nodes", int(self.n_nodes))

    @property
    def failure_free(self) -> bool:
        return math.isinf(self.node_mttf_s)

    @property
    def system_mttf_s(self) -> float:
        """Mean time between failures of the whole allocation."""
        return self.node_mttf_s / self.n_nodes

    def timeline(self, seed: int) -> "FailureTimeline":
        """A deterministic failure history for ``seed``."""
        return FailureTimeline(self, seed)


class FailureTimeline:
    """Lazy, deterministic merge of the per-node failure streams.

    ``next_after(t)`` returns the first failure time strictly greater than
    ``t`` (or ``None`` when the model is failure-free).  The merge keeps one
    pending arrival per node in a heap, refilling the popped node's stream
    from its own RNG — so consumption order cannot perturb the history and
    two timelines built from the same (model, seed) agree arrival for
    arrival.
    """

    def __init__(self, model: FailureModel, seed: int):
        self.model = model
        self.seed = int(seed)
        self.n_failures_drawn = 0
        self._heap: list[tuple[float, int]] = []
        self._rngs: list[np.random.Generator] = []
        if not model.failure_free:
            children = np.random.SeedSequence(self.seed).spawn(model.n_nodes)
            self._rngs = [np.random.default_rng(c) for c in children]
            for node, rng in enumerate(self._rngs):
                heapq.heappush(
                    self._heap, (float(rng.exponential(model.node_mttf_s)), node)
                )

    def next_after(self, t: float) -> float | None:
        """First failure time strictly after ``t``; None if failure-free."""
        if not self._heap:
            return None
        # Failures during downtime hit a node that is already down; skip them
        # (the merged process is memoryless, so skipping keeps the law exact).
        while self._heap[0][0] <= t:
            self._advance()
        return self._heap[0][0]

    def _advance(self) -> None:
        when, node = heapq.heappop(self._heap)
        rng = self._rngs[node]
        heapq.heappush(
            self._heap, (when + float(rng.exponential(self.model.node_mttf_s)), node)
        )
        self.n_failures_drawn += 1
