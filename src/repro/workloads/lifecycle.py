"""Failure-aware application lifetimes on the deterministic event loop.

This is the simulation counterpart to the closed forms in
:mod:`repro.workloads.checkpoint`: a generator process on
:class:`~repro.cluster.events.EventLoop` lives through compute segments,
checkpoint writes, failure interrupts, downtime, restart fetches and
rework, emitting an absolute-time :class:`~repro.energy.measurement.Interval`
timeline as it goes.  The timeline feeds
:func:`~repro.energy.measurement.compose_phases`, so the RAPL/PAPI energy
stack integrates the lifetime exactly like it integrates a pipelined write
— downtime becomes zero-core idle phases charged at the power model's idle
watts.

The process hands its statistics back through ``Process.result`` (the
generator's return value), never by mutating shared state, so several
lifetimes can share one loop.  Every random draw comes from the explicit
seed buried in the :class:`~repro.workloads.failures.FailureTimeline`; the
simulation itself contains no randomness, which is what makes repeated runs
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.events import EventLoop, Process
from repro.energy.measurement import Interval
from repro.errors import SimulationError
from repro.obs.trace import active_tracer
from repro.workloads.checkpoint import CheckpointSpec
from repro.workloads.failures import FailureTimeline

__all__ = [
    "LifecycleStats",
    "lifecycle_process",
    "run_lifecycle",
    "compact_intervals",
    "trace_intervals",
]

#: Hard cap on failures per lifetime: a work_s ≫ mttf_s configuration would
#: otherwise loop (almost) forever without ever committing a segment.
MAX_FAILURES = 100_000


@dataclass(frozen=True)
class LifecycleStats:
    """One simulated application lifetime, fully accounted.

    Busy times are integrals over the labelled intervals (partial, aborted
    attempts included), so ``compute_busy_s`` minus the useful work is
    exactly the rework.  ``intervals`` is the absolute-time load timeline —
    ``compose_phases`` turns it into meter-ready phases; downtime windows
    are recorded explicitly as zero-core ``"down"`` intervals so idle power
    is accounted.
    """

    work_s: float
    makespan_s: float
    n_checkpoints: int  # committed
    n_ckpt_attempts: int  # started (committed + failure-aborted)
    n_failures: int
    n_restarts: int  # completed restart fetches
    n_restart_attempts: int
    compute_busy_s: float  # useful work + rework
    ckpt_busy_s: float
    restart_busy_s: float
    downtime_s: float
    intervals: tuple[Interval, ...]
    ckpt_partial_s: float = 0.0  # busy seconds in failure-aborted checkpoints
    restart_partial_s: float = 0.0  # busy seconds in failure-aborted restarts

    @property
    def rework_s(self) -> float:
        return self.compute_busy_s - self.work_s

    @property
    def ckpt_committed_s(self) -> float:
        """Busy seconds inside checkpoints that actually committed."""
        return self.ckpt_busy_s - self.ckpt_partial_s


def compact_intervals(intervals, labels: set[str] | None = None) -> list[Interval]:
    """Re-base selected intervals onto a gapless timeline, order preserved.

    Used to integrate one activity class (e.g. compute + downtime) through
    :func:`~repro.energy.measurement.compose_phases` without the composer
    minting idle phases for the windows other activities occupied.
    """
    out: list[Interval] = []
    t = 0.0
    for iv in sorted(intervals, key=lambda iv: (iv.start_s, iv.end_s)):
        if labels is not None and iv.label not in labels:
            continue
        d = iv.end_s - iv.start_s
        out.append(Interval(t, t + d, iv.active_cores, iv.activity, iv.label))
        t += d
    return out


def trace_intervals(tracer, intervals, track: str, offset_s: float = 0.0) -> None:
    """Emit one virtual span per labelled interval onto ``track``.

    ``offset_s`` re-bases a locally-timed lifecycle (simulated from t=0)
    onto an absolute cluster timeline (the tenant's start time).
    """
    for iv in intervals:
        tracer.add_span(
            iv.label, track, offset_s + iv.start_s, offset_s + iv.end_s,
            active_cores=iv.active_cores, activity=iv.activity,
        )


def lifecycle_process(
    loop: EventLoop,
    spec: CheckpointSpec,
    timeline: FailureTimeline | None,
    compute_cores: int = 1,
    ckpt_cores: int = 1,
    ckpt_activity: float = 1.0,
    restart_cores: int = 1,
    restart_activity: float = 1.0,
):
    """The application generator; spawn it on ``loop``.

    Returns (via ``StopIteration.value`` → ``Process.result``) the
    :class:`LifecycleStats` of this lifetime.
    """
    if timeline is not None and timeline.model.failure_free:
        timeline = None
    intervals: list[Interval] = []
    busy = {"compute": 0.0, "checkpoint": 0.0, "restart": 0.0}
    counts = {
        "failures": 0,
        "checkpoints": 0,
        "ckpt_attempts": 0,
        "restarts": 0,
        "restart_attempts": 0,
    }
    downtime_total = 0.0

    def phase(duration, cores, activity, label):
        """Run one vulnerable phase; returns True iff it completed."""
        if duration <= 0:
            return True
        start = loop.now
        end = start + duration
        cut = timeline.next_after(start) if timeline is not None else None
        if cut is not None and cut < end:
            intervals.append(Interval(start, cut, cores, activity, label))
            busy[label] += cut - start
            yield cut - start
            return False
        intervals.append(Interval(start, end, cores, activity, label))
        busy[label] += duration
        yield duration
        return True

    def fail_and_restart():
        """Downtime then restart attempts until one survives."""
        nonlocal downtime_total
        while True:
            counts["failures"] += 1
            if counts["failures"] > MAX_FAILURES:
                raise SimulationError(
                    f"lifecycle exceeded {MAX_FAILURES} failures; "
                    "work_s is unreachable at this MTTF"
                )
            if spec.downtime_s > 0:
                intervals.append(
                    Interval(loop.now, loop.now + spec.downtime_s, 0, 0.0, "down")
                )
                downtime_total += spec.downtime_s
                yield spec.downtime_s
            counts["restart_attempts"] += 1
            if spec.restart_s <= 0:
                counts["restarts"] += 1
                return
            ok = yield from phase(
                spec.restart_s, restart_cores, restart_activity, "restart"
            )
            if ok:
                counts["restarts"] += 1
                return

    segments = spec.segments
    seg_idx = 0
    while seg_idx < len(segments):
        ok = yield from phase(segments[seg_idx], compute_cores, 1.0, "compute")
        if not ok:
            yield from fail_and_restart()
            continue
        counts["ckpt_attempts"] += 1
        ok = yield from phase(spec.ckpt_s, ckpt_cores, ckpt_activity, "checkpoint")
        if not ok:
            yield from fail_and_restart()
            continue
        counts["checkpoints"] += 1
        seg_idx += 1

    return LifecycleStats(
        work_s=spec.work_s,
        makespan_s=loop.now,
        n_checkpoints=counts["checkpoints"],
        n_ckpt_attempts=counts["ckpt_attempts"],
        n_failures=counts["failures"],
        n_restarts=counts["restarts"],
        n_restart_attempts=counts["restart_attempts"],
        compute_busy_s=busy["compute"],
        ckpt_busy_s=busy["checkpoint"],
        restart_busy_s=busy["restart"],
        downtime_s=downtime_total,
        intervals=tuple(intervals),
        ckpt_partial_s=busy["checkpoint"] - counts["checkpoints"] * spec.ckpt_s,
        restart_partial_s=busy["restart"] - counts["restarts"] * spec.restart_s,
    )


def run_lifecycle(
    spec: CheckpointSpec,
    timeline: FailureTimeline | None = None,
    compute_cores: int = 1,
    ckpt_cores: int = 1,
    ckpt_activity: float = 1.0,
    restart_cores: int = 1,
    restart_activity: float = 1.0,
    loop: EventLoop | None = None,
    trace_track: str | None = None,
) -> LifecycleStats:
    """Simulate one lifetime to completion and return its stats.

    With ``trace_track`` set and a tracer active, the interval timeline is
    emitted as virtual spans on that track after the run (tracing never
    perturbs the simulation).
    """
    loop = loop or EventLoop()
    proc: Process = loop.spawn(
        lifecycle_process(
            loop,
            spec,
            timeline,
            compute_cores=compute_cores,
            ckpt_cores=ckpt_cores,
            ckpt_activity=ckpt_activity,
            restart_cores=restart_cores,
            restart_activity=restart_activity,
        ),
        name="lifecycle",
    )
    loop.run()
    if not proc.finished:  # pragma: no cover - defensive
        raise SimulationError("lifecycle process did not finish")
    if trace_track is not None:
        tracer = active_tracer()
        if tracer is not None:
            trace_intervals(tracer, proc.result.intervals, trace_track)
    return proc.result
