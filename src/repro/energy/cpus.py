"""CPU catalogue reproducing Table I of the paper.

Each entry carries the published shape of the node (model, cores, TDP) plus
the calibration parameters of the simulation: per-socket idle power,
per-core relative speed, and socket count.  Calibration targets the paper's
qualitative findings:

- the Sapphire Rapids MAX 9480 is the fastest per core but draws the most
  package power (its serial energies sit between the other two in Fig. 7);
- the Skylake 8160 node shows the lowest absolute serial energies;
- the Cascade Lake 8260M node (4-socket Extreme Memory platform) is the
  slowest per core and idles the most silicon, giving the largest energies
  (Fig. 7's bottom row).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUSpec", "CPUS", "get_cpu", "PAPER_CPUS"]


@dataclass(frozen=True)
class CPUSpec:
    """A node's CPU configuration and power/performance calibration.

    The DVFS envelope (``fmin_ghz``/``fnom_ghz``/``fmax_ghz``) follows the
    published base and max-turbo clocks; ``speed`` and the power calibration
    describe the node *at* ``fnom_ghz``, so every pre-DVFS code path — which
    never passes a frequency — is implicitly evaluated at nominal and is
    unchanged by these fields.  ``vf_gamma`` is the voltage-scaled dynamic
    power exponent: P_dyn ∝ f·V² with V roughly linear in f over the DVFS
    range gives an effective exponent of ~2.4 (Zordan et al.'s
    processing-energy-per-cycle axis, made explicit).
    """

    name: str
    model: str
    codename: str
    system: str
    cores: int  # total usable cores on the node
    sockets: int
    tdp_w: float  # per-socket TDP as Table I lists it
    idle_w: float  # per-socket idle (uncore + fabric) power
    speed: float  # per-core throughput relative to the Skylake 8160
    ram: str
    year: int
    fmin_ghz: float = 1.0  # lowest DVFS operating point
    fnom_ghz: float = 2.0  # base clock: the calibration point of `speed`
    fmax_ghz: float = 3.0  # max turbo
    vf_gamma: float = 2.4  # dynamic-power exponent under voltage scaling

    def __post_init__(self):
        if not 0.0 < self.fmin_ghz <= self.fnom_ghz <= self.fmax_ghz:
            raise ValueError(
                f"{self.name}: need 0 < fmin <= fnom <= fmax, got "
                f"({self.fmin_ghz}, {self.fnom_ghz}, {self.fmax_ghz})"
            )
        if self.vf_gamma < 1.0:
            raise ValueError("vf_gamma must be >= 1 (dynamic power grows with f)")

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    def validate_freq(self, freq_ghz: float) -> float:
        """Check a frequency lies in the DVFS envelope; returns it as float."""
        f = float(freq_ghz)
        if not self.fmin_ghz <= f <= self.fmax_ghz:
            raise ValueError(
                f"{self.name}: freq {f} GHz outside DVFS range "
                f"[{self.fmin_ghz}, {self.fmax_ghz}]"
            )
        return f

    def freq_ladder(self) -> tuple[float, ...]:
        """A canonical 5-step DVFS ladder: min, nominal, max plus midpoints."""
        steps = {
            self.fmin_ghz,
            0.5 * (self.fmin_ghz + self.fnom_ghz),
            self.fnom_ghz,
            0.5 * (self.fnom_ghz + self.fmax_ghz),
            self.fmax_ghz,
        }
        return tuple(sorted(steps))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.model} ({self.cores} cores, {self.tdp_w:.0f} W TDP)"


CPUS: dict[str, CPUSpec] = {
    "max9480": CPUSpec(
        name="max9480",
        model="Intel Xeon CPU MAX 9480",
        codename="Sapphire Rapids",
        system="TACC Stampede3",
        cores=112,
        sockets=2,
        tdp_w=350.0,
        idle_w=130.0,  # HBM2e stacks idle hot
        speed=1.60,
        ram="128GB HBM2e",
        year=2023,
        fmin_ghz=0.8,
        fnom_ghz=1.9,
        fmax_ghz=3.5,
    ),
    "plat8160": CPUSpec(
        name="plat8160",
        model="Intel Xeon Platinum 8160",
        codename="Skylake",
        system="TACC Stampede3",
        cores=48,
        sockets=2,
        tdp_w=270.0,
        idle_w=55.0,
        speed=1.0,
        ram="192GB DDR4",
        year=2017,
        fmin_ghz=1.0,
        fnom_ghz=2.1,
        fmax_ghz=3.7,
    ),
    "plat8260m": CPUSpec(
        name="plat8260m",
        model="Intel Xeon Platinum 8260M",
        codename="Cascade Lake",
        system="PSC Bridges2 (Extreme Memory)",
        cores=96,
        sockets=4,
        tdp_w=165.0,
        idle_w=58.0,
        speed=0.62,
        ram="4TB DDR4",
        year=2019,
        fmin_ghz=1.0,
        fnom_ghz=2.4,
        fmax_ghz=3.9,
    ),
}

#: Paper presentation order (Fig. 7/10 row order).
PAPER_CPUS = ("max9480", "plat8160", "plat8260m")


def get_cpu(name: str) -> CPUSpec:
    """Look up a CPU by short name (``max9480``/``plat8160``/``plat8260m``)."""
    try:
        return CPUS[name]
    except KeyError:
        raise KeyError(f"unknown CPU {name!r}; available: {sorted(CPUS)}") from None
