"""CPU catalogue reproducing Table I of the paper.

Each entry carries the published shape of the node (model, cores, TDP) plus
the calibration parameters of the simulation: per-socket idle power,
per-core relative speed, and socket count.  Calibration targets the paper's
qualitative findings:

- the Sapphire Rapids MAX 9480 is the fastest per core but draws the most
  package power (its serial energies sit between the other two in Fig. 7);
- the Skylake 8160 node shows the lowest absolute serial energies;
- the Cascade Lake 8260M node (4-socket Extreme Memory platform) is the
  slowest per core and idles the most silicon, giving the largest energies
  (Fig. 7's bottom row).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUSpec", "CPUS", "get_cpu", "PAPER_CPUS"]


@dataclass(frozen=True)
class CPUSpec:
    """A node's CPU configuration and power/performance calibration."""

    name: str
    model: str
    codename: str
    system: str
    cores: int  # total usable cores on the node
    sockets: int
    tdp_w: float  # per-socket TDP as Table I lists it
    idle_w: float  # per-socket idle (uncore + fabric) power
    speed: float  # per-core throughput relative to the Skylake 8160
    ram: str
    year: int

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.model} ({self.cores} cores, {self.tdp_w:.0f} W TDP)"


CPUS: dict[str, CPUSpec] = {
    "max9480": CPUSpec(
        name="max9480",
        model="Intel Xeon CPU MAX 9480",
        codename="Sapphire Rapids",
        system="TACC Stampede3",
        cores=112,
        sockets=2,
        tdp_w=350.0,
        idle_w=130.0,  # HBM2e stacks idle hot
        speed=1.60,
        ram="128GB HBM2e",
        year=2023,
    ),
    "plat8160": CPUSpec(
        name="plat8160",
        model="Intel Xeon Platinum 8160",
        codename="Skylake",
        system="TACC Stampede3",
        cores=48,
        sockets=2,
        tdp_w=270.0,
        idle_w=55.0,
        speed=1.0,
        ram="192GB DDR4",
        year=2017,
    ),
    "plat8260m": CPUSpec(
        name="plat8260m",
        model="Intel Xeon Platinum 8260M",
        codename="Cascade Lake",
        system="PSC Bridges2 (Extreme Memory)",
        cores=96,
        sockets=4,
        tdp_w=165.0,
        idle_w=58.0,
        speed=0.62,
        ram="4TB DDR4",
        year=2019,
    ),
}

#: Paper presentation order (Fig. 7/10 row order).
PAPER_CPUS = ("max9480", "plat8160", "plat8260m")


def get_cpu(name: str) -> CPUSpec:
    """Look up a CPU by short name (``max9480``/``plat8160``/``plat8260m``)."""
    try:
        return CPUS[name]
    except KeyError:
        raise KeyError(f"unknown CPU {name!r}; available: {sorted(CPUS)}") from None
