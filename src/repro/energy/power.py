"""Package power model: watts as a function of active cores.

RAPL reports per-package (per-socket) power.  The model is the standard
idle + dynamic decomposition used by the energy-modeling literature the
paper cites (O'Brien et al., Dayarathna et al.):

    P_socket = idle_w + (tdp_w - idle_w) * (active/cores_per_socket)^alpha

with ``alpha < 1`` capturing the sublinear growth of dynamic power with core
count (shared uncore, frequency/turbo effects).  Cores fill sockets in order,
so a serial job burns one socket's single-core dynamic power plus *every*
socket's idle power — the reason wide nodes are expensive for serial
compression (Fig. 7's 4-socket 8260M row).

An ``activity`` factor scales dynamic power for phases that do not saturate
the core (e.g. I/O waits in Section VI's write experiments).

DVFS: an optional ``freq_ghz`` (model-level default or per-call override)
scales the *dynamic* term by ``(f / fnom)^vf_gamma`` — voltage-scaled
dynamic power, gamma ≈ 2.4 from :class:`~repro.energy.cpus.CPUSpec` — while
idle/uncore power is frequency-insensitive.  With no frequency given (or at
``f == fnom`` exactly) the model is bit-identical to the pre-DVFS one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cpus import CPUSpec
from repro.errors import ConfigurationError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Maps (cpu, active cores, activity) to per-package and node power."""

    cpu: CPUSpec
    alpha: float = 0.85
    freq_ghz: float | None = None  # None = nominal frequency (no scaling)

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        if self.freq_ghz is not None:
            try:
                self.cpu.validate_freq(self.freq_ghz)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None

    def freq_scale(self, freq_ghz: float | None = None) -> float:
        """Dynamic-power multiplier ``(f / fnom)^vf_gamma`` (exactly 1.0 at
        nominal, so unscaled paths stay bit-identical)."""
        f = self.freq_ghz if freq_ghz is None else freq_ghz
        if f is None or f == self.cpu.fnom_ghz:
            return 1.0
        f = self.cpu.validate_freq(f)
        return (f / self.cpu.fnom_ghz) ** self.cpu.vf_gamma

    def package_power(
        self,
        package: int,
        active_cores: int,
        activity: float = 1.0,
        freq_ghz: float | None = None,
    ) -> float:
        """Power (W) of one package given node-wide ``active_cores``.

        Active cores fill package 0 first, then 1, etc.  ``activity`` in
        [0, 1] scales the dynamic term only, as does the DVFS ``freq_scale``
        (idle power does not move with frequency).
        """
        cps = self.cpu.cores_per_socket
        if not 0 <= package < self.cpu.sockets:
            raise ConfigurationError(
                f"package {package} out of range for {self.cpu.name}"
            )
        if active_cores < 0 or active_cores > self.cpu.cores:
            raise ConfigurationError(
                f"active_cores {active_cores} out of range for {self.cpu.name}"
            )
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must be in [0, 1]")
        on_this = min(max(active_cores - package * cps, 0), cps)
        util = on_this / cps
        dynamic = (self.cpu.tdp_w - self.cpu.idle_w) * (util**self.alpha)
        scale = self.freq_scale(freq_ghz)
        if scale != 1.0:
            dynamic *= scale
        return self.cpu.idle_w + activity * dynamic

    def node_power(
        self,
        active_cores: int,
        activity: float = 1.0,
        freq_ghz: float | None = None,
    ) -> float:
        """Total node power: sum of all package powers (paper Eq. 6)."""
        return sum(
            self.package_power(p, active_cores, activity, freq_ghz=freq_ghz)
            for p in range(self.cpu.sockets)
        )

    def node_idle_power(self) -> float:
        """Node power with zero active cores (frequency-insensitive)."""
        return self.cpu.idle_w * self.cpu.sockets
