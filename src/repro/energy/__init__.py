"""Simulated energy-measurement stack (RAPL + PAPI) and the virtual testbed.

The paper measures CPU package energy through Intel RAPL counters sampled via
PAPI's powercap component (Section IV-B), on the three nodes of Table I.
None of that hardware exists here, so this subpackage simulates the whole
stack with the same *interfaces and mechanisms*:

- :mod:`repro.energy.cpus` — the Table I CPU catalogue;
- :mod:`repro.energy.power` — package power as a function of active cores;
- :mod:`repro.energy.rapl` — powercap-style energy counter zones that
  integrate power over a virtual clock;
- :mod:`repro.energy.papi` — a PAPI-like monitor that samples those zones at
  a fixed interval, reproducing the paper's discrete sum E = sum P(t_i) dt;
- :mod:`repro.energy.throughput` — the calibrated codec performance model
  that supplies phase durations (see DESIGN.md for calibration constants);
- :mod:`repro.energy.measurement` — the user-facing
  :class:`~repro.energy.measurement.EnergyMeter`.
"""

from repro.energy.cpus import CPUS, CPUSpec, get_cpu
from repro.energy.measurement import EnergyMeter, EnergyReport, Phase
from repro.energy.papi import PapiPowercapMonitor
from repro.energy.power import PowerModel
from repro.energy.rapl import SimulatedRapl
from repro.energy.throughput import ThroughputModel

__all__ = [
    "CPUS",
    "CPUSpec",
    "get_cpu",
    "EnergyMeter",
    "EnergyReport",
    "Phase",
    "PapiPowercapMonitor",
    "PowerModel",
    "SimulatedRapl",
    "ThroughputModel",
]
