"""Calibrated codec performance model for the virtual testbed.

Our pure-Python codecs produce *real* compressed bytes, ratios and PSNR, but
their wall-clock time says nothing about the C implementations the paper
profiles.  This model supplies the runtimes the energy stack integrates,
from four mechanisms — each calibrated against a paper-reported quantity
(all constants below; EXPERIMENTS.md records the resulting fits):

1. **Base throughput** (MB/s per core at ε = 1e-3 on the Skylake 8160):
   magnitudes from the compressors' publications — SZx is ~an order of
   magnitude faster than the SZ family, ZFP in between.
2. **Error-bound slowdown**: runtime grows as ε tightens; the per-codec
   slope is set so the serial energy ratio E(1e-5)/E(1e-1) reproduces the
   paper's Section V-C factors (SZx 2.1x ... SZ3 7.2x).
3. **Per-invocation overhead**: a fixed setup cost that makes small datasets
   disproportionately expensive — calibrated to the paper's S3D:CESM energy
   ratios at 1e-3 (8.3x for SZx vs 14.2x for SZ2 against a 15.6x size gap).
4. **Strong scaling** (Universal Scalability Law): per-codec contention
   (sigma) and coherence (kappa) reproduce Fig. 10 — SZx gains ~6x energy at
   64 threads, SZ3 scales well, SZ2 and ZFP effectively do not scale.

CPU generation enters through :attr:`~repro.energy.cpus.CPUSpec.speed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.cpus import CPUSpec
from repro.errors import ConfigurationError

__all__ = ["CodecPerf", "ThroughputModel", "CODEC_PERF", "CODEC_MEM_BOUND"]


@dataclass(frozen=True)
class CodecPerf:
    """Performance calibration of one codec (see module docstring)."""

    compress_mbps: float  # per core, eps = 1e-3, Skylake 8160
    decompress_mbps: float
    eps_slope: float  # slowdown slope per decade of tightening below 1e-1
    overhead_s: float  # per-invocation fixed cost (speed-1.0 CPU)
    usl_sigma: float  # USL contention
    usl_kappa: float  # USL coherence

    def energy_growth_1e1_to_1e5(self) -> float:
        """Modeled runtime (= energy at fixed power) ratio ε=1e-5 vs 1e-1."""
        return (1.0 + 4.0 * self.eps_slope) / 1.0


#: Calibration table.  eps_slope targets (paper Section V-C): SZx 2.1x,
#: ZFP ~3x, SZ2 ~5x, QoZ ~6.5x, SZ3 7.2x energy growth from 1e-1 to 1e-5.
#: Overheads are kept small relative to the paper-scale workloads so the
#: Fig. 13 near-linear byte scaling holds; the residual consequence is that
#: the S3D:CESM energy-ratio *ordering* across codecs (paper: SZx 8.3x low,
#: SZ2 14.2x high) is not reproduced by this scalar model (EXPERIMENTS.md).
CODEC_PERF: dict[str, CodecPerf] = {
    "sz2": CodecPerf(55.0, 95.0, 1.000, 0.10, 0.850, 0.0020),
    "sz3": CodecPerf(50.0, 85.0, 1.550, 0.12, 0.050, 0.0010),
    "qoz": CodecPerf(42.0, 70.0, 1.375, 0.30, 0.060, 0.0012),
    "zfp": CodecPerf(260.0, 330.0, 0.500, 0.05, 0.950, 0.0020),
    "szx": CodecPerf(650.0, 900.0, 0.275, 0.15, 0.030, 0.0005),
    # Lossless baselines (Fig. 1 only; no eps axis).
    "zstd": CodecPerf(450.0, 1200.0, 0.0, 0.10, 0.10, 0.001),
    "blosc": CodecPerf(900.0, 1800.0, 0.0, 0.05, 0.05, 0.0005),
    "fpzip": CodecPerf(120.0, 150.0, 0.0, 0.20, 0.40, 0.002),
    "fpc": CodecPerf(500.0, 700.0, 0.0, 0.10, 0.30, 0.002),
}

#: Roofline-style memory-bound fraction per codec: the share of runtime that
#: does *not* speed up when the core clock rises (stream loads/stores, cache
#: misses).  Kept outside :class:`CodecPerf` so the calibration table's repr
#: — which feeds the sweep store's testbed fingerprint — is unchanged and
#: every pre-DVFS cache key stays valid.  Values follow the codecs' design:
#: SZx is a bandwidth-bound single-pass kernel, the SZ family and QoZ are
#: prediction/entropy-dominated (compute-bound), ZFP sits in between, and
#: the lossless baselines are throughput-oriented block copiers.
CODEC_MEM_BOUND: dict[str, float] = {
    "sz2": 0.30,
    "sz3": 0.25,
    "qoz": 0.25,
    "zfp": 0.35,
    "szx": 0.70,
    "zstd": 0.45,
    "blosc": 0.80,
    "fpzip": 0.25,
    "fpc": 0.55,
}

#: Fallback for codecs registered without a memory-bound calibration.
DEFAULT_MEM_BOUND = 0.40


class ThroughputModel:
    """Runtime model: ``runtime(codec, direction, nbytes, eps, cpu, threads)``."""

    def __init__(self, table: dict[str, CodecPerf] | None = None):
        self.table = dict(CODEC_PERF if table is None else table)

    def perf(self, codec: str) -> CodecPerf:
        try:
            return self.table[codec]
        except KeyError:
            raise ConfigurationError(
                f"no performance calibration for codec {codec!r}"
            ) from None

    # -- model components ---------------------------------------------------

    def eps_slowdown(self, codec: str, rel_bound: float) -> float:
        """Runtime multiplier vs the ε = 1e-3 baseline (1.0 at 1e-3)."""
        perf = self.perf(codec)
        if perf.eps_slope == 0.0 or rel_bound <= 0:
            return 1.0
        decades = max(0.0, -math.log10(rel_bound) - 1.0)  # 0 at 1e-1
        raw = 1.0 + perf.eps_slope * decades
        baseline = 1.0 + perf.eps_slope * 2.0  # value at 1e-3
        return raw / baseline

    def mem_bound_frac(self, codec: str) -> float:
        """Share of the codec's runtime that is memory-bandwidth-bound."""
        self.perf(codec)  # unknown codecs fail loudly, like every other path
        return CODEC_MEM_BOUND.get(codec, DEFAULT_MEM_BOUND)

    def freq_factor(self, codec: str, freq_ghz: float | None, cpu: CPUSpec) -> float:
        """Runtime multiplier at core frequency ``freq_ghz`` (1.0 at nominal).

        Roofline split: only the compute-bound fraction of the codec's work
        scales as ``fnom / f``; the memory-bound fraction is set by DRAM
        bandwidth and does not move with the core clock.  Exactly 1.0 when
        no frequency is given or at ``f == fnom``, keeping every pre-DVFS
        result bit-identical.
        """
        if freq_ghz is None or freq_ghz == cpu.fnom_ghz:
            return 1.0
        f = cpu.validate_freq(freq_ghz)
        m = self.mem_bound_frac(codec)
        return m + (1.0 - m) * (cpu.fnom_ghz / f)

    def speedup(self, codec: str, threads: int, cpu: CPUSpec) -> float:
        """USL strong-scaling speedup, capped by physical cores."""
        if threads < 1:
            raise ConfigurationError("threads must be >= 1")
        perf = self.perf(codec)
        p = min(threads, cpu.cores)
        return p / (1.0 + perf.usl_sigma * (p - 1) + perf.usl_kappa * p * (p - 1))

    def runtime(
        self,
        codec: str,
        direction: str,
        nbytes: int,
        rel_bound: float,
        cpu: CPUSpec,
        threads: int = 1,
        complexity: float = 1.0,
        freq_ghz: float | None = None,
    ) -> float:
        """Modeled seconds for one (de)compression invocation.

        ``complexity`` is the dataset's per-byte difficulty multiplier
        (entropy-heavy streams like HACC's jittery 1-D coordinates encode
        several times slower per byte than smooth doubles like S3D); the
        calibrated values live on :class:`repro.data.registry.DatasetSpec`.
        ``freq_ghz`` applies the DVFS :meth:`freq_factor` to the whole
        invocation (stream and setup alike); omitted = nominal clock.
        """
        perf = self.perf(codec)
        if direction == "compress":
            mbps = perf.compress_mbps
        elif direction == "decompress":
            mbps = perf.decompress_mbps
        else:
            raise ConfigurationError(
                f"direction must be compress/decompress, not {direction!r}"
            )
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        base = (nbytes / 1e6) / (mbps * cpu.speed)
        base *= self.eps_slowdown(codec, rel_bound) * complexity
        # The per-invocation overhead (allocation, first-touch, setup scans)
        # is memory-parallel work, so it scales with the codec's speedup
        # just like the stream itself.
        total = base + perf.overhead_s / cpu.speed
        factor = self.freq_factor(codec, freq_ghz, cpu)
        if factor != 1.0:
            total *= factor
        return total / self.speedup(codec, threads, cpu)
