"""Front-end energy meter: run workload phases through RAPL/PAPI, get joules.

:class:`EnergyMeter` is what the experiment drivers use: describe a workload
as :class:`Phase` segments (duration, active cores, CPU activity), and the
meter plays them through a fresh :class:`~repro.energy.rapl.SimulatedRapl`
sampled by a :class:`~repro.energy.papi.PapiPowercapMonitor`, returning an
:class:`EnergyReport` with the discrete-sampled energy the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cpus import CPUSpec
from repro.energy.papi import PapiPowercapMonitor
from repro.energy.power import PowerModel
from repro.energy.rapl import SimulatedRapl
from repro.errors import ConfigurationError

__all__ = ["Phase", "Interval", "compose_phases", "EnergyReport", "EnergyMeter"]


@dataclass(frozen=True)
class Phase:
    """One constant-load workload segment."""

    duration_s: float
    active_cores: int
    activity: float = 1.0
    label: str = ""


@dataclass(frozen=True)
class Interval:
    """A load segment on an absolute timeline, for overlapped stages.

    Unlike :class:`Phase` (relative, strictly sequential), intervals carry
    absolute start/end times so concurrent stages — a compress stream and
    the transfer draining behind it — can be described independently and
    then overlaid with :func:`compose_phases`.
    """

    start_s: float
    end_s: float
    active_cores: int = 1
    activity: float = 1.0
    label: str = ""

    def __post_init__(self):
        if self.end_s < self.start_s - 1e-12:
            raise ConfigurationError("interval must not end before it starts")


def compose_phases(
    intervals: list[Interval] | tuple[Interval, ...],
    max_cores: int | None = None,
) -> list[Phase]:
    """Overlay absolute-time intervals into a sequential :class:`Phase` list.

    The timeline is cut at every interval boundary; within each elementary
    segment the covering intervals are combined by summing their core counts
    (clamped to ``max_cores``) and carrying the core-weighted mean activity,
    with the total core·activity load preserved under clamping (activity
    saturates at 1.0).  Gaps between intervals become zero-core idle phases,
    so the composed timeline spans from the earliest start to the latest end
    and its measured runtime equals the overlapped makespan.

    Each emitted phase takes the label of its highest-load interval, which
    keeps labelled accounting meaningful for mostly-disjoint stages.
    """
    ivs = [iv for iv in intervals if iv.end_s - iv.start_s > 1e-12]
    if not ivs:
        return []
    cuts: list[float] = []
    for iv in ivs:
        cuts.append(float(iv.start_s))
        cuts.append(float(iv.end_s))
    cuts.sort()
    # Merge boundaries closer than float noise so no phantom segments appear.
    edges = [cuts[0]]
    for c in cuts[1:]:
        if c - edges[-1] > 1e-12:
            edges.append(c)
    phases: list[Phase] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mid = 0.5 * (lo + hi)
        covering = [iv for iv in ivs if iv.start_s <= mid < iv.end_s]
        if not covering:
            phases.append(Phase(hi - lo, 0, 0.0, "idle"))
            continue
        cores = sum(iv.active_cores for iv in covering)
        load = sum(iv.active_cores * iv.activity for iv in covering)
        if max_cores is not None:
            cores = min(cores, max_cores)
        activity = min(1.0, load / cores) if cores > 0 else 0.0
        label = max(covering, key=lambda iv: iv.active_cores * iv.activity).label
        phases.append(Phase(hi - lo, cores, activity, label))
    return phases


@dataclass(frozen=True)
class EnergyReport:
    """Measured (virtual) runtime, energy, and derived power for a workload."""

    runtime_s: float
    energy_j: float
    zone_energies_j: tuple[float, ...]
    n_samples: int

    @property
    def avg_power_w(self) -> float:
        """Mean node power over the workload."""
        return self.energy_j / self.runtime_s if self.runtime_s > 0 else 0.0

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        """Concatenate two measurement windows (e.g. compress + write)."""
        if len(self.zone_energies_j) != len(other.zone_energies_j):
            # zip() would silently truncate the longer tuple, corrupting the
            # per-zone split; mismatched zone counts mean the reports came
            # from different node configurations and cannot be concatenated.
            raise ConfigurationError(
                "cannot add EnergyReports with different zone counts "
                f"({len(self.zone_energies_j)} vs {len(other.zone_energies_j)})"
            )
        zones = tuple(
            a + b for a, b in zip(self.zone_energies_j, other.zone_energies_j)
        )
        return EnergyReport(
            runtime_s=self.runtime_s + other.runtime_s,
            energy_j=self.energy_j + other.energy_j,
            zone_energies_j=zones,
            n_samples=self.n_samples + other.n_samples,
        )


class EnergyMeter:
    """Plays phases through a simulated RAPL node and reports joules."""

    def __init__(
        self,
        cpu: CPUSpec,
        sample_interval: float = 0.010,
        alpha: float = 0.85,
        freq_ghz: float | None = None,
    ):
        self.cpu = cpu
        self.sample_interval = sample_interval
        self.freq_ghz = freq_ghz
        self.power_model = PowerModel(cpu, alpha=alpha, freq_ghz=freq_ghz)

    def measure(self, phases: list[Phase]) -> EnergyReport:
        """Run the phases on a fresh node and return the energy report."""
        rapl = SimulatedRapl(self.cpu, self.power_model)
        monitor = PapiPowercapMonitor(rapl, sample_interval=self.sample_interval)
        before = rapl.read_uj()
        monitor.start()
        for ph in phases:
            monitor.run_phase(ph.duration_s, ph.active_cores, ph.activity)
        total = monitor.stop()
        after = rapl.read_uj()
        zones = tuple(
            # Per-zone deltas (wrap-aware) for Eq. 6 style reporting.
            rapl.zones[i].delta(before[i], after[i], rapl.zones[i].max_energy_range_uj)
            for i in range(len(rapl.zones))
        )
        return EnergyReport(
            runtime_s=monitor.elapsed,
            energy_j=total,
            zone_energies_j=zones,
            n_samples=len(monitor.samples),
        )

    def measure_compute(
        self, duration_s: float, threads: int, activity: float = 1.0
    ) -> EnergyReport:
        """Single compute phase using ``threads`` cores."""
        return self.measure(
            [Phase(duration_s, min(threads, self.cpu.cores), activity, "compute")]
        )

    #: Upper bound on one wrap-safe measurement window: 100 s at a 500 W
    #: socket is 50 kJ, a 5x margin under the ~262 kJ RAPL wrap range.
    MAX_WINDOW_S = 100.0

    def measure_split(self, phases: list[Phase]) -> EnergyReport:
        """Wrap-safe measurement for arbitrarily long workloads.

        :meth:`measure` reads each zone counter once before and once after
        the window, so a workload depositing more than the RAPL wrap range
        (~262 kJ per zone — about six node-minutes at TDP) would silently
        lose a whole wrap in the single delta.  Application *lifetimes*
        (checkpointed runs spanning hours) need this variant: every phase is
        cut into sub-wrap windows, each measured on its own node, and the
        reports are summed — the same per-segment pattern the multi-node
        campaign's :class:`~repro.cluster.node.NodeModel` uses.
        """
        total: EnergyReport | None = None
        for ph in phases:
            remaining = ph.duration_s
            while remaining > 1e-12:
                d = min(remaining, self.MAX_WINDOW_S)
                rep = self.measure([Phase(d, ph.active_cores, ph.activity, ph.label)])
                total = rep if total is None else total + rep
                remaining -= d
        if total is None:
            return EnergyReport(0.0, 0.0, (0.0,) * self.cpu.sockets, 0)
        return total
