"""Front-end energy meter: run workload phases through RAPL/PAPI, get joules.

:class:`EnergyMeter` is what the experiment drivers use: describe a workload
as :class:`Phase` segments (duration, active cores, CPU activity), and the
meter plays them through a fresh :class:`~repro.energy.rapl.SimulatedRapl`
sampled by a :class:`~repro.energy.papi.PapiPowercapMonitor`, returning an
:class:`EnergyReport` with the discrete-sampled energy the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cpus import CPUSpec
from repro.energy.papi import PapiPowercapMonitor
from repro.energy.power import PowerModel
from repro.energy.rapl import SimulatedRapl

__all__ = ["Phase", "EnergyReport", "EnergyMeter"]


@dataclass(frozen=True)
class Phase:
    """One constant-load workload segment."""

    duration_s: float
    active_cores: int
    activity: float = 1.0
    label: str = ""


@dataclass(frozen=True)
class EnergyReport:
    """Measured (virtual) runtime, energy, and derived power for a workload."""

    runtime_s: float
    energy_j: float
    zone_energies_j: tuple[float, ...]
    n_samples: int

    @property
    def avg_power_w(self) -> float:
        """Mean node power over the workload."""
        return self.energy_j / self.runtime_s if self.runtime_s > 0 else 0.0

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        """Concatenate two measurement windows (e.g. compress + write)."""
        zones = tuple(
            a + b for a, b in zip(self.zone_energies_j, other.zone_energies_j)
        )
        return EnergyReport(
            runtime_s=self.runtime_s + other.runtime_s,
            energy_j=self.energy_j + other.energy_j,
            zone_energies_j=zones,
            n_samples=self.n_samples + other.n_samples,
        )


class EnergyMeter:
    """Plays phases through a simulated RAPL node and reports joules."""

    def __init__(
        self,
        cpu: CPUSpec,
        sample_interval: float = 0.010,
        alpha: float = 0.85,
    ):
        self.cpu = cpu
        self.sample_interval = sample_interval
        self.power_model = PowerModel(cpu, alpha=alpha)

    def measure(self, phases: list[Phase]) -> EnergyReport:
        """Run the phases on a fresh node and return the energy report."""
        rapl = SimulatedRapl(self.cpu, self.power_model)
        monitor = PapiPowercapMonitor(rapl, sample_interval=self.sample_interval)
        before = rapl.read_uj()
        monitor.start()
        for ph in phases:
            monitor.run_phase(ph.duration_s, ph.active_cores, ph.activity)
        total = monitor.stop()
        after = rapl.read_uj()
        zones = tuple(
            # Per-zone deltas (wrap-aware) for Eq. 6 style reporting.
            rapl.zones[i].delta(before[i], after[i], rapl.zones[i].max_energy_range_uj)
            for i in range(len(rapl.zones))
        )
        return EnergyReport(
            runtime_s=monitor.elapsed,
            energy_j=total,
            zone_energies_j=zones,
            n_samples=len(monitor.samples),
        )

    def measure_compute(
        self, duration_s: float, threads: int, activity: float = 1.0
    ) -> EnergyReport:
        """Single compute phase using ``threads`` cores."""
        return self.measure(
            [Phase(duration_s, min(threads, self.cpu.cores), activity, "compute")]
        )
