"""PAPI-powercap-style sampling monitor over the simulated RAPL zones.

Section IV-B: energy is reported as the discrete sum ``E = Σ P(t_i) Δt`` of
sampled power readings.  :class:`PapiPowercapMonitor` reproduces that
measurement loop: it steps the virtual clock in fixed ``sample_interval``
increments across each workload phase, reading the counters at every tick,
so the reported energy inherits the same discretization the paper's numbers
have (the final partial interval is sampled too, as PAPI's stop() does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.rapl import SimulatedRapl
from repro.errors import ConfigurationError

__all__ = ["PapiPowercapMonitor", "PowerSample"]


@dataclass(frozen=True)
class PowerSample:
    """One sampling tick: virtual time and per-zone counter snapshot."""

    time_s: float
    counters_uj: tuple[int, ...]


@dataclass
class PapiPowercapMonitor:
    """Samples RAPL zones while workload phases advance the virtual clock."""

    rapl: SimulatedRapl
    sample_interval: float = 0.010  # 10 ms, a typical powercap polling rate
    samples: list[PowerSample] = field(default_factory=list)
    _started: bool = False
    _start_counters: tuple[int, ...] | None = None

    def start(self) -> None:
        """Snapshot counters and begin recording samples."""
        if self._started:
            raise ConfigurationError("monitor already started")
        self._started = True
        self._start_counters = tuple(self.rapl.read_uj())
        self.samples = [PowerSample(self.rapl.now, self._start_counters)]

    def run_phase(self, duration: float, active_cores: int, activity: float = 1.0) -> None:
        """Advance one workload phase, sampling at the configured interval."""
        if not self._started:
            raise ConfigurationError("monitor not started")
        if duration < 0:
            raise ConfigurationError("phase duration must be non-negative")
        remaining = duration
        # The 1e-12 floor stops float drift from minting a phantom sample.
        while remaining > 1e-12:
            step = min(self.sample_interval, remaining)
            self.rapl.advance(step, active_cores, activity)
            self.samples.append(PowerSample(self.rapl.now, tuple(self.rapl.read_uj())))
            remaining -= step

    def stop(self) -> float:
        """Stop recording; returns total joules over the window (Eq. 6)."""
        if not self._started or self._start_counters is None:
            raise ConfigurationError("monitor not started")
        self._started = False
        end = tuple(self.rapl.read_uj())
        return self.rapl.total_joules_between(list(self._start_counters), list(end))

    @property
    def elapsed(self) -> float:
        """Seconds covered by the recorded samples."""
        if not self.samples:
            return 0.0
        return self.samples[-1].time_s - self.samples[0].time_s
