"""Simulated RAPL energy counters (Linux powercap layout).

Real RAPL exposes one monotonically increasing microjoule counter per
package zone (``intel-rapl:0``, ``intel-rapl:1``, ...) that wraps at
``max_energy_range_uj``.  The simulation reproduces that contract — counter
semantics, wrap-around, per-zone naming — over a virtual clock: callers
advance time with a power level and read counters exactly as a powercap
client would, which is what the PAPI layer (:mod:`repro.energy.papi`) does.
"""

from __future__ import annotations

from repro.energy.cpus import CPUSpec
from repro.energy.power import PowerModel
from repro.errors import ConfigurationError

__all__ = ["RaplZone", "SimulatedRapl"]

#: powercap's typical wrap range (~262 kJ) — kept so wrap handling is honest.
DEFAULT_MAX_ENERGY_RANGE_UJ = 262_143_328_850


class RaplZone:
    """One package-level energy counter zone."""

    def __init__(self, name: str, max_energy_range_uj: int = DEFAULT_MAX_ENERGY_RANGE_UJ):
        if max_energy_range_uj <= 0:
            raise ConfigurationError("max_energy_range_uj must be positive")
        self.name = name
        self.max_energy_range_uj = int(max_energy_range_uj)
        self._energy_uj = 0

    @property
    def energy_uj(self) -> int:
        """Current counter value (wraps like the hardware)."""
        return self._energy_uj

    def deposit(self, joules: float) -> None:
        """Accumulate energy into the counter (internal, from the clock)."""
        if joules < 0:
            raise ConfigurationError("cannot deposit negative energy")
        self._energy_uj = int(
            (self._energy_uj + round(joules * 1e6)) % self.max_energy_range_uj
        )

    @staticmethod
    def delta(before: int, after: int, max_range: int = DEFAULT_MAX_ENERGY_RANGE_UJ) -> float:
        """Wrap-aware counter difference in joules."""
        d = after - before
        if d < 0:
            d += max_range
        return d / 1e6


class SimulatedRapl:
    """A node's RAPL zones plus the virtual clock that drives them.

    Package 0/1/... correspond to CPU sockets; total CPU energy is the sum
    over zones, exactly the paper's Eq. 6 (E_CPU = E_P0 + E_P1).
    """

    def __init__(self, cpu: CPUSpec, power_model: PowerModel | None = None):
        self.cpu = cpu
        self.power = power_model or PowerModel(cpu)
        self.zones = [RaplZone(f"intel-rapl:{p}") for p in range(cpu.sockets)]
        self._now = 0.0

    @property
    def now(self) -> float:
        """Virtual time in seconds."""
        return self._now

    def advance(self, dt: float, active_cores: int, activity: float = 1.0) -> None:
        """Advance the clock ``dt`` seconds with a constant load level."""
        if dt < 0:
            raise ConfigurationError("cannot advance time backwards")
        for p, zone in enumerate(self.zones):
            watts = self.power.package_power(p, active_cores, activity)
            zone.deposit(watts * dt)
        self._now += dt

    def read_uj(self) -> list[int]:
        """Read every zone counter (the powercap client view)."""
        return [z.energy_uj for z in self.zones]

    def total_joules_between(self, before: list[int], after: list[int]) -> float:
        """Sum wrap-aware per-zone deltas — Eq. 6 over a measurement window."""
        if len(before) != len(self.zones) or len(after) != len(self.zones):
            raise ConfigurationError("counter snapshot length mismatch")
        return sum(
            RaplZone.delta(b, a, z.max_energy_range_uj)
            for b, a, z in zip(before, after, self.zones)
        )
