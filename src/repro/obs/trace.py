"""Spans in two clock domains, and the process-wide active tracer.

A :class:`Span` is one named interval on one named *track*.  Spans come in
two clock domains:

``wall``
    Real execution time.  ``t0``/``t1`` are seconds since the tracer's
    epoch (``time.perf_counter`` at activation), recorded by the
    :meth:`Tracer.span` context manager around real work — an engine
    attempt, a store read, a codec ``_compress_impl`` call.

``virtual``
    Simulated time.  ``t0``/``t1`` are *simulator seconds* supplied
    explicitly via :meth:`Tracer.add_span` — a tenant's queued interval,
    a lifecycle checkpoint segment, a pipeline chunk's PFS write.  They
    are emitted after the fact from converged timelines, so tracing can
    never perturb the simulation it describes.

The two domains never share a timeline; exporters keep them on separate
tracks (separate Perfetto processes) so a 9-second simulated makespan is
not drawn inside a 40-millisecond real run.

Zero overhead when disabled is a hard contract: instrumentation sites
guard on :func:`active_tracer` returning ``None`` (one module-global load
and one branch).  Tracing must also never change behaviour —
span payloads carry copies of values, never participate in cache keys,
and wall-clock fields stay out of every deterministic artifact.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "activate",
    "tracing",
]

_CLOCKS = ("wall", "virtual")


@dataclass(frozen=True)
class Span:
    """One named interval on one track, in one clock domain.

    ``t0``/``t1`` are seconds — since the tracer epoch for ``clock="wall"``,
    simulator time for ``clock="virtual"``.  ``args`` is a JSON-safe dict of
    annotations (codec name, byte counts, energies); it is payload for
    humans and exporters only and never feeds back into any computation.
    """

    name: str
    clock: str
    track: str
    t0: float
    t1: float
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects spans and instants; owns a :class:`MetricsRegistry`.

    Thread-safe: engine thread pools and concurrent store readers append
    spans under one lock.  The tracer is deliberately *not* picklable —
    process-pool workers run untraced and the parent records their
    submit→completion wall spans instead.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._epoch = time.perf_counter()
        self.metrics = MetricsRegistry()

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Wall seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -- recording -----------------------------------------------------------

    def add_span(self, name: str, track: str, t0: float, t1: float,
                 clock: str = "virtual", **args) -> Span:
        """Record a finished interval (the virtual-time entry point)."""
        if clock not in _CLOCKS:
            raise ValueError(f"unknown clock {clock!r}; expected one of {_CLOCKS}")
        span = Span(name=name, clock=clock, track=track,
                    t0=float(t0), t1=float(t1), args=args)
        with self._lock:
            self._spans.append(span)
        return span

    def instant(self, name: str, track: str, t: float,
                clock: str = "virtual", **args) -> Span:
        """A zero-duration mark (a scheduler grant, a retry)."""
        return self.add_span(name, track, t, t, clock=clock, **args)

    @contextmanager
    def span(self, name: str, track: str = "main", **args):
        """Wall-clock span around a block of real work.

        Exceptions propagate; the span is still recorded (annotated with
        the error type) so failed attempts show up in the trace.
        """
        t0 = self.now()
        try:
            yield
        except BaseException as exc:
            self.add_span(name, track, t0, self.now(), clock="wall",
                          error=type(exc).__name__, **args)
            raise
        self.add_span(name, track, t0, self.now(), clock="wall", **args)

    # -- inspection ----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Snapshot of all spans recorded so far (insertion order)."""
        with self._lock:
            return list(self._spans)

    def tracks(self, clock: str | None = None) -> list[str]:
        """Distinct track names, in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            if clock is None or span.clock == clock:
                seen.setdefault(span.track, None)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- the process-wide active tracer -------------------------------------------

#: ``None`` means tracing is off; instrumentation sites must check this and
#: do nothing.  A module global (not a contextvar) so the check costs one
#: dict load — and so engine worker threads see the tracer their parent
#: activated without any context plumbing.
_ACTIVE: Tracer | None = None
_ACTIVE_LOCK = threading.Lock()


def active_tracer() -> Tracer | None:
    """The currently-activated tracer, or ``None`` when tracing is off."""
    return _ACTIVE


@contextmanager
def activate(tracer: Tracer):
    """Make ``tracer`` the process-wide active tracer for the block.

    Nested activation is rejected: two live tracers would silently split
    the span stream.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already active in this process")
        _ACTIVE = tracer
    try:
        yield tracer
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = None


@contextmanager
def tracing():
    """Build, activate, and yield a fresh :class:`Tracer`."""
    with activate(Tracer()) as tracer:
        yield tracer
