"""Counters, gauges, and histograms behind one registry.

The registry is the aggregation point the ISSUE's scattered counters flow
through: :class:`~repro.runtime.engine.EngineStats` and
``ResultStore.stats`` merge their snapshots in at run end (cheap, not
hot-path), fault/retry bookkeeping increments counters as it happens, and
benchmark throughputs land as gauges.  Everything is plain Python floats
and ints — ``snapshot()`` is JSON-safe by construction, so the whole
registry serialises into a trace file's metadata block.

Thread-safe: one lock per instrument keeps increments from racing engine
thread pools; the registry lock only guards instrument creation.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (retries, cache hits, failures)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value that can move both ways (MB/s, store entries)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming summary of observations (attempt durations, span lengths).

    Keeps count/sum/min/max/sum-of-squares — enough for mean and standard
    deviation without storing every observation, so a million-point sweep
    costs O(1) memory per instrument.
    """

    __slots__ = ("name", "_count", "_sum", "_sumsq", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._sumsq += value * value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "stddev": None}
            mean = self._sum / self._count
            var = max(0.0, self._sumsq / self._count - mean * mean)
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": mean,
                "stddev": math.sqrt(var),
            }


class MetricsRegistry:
    """Name → instrument, with get-or-create accessors.

    Names are dotted paths (``engine.retries``, ``store.memory_hits``,
    ``bench.huffman_decode.mb_per_s``); :meth:`merge` bulk-imports an
    existing stats dict (``EngineStats.snapshot()``, ``store.stats``)
    under a prefix, creating counters for ints and gauges for floats.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def merge(self, prefix: str, stats: dict) -> None:
        """Import a flat stats dict: ints become counter values, floats gauges.

        Counter semantics here are "set to the larger" rather than add —
        merging the same snapshot twice (e.g. engine stats at each sweep
        end) must not double-count cumulative counters.
        """
        for key, value in stats.items():
            name = f"{prefix}.{key}"
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, int):
                ctr = self.counter(name)
                with ctr._lock:
                    ctr._value = max(ctr._value, value)
            else:
                self.gauge(name).set(value)

    def snapshot(self) -> dict:
        """JSON-safe ``{name: value-or-summary}`` for every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments
