"""Observability: spans, metrics, and Perfetto-ready trace exports.

Public surface::

    from repro.obs import Tracer, tracing, active_tracer
    from repro.obs import MetricsRegistry
    from repro.obs import write_trace, load_trace, summarize

Instrumentation sites across the runtime (engine, store, codecs) and the
simulators (scheduler, lifecycle, pipeline) guard on
:func:`active_tracer` returning ``None`` — tracing is strictly opt-in,
costs nothing when off, and never changes behaviour when on (store keys,
golden fixtures, and simulated timelines stay bit-identical either way).
"""

from repro.obs.bridge import ProgressPrinter, TracerBridge, compose
from repro.obs.export import (
    chrome_trace,
    load_trace,
    span_dict,
    summarize,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer, activate, active_tracer, tracing

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TracerBridge",
    "ProgressPrinter",
    "compose",
    "span_dict",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "load_trace",
    "summarize",
]
