"""Trace exporters: JSONL span log, Chrome trace-event JSON, summary table.

The Chrome export loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: the two clock domains become two Perfetto
*processes* (``pid 1`` = wall, ``pid 2`` = virtual) so simulated seconds
are never drawn on the real-time axis, and each track (a tenant, a node,
a worker, the PFS) becomes a named *thread* within its domain.  Display
timestamps are microseconds (the format's unit) but every event also
carries the exact float seconds in ``args`` (``t0_s``/``t1_s``) — the
display rounding never becomes the artifact of record, which is what lets
the traced-equals-untraced bit-identity tests compare real values.

``write_jsonl`` is the machine-diffable log (one span per line, canonical
field order); ``summarize`` is the human view — per-track totals grouped
by clock domain.  ``load_trace`` reads either format back.
"""

from __future__ import annotations

import io
import json
from collections import defaultdict
from pathlib import Path

from repro.obs.trace import Span, Tracer

__all__ = [
    "span_dict",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "load_trace",
    "summarize",
]

#: Clock domain → Perfetto pid.  Stable small ints so two traces of the
#: same run diff cleanly.
CLOCK_PIDS = {"wall": 1, "virtual": 2}


def span_dict(span: Span) -> dict:
    """JSON-safe dict for one span (the JSONL line payload)."""
    return {
        "name": span.name,
        "clock": span.clock,
        "track": span.track,
        "t0": span.t0,
        "t1": span.t1,
        "args": dict(span.args),
    }


def _span_from_dict(payload: dict) -> Span:
    return Span(
        name=payload["name"],
        clock=payload["clock"],
        track=payload["track"],
        t0=float(payload["t0"]),
        t1=float(payload["t1"]),
        args=dict(payload.get("args") or {}),
    )


def write_jsonl(tracer: Tracer, path) -> int:
    """One span per line, plus a trailing metrics line; returns span count."""
    spans = tracer.spans
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_dict(span), sort_keys=True))
            fh.write("\n")
        fh.write(json.dumps({"__metrics__": tracer.metrics.snapshot()},
                            sort_keys=True))
        fh.write("\n")
    return len(spans)


def chrome_trace(tracer: Tracer) -> dict:
    """The Chrome trace-event document for ``tracer`` (not yet serialised)."""
    events: list[dict] = []
    # Track → tid assignment, per clock domain, in first-appearance order.
    tids: dict[tuple[str, str], int] = {}
    next_tid: dict[str, int] = defaultdict(lambda: 1)
    spans = tracer.spans
    clocks_seen: dict[str, None] = {}
    for span in spans:
        clocks_seen.setdefault(span.clock, None)
        tid = tids.get((span.clock, span.track))
        if tid is None:
            tid = next_tid[span.clock]
            next_tid[span.clock] = tid + 1
            tids[(span.clock, span.track)] = tid
        pid = CLOCK_PIDS[span.clock]
        args = dict(span.args)
        args["t0_s"] = span.t0
        args["t1_s"] = span.t1
        event = {
            "name": span.name,
            "cat": span.clock,
            "pid": pid,
            "tid": tid,
            "ts": span.t0 * 1e6,
            "args": args,
        }
        if span.t1 > span.t0:
            event["ph"] = "X"
            event["dur"] = (span.t1 - span.t0) * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    metadata: list[dict] = []
    for clock in clocks_seen:
        metadata.append({
            "name": "process_name", "ph": "M", "pid": CLOCK_PIDS[clock],
            "tid": 0, "args": {"name": f"{clock} clock"},
        })
    for (clock, track), tid in tids.items():
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": CLOCK_PIDS[clock],
            "tid": tid, "args": {"name": track},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": tracer.metrics.snapshot()},
    }


def write_chrome_trace(tracer: Tracer, path) -> int:
    """Serialise :func:`chrome_trace` to ``path``; returns span count."""
    doc = chrome_trace(tracer)
    Path(path).write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n",
                          encoding="utf-8")
    return len(tracer)


def write_trace(tracer: Tracer, path) -> int:
    """Extension-dispatched export: ``.jsonl`` → span log, else Chrome JSON."""
    if str(path).endswith(".jsonl"):
        return write_jsonl(tracer, path)
    return write_chrome_trace(tracer, path)


def load_trace(path) -> tuple[list[Span], dict]:
    """Read either export format back into ``(spans, metrics)``.

    Chrome metadata events and instants round-trip through the exact
    ``t0_s``/``t1_s`` args, so ``load_trace(write_trace(t))`` reproduces
    the tracer's spans bit-identically in both formats.
    """
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    # A Chrome document is one JSON object spanning the whole file; the
    # JSONL log is one object per line.  Sniff by parsing the first line.
    first_line = stripped.splitlines()[0] if stripped else ""
    is_chrome = False
    if stripped.startswith("{"):
        try:
            first = json.loads(first_line)
            is_chrome = "traceEvents" in first
        except json.JSONDecodeError:
            is_chrome = True  # multi-line document, not a JSONL log
    if is_chrome:
        doc = json.loads(text)
        if "traceEvents" not in doc:
            raise ValueError(f"{path}: not a trace file")
        names: dict[tuple[int, int], str] = {}
        for event in doc["traceEvents"]:
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                names[(event["pid"], event["tid"])] = event["args"]["name"]
        clock_by_pid = {pid: clock for clock, pid in CLOCK_PIDS.items()}
        spans = []
        for event in doc["traceEvents"]:
            if event.get("ph") not in ("X", "i"):
                continue
            args = dict(event.get("args") or {})
            t0 = args.pop("t0_s", event["ts"] / 1e6)
            t1 = args.pop("t1_s", t0 + event.get("dur", 0.0) / 1e6)
            spans.append(Span(
                name=event["name"],
                clock=clock_by_pid.get(event["pid"], "wall"),
                track=names.get((event["pid"], event["tid"]),
                                f"tid:{event['tid']}"),
                t0=float(t0),
                t1=float(t1),
                args=args,
            ))
        metrics = (doc.get("otherData") or {}).get("metrics", {})
        return spans, metrics
    spans = []
    metrics: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        if "__metrics__" in payload:
            metrics = payload["__metrics__"]
            continue
        spans.append(_span_from_dict(payload))
    return spans, metrics


def summarize(spans: list[Span], metrics: dict | None = None) -> str:
    """Human summary: per-clock, per-track span counts and busy time."""
    out = io.StringIO()
    by_clock: dict[str, dict[str, list[Span]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for span in spans:
        by_clock[span.clock][span.track].append(span)
    for clock in sorted(by_clock):
        tracks = by_clock[clock]
        unit = "sim s" if clock == "virtual" else "s"
        print(f"{clock} clock ({sum(len(v) for v in tracks.values())} spans)",
              file=out)
        header = f"  {'track':<28} {'spans':>6} {'busy':>12} {'span range':>24}"
        print(header, file=out)
        print("  " + "-" * (len(header) - 2), file=out)
        for track in tracks:
            track_spans = tracks[track]
            busy = sum(s.duration_s for s in track_spans)
            lo = min(s.t0 for s in track_spans)
            hi = max(s.t1 for s in track_spans)
            print(
                f"  {track:<28} {len(track_spans):>6} {busy:>10.4f} {unit} "
                f"{lo:>10.4f}..{hi:<10.4f}",
                file=out,
            )
        print(file=out)
    if metrics:
        print(f"metrics ({len(metrics)})", file=out)
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, dict):
                mean = value.get("mean")
                shown = (
                    f"count={value.get('count')} mean="
                    f"{mean:.6g}" if mean is not None else f"count={value.get('count')}"
                )
            elif isinstance(value, float):
                shown = f"{value:.6g}"
            else:
                shown = str(value)
            print(f"  {name:<44} {shown}", file=out)
    return out.getvalue()
