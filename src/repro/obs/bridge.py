"""Bridges from the engine's ``on_event`` stream to tracing and terminals.

The :class:`~repro.runtime.engine.SweepEngine` already narrates itself
through :class:`~repro.runtime.engine.SweepEvent`\\ s; nothing consumed
them from the CLI until now.  :class:`TracerBridge` turns the stream into
tracer instants + metrics, :class:`ProgressPrinter` renders the live
one-line counter for ``repro sweep --progress``, and :func:`compose`
fans one ``on_event`` hook out to both.
"""

from __future__ import annotations

import sys

from repro.obs.trace import Tracer

__all__ = ["TracerBridge", "ProgressPrinter", "compose"]


class TracerBridge:
    """An ``on_event`` callable that narrates sweep progress into a tracer.

    Points, retries, and failures become instants on the ``sweep`` wall
    track (the heavyweight attempt spans come from the engine's own
    instrumentation); tallies accumulate as metrics counters, and attempt
    durations feed the ``engine.attempt_s`` histogram.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    def __call__(self, event) -> None:
        metrics = self.tracer.metrics
        t = event.wall_time_s if event.wall_time_s else self.tracer.now()
        if event.kind == "point":
            metrics.counter(
                "sweep.cache_hits" if event.cached else "sweep.computed"
            ).inc()
            if event.attempt_s > 0.0:
                metrics.histogram("engine.attempt_s").observe(event.attempt_s)
            self.tracer.instant(
                f"point[{event.index}]", "sweep", t, clock="wall",
                op=event.op, cached=event.cached,
            )
        elif event.kind == "retry":
            metrics.counter("sweep.retries").inc()
            self.tracer.instant(
                f"retry[{event.index}]", "sweep", t, clock="wall",
                op=event.op, attempt=event.attempt, error=event.error,
            )
        elif event.kind == "failed":
            metrics.counter("sweep.failed").inc()
            self.tracer.instant(
                f"failed[{event.index}]", "sweep", t, clock="wall",
                op=event.op, attempt=event.attempt, error=event.error,
            )
        elif event.kind in ("start", "finish"):
            self.tracer.instant(event.kind, "sweep", t, clock="wall",
                                total=event.total)


class ProgressPrinter:
    """Live single-line sweep progress: done/total plus tallies.

    Writes ``\\r``-rewritten updates to ``stream`` (stderr by default, so
    ``--json`` output on stdout stays machine-parseable) and finishes the
    line on the ``finish`` event.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.cached = 0
        self.retries = 0
        self.failed = 0

    def _render(self, final: bool = False) -> None:
        line = (
            f"sweep {self.done}/{self.total} "
            f"(cached {self.cached}, retries {self.retries}, "
            f"failed {self.failed})"
        )
        end = "\n" if final else ""
        try:
            self.stream.write(f"\r{line:<60}{end}")
            self.stream.flush()
        except (OSError, ValueError):
            pass  # a closed stream must never kill the sweep

    def __call__(self, event) -> None:
        if event.kind == "start":
            self.total = event.total
            self.done = 0
            self._render()
        elif event.kind == "point":
            self.done += 1
            if event.cached:
                self.cached += 1
            self._render()
        elif event.kind == "retry":
            self.retries += 1
            self._render()
        elif event.kind == "failed":
            self.done += 1
            self.failed += 1
            self._render()
        elif event.kind == "finish":
            self._render(final=True)


def compose(*callbacks):
    """One ``on_event`` hook fanning out to several; None entries dropped."""
    active = [cb for cb in callbacks if cb is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def fanout(event):
        for cb in active:
            cb(event)

    return fanout
