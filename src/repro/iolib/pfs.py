"""Lustre-like parallel-file-system model with fair-share contention.

The PFS is modeled at the level that determines the paper's I/O results:

- ``n_osts`` object storage targets, each sustaining ``ost_bw_mbps``;
- files are striped over ``stripe_count`` OSTs, capping a single stream at
  ``stripe_count * ost_bw_mbps``;
- each client node's network link caps it at ``client_bw_mbps``;
- concurrent writers share the aggregate ``n_osts * ost_bw_mbps`` by
  progressive filling (max-min fairness): every active flow gets the same
  share unless its own cap binds — the standard fluid model for shared
  storage backends.

:func:`fair_share_schedule` is an exact event-driven solver for that fluid
model; :class:`PFSModel` packages it with the single-stream cost helpers the
experiment drivers use.  The aggregate saturation is what produces Fig. 12's
jump in uncompressed write energy at 512 cores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError

__all__ = ["PFSModel", "fair_share_schedule"]


def fair_share_schedule(
    arrivals: np.ndarray,
    sizes_bytes: np.ndarray,
    per_flow_cap_mbps: float,
    aggregate_cap_mbps: float,
) -> np.ndarray:
    """Finish times of flows sharing a link, max-min fair.

    Parameters
    ----------
    arrivals, sizes_bytes:
        Per-flow start time (s) and size (bytes).
    per_flow_cap_mbps / aggregate_cap_mbps:
        Individual and shared capacity in MB/s.

    Returns
    -------
    np.ndarray of completion times (s).

    The solver advances between events (arrivals or completions).  Within an
    interval the rate of each active flow is constant:
    ``min(per_flow_cap, aggregate / n_active)`` — with a homogeneous per-flow
    cap, max-min fairness reduces to exactly this.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    sizes = np.asarray(sizes_bytes, dtype=np.float64) / 1e6  # MB
    if arrivals.shape != sizes.shape:
        raise ConfigurationError("arrivals and sizes must align")
    if per_flow_cap_mbps <= 0 or aggregate_cap_mbps <= 0:
        raise ConfigurationError("capacities must be positive")
    n = arrivals.size
    finish = np.full(n, np.inf)
    remaining = sizes.copy()
    order = np.argsort(arrivals, kind="stable")
    next_arrival = 0  # index into `order`
    # The active set is a boolean mask so the per-event work (progress
    # subtraction, minimum remaining, completion harvest) runs as whole-array
    # numpy ops.  This is the cluster hot path: thousands of tenant flows
    # share one solve, and the previous per-flow Python lists made each
    # event O(n) interpreter work plus O(n) `list.remove` calls.  The float
    # arithmetic per flow is unchanged (the same ``x - rate * dt`` per
    # element), so finish times are bit-identical to the scalar solver.
    active = np.zeros(n, dtype=bool)
    n_active = 0
    t = float(arrivals[order[0]]) if n else 0.0

    guard = 0
    while next_arrival < n or n_active:
        guard += 1
        if guard > 10 * n + 100:
            raise SimulationError("fair-share solver failed to converge")
        # Admit all flows that have arrived by t.  Zero-byte flows need no
        # bandwidth: they complete at their arrival instant instead of
        # entering the active set (where each one would force a zero-length
        # solver step and burn guard iterations).
        while next_arrival < n and arrivals[order[next_arrival]] <= t + 1e-12:
            idx = int(order[next_arrival])
            next_arrival += 1
            if remaining[idx] <= 1e-9:
                finish[idx] = float(arrivals[idx])
            else:
                active[idx] = True
                n_active += 1
        if not n_active:
            if next_arrival >= n:
                break
            t = float(arrivals[order[next_arrival]])
            continue
        rate = min(per_flow_cap_mbps, aggregate_cap_mbps / n_active)
        # Time to the next event: earliest completion or next arrival.
        dt_complete = float(remaining[active].min()) / rate
        dt_arrival = (
            float(arrivals[order[next_arrival]]) - t
            if next_arrival < n
            else np.inf
        )
        # A completion that coincides with an arrival is one positive step to
        # the shared event time; the next iteration admits the arrival.  Both
        # candidate steps are strictly positive — active flows have bytes left
        # and pending arrivals are beyond the admission tolerance — so the
        # solver can never stall on a dt == 0 step.
        dt = min(dt_complete, dt_arrival)
        if dt <= 0:
            raise SimulationError("non-positive time step in fair-share solver")
        remaining[active] -= rate * dt
        t += dt
        done = active & (remaining <= 1e-9)
        n_done = int(np.count_nonzero(done))
        if n_done:
            finish[done] = t
            active &= ~done
            n_active -= n_done
    return finish


@dataclass(frozen=True)
class PFSModel:
    """A striped parallel file system shared by all client nodes."""

    n_osts: int = 8
    ost_bw_mbps: float = 500.0
    stripe_count: int = 4
    client_bw_mbps: float = 1000.0
    metadata_latency_s: float = 0.002  # per open/close at the MDS

    def __post_init__(self):
        if self.n_osts < 1 or self.stripe_count < 1:
            raise ConfigurationError("n_osts and stripe_count must be >= 1")
        if self.stripe_count > self.n_osts:
            raise ConfigurationError("stripe_count cannot exceed n_osts")
        if self.ost_bw_mbps <= 0 or self.client_bw_mbps <= 0:
            raise ConfigurationError("bandwidths must be positive")

    @property
    def aggregate_bw_mbps(self) -> float:
        """Backend ceiling shared by all concurrent writers."""
        return self.n_osts * self.ost_bw_mbps

    @property
    def stream_bw_mbps(self) -> float:
        """Best-case bandwidth of one uncontended stream."""
        return min(self.client_bw_mbps, self.stripe_count * self.ost_bw_mbps)

    def single_write_seconds(self, nbytes: int, efficiency: float = 1.0) -> float:
        """Uncontended write time for one file of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        return self.metadata_latency_s + (nbytes / 1e6) / (
            self.stream_bw_mbps * efficiency
        )

    def single_read_seconds(self, nbytes: int, efficiency: float = 1.0) -> float:
        """Uncontended read time (reads skip the write-commit round trips).

        Lustre reads typically sustain ~20 % more per-stream bandwidth than
        writes (no OST commit barrier); the paper's Section VI-A remark that
        compressed reads enjoy the same savings is modeled through this path.
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        return self.metadata_latency_s + (nbytes / 1e6) / (
            1.2 * self.stream_bw_mbps * efficiency
        )

    def concurrent_write_times(
        self,
        sizes_bytes: np.ndarray,
        efficiency: float = 1.0,
        arrivals: np.ndarray | None = None,
    ) -> np.ndarray:
        """Finish times for concurrent writes (fair-share fluid model)."""
        sizes_bytes = np.asarray(sizes_bytes)
        if arrivals is None:
            arrivals = np.zeros(sizes_bytes.shape)
        finish = fair_share_schedule(
            np.asarray(arrivals) + self.metadata_latency_s,
            sizes_bytes,
            per_flow_cap_mbps=self.stream_bw_mbps * efficiency,
            aggregate_cap_mbps=self.aggregate_bw_mbps * efficiency,
        )
        return finish

    def pipelined_write_times(
        self,
        sizes_bytes: np.ndarray,
        arrivals: np.ndarray,
        efficiency: float = 1.0,
    ) -> np.ndarray:
        """Finish times for one client streaming chunks of a single file.

        The chunk flows all originate from the same client writing the same
        striped file, so the *aggregate* cap is the single-stream bandwidth
        (client link or stripe width, whichever binds) — not the backend
        ceiling shared by a whole cluster.  Staggered chunk arrivals model
        the compress stage feeding the write stage; the MDS open is charged
        once, on the first chunk.
        """
        if not 0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        stream = self.stream_bw_mbps * efficiency
        return fair_share_schedule(
            np.asarray(arrivals, dtype=np.float64) + self.metadata_latency_s,
            np.asarray(sizes_bytes, dtype=np.float64),
            per_flow_cap_mbps=stream,
            aggregate_cap_mbps=stream,
        )
