"""I/O stack: container formats (HDF5-like, NetCDF-like) over a PFS model.

Section IV-D writes compressed and uncompressed data with HDF5 and NetCDF to
a Lustre parallel file system.  This subpackage provides:

- real, byte-level container formats with write/read roundtrips
  (:mod:`repro.iolib.hdf5_like`, :mod:`repro.iolib.netcdf_like`) whose
  structural differences (little-endian contiguous layout vs big-endian
  classic layout with full-header rewrites) justify their differing cost
  models;
- a Lustre-like parallel-file-system model (:mod:`repro.iolib.pfs`) with
  OSTs, striping, per-client caps and fair-share aggregate contention;
- the block-pipelined compressed-I/O model (:mod:`repro.iolib.pipeline`):
  chunked compress→write with the transfer of chunk *k* overlapping the
  compression of chunk *k+1*;
- the storage-device catalogue used by the Section-VII extrapolation
  (:mod:`repro.iolib.devices`).
"""

from repro.iolib.base import IOLibrary, WriteCostModel, get_io_library
from repro.iolib.hdf5_like import HDF5Like
from repro.iolib.netcdf_like import NetCDFLike
from repro.iolib.pfs import PFSModel, fair_share_schedule
from repro.iolib.pipeline import (
    PipelineConfig,
    PipelinePlan,
    chunk_array,
    chunk_spans,
    plan_pipelined_write,
)

__all__ = [
    "IOLibrary",
    "WriteCostModel",
    "get_io_library",
    "HDF5Like",
    "NetCDFLike",
    "PFSModel",
    "PipelineConfig",
    "PipelinePlan",
    "chunk_array",
    "chunk_spans",
    "fair_share_schedule",
    "plan_pipelined_write",
]
