"""Storage device catalogue for the Section-VII extrapolation.

The discussion cites McAllister et al. (HotCarbon '24): embodied emissions
are ~80% of total rack emissions for SSD racks and ~41% for HDD racks.  The
catalogue provides capacity/power/embodied-carbon figures for representative
devices so :mod:`repro.core.extrapolation` can translate compression ratios
into device counts and embodied-carbon savings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StorageDevice", "DEVICES", "get_device"]


@dataclass(frozen=True)
class StorageDevice:
    """One storage device model used for capacity planning."""

    name: str
    kind: str  # "hdd" | "ssd"
    capacity_tb: float
    write_bw_mbps: float
    active_power_w: float
    idle_power_w: float
    embodied_kgco2: float  # manufacturing footprint per device
    #: Fraction of a storage rack's lifetime emissions that are embodied
    #: (McAllister et al.: ~0.80 for SSD racks, ~0.41 for HDD racks).
    rack_embodied_fraction: float


DEVICES: dict[str, StorageDevice] = {
    "hdd-18tb": StorageDevice(
        name="hdd-18tb",
        kind="hdd",
        capacity_tb=18.0,
        write_bw_mbps=250.0,
        active_power_w=9.5,
        idle_power_w=5.5,
        embodied_kgco2=30.0,
        rack_embodied_fraction=0.41,
    ),
    "ssd-15tb": StorageDevice(
        name="ssd-15tb",
        kind="ssd",
        capacity_tb=15.36,
        write_bw_mbps=3000.0,
        active_power_w=14.0,
        idle_power_w=5.0,
        embodied_kgco2=160.0,
        rack_embodied_fraction=0.80,
    ),
}


def get_device(name: str) -> StorageDevice:
    """Look up a storage device by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}") from None
