"""NetCDF-classic-like container ("RNC").

Reproduces the format traits that make NetCDF the slower library in the
paper's Fig. 11: the classic CDF layout stores data **big-endian** (an
actual byte-swap pass on x86, visible in our pack/unpack), keeps a single
monolithic header whose growth rewrites the file, and has no opaque type —
compressed streams must be stored as a byte variable with an extra
conversion.  The cost model encodes the measured consequence: roughly 4x the
write energy of HDF5 for large data (paper Section VI-A).

Layout::

    header:  b"RNC\\x02" | u32 n_vars | attrs
    per var: u16 name_len | name | u8 typecode ('f'/'d'/'B')
             u8 ndim | u32 shape... | u64 vsize | data (big-endian)
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import IOModelError
from repro.iolib.base import IOLibrary, WriteCostModel, register_io_library
from repro.iolib.hdf5_like import _pack_attrs, _unpack_attrs

__all__ = ["NetCDFLike"]

_MAGIC = b"RNC\x02"
_DTYPES = {"f": np.float32, "d": np.float64, "B": np.uint8}
_DTYPE_CHARS = {np.dtype(v): k for k, v in _DTYPES.items()}


@register_io_library
class NetCDFLike(IOLibrary):
    """Big-endian classic-layout container; Fig. 11's slower library."""

    name = "netcdf"
    cost = WriteCostModel(
        serialize_mbps=300.0,  # byte-swap + header rewrite + record packing
        bandwidth_efficiency=0.40,  # unaligned records, no collective buffering
        open_latency_s=0.012,
        transfer_activity=0.30,  # conversion work continues during the drain
        chunk_meta_latency_s=0.003,  # every chunk define rewrites the header
    )

    def pack(self, datasets, attrs=None) -> bytes:
        parts = [_MAGIC, struct.pack("<I", len(datasets)), _pack_attrs(attrs or {})]
        for dsname, obj in datasets.items():
            nb = dsname.encode("utf-8")
            parts.append(struct.pack("<H", len(nb)) + nb)
            if isinstance(obj, (bytes, bytearray, memoryview)):
                arr = np.frombuffer(bytes(obj), dtype=np.uint8)
            else:
                arr = np.ascontiguousarray(obj)
            if arr.dtype not in _DTYPE_CHARS:
                raise IOModelError(f"unsupported dtype {arr.dtype} for RNC")
            parts.append(_DTYPE_CHARS[arr.dtype].encode())
            parts.append(struct.pack("<B", arr.ndim))
            parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
            # Classic netCDF stores data big-endian: a real swap on x86.
            data = arr.astype(arr.dtype.newbyteorder(">")).tobytes()
            parts.append(struct.pack("<Q", len(data)))
            parts.append(data)
        return b"".join(parts)

    def unpack(self, blob: bytes):
        if blob[: len(_MAGIC)] != _MAGIC:
            raise IOModelError("not an RNC container (bad magic)")
        off = len(_MAGIC)
        (n_vars,) = struct.unpack_from("<I", blob, off)
        off += 4
        attrs, off = _unpack_attrs(blob, off)
        datasets: dict[str, np.ndarray | bytes] = {}
        for _ in range(n_vars):
            (nlen,) = struct.unpack_from("<H", blob, off)
            off += 2
            dsname = blob[off : off + nlen].decode("utf-8")
            off += nlen
            typecode = chr(blob[off])
            off += 1
            (ndim,) = struct.unpack_from("<B", blob, off)
            off += 1
            shape = struct.unpack_from(f"<{ndim}I", blob, off)
            off += 4 * ndim
            (vsize,) = struct.unpack_from("<Q", blob, off)
            off += 8
            data = blob[off : off + vsize]
            off += vsize
            dtype = np.dtype(_DTYPES[typecode]).newbyteorder(">")
            arr = np.frombuffer(data, dtype=dtype).reshape(shape)
            arr = arr.astype(arr.dtype.newbyteorder("="))
            if typecode == "B":
                datasets[dsname] = arr.tobytes()
            else:
                datasets[dsname] = arr
        return datasets, attrs
