"""Block-pipelined compressed-I/O: chunked compress→write with overlap.

The sequential model (``Testbed.io_point``) treats a write as a monolithic
compress-then-transfer sequence — the whole file is compressed, then the
whole file drains to the PFS.  Real parallel-write pipelines (CEAZ, the
HDF5 deep-integration line of work) instead stream the dataset through in
chunks: while chunk *k* drains to storage, chunk *k+1* is already being
compressed, so the compute and I/O stages overlap and total time drops
toward ``max(compress, write)`` instead of their sum.

This module models that pipeline on top of the existing substrates:

- the dataset is decomposed into leading-axis chunks (:func:`chunk_array`,
  built on :mod:`repro.compressors.blocks`) or, for the fluid model, into
  byte spans (:func:`chunk_spans`);
- the compress+serialize stage runs the chunks back to back on one core;
- each chunk becomes a PFS flow the moment its stage work finishes, solved
  by the fair-share fluid model with staggered arrivals
  (:meth:`~repro.iolib.pfs.PFSModel.pipelined_write_times`);
- the overlapped timeline is expressed as absolute-time
  :class:`~repro.energy.measurement.Interval` segments that
  :func:`~repro.energy.measurement.compose_phases` turns into the stepped
  phase list the RAPL/PAPI energy stack integrates.

With ``overlap=False`` the callers fall back to the exact sequential code
path, byte-identical to the existing figures — the pipeline is additive,
never a recalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.blocks import blockify
from repro.energy.measurement import Interval
from repro.errors import ConfigurationError
from repro.iolib.base import WriteCostModel
from repro.iolib.pfs import PFSModel
from repro.obs.trace import active_tracer

__all__ = [
    "PipelineConfig",
    "PipelinePlan",
    "StageSchedule",
    "chunk_spans",
    "chunk_array",
    "stage_schedule",
    "stage_intervals",
    "plan_pipelined_write",
]


@dataclass(frozen=True)
class PipelineConfig:
    """How a dataset is streamed through the compress→write pipeline."""

    n_chunks: int = 8
    overlap: bool = True

    def __post_init__(self):
        if self.n_chunks < 1:
            raise ConfigurationError("n_chunks must be >= 1")


def chunk_spans(total_nbytes: int, n_chunks: int) -> np.ndarray:
    """Byte sizes of the pipeline chunks (even split, remainder spread).

    Every span is at least one byte, so tiny payloads yield fewer chunks
    than requested rather than empty flows.
    """
    if total_nbytes < 1:
        raise ConfigurationError("total_nbytes must be >= 1")
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    n = min(int(n_chunks), int(total_nbytes))
    base, rem = divmod(int(total_nbytes), n)
    sizes = np.full(n, base, dtype=np.int64)
    sizes[:rem] += 1
    return sizes


def chunk_array(values: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split an array into exactly ``min(n_chunks, len(values))`` chunks.

    When the leading axis divides evenly by the chunk count, the split
    reuses :func:`repro.compressors.blocks.blockify` with a full-rank block
    of shape ``(height, *trailing)`` — one block per chunk; otherwise it
    falls back to ``np.array_split``.  The chunk count is bounded by the
    leading-axis length (rows cannot be split), so it can be smaller than
    what :func:`chunk_spans` models for the same request on a short, wide
    array.  Concatenating the chunks along axis 0 reproduces the input
    exactly (no padding survives).
    """
    values = np.asarray(values)
    if values.ndim == 0:
        raise ConfigurationError("cannot chunk a 0-d array")
    n0 = values.shape[0]
    n = min(max(int(n_chunks), 1), n0) if n0 else 1
    if n0 and n0 % n == 0:
        block = (n0 // n,) + values.shape[1:]
        stacked = blockify(values, block)  # (n, height, *trailing)
        return [np.ascontiguousarray(stacked[i]) for i in range(stacked.shape[0])]
    return [np.ascontiguousarray(c) for c in np.array_split(values, n, axis=0)]


@dataclass(frozen=True)
class StageSchedule:
    """Per-chunk compress+serialize timeline of one pipelined writer.

    The single source of truth for how the compute stage feeds the write
    stage — shared by the single-node plan (:func:`plan_pipelined_write`)
    and the multi-node campaign, so the two paths can never diverge.
    ``arrivals`` includes the per-chunk metadata stagger but not the MDS
    open latency (the PFS solver charges that once).
    """

    sizes: np.ndarray  # chunk output bytes
    t_compress: np.ndarray
    t_serialize: np.ndarray
    stage_start: np.ndarray
    stage_finish: np.ndarray
    arrivals: np.ndarray

    @property
    def n_chunks(self) -> int:
        return int(self.sizes.size)


def stage_schedule(
    out_nbytes: int,
    compress_s: float,
    cost: WriteCostModel,
    cpu_speed: float = 1.0,
    n_chunks: int = 8,
) -> StageSchedule:
    """Solve the compute-stage timeline: chunks back to back on one core.

    ``compress_s`` (the whole-dataset compression time; zero for the
    uncompressed baseline) is spread over the chunks proportionally to
    their bytes, so the stage total is identical to the monolithic model.
    """
    if compress_s < 0:
        raise ConfigurationError("compress_s must be non-negative")
    sizes = chunk_spans(out_nbytes, n_chunks)
    n = sizes.size
    frac = sizes / float(sizes.sum())
    t_compress = compress_s * frac
    t_serialize = np.array(
        [cost.serialize_seconds(int(s), cpu_speed) for s in sizes]
    )
    stage_finish = np.cumsum(t_compress + t_serialize)
    stage_start = stage_finish - (t_compress + t_serialize)
    arrivals = stage_finish + cost.chunk_meta_latency_s * np.arange(n)
    return StageSchedule(
        sizes=sizes,
        t_compress=t_compress,
        t_serialize=t_serialize,
        stage_start=stage_start,
        stage_finish=stage_finish,
        arrivals=arrivals,
    )


def stage_intervals(
    sched: StageSchedule,
    transfer_start: np.ndarray,
    transfer_finish: np.ndarray,
    cores: int = 1,
    transfer_activity: float = 0.1,
) -> list[Interval]:
    """Absolute-time load intervals for one node running ``sched``.

    ``cores`` is the node's concurrent writer count (1 for a single-stream
    pipeline, ranks-per-node for a campaign node); the transfer bounds come
    from whichever PFS solver the caller ran over the flows.
    """
    intervals: list[Interval] = []
    for i in range(sched.n_chunks):
        c0 = float(sched.stage_start[i])
        if sched.t_compress[i] > 0:
            intervals.append(
                Interval(c0, c0 + float(sched.t_compress[i]), cores, 1.0, "compress")
            )
        if sched.t_serialize[i] > 0:
            intervals.append(
                Interval(
                    c0 + float(sched.t_compress[i]),
                    float(sched.stage_finish[i]),
                    cores,
                    1.0,
                    "write",
                )
            )
        intervals.append(
            Interval(
                float(transfer_start[i]),
                float(transfer_finish[i]),
                cores,
                transfer_activity,
                "write",
            )
        )
    return intervals


@dataclass(frozen=True)
class PipelinePlan:
    """The solved timeline of one pipelined write.

    All times are absolute seconds from the start of the compress stage.
    ``intervals`` is the overlapped load timeline ready for
    :func:`~repro.energy.measurement.compose_phases`.
    """

    chunk_bytes: tuple[int, ...]
    compress_start: tuple[float, ...]
    stage_finish: tuple[float, ...]  # compress + serialize done, per chunk
    write_arrival: tuple[float, ...]
    write_finish: tuple[float, ...]
    total_time_s: float  # overlapped makespan incl. the close latency
    compress_time_s: float  # stage busy time: compression alone
    write_time_s: float  # stage busy time: serialize + transfer, as if alone
    intervals: tuple[Interval, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_bytes)

    @property
    def sequential_time_s(self) -> float:
        """What the same work costs with no overlap (stage sum)."""
        return self.compress_time_s + self.write_time_s

    @property
    def overlap_saving_s(self) -> float:
        return self.sequential_time_s - self.total_time_s


def plan_pipelined_write(
    out_nbytes: int,
    compress_s: float,
    pfs: PFSModel,
    cost: WriteCostModel,
    cpu_speed: float = 1.0,
    n_chunks: int = 8,
) -> PipelinePlan:
    """Solve the overlapped compress→serialize→transfer timeline.

    The stage timeline comes from :func:`stage_schedule`; chunk *i*'s flow
    enters the PFS the instant its serialize pass ends (plus the per-chunk
    metadata its library charges), so transfers drain underneath the
    remaining compress work.
    """
    sched = stage_schedule(out_nbytes, compress_s, cost, cpu_speed, n_chunks)
    finish = pfs.pipelined_write_times(
        sched.sizes.astype(np.float64),
        sched.arrivals,
        efficiency=cost.bandwidth_efficiency,
    )
    total = float(finish.max()) + cost.open_latency_s

    write_alone = (
        float(sched.t_serialize.sum())
        + pfs.single_write_seconds(int(sched.sizes.sum()), cost.bandwidth_efficiency)
        + cost.open_latency_s
    )

    intervals = stage_intervals(
        sched,
        sched.arrivals + pfs.metadata_latency_s,
        finish,
        cores=1,
        transfer_activity=cost.transfer_activity,
    )
    # File close/commit tail after the last flow drains.
    intervals.append(
        Interval(float(finish.max()), total, 1, cost.transfer_activity, "write")
    )

    plan = PipelinePlan(
        chunk_bytes=tuple(int(s) for s in sched.sizes),
        compress_start=tuple(float(s) for s in sched.stage_start),
        stage_finish=tuple(float(s) for s in sched.stage_finish),
        write_arrival=tuple(float(a) + pfs.metadata_latency_s for a in sched.arrivals),
        write_finish=tuple(float(f) for f in finish),
        total_time_s=total,
        compress_time_s=float(compress_s),
        write_time_s=write_alone,
        intervals=tuple(intervals),
    )
    tracer = active_tracer()
    if tracer is not None:
        _trace_plan(tracer, plan)
    return plan


def _trace_plan(tracer, plan: PipelinePlan) -> None:
    """Virtual spans for one solved pipeline: stage track + PFS track.

    Two tracks render the overlap the plan exists to win: chunk *k*'s PFS
    drain runs underneath chunk *k+1*'s stage work.
    """
    for i in range(plan.n_chunks):
        tracer.add_span(
            f"stage:chunk{i}", "pipeline:stage",
            plan.compress_start[i], plan.stage_finish[i],
            chunk=i, nbytes=plan.chunk_bytes[i],
        )
        tracer.add_span(
            f"pfs:chunk{i}", "pipeline:pfs",
            plan.write_arrival[i], plan.write_finish[i],
            chunk=i, nbytes=plan.chunk_bytes[i],
        )
    tracer.add_span(
        "pipelined-write", "pipeline:pfs",
        plan.compress_start[0] if plan.n_chunks else 0.0, plan.total_time_s,
        n_chunks=plan.n_chunks, total_time_s=plan.total_time_s,
        overlap_saving_s=plan.overlap_saving_s,
    )
