"""I/O library interface and per-library cost model.

An :class:`IOLibrary` does two things:

1. **Serialize/deserialize for real** — :meth:`IOLibrary.pack` produces the
   container bytes for a dict of named arrays (or opaque compressed
   buffers); :meth:`IOLibrary.unpack` inverts it.  Tests verify bit-exact
   roundtrips.
2. **Carry its cost model** — a :class:`WriteCostModel` describing how fast
   the library serializes (CPU-bound), how efficiently it drives the PFS,
   its per-file metadata latency, and the CPU activity it sustains while
   waiting on the transfer.  The experiment drivers combine this with a
   :class:`~repro.iolib.pfs.PFSModel` and the energy meter.

The calibration encodes the paper's Section VI-A finding that HDF5 is
consistently more energy-efficient than NetCDF (4.3x for HACC at 1e-3 with
SZx): NetCDF's classic format byte-swaps to big-endian on write, drives the
PFS with smaller unaligned records, and touches the header on every define.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import IOModelError

__all__ = ["WriteCostModel", "IOLibrary", "register_io_library", "get_io_library"]


@dataclass(frozen=True)
class WriteCostModel:
    """Cost parameters of one I/O library (calibrated; see module docstring)."""

    serialize_mbps: float  # CPU-side packing throughput per core (speed-1.0 CPU)
    bandwidth_efficiency: float  # fraction of raw PFS stream bandwidth achieved
    open_latency_s: float  # metadata/open/close latency per file
    transfer_activity: float  # CPU activity level while the transfer drains
    #: Metadata touched per *additional* chunk in a pipelined write: ~free
    #: for HDF5 (a new contiguous object header), expensive for NetCDF
    #: classic (every variable define rewrites the monolithic header).
    chunk_meta_latency_s: float = 0.0

    def serialize_seconds(self, nbytes: int, cpu_speed: float) -> float:
        """CPU time to pack ``nbytes`` into the container format."""
        if nbytes < 0:
            raise IOModelError("nbytes must be non-negative")
        return (nbytes / 1e6) / (self.serialize_mbps * cpu_speed)


class IOLibrary:
    """Abstract container format + cost model."""

    name: ClassVar[str] = ""
    cost: ClassVar[WriteCostModel]

    # -- real serialization --------------------------------------------------

    def pack(self, datasets: dict[str, np.ndarray | bytes], attrs: dict | None = None) -> bytes:
        """Serialize named arrays/opaque buffers into container bytes."""
        raise NotImplementedError

    def unpack(self, blob: bytes) -> tuple[dict[str, np.ndarray | bytes], dict]:
        """Parse container bytes back into ``(datasets, attrs)``."""
        raise NotImplementedError

    def write_file(self, path, datasets, attrs=None) -> int:
        """Pack and write to ``path``; returns bytes written."""
        blob = self.pack(datasets, attrs)
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    def read_file(self, path):
        """Read and unpack a file written by :meth:`write_file`."""
        with open(path, "rb") as fh:
            return self.unpack(fh.read())

    # -- chunked (pipelined) serialization ------------------------------------

    def pack_chunked(
        self, name: str, values: np.ndarray, n_chunks: int, attrs: dict | None = None
    ) -> bytes:
        """Serialize one array as leading-axis chunks, each its own object.

        This is the container layout a block-pipelined writer produces: chunk
        ``i`` lands as dataset ``{name}/{i:05d}`` the moment its compress
        stage finishes, instead of one monolithic object at the end.  The
        chunk decomposition comes from :func:`repro.iolib.pipeline.chunk_array`.
        """
        from repro.iolib.pipeline import chunk_array

        chunks = chunk_array(values, n_chunks)
        datasets = {f"{name}/{i:05d}": chunk for i, chunk in enumerate(chunks)}
        meta = dict(attrs or {})
        meta["__chunked__"] = name
        meta["__n_chunks__"] = str(len(chunks))
        return self.pack(datasets, meta)

    def unpack_chunked(self, blob: bytes):
        """Inverse of :meth:`pack_chunked`: reassemble along the leading axis."""
        datasets, attrs = self.unpack(blob)
        name = attrs.pop("__chunked__", None)
        if name is None:
            raise IOModelError("container was not written by pack_chunked")
        try:
            n_chunks = int(attrs.pop("__n_chunks__"))
            parts = [datasets[f"{name}/{i:05d}"] for i in range(n_chunks)]
        except (KeyError, ValueError) as exc:
            raise IOModelError(
                f"malformed chunked container for {name!r}: {exc}"
            ) from exc
        return name, np.concatenate(parts, axis=0), attrs

    def write_chunked(self, path, name: str, values, n_chunks: int, attrs=None) -> int:
        """Pack chunked and write to ``path``; returns bytes written."""
        blob = self.pack_chunked(name, np.asarray(values), n_chunks, attrs)
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    def read_chunked(self, path):
        """Read and reassemble a file written by :meth:`write_chunked`."""
        with open(path, "rb") as fh:
            return self.unpack_chunked(fh.read())


_REGISTRY: dict[str, type[IOLibrary]] = {}


def register_io_library(cls: type[IOLibrary]) -> type[IOLibrary]:
    """Class decorator registering an I/O library by name."""
    if not cls.name:
        raise ValueError("IOLibrary subclasses must set a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"I/O library {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_io_library(name: str) -> IOLibrary:
    """Instantiate a registered I/O library (``"hdf5"`` or ``"netcdf"``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown I/O library {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
