"""HDF5-like self-describing container ("RH5").

A compact reproduction of the HDF5 traits that matter for the study: a
superblock, per-object headers carrying name/dtype/shape, contiguous
little-endian data segments (no byte swapping on x86 — the key cost
difference vs NetCDF classic), per-dataset checksums, and support for
opaque byte datasets so compressed streams can be stored as-is.

Layout::

    superblock:  b"\\x89RH5\\r\\n\\x1a\\n" | u8 version | u32 n_objects | attrs
    per object:  u16 name_len | name | u8 kind ('A' array / 'O' opaque)
                 [array: u8 dtype_char | u8 ndim | u64 shape...]
                 u64 data_len | u32 crc32 | data bytes
    attrs:       u32 count | (u16 klen | key | u16 vlen | value-utf8)*
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import IOModelError
from repro.iolib.base import IOLibrary, WriteCostModel, register_io_library

__all__ = ["HDF5Like"]

_MAGIC = b"\x89RH5\r\n\x1a\n"
_DTYPES = {"f": np.float32, "d": np.float64, "i": np.int32, "q": np.int64, "B": np.uint8}
_DTYPE_CHARS = {np.dtype(v): k for k, v in _DTYPES.items()}


def _pack_attrs(attrs: dict) -> bytes:
    parts = [struct.pack("<I", len(attrs))]
    for k, v in attrs.items():
        kb = str(k).encode("utf-8")
        vb = str(v).encode("utf-8")
        parts.append(struct.pack("<H", len(kb)) + kb)
        parts.append(struct.pack("<H", len(vb)) + vb)
    return b"".join(parts)


def _unpack_attrs(blob: bytes, off: int) -> tuple[dict, int]:
    (count,) = struct.unpack_from("<I", blob, off)
    off += 4
    attrs = {}
    for _ in range(count):
        (klen,) = struct.unpack_from("<H", blob, off)
        off += 2
        key = blob[off : off + klen].decode("utf-8")
        off += klen
        (vlen,) = struct.unpack_from("<H", blob, off)
        off += 2
        attrs[key] = blob[off : off + vlen].decode("utf-8")
        off += vlen
    return attrs, off


@register_io_library
class HDF5Like(IOLibrary):
    """Little-endian contiguous container; the efficient library of Fig. 11."""

    name = "hdf5"
    cost = WriteCostModel(
        serialize_mbps=2200.0,  # near-memcpy: no byte swapping, aligned blocks
        bandwidth_efficiency=0.95,
        open_latency_s=0.004,
        transfer_activity=0.10,
        chunk_meta_latency_s=0.0002,  # one new object header per chunk
    )

    def pack(self, datasets, attrs=None) -> bytes:
        parts = [_MAGIC, struct.pack("<BI", 1, len(datasets)), _pack_attrs(attrs or {})]
        for dsname, obj in datasets.items():
            nb = dsname.encode("utf-8")
            parts.append(struct.pack("<H", len(nb)) + nb)
            if isinstance(obj, (bytes, bytearray, memoryview)):
                data = bytes(obj)
                parts.append(b"O")
                parts.append(struct.pack("<QI", len(data), zlib.crc32(data)))
                parts.append(data)
            else:
                arr = np.ascontiguousarray(obj)
                if arr.dtype not in _DTYPE_CHARS:
                    raise IOModelError(f"unsupported dtype {arr.dtype} for RH5")
                data = arr.astype(arr.dtype.newbyteorder("<")).tobytes()
                parts.append(b"A")
                parts.append(_DTYPE_CHARS[arr.dtype].encode())
                parts.append(struct.pack("<B", arr.ndim))
                parts.append(struct.pack(f"<{arr.ndim}Q", *arr.shape))
                parts.append(struct.pack("<QI", len(data), zlib.crc32(data)))
                parts.append(data)
        return b"".join(parts)

    def unpack(self, blob: bytes):
        if blob[: len(_MAGIC)] != _MAGIC:
            raise IOModelError("not an RH5 container (bad magic)")
        off = len(_MAGIC)
        version, n_objects = struct.unpack_from("<BI", blob, off)
        off += 5
        if version != 1:
            raise IOModelError(f"unsupported RH5 version {version}")
        attrs, off = _unpack_attrs(blob, off)
        datasets: dict[str, np.ndarray | bytes] = {}
        for _ in range(n_objects):
            (nlen,) = struct.unpack_from("<H", blob, off)
            off += 2
            dsname = blob[off : off + nlen].decode("utf-8")
            off += nlen
            kind = blob[off : off + 1]
            off += 1
            if kind == b"O":
                dlen, crc = struct.unpack_from("<QI", blob, off)
                off += 12
                data = blob[off : off + dlen]
                off += dlen
                if zlib.crc32(data) != crc:
                    raise IOModelError(f"checksum mismatch in object {dsname!r}")
                datasets[dsname] = data
            elif kind == b"A":
                dtype_char = chr(blob[off])
                off += 1
                (ndim,) = struct.unpack_from("<B", blob, off)
                off += 1
                shape = struct.unpack_from(f"<{ndim}Q", blob, off)
                off += 8 * ndim
                dlen, crc = struct.unpack_from("<QI", blob, off)
                off += 12
                data = blob[off : off + dlen]
                off += dlen
                if zlib.crc32(data) != crc:
                    raise IOModelError(f"checksum mismatch in dataset {dsname!r}")
                dtype = np.dtype(_DTYPES[dtype_char]).newbyteorder("<")
                arr = np.frombuffer(data, dtype=dtype).reshape(shape)
                datasets[dsname] = arr.astype(arr.dtype.newbyteorder("="))
            else:
                raise IOModelError(f"unknown object kind {kind!r}")
        return datasets, attrs
