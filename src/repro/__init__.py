"""repro — energy trade-offs of error-bounded lossy compressed I/O.

A from-scratch reproduction of Wilkins et al., *"To Compress or Not To
Compress: Energy Trade-Offs and Benefits of Lossy Compressed I/O"*
(arXiv:2410.23497).  The package provides:

- :mod:`repro.compressors` — SZ2, SZ3, QoZ, ZFP, SZx and the Figure-1
  lossless baselines, all pure NumPy with a guaranteed value-range relative
  error bound;
- :mod:`repro.data` — synthetic SDRBench-like scientific datasets (CESM,
  HACC, NYX, S3D and the Fig. 1 extras) with calibrated compressibility;
- :mod:`repro.metrics` — PSNR, error-bound verification, ratios, and the
  paper's 25-run/95 %-CI statistics protocol;
- :mod:`repro.energy` — the simulated RAPL/PAPI measurement stack, Table-I
  CPU catalogue, and the calibrated throughput/strong-scaling model;
- :mod:`repro.iolib` — HDF5-like and NetCDF-like containers over a
  Lustre-like parallel-file-system model;
- :mod:`repro.cluster` — discrete-event multi-node compress+write campaigns;
- :mod:`repro.workloads` — failure-aware checkpointed application lifetimes
  (per-node MTTF failures, Young/Daly intervals, event-loop lifecycle
  simulation) behind the ``checkpoint`` sweep kind and the Daly advisor;
- :mod:`repro.core` — the Section-III trade-off formulation, the advisor,
  experiment drivers for every figure/table, and facility-scale
  extrapolation;
- :mod:`repro.runtime` — the parallel sweep engine: declarative
  ``SweepSpec`` grids, a content-addressed memoizing ``ResultStore``, and
  serial/thread/process executors behind every figure driver and the
  ``repro sweep`` CLI subcommand.

Quickstart::

    import numpy as np
    from repro import compress, decompress, Testbed

    data = np.random.default_rng(0).random((64, 64, 64), dtype=np.float32)
    buf = compress(data, "sz3", rel_bound=1e-3)
    recon = decompress(buf)
    report = Testbed().measure_compression("sz3", data, rel_bound=1e-3)
    print(buf.ratio, report.energy_j)
"""

from repro._version import __version__
from repro.compressors import (
    CompressedBuffer,
    Compressor,
    available_compressors,
    get_compressor,
)
from repro.compressors import lossless as _lossless  # register lossless codecs

__all__ = [
    "__version__",
    "CompressedBuffer",
    "Compressor",
    "available_compressors",
    "get_compressor",
    "compress",
    "decompress",
    "Testbed",
]


def compress(array, codec: str = "sz3", rel_bound: float = 1e-3, **kwargs):
    """Compress ``array`` with a registered codec under a relative bound.

    ``codec`` is any name from :func:`available_compressors` — the
    error-bounded family (``sz2``, ``sz3``, ``qoz``, ``zfp``, ``szx``) or a
    lossless baseline (``zstd``, ``blosc``, ``fpzip``, ``fpc``, which
    ignore the bound).  ``rel_bound`` is the paper's value-range relative
    error bound ε: every reconstructed element is guaranteed within
    ``ε * (array.max() - array.min())`` of the original.  Extra keyword
    arguments are forwarded to the codec constructor.

    Returns a :class:`CompressedBuffer` whose ``data`` bytes embed codec,
    geometry and bound, so they round-trip through files and
    :func:`decompress` without side-band metadata.  The same codecs/bounds
    can be swept as whole (codec × bound × dataset) grids — see
    :mod:`repro.runtime` and the ``repro sweep`` CLI subcommand.
    """
    return get_compressor(codec, **kwargs).compress(array, rel_bound)


def decompress(buf):
    """Decompress a :class:`CompressedBuffer` (or its raw ``bytes``).

    The codec is read from the stream header, so no flags are needed — this
    mirrors ``repro decompress`` / ``repro inspect`` on the CLI (run
    ``repro --help`` for the full subcommand tour, including ``sweep``).
    Returns the reconstructed :class:`numpy.ndarray` with its original
    shape and dtype; for error-bounded codecs it satisfies the stream's
    recorded relative bound, for lossless codecs it is bit-exact.
    """
    return get_compressor(buf.codec).decompress(buf)


def __getattr__(name):
    # Lazy import: the Testbed pulls in the energy/iolib stacks, which are
    # not needed by users who only want the codecs.
    if name == "Testbed":
        from repro.core.experiments import Testbed

        return Testbed
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
