"""Dataset I/O façade: one compression-spec language for every layer.

Public surface::

    from repro.dataset import Dataset, Variable, write, read, AutoTuner
    from repro.dataset import CompressionSpec, parse_compression

    ds = Dataset.from_catalog(["cesm", "hacc"], scale="tiny")
    write(ds, "out.h5", compression="cesm:lossy,sz3,rel,1e-3;auto")
    back = read("out.h5")

Importing this package also registers the ``dataset`` experiment kind with
the runtime registry (``repro sweep --kind dataset``); see
:mod:`repro.dataset.kind`.  The grammar is documented in
``docs/user-guide/datasets.md``.
"""

from repro.dataset.containers import Dataset, Variable
from repro.dataset.facade import WriteReport, read, write
from repro.dataset.kind import DATASET_KIND, DatasetPoint
from repro.dataset.spec import (
    CompressionMap,
    CompressionSpec,
    parse_compression,
)
from repro.dataset.tuner import AutoTuner, TuningReport, VariableTuning

__all__ = [
    "AutoTuner",
    "CompressionMap",
    "CompressionSpec",
    "DATASET_KIND",
    "Dataset",
    "DatasetPoint",
    "TuningReport",
    "Variable",
    "VariableTuning",
    "WriteReport",
    "parse_compression",
    "read",
    "write",
]
