"""The ``dataset`` experiment kind: the façade as a registry plugin.

One grid point = one (dataset, variable, compression-spec, I/O library,
CPU) cell.  The evaluate entrypoint resolves the spec exactly the way
:func:`repro.dataset.facade.write` would — ``abs`` bounds against the
variable's value range, ``auto`` through the tuner's grid search — and
answers with a :class:`DatasetPoint` combining the real roundtrip quality
with the modeled compress+write cost.  Registering through
:func:`repro.runtime.registry.register` buys the whole runtime for free:
``repro sweep --kind dataset``, engine memoization, the conformance
battery, JSON schema validation, and the CLI table renderer.

Grid identity note: ``auto`` points embed their search grid (codecs,
bounds) in the point kwargs — two auto points with different search spaces
are different experiments and must not share a store key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.spec import (
    CompressionMap,
    CompressionSpec,
    parse_compression,
)
from repro.errors import ConfigurationError
from repro.runtime import registry

__all__ = ["DatasetPoint", "DATASET_KIND"]

#: A dataset sweep with no spec tunes at the paper's headline floor.
DEFAULT_COMPRESSION = "auto,rel,1e-3"


@dataclass(frozen=True)
class DatasetPoint:
    """One façade write, resolved and costed."""

    dataset: str
    variable: str
    compression: str  # requested spec (canonical; may be auto)
    codec: str  # resolved codec
    rel_bound: float  # resolved value-range relative bound; 0.0 = lossless
    io_library: str
    cpu: str
    tuned: bool  # True when an auto spec chose codec/bound
    candidates: int  # grid points the tuner examined (1 for explicit)
    ratio: float
    psnr_db: float
    max_rel_err: float
    bytes_written: int
    write_time_s: float
    write_energy_j: float
    compress_time_s: float
    compress_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.write_energy_j + self.compress_energy_j


def _spec_for_dataset(spec_text: str, dataset: str) -> CompressionSpec:
    parsed = parse_compression(spec_text or DEFAULT_COMPRESSION)
    if isinstance(parsed, CompressionMap):
        return parsed.spec_for(dataset)
    return parsed


def _value_range(testbed, dataset: str) -> float:
    from repro.data.registry import generate
    from repro.metrics.error import value_range

    return value_range(generate(dataset, testbed.scale))


def _expand_dataset(spec) -> list:
    from repro.runtime.spec import GridPoint

    out = []
    for cpu in spec.cpus:
        for lib in spec.io_libraries:
            for ds in spec.datasets:
                cspec = _spec_for_dataset(spec.compression, ds)
                kwargs = dict(
                    dataset=ds,
                    variable=ds,
                    compression=cspec.canonical,
                    io_library=lib,
                    cpu_name=cpu,
                )
                if cspec.is_auto:
                    # The search grid is part of the point's identity.
                    kwargs["codecs"] = spec.codecs
                    kwargs["bounds"] = spec.bounds
                out.append(GridPoint.make("dataset_point", **kwargs))
    return out


def _validate_dataset(spec) -> None:
    parsed = parse_compression(spec.compression or DEFAULT_COMPRESSION)
    parsed.validate()  # unknown codecs fail at spec time, not in a worker


def _evaluate_dataset_point(
    testbed,
    dataset: str,
    variable: str,
    compression: str,
    io_library: str,
    cpu_name: str,
    codecs: tuple[str, ...] = (),
    bounds: tuple[float, ...] = (),
):
    """Resolve one spec against one catalogue variable and cost the write."""
    spec = CompressionSpec.parse(compression)
    tuned = False
    candidates = 1
    if spec.is_auto:
        floor = spec.rel_bound_for(_value_range(testbed, dataset))
        candidate_bounds = tuple(b for b in bounds if b <= floor) or (floor,)
        best = None
        examined = 0
        for codec in codecs:
            for bound in candidate_bounds:
                rt = testbed.roundtrip(dataset, codec, bound)
                io = testbed.io_point(
                    dataset, codec, bound,
                    io_library=io_library, cpu_name=cpu_name,
                )
                examined += 1
                if rt.max_rel_err > floor:
                    continue
                key = (io.total_energy_j, -rt.ratio, codec, bound)
                if best is None or key < best[0]:
                    best = (key, codec, bound)
        if best is None:
            raise ConfigurationError(
                f"dataset point {dataset!r}: no (codec, bound) candidate out "
                f"of {examined} met the auto floor {floor:g} "
                f"(codecs {codecs}, bounds {candidate_bounds})"
            )
        _, codec, rel_bound = best
        tuned = True
        candidates = examined
    else:
        codec = spec.codec
        rel_bound = spec.rel_bound_for(_value_range(testbed, dataset))
    rt = testbed.roundtrip(dataset, codec, rel_bound)
    io = testbed.io_point(
        dataset, codec, rel_bound, io_library=io_library, cpu_name=cpu_name
    )
    return DatasetPoint(
        dataset=dataset,
        variable=variable,
        compression=compression,
        codec=codec,
        rel_bound=rel_bound,
        io_library=io_library,
        cpu=cpu_name,
        tuned=tuned,
        candidates=candidates,
        ratio=rt.ratio,
        psnr_db=rt.psnr_db,
        max_rel_err=rt.max_rel_err,
        bytes_written=io.bytes_written,
        write_time_s=io.write_time_s,
        write_energy_j=io.write_energy_j,
        compress_time_s=io.compress_time_s,
        compress_energy_j=io.compress_energy_j,
    )


def _table_dataset(records) -> str:
    from repro.core.report import format_table, si

    rows = [
        [
            r.dataset,
            r.compression,
            r.codec,
            f"{r.rel_bound:.0e}" if r.rel_bound else "lossless",
            "yes" if r.tuned else "-",
            f"{r.ratio:.2f}",
            "inf" if r.psnr_db == float("inf") else f"{r.psnr_db:.1f}",
            si(r.bytes_written, "B"),
            f"{r.total_energy_j:.1f}",
        ]
        for r in records
    ]
    return format_table(
        ["dataset", "spec", "codec", "REL", "tuned", "ratio", "PSNR [dB]",
         "written", "E [J]"],
        rows,
        title="dataset facade points (resolved specs)",
    )


def _invariants_dataset(records) -> list:
    errors = []
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if min(rec["write_time_s"], rec["compress_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if min(rec["write_energy_j"], rec["compress_energy_j"]) < 0:
            errors.append(f"{where}: negative energy")
        if rec["ratio"] <= 0:
            errors.append(f"{where}: ratio must be positive")
        if rec["candidates"] < 1:
            errors.append(f"{where}: candidates must be >= 1")
        if rec["tuned"] and rec["candidates"] < 1:
            errors.append(f"{where}: tuned point examined no candidates")
        # An auto point's resolved quality must honour its requested floor
        # (non-finite max_rel_err arrives as a repr string; skip those).
        spec = CompressionSpec.parse(rec["compression"])
        if (
            spec.is_auto
            and spec.bound_mode == "rel"
            and isinstance(rec["max_rel_err"], (int, float))
            and rec["max_rel_err"] > spec.bound
        ):
            errors.append(
                f"{where}: max_rel_err {rec['max_rel_err']} exceeds the "
                f"auto floor {spec.bound}"
            )
    return errors


DATASET_KIND = registry.register(
    registry.ExperimentKind(
        name="dataset",
        help="per-variable compression-spec resolution through the facade "
        "(auto-tuned codec+bound, costed write)",
        record="DatasetPoint",
        load_record=lambda: DatasetPoint,
        expand=_expand_dataset,
        ops=("dataset_point",),
        spec_fields=("datasets", "codecs", "bounds", "cpus", "io_libraries",
                     "compression"),
        validate=_validate_dataset,
        evaluate={"dataset_point": _evaluate_dataset_point},
        table=_table_dataset,
        invariants=_invariants_dataset,
        conformance=dict(
            datasets=("cesm",),
            codecs=("szx", "sz3"),
            bounds=(1e-3, 1e-2),
            io_libraries=("hdf5",),
            cpus=("max9480",),
            compression="auto,rel,1e-2",
        ),
    )
)
