"""The ``auto`` resolver: cheapest codec+bound meeting a quality floor.

An ``auto`` spec (``"auto,rel,1e-3"``) names *what quality* a variable must
keep, not *how* to achieve it.  :class:`AutoTuner` resolves it by searching
the same (codec, bound) grid the paper's sweeps cover: every candidate at
or under the floor is scored by its modeled compress+write energy on the
testbed, and the cheapest feasible one wins.  Catalogue-backed variables
answer from the testbed's memoized roundtrip/io paths (so a tune after a
sweep is nearly free); ad-hoc arrays are compressed for real.

The result is a :class:`TuningReport` of per-variable
:class:`VariableTuning` entries — each carrying the resolved concrete spec
string the façade then writes with, the measured quality, and the
candidate count, so a tune is auditable rather than a black box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.containers import Dataset, Variable
from repro.dataset.spec import (
    CompressionMap,
    CompressionSpec,
    parse_compression,
)
from repro.errors import CompressionError, ConfigurationError
from repro.metrics.error import max_rel_error, value_range

__all__ = ["AutoTuner", "TuningReport", "VariableTuning"]

#: The paper's EBLC grid — the search space of an ``auto`` spec.
DEFAULT_CODECS = ("sz2", "sz3", "zfp", "qoz", "szx")
DEFAULT_BOUNDS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


@dataclass(frozen=True)
class VariableTuning:
    """How one variable's requested spec resolved to a concrete codec."""

    variable: str
    requested: str  # canonical requested spec (may be auto)
    resolved: str  # canonical concrete spec (never auto)
    codec: str
    rel_bound: float  # value-range relative; 0.0 for lossless
    floor: float | None  # the auto quality floor, None for explicit specs
    max_rel_err: float
    ratio: float
    cost_energy_j: float  # modeled compress(+write) energy used for ranking
    candidates: int  # grid points examined

    @property
    def meets_floor(self) -> bool:
        return self.floor is None or self.max_rel_err <= self.floor


@dataclass(frozen=True)
class TuningReport:
    """Per-variable tuning outcomes, in dataset variable order."""

    entries: tuple[VariableTuning, ...]

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def for_variable(self, name: str) -> VariableTuning:
        for entry in self.entries:
            if entry.variable == name:
                return entry
        raise KeyError(name)

    @property
    def all_meet_floor(self) -> bool:
        return all(entry.meets_floor for entry in self.entries)


def _resolved_string(codec: str, rel_bound: float) -> str:
    if rel_bound == 0.0:
        return CompressionSpec(mode="lossless", codec=codec).canonical
    return CompressionSpec(
        mode="lossy", codec=codec, bound_mode="rel", bound=rel_bound
    ).canonical


class AutoTuner:
    """Search the sweep grid for the cheapest spec meeting each floor."""

    def __init__(
        self,
        testbed=None,
        codecs: tuple[str, ...] = DEFAULT_CODECS,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
    ):
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed(scale="tiny")
        self.testbed = testbed
        self.codecs = tuple(codecs)
        self.bounds = tuple(bounds)
        self.io_library = io_library
        self.cpu_name = cpu_name

    # -- candidate measurement -------------------------------------------------

    def _measure(self, variable: Variable, codec: str, rel_bound: float):
        """(max_rel_err, ratio, cost_energy_j) for one candidate.

        Catalogue variables go through the testbed's memoized roundtrip and
        io-point paths (grid identity matches the sweep kinds, so a prior
        ``repro sweep`` already paid for them); ad-hoc arrays compress for
        real with modeled compression energy as the cost.
        """
        if variable.source is not None and variable.scale == self.testbed.scale:
            rt = self.testbed.roundtrip(variable.source, codec, rel_bound)
            io = self.testbed.io_point(
                variable.source,
                codec,
                rel_bound,
                io_library=self.io_library,
                cpu_name=self.cpu_name,
            )
            return rt.max_rel_err, rt.ratio, io.total_energy_j
        from repro.compressors import get_compressor

        buf, report = self.testbed.measure_compression(
            codec, variable.data, rel_bound, cpu_name=self.cpu_name
        )
        recon = get_compressor(codec).decompress(buf.data)
        return max_rel_error(variable.data, recon), buf.ratio, report.energy_j

    # -- resolution -------------------------------------------------------------

    def tune_variable(
        self, variable: Variable, spec: CompressionSpec
    ) -> VariableTuning:
        """Resolve one spec for one variable (explicit specs pass through)."""
        spec.validate()
        if spec.mode == "lossless":
            err, ratio, cost = self._measure(variable, spec.codec, 0.0)
            return VariableTuning(
                variable=variable.name,
                requested=spec.canonical,
                resolved=_resolved_string(spec.codec, 0.0),
                codec=spec.codec,
                rel_bound=0.0,
                floor=None,
                max_rel_err=err,
                ratio=ratio,
                cost_energy_j=cost,
                candidates=1,
            )
        if spec.mode == "lossy":
            rel = spec.rel_bound_for(value_range(variable.data))
            err, ratio, cost = self._measure(variable, spec.codec, rel)
            return VariableTuning(
                variable=variable.name,
                requested=spec.canonical,
                resolved=_resolved_string(spec.codec, rel),
                codec=spec.codec,
                rel_bound=rel,
                floor=None,
                max_rel_err=err,
                ratio=ratio,
                cost_energy_j=cost,
                candidates=1,
            )
        # auto: search (codec, bound) candidates at or under the floor.
        floor = spec.rel_bound_for(value_range(variable.data))
        candidate_bounds = tuple(b for b in self.bounds if b <= floor) or (floor,)
        best = None
        examined = 0
        for codec in self.codecs:
            for bound in candidate_bounds:
                try:
                    err, ratio, cost = self._measure(variable, codec, bound)
                except (CompressionError, ConfigurationError):
                    continue  # codec can't take this variable; not a candidate
                examined += 1
                if err > floor:
                    continue
                # Deterministic ranking: cheapest energy, then best ratio,
                # then stable (codec, bound) order.
                key = (cost, -ratio, codec, bound)
                if best is None or key < best[0]:
                    best = (key, codec, bound, err, ratio, cost)
        if best is None:
            raise ConfigurationError(
                f"auto-tuning {variable.name!r}: no (codec, bound) candidate "
                f"out of {examined or len(self.codecs)} met the quality "
                f"floor {floor:g} (codecs {self.codecs}, bounds "
                f"{candidate_bounds})"
            )
        _, codec, bound, err, ratio, cost = best
        return VariableTuning(
            variable=variable.name,
            requested=spec.canonical,
            resolved=_resolved_string(codec, bound),
            codec=codec,
            rel_bound=bound,
            floor=floor,
            max_rel_err=err,
            ratio=ratio,
            cost_energy_j=cost,
            candidates=examined,
        )

    def tune(self, dataset: Dataset, compression) -> TuningReport:
        """Resolve a spec string (or parsed spec/map) for a whole dataset."""
        if isinstance(compression, str):
            compression = parse_compression(compression)
        entries = []
        for variable in dataset:
            if isinstance(compression, CompressionMap):
                spec = compression.spec_for(variable.name)
            else:
                spec = compression
            entries.append(self.tune_variable(variable, spec))
        return TuningReport(entries=tuple(entries))
