"""``repro.dataset.write``/``read``: one call from arrays to container file.

The enstools-style entry point the ROADMAP asks for::

    from repro.dataset import Dataset, write, read

    ds = Dataset.from_catalog(["cesm", "hacc"], scale="tiny")
    report = write(ds, "out.h5", compression="temp:lossy,sz3,abs,1e-3;auto")
    back = read("out.h5")          # bit-exact vs the written reconstructions

``write`` resolves the compression spec per variable (``auto`` through the
:class:`~repro.dataset.tuner.AutoTuner`), compresses each variable with the
self-describing codec streams from :mod:`repro.compressors`, and packs the
opaque streams into a registered I/O container (HDF5-like or NetCDF-like).
``read`` needs no flags: the container magic picks the library, the stream
headers pick the codecs.  Reading back gives exactly the arrays a consumer
of the file would see — for lossless variables the original bits, for lossy
ones the reconstruction the chosen spec guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors import get_compressor
from repro.compressors.base import Compressor
from repro.dataset.containers import Dataset, Variable
from repro.dataset.spec import CompressionMap, parse_compression
from repro.dataset.tuner import AutoTuner, TuningReport
from repro.errors import ConfigurationError, IOModelError
from repro.iolib import get_io_library
from repro.iolib.pipeline import chunk_array

__all__ = ["write", "read", "WriteReport"]

#: Attr-key prefixes in the container (attrs are flat utf-8 string pairs).
_SPEC_PREFIX = "spec/"
_SOURCE_PREFIX = "source/"
_CHUNKS_PREFIX = "chunks/"
_ORDER_ATTR = "__variables__"


@dataclass(frozen=True)
class WriteReport:
    """What one :func:`write` call did, per variable and in total."""

    path: str
    io_library: str
    compression: str  # canonical requested spec/map
    bytes_written: int  # container file size
    original_nbytes: int  # uncompressed payload across variables
    tuning: TuningReport  # per-variable resolution (auto and explicit)

    @property
    def ratio(self) -> float:
        """Whole-file ratio (container overhead included)."""
        return self.original_nbytes / self.bytes_written if self.bytes_written else 0.0


def write(
    dataset: Dataset,
    path,
    compression: str = "auto,rel,1e-3",
    io_library: str = "hdf5",
    n_chunks: int = 1,
    testbed=None,
    tuner: AutoTuner | None = None,
) -> WriteReport:
    """Compress per the spec and write one container file; returns a report.

    ``n_chunks > 1`` stores each variable as leading-axis chunks (the
    block-pipelined container layout), each chunk its own self-describing
    stream; :func:`read` reassembles them transparently.
    """
    if not isinstance(dataset, Dataset):
        raise ConfigurationError(
            f"write() takes a repro.dataset.Dataset, got {type(dataset).__name__}"
        )
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    parsed = parse_compression(compression)
    parsed.validate()
    if tuner is None:
        tuner = AutoTuner(testbed=testbed)
    tuning = tuner.tune(dataset, parsed)

    streams: dict[str, bytes] = {}
    attrs: dict[str, str] = {_ORDER_ATTR: ",".join(dataset.names)}
    for key, value in dataset.attrs.items():
        attrs[f"user/{key}"] = str(value)
    for variable in dataset:
        entry = tuning.for_variable(variable.name)
        comp = get_compressor(entry.codec)
        chunks = (
            chunk_array(variable.data, n_chunks) if n_chunks > 1 else [variable.data]
        )
        if len(chunks) > 1:
            for i, chunk in enumerate(chunks):
                buf = comp.compress(np.ascontiguousarray(chunk), entry.rel_bound)
                streams[f"{variable.name}/{i:05d}"] = buf.data
            attrs[f"{_CHUNKS_PREFIX}{variable.name}"] = str(len(chunks))
        else:
            buf = comp.compress(variable.data, entry.rel_bound)
            streams[variable.name] = buf.data
        attrs[f"{_SPEC_PREFIX}{variable.name}"] = entry.resolved
        if variable.source is not None:
            attrs[f"{_SOURCE_PREFIX}{variable.name}"] = (
                f"{variable.source}:{variable.scale}"
            )
    lib = get_io_library(io_library)
    nbytes = lib.write_file(path, streams, attrs)
    return WriteReport(
        path=str(path),
        io_library=io_library,
        compression=parsed.canonical,
        bytes_written=nbytes,
        original_nbytes=dataset.nbytes,
        tuning=tuning,
    )


def _sniff_library(blob: bytes):
    """Pick the registered I/O library whose magic matches the container."""
    from repro.iolib.base import _REGISTRY

    errors = []
    for name in sorted(_REGISTRY):
        lib = get_io_library(name)
        try:
            return name, lib.unpack(blob)
        except IOModelError as exc:
            errors.append(f"{name}: {exc}")
    raise IOModelError(
        "no registered I/O library recognises this container "
        f"({'; '.join(errors)})"
    )


def read(path, io_library: str | None = None) -> Dataset:
    """Read a container written by :func:`write` back into a Dataset.

    The library is sniffed from the container magic unless named; each
    member stream decompresses through its own self-describing header.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    if io_library is not None:
        name, unpacked = io_library, get_io_library(io_library).unpack(blob)
    else:
        name, unpacked = _sniff_library(blob)
    members, attrs = unpacked

    def _decode(stream) -> np.ndarray:
        if not isinstance(stream, (bytes, bytearray)):
            return np.asarray(stream)  # stored uncompressed
        codec, *_ = Compressor._unpack_header(bytes(stream))
        return get_compressor(codec).decompress(bytes(stream))

    order = [n for n in attrs.get(_ORDER_ATTR, "").split(",") if n]
    if not order:  # tolerate containers from other writers
        order = sorted(
            {key.partition("/")[0] for key in members},
        )
    variables = []
    for var_name in order:
        n_chunks = int(attrs.get(f"{_CHUNKS_PREFIX}{var_name}", "0"))
        if n_chunks:
            parts = [
                _decode(members[f"{var_name}/{i:05d}"]) for i in range(n_chunks)
            ]
            data = np.concatenate(parts, axis=0)
        else:
            data = _decode(members[var_name])
        source, _, scale = attrs.get(f"{_SOURCE_PREFIX}{var_name}", "").partition(":")
        variables.append(
            Variable(
                name=var_name,
                data=data,
                source=source or None,
                scale=scale or None,
            )
        )
    user_attrs = {
        key[len("user/"):]: value
        for key, value in attrs.items()
        if key.startswith("user/")
    }
    user_attrs["io_library"] = name
    for var_name in order:
        spec = attrs.get(f"{_SPEC_PREFIX}{var_name}")
        if spec:
            user_attrs[f"spec/{var_name}"] = spec
    return Dataset(variables=tuple(variables), attrs=user_attrs)
