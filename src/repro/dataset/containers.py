"""In-memory ``Dataset``/``Variable`` containers over the data catalogue.

A :class:`Variable` is one named array plus optional provenance (the
catalogue entry and scale it was generated from); a :class:`Dataset` is an
ordered collection of variables with file-level attributes — the unit the
:mod:`repro.dataset.facade` writes and reads.  Containers are deliberately
thin: they never compress, never touch disk, and hold read-only arrays so a
round-trip comparison is always against the exact written bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Variable", "Dataset"]

_NAME_FORBIDDEN = set(":;,/ \t\n")


@dataclass(frozen=True)
class Variable:
    """One named array, optionally tracing back to a catalogue entry."""

    name: str
    data: np.ndarray
    #: catalogue name (``"cesm"``...) when generated via
    #: :meth:`Dataset.from_catalog` — lets the tuner answer from the
    #: store-memoized sweep grid instead of compressing from scratch.
    source: str | None = None
    #: data scale the source was generated at (``tiny``/``test``/``bench``).
    scale: str | None = None

    def __post_init__(self):
        if not self.name or _NAME_FORBIDDEN & set(self.name):
            raise ConfigurationError(
                f"invalid variable name {self.name!r} (must be non-empty, "
                "without ':;,/' or whitespace — names key per-variable "
                "compression specs and container members)"
            )
        data = np.asarray(self.data)
        if data.dtype.kind != "f":
            raise ConfigurationError(
                f"variable {self.name!r}: expected a float array, got dtype "
                f"{data.dtype}"
            )
        if data.size == 0:
            raise ConfigurationError(f"variable {self.name!r} is empty")
        data = np.ascontiguousarray(data)
        data.setflags(write=False)
        object.__setattr__(self, "data", data)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def ndim(self) -> int:
        return int(self.data.ndim)


@dataclass(frozen=True)
class Dataset:
    """An ordered set of variables plus file-level attributes."""

    variables: tuple[Variable, ...]
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        variables = tuple(self.variables)
        if not variables:
            raise ConfigurationError("a Dataset needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate variable names: {dupes}")
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "attrs", dict(self.attrs))

    @classmethod
    def from_catalog(cls, names, scale: str = "test") -> "Dataset":
        """Build a dataset from catalogue entries (``repro datasets``).

        Each requested name becomes one variable carrying its provenance,
        so ``auto`` specs tune against the memoized sweep grid.
        """
        from repro.data.registry import generate

        if isinstance(names, str):
            names = (names,)
        variables = tuple(
            Variable(name=n, data=generate(n, scale), source=n, scale=scale)
            for n in names
        )
        return cls(variables=variables, attrs={"scale": scale})

    @classmethod
    def from_arrays(cls, arrays: dict, attrs: dict | None = None) -> "Dataset":
        """Wrap plain ``{name: ndarray}`` pairs (ad-hoc user data)."""
        variables = tuple(
            Variable(name=n, data=a) for n, a in arrays.items()
        )
        return cls(variables=variables, attrs=dict(attrs or {}))

    def __iter__(self):
        return iter(self.variables)

    def __len__(self) -> int:
        return len(self.variables)

    def __getitem__(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(v.name == name for v in self.variables)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables)
