"""The compression-spec mini-language: one string every layer understands.

The paper's question — compress or not, and at what bound — is asked *per
variable* of real datasets, but codec/bound configuration used to travel
through the repo as loose ``(codec: str, rel_bound: float)`` pairs.  This
module gives that configuration a first-class value with a stable textual
form (the enstools-style grammar):

=====================  =====================================================
spec                   meaning
=====================  =====================================================
``lossless``           bit-exact storage via the default lossless codec
``lossless,zstd``      bit-exact storage via a named lossless codec
``lossy,sz3,rel,1e-3`` EBLC at a value-range relative bound
``lossy,zfp,abs,0.01`` EBLC at an absolute bound (resolved against the
                       variable's value range at write time)
``auto``               auto-tune codec+bound at the default quality floor
``auto,rel,1e-3``      auto-tune with an explicit quality floor
=====================  =====================================================

Per-variable maps separate entries with ``;`` and prefix each spec with a
variable name and ``:``; an unprefixed entry is the default for unnamed
variables::

    temp:lossy,sz3,abs,1e-3;vel:lossless;auto,rel,1e-3

:meth:`CompressionSpec.parse` / :meth:`CompressionSpec.format` round-trip
exactly, and :attr:`CompressionSpec.canonical` is deterministic — the
canonical string is what experiment grids embed in content-addressed store
keys, so it must never depend on incidental input spelling.

The module is import-light on purpose (``repro.errors`` only at import
time); codec registries and capability tables load lazily inside
``validate`` so :mod:`repro.runtime.spec` can consult this grammar without
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "CompressionSpec",
    "CompressionMap",
    "parse_compression",
    "DEFAULT_LOSSLESS_CODEC",
    "DEFAULT_AUTO_FLOOR",
    "sweep_axes_from_spec",
    "advisor_grid_from_spec",
]

MODES = ("lossless", "lossy", "auto")
BOUND_MODES = ("abs", "rel")

#: ``"lossless"`` with no codec means this codec.
DEFAULT_LOSSLESS_CODEC = "zstd"
#: ``"auto"`` with no floor means this value-range relative quality floor.
DEFAULT_AUTO_FLOOR = 1e-3

_NAME_FORBIDDEN = set(":;, \t\n")


def _parse_bound(text: str, where: str) -> float:
    try:
        bound = float(text)
    except ValueError:
        raise ConfigurationError(
            f"{where}: bound {text!r} is not a number"
        ) from None
    if not bound > 0.0 or bound != bound or bound == float("inf"):
        raise ConfigurationError(
            f"{where}: bound must be a finite positive number, got {text!r}"
        )
    return bound


@dataclass(frozen=True)
class CompressionSpec:
    """One parsed compression spec (a single variable's storage policy).

    ``mode`` is ``"lossless"``/``"lossy"``/``"auto"``; ``codec`` is the
    codec name (``None`` while ``auto`` leaves the choice to the tuner);
    ``bound_mode``/``bound`` carry the error bound (``lossy``) or quality
    floor (``auto``) and are ``None`` for ``lossless``.
    """

    mode: str
    codec: str | None = None
    bound_mode: str | None = None
    bound: float | None = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigurationError(
                f"compression mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.mode == "lossless":
            if not self.codec:
                object.__setattr__(self, "codec", DEFAULT_LOSSLESS_CODEC)
            if self.bound_mode is not None or self.bound is not None:
                raise ConfigurationError("lossless specs carry no error bound")
        else:
            if self.bound_mode is None:
                object.__setattr__(self, "bound_mode", "rel")
            if self.bound_mode not in BOUND_MODES:
                raise ConfigurationError(
                    f"bound mode must be one of {BOUND_MODES}, "
                    f"got {self.bound_mode!r}"
                )
            if self.bound is None:
                if self.mode == "lossy":
                    raise ConfigurationError("lossy specs require a bound")
                object.__setattr__(self, "bound", DEFAULT_AUTO_FLOOR)
            object.__setattr__(self, "bound", float(self.bound))
            if not self.bound > 0.0 or self.bound == float("inf"):
                raise ConfigurationError(
                    f"bound must be a finite positive number, got {self.bound!r}"
                )
            if self.bound_mode == "rel" and self.bound > 1.0:
                raise ConfigurationError(
                    f"a value-range relative bound cannot exceed 1.0, "
                    f"got {self.bound!r}"
                )
            if self.mode == "auto":
                if self.codec is not None:
                    raise ConfigurationError(
                        "auto specs name no codec (the tuner chooses one); "
                        f"got codec {self.codec!r}"
                    )
            elif not self.codec:
                raise ConfigurationError("lossy specs require a codec name")

    # -- parse / format ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "CompressionSpec":
        """Parse one spec string (no per-variable map; see
        :func:`parse_compression` for the full grammar)."""
        parts = [p.strip() for p in str(text).split(",")]
        if not parts or not parts[0]:
            raise ConfigurationError(f"empty compression spec in {text!r}")
        mode = parts[0]
        if mode not in MODES:
            raise ConfigurationError(
                f"compression spec {text!r}: mode must be one of {MODES}, "
                f"got {mode!r}"
            )
        if mode == "lossless":
            if len(parts) == 1:
                return cls(mode="lossless")
            if len(parts) == 2 and parts[1]:
                return cls(mode="lossless", codec=parts[1])
            raise ConfigurationError(
                f"compression spec {text!r}: expected 'lossless' or "
                "'lossless,<codec>'"
            )
        if mode == "lossy":
            if len(parts) != 4 or not all(parts[1:]):
                raise ConfigurationError(
                    f"compression spec {text!r}: expected "
                    "'lossy,<codec>,<abs|rel>,<bound>'"
                )
            return cls(
                mode="lossy",
                codec=parts[1],
                bound_mode=parts[2],
                bound=_parse_bound(parts[3], f"compression spec {text!r}"),
            )
        # auto
        if len(parts) == 1:
            return cls(mode="auto")
        if len(parts) == 3 and all(parts[1:]):
            return cls(
                mode="auto",
                bound_mode=parts[1],
                bound=_parse_bound(parts[2], f"compression spec {text!r}"),
            )
        raise ConfigurationError(
            f"compression spec {text!r}: expected 'auto' or "
            "'auto,<abs|rel>,<floor>'"
        )

    def format(self) -> str:
        """The canonical wire form; ``parse(format(s)) == s`` exactly."""
        if self.mode == "lossless":
            return f"lossless,{self.codec}"
        if self.mode == "lossy":
            return f"lossy,{self.codec},{self.bound_mode},{self.bound!r}"
        return f"auto,{self.bound_mode},{self.bound!r}"

    @property
    def canonical(self) -> str:
        return self.format()

    def __str__(self) -> str:
        return self.format()

    # -- semantics -----------------------------------------------------------

    @property
    def is_lossless(self) -> bool:
        return self.mode == "lossless"

    @property
    def is_auto(self) -> bool:
        return self.mode == "auto"

    def rel_bound_for(self, value_range: float) -> float:
        """The value-range relative bound this spec means for one variable.

        ``abs`` bounds divide by the variable's value range (clamped to the
        codecs' legal ``(0, 1]`` domain); a zero-range (constant) variable
        yields 1.0 — every codec stores constants exactly through the
        constant fast path, so any legal bound is equivalent there.
        """
        if self.mode == "lossless":
            return 0.0
        if self.bound_mode == "rel":
            return float(self.bound)
        if value_range <= 0.0:
            return 1.0
        return float(min(1.0, self.bound / value_range))

    def validate(
        self,
        ndim: int | None = None,
        mode: str = "serial",
        paper_fidelity: bool = False,
    ) -> None:
        """Check the named codec against the live registry — and, when
        ``paper_fidelity`` is set and ``ndim`` given, against the paper's
        reference-toolchain capability matrix, surfacing
        :func:`repro.compressors.capabilities.unsupported_reason` in the
        error instead of letting the sweep fail deep inside evaluate.
        """
        from repro.compressors import available_compressors, get_compressor
        from repro.compressors.capabilities import unsupported_reason

        if self.codec is None:  # auto: the tuner validates its own grid
            return
        if self.codec not in available_compressors():
            raise ConfigurationError(
                f"unknown codec {self.codec!r} in compression spec "
                f"{self.format()!r}; registered: "
                f"{', '.join(available_compressors())}"
            )
        lossless = get_compressor(self.codec).lossless
        if self.mode == "lossless" and not lossless:
            raise ConfigurationError(
                f"compression spec {self.format()!r}: {self.codec!r} is an "
                "error-bounded codec; lossless mode needs a lossless codec "
                f"({', '.join(n for n in available_compressors() if get_compressor(n).lossless)})"
            )
        if self.mode == "lossy" and lossless:
            raise ConfigurationError(
                f"compression spec {self.format()!r}: {self.codec!r} is "
                "lossless and takes no error bound; use "
                f"'lossless,{self.codec}'"
            )
        if paper_fidelity and ndim is not None and self.mode == "lossy":
            reason = unsupported_reason(self.codec, ndim, mode)
            if reason is not None:
                raise ConfigurationError(
                    f"compression spec {self.format()!r} is outside the "
                    f"paper's measurement matrix for {ndim}-D data: {reason}"
                )


@dataclass(frozen=True)
class CompressionMap:
    """A per-variable compression policy: named entries plus a default.

    ``entries`` is sorted by variable name (the canonical order);
    ``default`` applies to variables without an entry and may be ``None``,
    in which case :meth:`spec_for` raises for unnamed variables.
    """

    entries: tuple[tuple[str, CompressionSpec], ...] = ()
    default: CompressionSpec | None = None

    def __post_init__(self):
        names = [n for n, _ in self.entries]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"per-variable compression map names {dupes} more than once"
            )
        for name in names:
            if not name or _NAME_FORBIDDEN & set(name):
                raise ConfigurationError(
                    f"invalid variable name {name!r} in compression map "
                    "(must be non-empty, without ':;,' or whitespace)"
                )
        object.__setattr__(
            self, "entries", tuple(sorted(self.entries, key=lambda e: e[0]))
        )
        if self.default is None and not self.entries:
            raise ConfigurationError("empty compression map")

    def spec_for(self, variable: str) -> CompressionSpec:
        """The spec governing one variable (entry, else the default)."""
        for name, spec in self.entries:
            if name == variable:
                return spec
        if self.default is None:
            raise ConfigurationError(
                f"compression map {self.format()!r} has no entry for "
                f"variable {variable!r} and no default"
            )
        return self.default

    def format(self) -> str:
        """Canonical wire form: default first, then entries sorted by name."""
        parts = []
        if self.default is not None:
            parts.append(self.default.format())
        parts.extend(f"{name}:{spec.format()}" for name, spec in self.entries)
        return ";".join(parts)

    @property
    def canonical(self) -> str:
        return self.format()

    def __str__(self) -> str:
        return self.format()

    def validate(self, **kwargs) -> None:
        """Validate every member spec (see :meth:`CompressionSpec.validate`)."""
        if self.default is not None:
            self.default.validate(**kwargs)
        for _, spec in self.entries:
            spec.validate(**kwargs)


def parse_compression(text: str) -> CompressionSpec | CompressionMap:
    """Parse the full grammar: a single spec, or a ``;``-separated map.

    A lone unprefixed spec parses to :class:`CompressionSpec`; anything with
    a named entry parses to :class:`CompressionMap` (the unprefixed segment,
    if any, becoming the map's default).
    """
    segments = [s.strip() for s in str(text).split(";") if s.strip()]
    if not segments:
        raise ConfigurationError(f"empty compression spec {text!r}")
    default: CompressionSpec | None = None
    entries: list[tuple[str, CompressionSpec]] = []
    for seg in segments:
        if ":" in seg:
            name, _, body = seg.partition(":")
            name = name.strip()
            entries.append((name, CompressionSpec.parse(body)))
        else:
            if default is not None:
                raise ConfigurationError(
                    f"compression spec {text!r} has more than one default "
                    "(unnamed) entry"
                )
            default = CompressionSpec.parse(seg)
    if not entries:
        return default  # a plain single spec
    return CompressionMap(entries=tuple(entries), default=default)


# -- grid derivation ----------------------------------------------------------
#
# The refactor contract: a compression spec never invents new grid-point
# identities.  It only *narrows or filters* the existing codecs/bounds axes,
# so every (op, kwargs) pair a derived sweep emits is one the hand-threaded
# axes could already emit — keeping content-addressed store keys stable.


def sweep_axes_from_spec(spec, kind: str) -> dict:
    """SweepSpec axis overrides derived from one compression spec.

    ``spec`` is a parsed :class:`CompressionSpec` (maps are only legal for
    the ``dataset`` kind, which consumes the string directly); the returned
    dict assigns ``codecs``/``bounds``/``rel_bound``/``lossless_codecs`` for
    the grid kinds.  Raises :class:`ConfigurationError` for combinations
    that have no meaning on a grid (absolute bounds, lossless specs outside
    the ``lossless`` kind).
    """
    if isinstance(spec, CompressionMap):
        raise ConfigurationError(
            f"per-variable compression maps ({spec.format()!r}) only apply "
            "to the 'dataset' kind; grid kinds take a single spec"
        )
    spec.validate()
    if spec.mode == "lossless":
        if kind != "lossless":
            raise ConfigurationError(
                f"compression spec {spec.format()!r}: lossless storage has "
                f"no (codec, bound) grid for kind {kind!r}; use "
                "--kind lossless or the dataset facade"
            )
        return {"codecs": (), "lossless_codecs": (spec.codec,)}
    if spec.bound_mode == "abs":
        raise ConfigurationError(
            f"compression spec {spec.format()!r}: absolute bounds resolve "
            "against a variable's value range and only apply to the "
            "'dataset' kind; grid kinds take 'rel' bounds"
        )
    if spec.mode == "lossy":
        return {
            "codecs": (spec.codec,),
            "bounds": (spec.bound,),
            "rel_bound": spec.bound,
        }
    # auto: keep the codec axis as the search grid, cap the bound axis at
    # the quality floor (a coarser bound can only miss the floor).
    return {"auto_floor": spec.bound}


def advisor_grid_from_spec(
    compression: str, codecs: tuple[str, ...], bounds: tuple[float, ...]
) -> tuple[tuple[str, ...], tuple[float, ...]]:
    """(codecs, bounds) an advisor should search under a compression spec.

    ``lossy`` pins both axes; ``auto`` keeps the caller's codec grid and
    filters the bound grid to the quality floor (keeping the floor itself
    when the grid has nothing at or under it).
    """
    spec = parse_compression(compression)
    if isinstance(spec, CompressionMap):
        raise ConfigurationError(
            f"advisors answer one variable at a time; per-variable map "
            f"{spec.format()!r} does not apply"
        )
    spec.validate()
    if spec.mode == "lossless":
        raise ConfigurationError(
            f"compression spec {spec.format()!r}: advisors search the "
            "error-bounded (codec, bound) space; lossless storage has no "
            "bound axis"
        )
    if spec.bound_mode == "abs":
        raise ConfigurationError(
            f"compression spec {spec.format()!r}: advisors take value-range "
            "relative ('rel') bounds"
        )
    if spec.mode == "lossy":
        return (spec.codec,), (spec.bound,)
    kept = tuple(b for b in bounds if b <= spec.bound)
    return tuple(codecs), kept or (spec.bound,)
