"""ASCII rendering of tables and figure series for the benchmark harness.

Every bench regenerates a paper artifact as text: tables as aligned columns,
figures as per-series (x, y) columns — the "same rows/series the paper
reports" in a form that diffs cleanly and reads in a terminal.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_stacked_bars", "si"]


def si(value: float, unit: str = "", digits: int = 3) -> str:
    """Human-readable engineering notation (1.23 kJ, 45.6 MB, ...)."""
    if value == 0:
        return f"0 {unit}".strip()
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, "")]
    mag = abs(value)
    for scale, prefix in prefixes:
        if mag >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
    return f"{value:.{digits}g} {unit}".strip()


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Aligned fixed-width table with a rule under the header."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    y_format: str = "{:.4g}",
) -> str:
    """A figure as columns: x plus one column per named series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            row.append(y_format.format(series[name][i]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_stacked_bars(
    title: str,
    x_label: str,
    entries: Sequence[tuple],
    lower_label: str = "compress",
    upper_label: str = "decompress",
    width: int = 40,
) -> str:
    """Stacked horizontal bars: entries are (label, lower, upper).

    Mirrors the paper's stacked-bar figures (lighter = lower component,
    darker = upper) with '#' and '=' fills.
    """
    if not entries:
        return title
    peak = max(lo + up for _, lo, up in entries) or 1.0
    lines = [title, f"  [{'#' * 3}] {lower_label}   [{'=' * 3}] {upper_label}"]
    label_w = max(len(str(e[0])) for e in entries)
    for label, lo, up in entries:
        n_lo = int(round(width * lo / peak))
        n_up = int(round(width * up / peak))
        bar = "#" * n_lo + "=" * n_up
        lines.append(
            f"  {str(label).ljust(label_w)} |{bar.ljust(width)}| "
            f"{si(lo + up, 'J')} ({si(lo, 'J')} + {si(up, 'J')})"
        )
    return "\n".join(lines)
