"""Core: the paper's decision framework and the experiment drivers.

- :mod:`repro.core.formulation` — Section III's benefit conditions (Eq. 3-5);
- :mod:`repro.core.tradeoff` — grid evaluation of (codec, bound) choices;
- :mod:`repro.core.advisor` — pick the best codec under a quality floor;
- :mod:`repro.core.experiments` — the Testbed and one driver per
  figure/table of the evaluation;
- :mod:`repro.core.extrapolation` — Section VII facility-scale projections;
- :mod:`repro.core.report` — ASCII rendering of tables and figure series.
"""

from repro.core.formulation import BenefitConditions, CompressionPlan
from repro.core.tradeoff import TradeoffAnalyzer, TradeoffRecord
from repro.core.advisor import (
    Advisor,
    CompressionAdvice,
    DvfsAdvisor,
    Recommendation,
)
from repro.core.experiments import Testbed

__all__ = [
    "BenefitConditions",
    "CompressionPlan",
    "TradeoffAnalyzer",
    "TradeoffRecord",
    "Advisor",
    "CompressionAdvice",
    "DvfsAdvisor",
    "Recommendation",
    "Testbed",
]
