"""Section III formalism: when is lossy compression worth it?

For dataset D, compressor C_j, bound ε and I/O tool I_k the paper declares
compression beneficial iff all three hold simultaneously:

- Eq. 3 (time):    T_c + T_w(D') < T_w(D)
- Eq. 4 (energy):  E_c + E_w(D') < E_w(D)
- Eq. 5 (quality): PSNR(D, D_hat) >= PSNR_min

:class:`BenefitConditions` evaluates the three predicates from measured /
modeled quantities; :class:`CompressionPlan` names a concrete (codec, ε)
choice the advisor can recommend.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressionPlan", "BenefitConditions"]


@dataclass(frozen=True)
class CompressionPlan:
    """A concrete compression decision: which codec at which bound."""

    codec: str
    rel_bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.codec}@{self.rel_bound:.0e}"


@dataclass(frozen=True)
class BenefitConditions:
    """Evaluated Eq. 3-5 for one (dataset, codec, ε, I/O tool) choice.

    All times in seconds, energies in joules, PSNR in dB.  ``write_*_orig``
    refer to writing the uncompressed dataset with the same I/O tool.
    """

    compress_time_s: float
    write_time_compressed_s: float
    write_time_orig_s: float
    compress_energy_j: float
    write_energy_compressed_j: float
    write_energy_orig_j: float
    psnr_db: float
    psnr_min_db: float

    @property
    def time_beneficial(self) -> bool:
        """Eq. 3: compressing then writing beats writing the original."""
        return (
            self.compress_time_s + self.write_time_compressed_s
            < self.write_time_orig_s
        )

    @property
    def energy_beneficial(self) -> bool:
        """Eq. 4: the energy version of Eq. 3."""
        return (
            self.compress_energy_j + self.write_energy_compressed_j
            < self.write_energy_orig_j
        )

    @property
    def io_energy_beneficial(self) -> bool:
        """The weaker condition the paper notes holds almost everywhere:
        E_w(D') <= E_w(D), ignoring the compression cost itself."""
        return self.write_energy_compressed_j <= self.write_energy_orig_j

    @property
    def quality_acceptable(self) -> bool:
        """Eq. 5: reconstruction meets the application's PSNR floor."""
        return self.psnr_db >= self.psnr_min_db

    @property
    def beneficial(self) -> bool:
        """All three conditions simultaneously (the paper's definition)."""
        return self.time_beneficial and self.energy_beneficial and self.quality_acceptable

    @property
    def net_energy_saving_j(self) -> float:
        """Joules saved versus uncompressed I/O (negative = compression lost)."""
        return self.write_energy_orig_j - (
            self.compress_energy_j + self.write_energy_compressed_j
        )

    @property
    def net_time_saving_s(self) -> float:
        """Seconds saved versus uncompressed I/O."""
        return self.write_time_orig_s - (
            self.compress_time_s + self.write_time_compressed_s
        )
