"""Section VII facility-scale extrapolation.

Turns measured ratios and energy reductions into the paper's headline
projections: I/O energy reduction factors, storage-device count reduction,
and embodied-carbon savings (via McAllister et al.'s rack-emission split).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.iolib.devices import StorageDevice, get_device

__all__ = [
    "devices_needed",
    "device_reduction",
    "embodied_carbon_saving_fraction",
    "FacilityProjection",
    "project_facility",
]


def devices_needed(total_bytes: float, device: StorageDevice) -> int:
    """Devices required to hold ``total_bytes`` (ceil to whole devices)."""
    if total_bytes < 0:
        raise ConfigurationError("total_bytes must be non-negative")
    per_device = device.capacity_tb * 1e12
    return max(1, math.ceil(total_bytes / per_device)) if total_bytes > 0 else 0


def device_reduction(compression_ratio: float) -> float:
    """Factor by which device count shrinks under a given ratio."""
    if compression_ratio < 1.0:
        raise ConfigurationError("compression_ratio must be >= 1")
    return compression_ratio


def embodied_carbon_saving_fraction(
    compression_ratio: float, device: StorageDevice
) -> float:
    """Fraction of rack lifetime emissions removed by shrinking capacity.

    Embodied emissions scale with device count (1 - 1/CR saved); the
    device's ``rack_embodied_fraction`` converts that into whole-rack terms.
    The paper's estimate: two orders of magnitude fewer devices cut rack
    embodied carbon by ~70-75 % depending on the SSD/HDD mix.
    """
    if compression_ratio < 1.0:
        raise ConfigurationError("compression_ratio must be >= 1")
    return (1.0 - 1.0 / compression_ratio) * device.rack_embodied_fraction


@dataclass(frozen=True)
class FacilityProjection:
    """Projected annual impact of adopting EBLC at facility scale."""

    daily_output_tb: float
    compression_ratio: float
    io_energy_reduction: float
    device_name: str
    devices_uncompressed: int
    devices_compressed: int
    embodied_carbon_saving: float  # fraction of rack lifetime emissions
    annual_io_energy_saved_j: float


def project_facility(
    daily_output_tb: float,
    compression_ratio: float,
    io_energy_reduction: float,
    write_energy_j_per_tb: float,
    retention_days: int = 365,
    device_name: str = "ssd-15tb",
) -> FacilityProjection:
    """Project a year of operation for a facility adopting EBLC.

    Parameters
    ----------
    daily_output_tb:
        Data produced per day (e.g. tens of TB for a large simulation
        campaign; the SKA example in the introduction reaches 1 EB/day).
    compression_ratio:
        Measured ratio at the chosen (codec, bound).
    io_energy_reduction:
        Measured uncompressed/compressed write-energy factor (Fig. 11/12).
    write_energy_j_per_tb:
        Measured joules to write one TB uncompressed (from the testbed).
    """
    if daily_output_tb <= 0 or write_energy_j_per_tb < 0:
        raise ConfigurationError("invalid facility parameters")
    if io_energy_reduction < 1.0:
        raise ConfigurationError("io_energy_reduction must be >= 1")
    device = get_device(device_name)
    stored_bytes = daily_output_tb * 1e12 * retention_days
    n_uncompressed = devices_needed(stored_bytes, device)
    n_compressed = devices_needed(stored_bytes / compression_ratio, device)
    annual_write_j = daily_output_tb * write_energy_j_per_tb * 365.0
    saved = annual_write_j * (1.0 - 1.0 / io_energy_reduction)
    return FacilityProjection(
        daily_output_tb=daily_output_tb,
        compression_ratio=compression_ratio,
        io_energy_reduction=io_energy_reduction,
        device_name=device_name,
        devices_uncompressed=n_uncompressed,
        devices_compressed=n_compressed,
        embodied_carbon_saving=embodied_carbon_saving_fraction(
            compression_ratio, device
        ),
        annual_io_energy_saved_j=saved,
    )
