"""Grid trade-off analysis: evaluate Eq. 3-5 over (codec, bound) choices.

:class:`TradeoffAnalyzer` runs the testbed over a grid and attaches the
Section-III benefit conditions to every point, versus the uncompressed
baseline through the same I/O library.  This is the machinery behind
Figs. 8/9 (ratio/PSNR vs energy) and behind the advisor's recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiments import Testbed
from repro.core.formulation import BenefitConditions, CompressionPlan

__all__ = ["TradeoffRecord", "TradeoffAnalyzer"]


@dataclass(frozen=True)
class TradeoffRecord:
    """One evaluated grid point."""

    dataset: str
    plan: CompressionPlan
    io_library: str
    cpu: str
    ratio: float
    psnr_db: float
    compress_energy_j: float
    decompress_energy_j: float
    write_energy_j: float
    conditions: BenefitConditions

    @property
    def total_codec_energy_j(self) -> float:
        """Compression + decompression energy (the Figs. 8/9 y-axis)."""
        return self.compress_energy_j + self.decompress_energy_j

    @property
    def pipeline_energy_j(self) -> float:
        """Compress + write energy (the Eq. 4 left-hand side)."""
        return self.compress_energy_j + self.write_energy_j


class TradeoffAnalyzer:
    """Evaluate a grid of compression plans for one dataset."""

    def __init__(
        self,
        testbed: Testbed | None = None,
        cpu_name: str = "max9480",
        io_library: str = "hdf5",
    ):
        self.testbed = testbed or Testbed()
        self.cpu_name = cpu_name
        self.io_library = io_library

    def evaluate(
        self,
        dataset: str,
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        psnr_min_db: float = 60.0,
    ) -> list[TradeoffRecord]:
        """Run the grid; every record carries its Eq. 3-5 verdicts."""
        tb = self.testbed
        baseline = tb.io_point(dataset, None, None, self.io_library, self.cpu_name)
        out = []
        for codec in codecs:
            for eps in bounds:
                sp = tb.serial_point(dataset, codec, eps, self.cpu_name)
                iop = tb.io_point(dataset, codec, eps, self.io_library, self.cpu_name)
                conditions = BenefitConditions(
                    compress_time_s=sp.compress_time_s,
                    write_time_compressed_s=iop.write_time_s,
                    write_time_orig_s=baseline.write_time_s,
                    compress_energy_j=sp.compress_energy_j,
                    write_energy_compressed_j=iop.write_energy_j,
                    write_energy_orig_j=baseline.write_energy_j,
                    psnr_db=sp.roundtrip.psnr_db,
                    psnr_min_db=psnr_min_db,
                )
                out.append(
                    TradeoffRecord(
                        dataset=dataset,
                        plan=CompressionPlan(codec, eps),
                        io_library=self.io_library,
                        cpu=self.cpu_name,
                        ratio=sp.roundtrip.ratio,
                        psnr_db=sp.roundtrip.psnr_db,
                        compress_energy_j=sp.compress_energy_j,
                        decompress_energy_j=sp.decompress_energy_j,
                        write_energy_j=iop.write_energy_j,
                        conditions=conditions,
                    )
                )
        return out
