"""Grid trade-off analysis: evaluate Eq. 3-5 over (codec, bound) choices.

:class:`TradeoffAnalyzer` runs the testbed over a grid and attaches the
Section-III benefit conditions to every point, versus the uncompressed
baseline through the same I/O library.  This is the machinery behind
Figs. 8/9 (ratio/PSNR vs energy) and behind the advisor's recommendation.

The grid itself is evaluated through the :mod:`repro.runtime` sweep engine:
the serial and I/O points (and the uncompressed baseline every record is
judged against) land in the engine's memoizing result store, so re-running
``evaluate`` over a warm store — or asking the advisor about the same grid
twice — performs zero new testbed evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiments import Testbed
from repro.core.formulation import BenefitConditions, CompressionPlan
from repro.runtime.engine import SweepEngine
from repro.runtime.spec import SweepSpec

__all__ = ["TradeoffRecord", "TradeoffAnalyzer"]


@dataclass(frozen=True)
class TradeoffRecord:
    """One evaluated grid point."""

    dataset: str
    plan: CompressionPlan
    io_library: str
    cpu: str
    ratio: float
    psnr_db: float
    compress_energy_j: float
    decompress_energy_j: float
    write_energy_j: float
    conditions: BenefitConditions

    @property
    def total_codec_energy_j(self) -> float:
        """Compression + decompression energy (the Figs. 8/9 y-axis)."""
        return self.compress_energy_j + self.decompress_energy_j

    @property
    def pipeline_energy_j(self) -> float:
        """Compress + write energy (the Eq. 4 left-hand side)."""
        return self.compress_energy_j + self.write_energy_j


class TradeoffAnalyzer:
    """Evaluate a grid of compression plans for one dataset."""

    def __init__(
        self,
        testbed: Testbed | None = None,
        cpu_name: str = "max9480",
        io_library: str = "hdf5",
        engine: SweepEngine | None = None,
    ):
        self.testbed = testbed or Testbed()
        self.cpu_name = cpu_name
        self.io_library = io_library
        # Reuse the testbed's engine (and thus the shared default store)
        # unless the caller wires in their own executor/cache.
        self.engine = engine or self.testbed.engine

    def evaluate(
        self,
        dataset: str,
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        psnr_min_db: float = 60.0,
    ) -> list[TradeoffRecord]:
        """Run the grid; every record carries its Eq. 3-5 verdicts."""
        serial_points = self.engine.run(
            SweepSpec(
                kind="serial",
                datasets=(dataset,),
                codecs=codecs,
                bounds=bounds,
                cpus=(self.cpu_name,),
            )
        )
        io_points = self.engine.run(
            SweepSpec(
                kind="io",
                datasets=(dataset,),
                codecs=codecs,
                bounds=bounds,
                cpus=(self.cpu_name,),
                io_libraries=(self.io_library,),
                include_baseline=True,
            )
        )
        baseline = io_points[0]
        serial_by = {(p.codec, p.rel_bound): p for p in serial_points}
        io_by = {(p.codec, p.rel_bound): p for p in io_points[1:]}
        out = []
        for codec in codecs:
            for eps in bounds:
                sp = serial_by[(codec, float(eps))]
                iop = io_by[(codec, float(eps))]
                conditions = BenefitConditions(
                    compress_time_s=sp.compress_time_s,
                    write_time_compressed_s=iop.write_time_s,
                    write_time_orig_s=baseline.write_time_s,
                    compress_energy_j=sp.compress_energy_j,
                    write_energy_compressed_j=iop.write_energy_j,
                    write_energy_orig_j=baseline.write_energy_j,
                    psnr_db=sp.roundtrip.psnr_db,
                    psnr_min_db=psnr_min_db,
                )
                out.append(
                    TradeoffRecord(
                        dataset=dataset,
                        plan=CompressionPlan(codec, eps),
                        io_library=self.io_library,
                        cpu=self.cpu_name,
                        ratio=sp.roundtrip.ratio,
                        psnr_db=sp.roundtrip.psnr_db,
                        compress_energy_j=sp.compress_energy_j,
                        decompress_energy_j=sp.decompress_energy_j,
                        write_energy_j=iop.write_energy_j,
                        conditions=conditions,
                    )
                )
        return out
