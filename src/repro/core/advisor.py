"""Compression advisors: the paper's "framework for informed decisions".

Two layers answer the title question at different fidelities:

- :class:`Advisor` evaluates the (codec, bound) grid at the nominal clock
  through :class:`~repro.core.tradeoff.TradeoffAnalyzer` and recommends the
  best plan satisfying every Section-III benefit condition.
- :class:`DvfsAdvisor` opens the frequency axis: it searches the full
  (frequency × codec × rel_bound) space per scenario, keeps the quality-
  feasible points, computes the time/energy Pareto frontier, compares
  race-to-idle against slow-and-steady for the winning configuration, and
  emits a :class:`CompressionAdvice` record answering *compress or not, with
  what, at what frequency* — the Ferragina–Tosoni observation that the
  energy-optimal and throughput-optimal operating points diverge, applied to
  compressed I/O.
- :class:`DalyAdvisor` lifts the question to whole-application scale:
  periodic checkpointing under failures, where compression shrinks the
  checkpoint cost, shifts the Young/Daly-optimal interval, and changes the
  expected wasted work — so the compress-or-not verdict can *flip* relative
  to the single-write analysis.  It emits a :class:`CheckpointAdvice`.
- :class:`ClusterAdvisor` lifts it to machine scale: concurrent tenants
  share one PFS, so each tenant's write time depends on what *everyone
  else* writes.  It sweeps every per-tenant compression mix of a scenario
  through the ``cluster`` kind and answers: does everyone compressing
  reduce global contention and machine-wide energy, which mix wins, and
  does contention flip the dedicated-machine verdict?  It emits a
  :class:`ClusterAdvice`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formulation import CompressionPlan
from repro.core.tradeoff import TradeoffAnalyzer, TradeoffRecord
from repro.errors import ConfigurationError

__all__ = [
    "Recommendation",
    "Advisor",
    "CompressionAdvice",
    "DvfsAdvisor",
    "CheckpointAdvice",
    "DalyAdvisor",
    "ClusterAdvice",
    "ClusterAdvisor",
    "pareto_frontier",
]

_OBJECTIVES = ("energy", "ratio", "time")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one dataset."""

    plan: CompressionPlan | None  # None = do not compress
    objective: str
    psnr_min_db: float
    rationale: str
    record: TradeoffRecord | None
    alternatives: tuple[TradeoffRecord, ...]

    @property
    def should_compress(self) -> bool:
        return self.plan is not None


class Advisor:
    """Recommend a (codec, bound) plan, or advise against compression."""

    def __init__(self, analyzer: TradeoffAnalyzer | None = None):
        self.analyzer = analyzer or TradeoffAnalyzer()

    def recommend(
        self,
        dataset: str,
        psnr_min_db: float = 60.0,
        objective: str = "energy",
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        require_time_benefit: bool = True,
        compression: str | None = None,
    ) -> Recommendation:
        """Pick the best plan meeting Eq. 5 (and, optionally, Eq. 3-4).

        ``objective``:

        - ``"energy"`` — minimize compress+write energy (Eq. 4 LHS);
        - ``"ratio"``  — maximize compression ratio (storage-bound sites);
        - ``"time"``   — minimize compress+write time (Eq. 3 LHS).

        ``compression`` (a spec string, see :mod:`repro.dataset.spec`)
        overrides ``codecs``/``bounds``: ``lossy`` pins both, ``auto``
        filters the bound grid to its quality floor.
        """
        if objective not in _OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        if compression:
            from repro.dataset.spec import advisor_grid_from_spec

            codecs, bounds = advisor_grid_from_spec(compression, codecs, bounds)
        records = self.analyzer.evaluate(
            dataset, codecs=codecs, bounds=bounds, psnr_min_db=psnr_min_db
        )
        feasible = [r for r in records if r.conditions.quality_acceptable]
        if require_time_benefit:
            feasible = [
                r
                for r in feasible
                if r.conditions.time_beneficial and r.conditions.energy_beneficial
            ]
        else:
            feasible = [r for r in feasible if r.conditions.energy_beneficial]
        if not feasible:
            return Recommendation(
                plan=None,
                objective=objective,
                psnr_min_db=psnr_min_db,
                rationale=(
                    "No (codec, bound) choice met the quality floor while "
                    "beating uncompressed I/O in energy"
                    + (" and time" if require_time_benefit else "")
                    + "; write the data uncompressed (Eq. 3-5 infeasible)."
                ),
                record=None,
                alternatives=tuple(records),
            )
        if objective == "energy":
            best = min(feasible, key=lambda r: r.pipeline_energy_j)
        elif objective == "time":
            best = min(
                feasible,
                key=lambda r: r.conditions.compress_time_s
                + r.conditions.write_time_compressed_s,
            )
        else:
            best = max(feasible, key=lambda r: r.ratio)
        rationale = (
            f"{best.plan} meets PSNR >= {psnr_min_db:.0f} dB "
            f"({best.psnr_db:.1f} dB) with ratio {best.ratio:.1f}x, saving "
            f"{best.conditions.net_energy_saving_j:.0f} J and "
            f"{best.conditions.net_time_saving_s:.2f} s versus uncompressed "
            f"I/O through {best.io_library} (objective: {objective})."
        )
        others = tuple(r for r in feasible if r is not best)
        return Recommendation(
            plan=best.plan,
            objective=objective,
            psnr_min_db=psnr_min_db,
            rationale=rationale,
            record=best,
            alternatives=others,
        )


# -- the DVFS-aware advisor ---------------------------------------------------


def pareto_frontier(points) -> tuple:
    """Non-dominated subset of DVFS points in (total_time_s, total_energy_j).

    A point survives unless another point is at least as fast *and* at least
    as frugal (and strictly better on one axis).  Returned sorted by time,
    fastest first — walking the tuple trades seconds for joules
    monotonically.
    """
    pts = sorted(points, key=lambda p: (p.total_time_s, p.total_energy_j))
    frontier = []
    best_energy = float("inf")
    for p in pts:
        if p.total_energy_j < best_energy - 1e-12:
            frontier.append(p)
            best_energy = p.total_energy_j
    return tuple(frontier)


@dataclass(frozen=True)
class CompressionAdvice:
    """The DVFS advisor's verdict: compress or not, with what, at what clock.

    ``race_to_idle_energy_j`` / ``slow_and_steady_energy_j`` compare the two
    canonical DVFS policies for the *chosen* (codec, bound) family over a
    common deadline — the family's slowest evaluated configuration.  Race
    runs at ``fmax`` and idles out the window; slow-and-steady occupies the
    window at the slowest clock.  Whichever is cheaper decides
    ``prefer_race_to_idle``.
    """

    dataset: str
    cpu: str
    io_library: str
    psnr_min_db: float
    objective: str  # energy | time | ratio
    compress: bool
    codec: str | None  # None = write uncompressed
    rel_bound: float | None
    freq_ghz: float
    time_s: float
    energy_j: float
    baseline_time_s: float  # uncompressed write at the nominal clock
    baseline_energy_j: float
    energy_saving_j: float
    time_saving_s: float
    race_to_idle_energy_j: float
    slow_and_steady_energy_j: float
    chosen_deadline_energy_j: float  # chosen point padded to the same window
    prefer_race_to_idle: bool
    pareto: tuple  # DvfsPoint frontier, fastest first
    chosen: object  # the winning DvfsPoint
    rationale: str

    @property
    def chosen_beats_both_policies(self) -> bool:
        """True when the (interior) chosen frequency beats both extremes
        under the common deadline — follow the chosen plan, not a policy."""
        return self.chosen_deadline_energy_j < min(
            self.race_to_idle_energy_j, self.slow_and_steady_energy_j
        )


@dataclass(frozen=True)
class CheckpointAdvice:
    """The Daly advisor's verdict: compress checkpoints or not, and whether
    failure-awareness *flips* the single-write answer.

    All energies are closed-form expectations (seed-independent);
    ``chosen``/``candidates`` carry the full
    :class:`~repro.core.experiments.CheckpointPoint` records, whose
    simulated fields realize one concrete failure history.
    ``flip_margin_j`` is the expected-energy gap between the best
    uncompressed and best compressed lifetimes — positive means compression
    wins at checkpoint scale by that many joules per run.
    """

    dataset: str
    cpu: str
    io_library: str
    psnr_min_db: float
    mttf_s: float  # per-node MTTF
    n_nodes: int
    work_s: float
    compress: bool
    codec: str | None
    rel_bound: float | None
    interval_s: float  # chosen configuration's Daly interval
    baseline_interval_s: float  # uncompressed checkpoints' Daly interval
    expected_energy_j: float
    expected_makespan_s: float
    baseline_energy_j: float  # best uncompressed lifetime
    baseline_makespan_s: float
    energy_saving_j: float
    time_saving_s: float
    single_write_compress: bool  # the paper's single-write verdict (Eq. 4)
    flips: bool  # checkpoint scale disagrees with single-write scale
    flip_margin_j: float
    chosen: object  # winning CheckpointPoint
    candidates: tuple  # every quality-feasible CheckpointPoint
    rationale: str


class DalyAdvisor:
    """Failure-aware compress-or-not: search (codec × bound) checkpointed
    lifetimes at a given MTTF and compare against uncompressed checkpoints.

    The decisive quantity is the closed-form expected lifetime energy: a
    smaller checkpoint shrinks both the per-checkpoint cost *and* — through
    the shorter Daly interval — the expected rework per failure, which is
    why compression can be energy-optimal here even when the single-write
    Eq. 4 criterion says it is not.
    """

    def __init__(self, testbed=None, cpu_name: str = "plat8160", io_library: str = "hdf5"):
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed()
        self.testbed = testbed
        self.cpu_name = cpu_name
        self.io_library = io_library

    def advise(
        self,
        dataset: str,
        mttf_s: float = 86400.0,
        n_nodes: int = 16,
        work_s: float = 3600.0,
        psnr_min_db: float = 60.0,
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        interval: str | float = "daly",
        seed: int = 0,
        downtime_s: float = 60.0,
        n_chunks: int = 1,
        overlap: bool = False,
        compression: str | None = None,
    ) -> CheckpointAdvice:
        """Emit a :class:`CheckpointAdvice` for one dataset/CPU/IO scenario.

        ``compression`` overrides ``codecs``/``bounds`` from a spec string
        (see :meth:`Advisor.recommend`).
        """
        if compression:
            from repro.dataset.spec import advisor_grid_from_spec

            codecs, bounds = advisor_grid_from_spec(compression, codecs, bounds)
        points = self.testbed.run_checkpoint_sweep(
            datasets=(dataset,),
            codecs=codecs,
            bounds=bounds,
            mttfs=(mttf_s,),
            io_libraries=(self.io_library,),
            cpu_name=self.cpu_name,
            work_s=work_s,
            interval=interval,
            n_nodes=n_nodes,
            seed=seed,
            downtime_s=downtime_s,
            n_chunks=n_chunks,
            overlap=overlap,
            include_baseline=True,
        )
        baseline = next(p for p in points if p.codec is None)
        feasible = [p for p in points if p.psnr_db >= psnr_min_db]
        chosen = min(
            feasible, key=lambda p: (p.expected_energy_j, p.expected_makespan_s)
        )
        codec_pts = [p for p in feasible if p.codec is not None]
        best_codec = (
            min(codec_pts, key=lambda p: p.expected_energy_j) if codec_pts else None
        )
        flip_margin = (
            baseline.expected_energy_j - best_codec.expected_energy_j
            if best_codec is not None
            else 0.0
        )

        # The single-write verdict on the same grid: does the best
        # quality-feasible codec beat the uncompressed write in energy
        # (Eq. 4) for one write, before failures enter the picture?
        single_write_compress = False
        base_io = self.testbed.engine.evaluate(
            "io_point",
            dataset=dataset,
            codec=None,
            rel_bound=None,
            io_library=self.io_library,
            cpu_name=self.cpu_name,
        )
        for p in codec_pts:
            io = self.testbed.engine.evaluate(
                "io_point",
                dataset=dataset,
                codec=p.codec,
                rel_bound=p.rel_bound,
                io_library=self.io_library,
                cpu_name=self.cpu_name,
            )
            if io.total_energy_j < base_io.total_energy_j:
                single_write_compress = True
                break

        compress = chosen.codec is not None
        flips = compress != single_write_compress
        e_save = baseline.expected_energy_j - chosen.expected_energy_j
        t_save = baseline.expected_makespan_s - chosen.expected_makespan_s
        what = (
            f"{chosen.codec} @ REL {chosen.rel_bound:.0e}"
            if chosen.codec
            else "uncompressed checkpoints"
        )
        if flips:
            flip_note = (
                "failure-awareness FLIPS the single-write verdict "
                f"({'compress' if compress else 'do not compress'} here, "
                f"{'compress' if single_write_compress else 'do not compress'} "
                f"for one write) by {abs(flip_margin):.0f} J per lifetime"
            )
        else:
            flip_note = (
                "the single-write verdict carries over "
                f"(margin {flip_margin:.0f} J per lifetime)"
            )
        rationale = (
            f"{dataset} on {self.cpu_name} via {self.io_library}, "
            f"{n_nodes} node(s) at node MTTF {mttf_s:.0f} s "
            f"({work_s:.0f} s of work): {what} minimizes expected lifetime "
            f"energy ({chosen.expected_energy_j:.0f} J, "
            f"{chosen.expected_makespan_s:.0f} s expected makespan, Daly "
            f"interval {chosen.interval_s:.1f} s vs {baseline.interval_s:.1f} s "
            f"uncompressed), saving {e_save:.0f} J and {t_save:.0f} s versus "
            f"uncompressed checkpoints; {flip_note}."
        )
        return CheckpointAdvice(
            dataset=dataset,
            cpu=self.cpu_name,
            io_library=self.io_library,
            psnr_min_db=psnr_min_db,
            mttf_s=float(mttf_s),
            n_nodes=int(n_nodes),
            work_s=float(work_s),
            compress=compress,
            codec=chosen.codec,
            rel_bound=chosen.rel_bound,
            interval_s=chosen.interval_s,
            baseline_interval_s=baseline.interval_s,
            expected_energy_j=chosen.expected_energy_j,
            expected_makespan_s=chosen.expected_makespan_s,
            baseline_energy_j=baseline.expected_energy_j,
            baseline_makespan_s=baseline.expected_makespan_s,
            energy_saving_j=e_save,
            time_saving_s=t_save,
            single_write_compress=single_write_compress,
            flips=flips,
            flip_margin_j=flip_margin,
            chosen=chosen,
            candidates=tuple(feasible),
            rationale=rationale,
        )


# -- the multi-tenant cluster advisor -----------------------------------------


@dataclass(frozen=True)
class ClusterAdvice:
    """The cluster advisor's verdict for one multi-tenant scenario.

    ``best_mix`` maps job name → codec (``None`` = uncompressed) for the
    machine-wide energy-optimal assignment; ``mixes`` carries every
    evaluated (assignment, :class:`~repro.cluster.kind.ClusterResult`)
    pair.  ``flips`` is True when shared-PFS contention reverses the
    everyone-compress verdict a dedicated machine would give — the paper's
    Eq. 4 inequality evaluated per tenant in isolation versus the same
    tenants contending for one aggregate.
    """

    dataset: str
    cpu: str
    io_library: str
    scenario: str  # canonical base scenario
    n_jobs: int
    compress: bool  # the winning mix uses at least one codec
    best_mix: tuple  # ((job name, codec | None), ...) in scenario order
    best_energy_j: float
    best_makespan_s: float
    all_energy_j: float  # everyone at their configured codec
    none_energy_j: float  # everyone uncompressed
    all_makespan_s: float
    none_makespan_s: float
    everyone_compress_saves: bool  # all-compress beats all-uncompressed
    dedicated_compress_saves: bool  # same comparison, tenants in isolation
    dedicated_all_energy_j: float
    dedicated_none_energy_j: float
    flips: bool  # contention reverses the dedicated verdict
    flip_margin_j: float  # contended all-vs-none gap (positive: compress wins)
    mixes: tuple  # ((mix assignment, ClusterResult), ...), cheapest first
    rationale: str


class ClusterAdvisor:
    """Search every per-tenant compression mix of a shared-PFS scenario.

    Built on the ``cluster`` experiment kind, so every evaluated mix is a
    content-addressed, memoized grid point — re-advising a scenario after
    one mix changes only recomputes the new assignments.
    """

    def __init__(self, testbed=None, cpu_name: str = "plat8160", io_library: str = "hdf5"):
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed()
        self.testbed = testbed
        self.cpu_name = cpu_name
        self.io_library = io_library

    def _evaluate(self, dataset: str, scenario_text: str):
        return self.testbed.engine.evaluate(
            "cluster_point",
            dataset=dataset,
            scenario=scenario_text,
            io_library=self.io_library,
            cpu_name=self.cpu_name,
        )

    def advise(self, dataset: str, scenario: str) -> ClusterAdvice:
        """Emit a :class:`ClusterAdvice` for one scenario on one machine.

        ``scenario`` is a cluster scenario string whose per-job codecs mark
        each tenant's *candidate* compression (jobs with ``codec:none``
        stay uncompressed in every mix).
        """
        from dataclasses import replace

        import repro.cluster.kind  # noqa: F401  (registers `cluster_point`)
        from repro.cluster.scheduler import (
            ClusterSpec,
            compression_mixes,
            format_scenario,
            parse_scenario,
        )

        base = parse_scenario(scenario)
        canonical = format_scenario(base)
        evaluated = []
        for mix_spec in compression_mixes(base):
            result = self._evaluate(dataset, format_scenario(mix_spec))
            assignment = tuple((j.name, j.codec) for j in mix_spec.jobs)
            evaluated.append((assignment, result))
        evaluated.sort(key=lambda pair: (pair[1].total_energy_j, pair[1].makespan_s))

        all_assignment = tuple((j.name, j.codec) for j in base.jobs)
        none_assignment = tuple((j.name, None) for j in base.jobs)
        by_assignment = dict(evaluated)
        all_res = by_assignment[all_assignment]
        none_res = by_assignment[none_assignment]
        best_mix, best = evaluated[0]

        # The dedicated-machine comparison: each tenant alone on the same
        # cluster (submit time zeroed — alone, the queue is empty anyway),
        # summed over tenants.  Contention is the only thing that differs.
        def dedicated_total(jobs) -> float:
            total = 0.0
            for job in jobs:
                solo = ClusterSpec(
                    n_nodes=base.n_nodes, jobs=(replace(job, submit_s=0.0),)
                )
                total += self._evaluate(dataset, format_scenario(solo)).total_energy_j
            return total

        dedicated_all = dedicated_total(base.jobs)
        dedicated_none = dedicated_total(replace(j, codec=None) for j in base.jobs)

        everyone_saves = all_res.total_energy_j < none_res.total_energy_j
        dedicated_saves = dedicated_all < dedicated_none
        flips = everyone_saves != dedicated_saves
        flip_margin = none_res.total_energy_j - all_res.total_energy_j

        mix_text = ", ".join(f"{n}:{c or 'none'}" for n, c in best_mix)
        if flips:
            flip_note = (
                "shared-PFS contention FLIPS the dedicated-machine verdict "
                f"({'compress' if everyone_saves else 'do not compress'} "
                f"contended, "
                f"{'compress' if dedicated_saves else 'do not compress'} "
                f"dedicated)"
            )
        else:
            flip_note = "the dedicated-machine verdict carries over"
        rationale = (
            f"{dataset} on {self.cpu_name} via {self.io_library}, scenario "
            f"'{canonical}': everyone compressing "
            f"{'saves' if everyone_saves else 'costs'} "
            f"{abs(flip_margin):.0f} J machine-wide versus everyone "
            f"uncompressed (makespan {all_res.makespan_s:.2f} s vs "
            f"{none_res.makespan_s:.2f} s, max write stretch "
            f"{all_res.max_stretch:.2f}x vs {none_res.max_stretch:.2f}x); "
            f"the energy-optimal mix is [{mix_text}] at "
            f"{best.total_energy_j:.0f} J; {flip_note}."
        )
        return ClusterAdvice(
            dataset=dataset,
            cpu=self.cpu_name,
            io_library=self.io_library,
            scenario=canonical,
            n_jobs=len(base.jobs),
            compress=any(codec is not None for _, codec in best_mix),
            best_mix=best_mix,
            best_energy_j=best.total_energy_j,
            best_makespan_s=best.makespan_s,
            all_energy_j=all_res.total_energy_j,
            none_energy_j=none_res.total_energy_j,
            all_makespan_s=all_res.makespan_s,
            none_makespan_s=none_res.makespan_s,
            everyone_compress_saves=everyone_saves,
            dedicated_compress_saves=dedicated_saves,
            dedicated_all_energy_j=dedicated_all,
            dedicated_none_energy_j=dedicated_none,
            flips=flips,
            flip_margin_j=flip_margin,
            mixes=tuple(evaluated),
            rationale=rationale,
        )


class DvfsAdvisor:
    """Search (frequency × codec × rel_bound) for the energy-optimal plan."""

    def __init__(self, testbed=None, cpu_name: str = "plat8160", io_library: str = "hdf5"):
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed()
        self.testbed = testbed
        self.cpu_name = cpu_name
        self.io_library = io_library

    def _grid(self, dataset, codecs, bounds, freqs):
        return self.testbed.run_dvfs_sweep(
            datasets=(dataset,),
            codecs=codecs,
            bounds=bounds,
            freqs=freqs,
            io_libraries=(self.io_library,),
            cpu_name=self.cpu_name,
            include_baseline=True,
        )

    def _race_vs_steady(
        self, family, idle_power_w: float, chosen
    ) -> tuple[float, float, float]:
        """(race J, steady J, chosen-under-deadline J) over the family window.

        ``family`` is one (codec, bound) configuration evaluated across the
        frequency axis; the deadline is its slowest configuration's total
        time.  Race runs at the fastest clock and pays node idle power for
        the remainder; steady occupies the window at the slowest clock.  The
        third value is the *chosen* frequency padded to the same deadline —
        when the energy optimum is interior, it can beat both extremes, and
        the advice must not steer the user to a worse extreme.
        """
        window = max(p.total_time_s for p in family)
        fastest = min(family, key=lambda p: (p.total_time_s, p.total_energy_j))
        slowest = max(family, key=lambda p: (p.total_time_s, -p.total_energy_j))
        race = fastest.total_energy_j + idle_power_w * (window - fastest.total_time_s)
        steady = slowest.total_energy_j
        chosen_padded = chosen.total_energy_j + idle_power_w * (
            window - chosen.total_time_s
        )
        return race, steady, chosen_padded

    def advise(
        self,
        dataset: str,
        psnr_min_db: float = 60.0,
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        freqs: tuple[float, ...] = (),
        objective: str = "energy",
        require_time_benefit: bool = False,
        compression: str | None = None,
    ) -> CompressionAdvice:
        """Emit a :class:`CompressionAdvice` for one dataset/CPU/IO scenario.

        The decision rule: among quality-feasible points (baseline included —
        not compressing always meets the floor), pick the best configuration
        under ``objective`` (``"energy"`` minimizes joules, ``"time"``
        seconds, ``"ratio"`` maximizes compression ratio); ``compress`` is
        whether that winner uses a codec.  ``require_time_benefit`` applies
        the paper's strict Eq. 3 criterion: codec points must also beat the
        nominal-clock uncompressed write in *both* time and energy.  Savings
        are quoted against that same baseline, the testbed's pre-DVFS
        operating point.
        """
        from repro.energy.cpus import get_cpu
        from repro.energy.power import PowerModel

        if objective not in _OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        if compression:
            from repro.dataset.spec import advisor_grid_from_spec

            codecs, bounds = advisor_grid_from_spec(compression, codecs, bounds)
        cpu = get_cpu(self.cpu_name)
        points = self._grid(dataset, codecs, bounds, freqs)
        baseline_nom = self.testbed.engine.evaluate(
            "dvfs_point",
            dataset=dataset,
            codec=None,
            rel_bound=None,
            freq_ghz=cpu.fnom_ghz,
            io_library=self.io_library,
            cpu_name=self.cpu_name,
        )
        quality_ok = [p for p in points if p.psnr_db >= psnr_min_db]
        feasible = quality_ok
        if require_time_benefit:
            # Strict inequalities, matching Eq. 3/4 in formulation.py.
            feasible = [
                p
                for p in quality_ok
                if p.codec is None
                or (
                    p.total_time_s < baseline_nom.total_time_s
                    and p.total_energy_j < baseline_nom.total_energy_j
                )
            ]
        if not feasible:  # the uncompressed baseline (psnr = inf) is always in
            raise ConfigurationError(
                "DVFS grid produced no quality-feasible points; "
                "was include_baseline disabled upstream?"
            )
        frontier = pareto_frontier(feasible)
        if objective == "time":
            chosen = min(
                feasible, key=lambda p: (p.total_time_s, p.total_energy_j)
            )
        elif objective == "ratio":
            # Not compressing has ratio 1.0, so any feasible codec point wins.
            chosen = max(
                feasible, key=lambda p: (p.ratio, -p.total_energy_j, p.freq_ghz)
            )
        else:
            chosen = min(
                feasible, key=lambda p: (p.total_energy_j, p.total_time_s, -p.freq_ghz)
            )
        # The race/steady policies are defined over the chosen configuration's
        # *whole* frequency family — from quality_ok, not the strict-time
        # filter, which would drop slow-clock members and silently redefine
        # "slowest configuration" (and with it the deadline window).
        family = [
            p
            for p in quality_ok
            if p.codec == chosen.codec and p.rel_bound == chosen.rel_bound
        ]
        idle_w = PowerModel(cpu).node_idle_power()
        race, steady, chosen_padded = self._race_vs_steady(family, idle_w, chosen)

        e_save = baseline_nom.total_energy_j - chosen.total_energy_j
        t_save = baseline_nom.total_time_s - chosen.total_time_s
        what = (
            f"{chosen.codec} @ REL {chosen.rel_bound:.0e}"
            if chosen.codec
            else "no compression"
        )
        if chosen_padded < min(race, steady):
            policy_note = (
                f"neither extreme policy wins — the chosen "
                f"{chosen.freq_ghz:.2f} GHz point beats both under the same "
                f"deadline ({chosen_padded:.0f} J vs race {race:.0f} J, "
                f"steady {steady:.0f} J)"
            )
        else:
            policy = "race-to-idle" if race <= steady else "slow-and-steady"
            policy_note = (
                f"under a fixed deadline {policy} wins (race {race:.0f} J vs "
                f"steady {steady:.0f} J vs chosen-then-idle "
                f"{chosen_padded:.0f} J); with no deadline, run the chosen "
                f"point"
            )
        rationale = (
            f"{dataset} on {self.cpu_name} via {self.io_library}: {what} at "
            f"{chosen.freq_ghz:.2f} GHz is {objective}-optimal "
            f"({chosen.total_energy_j:.0f} J, {chosen.total_time_s:.2f} s), "
            f"saving {e_save:.0f} J and {t_save:.2f} s vs the uncompressed "
            f"write at the nominal {cpu.fnom_ghz:.2f} GHz clock; Pareto "
            f"frontier holds {len(frontier)} configuration(s); within the "
            f"chosen codec family, {policy_note}."
        )
        return CompressionAdvice(
            dataset=dataset,
            cpu=self.cpu_name,
            io_library=self.io_library,
            psnr_min_db=psnr_min_db,
            objective=objective,
            compress=chosen.codec is not None,
            codec=chosen.codec,
            rel_bound=chosen.rel_bound,
            freq_ghz=chosen.freq_ghz,
            time_s=chosen.total_time_s,
            energy_j=chosen.total_energy_j,
            baseline_time_s=baseline_nom.total_time_s,
            baseline_energy_j=baseline_nom.total_energy_j,
            energy_saving_j=e_save,
            time_saving_s=t_save,
            race_to_idle_energy_j=race,
            slow_and_steady_energy_j=steady,
            chosen_deadline_energy_j=chosen_padded,
            prefer_race_to_idle=race <= steady,
            pareto=frontier,
            chosen=chosen,
            rationale=rationale,
        )
