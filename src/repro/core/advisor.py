"""Compression advisor: the paper's "framework for informed decisions".

Given a dataset, a quality floor (Eq. 5) and an optimization objective, the
advisor evaluates the (codec, bound) grid through
:class:`~repro.core.tradeoff.TradeoffAnalyzer` and recommends the best plan
that satisfies every benefit condition — encoding the paper's Section VII
guidance (SZx/ZFP when energy-bound, SZ3/QoZ when storage-bound, tighter
bounds only as the application's PSNR floor demands).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formulation import CompressionPlan
from repro.core.tradeoff import TradeoffAnalyzer, TradeoffRecord
from repro.errors import ConfigurationError

__all__ = ["Recommendation", "Advisor"]

_OBJECTIVES = ("energy", "ratio", "time")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one dataset."""

    plan: CompressionPlan | None  # None = do not compress
    objective: str
    psnr_min_db: float
    rationale: str
    record: TradeoffRecord | None
    alternatives: tuple[TradeoffRecord, ...]

    @property
    def should_compress(self) -> bool:
        return self.plan is not None


class Advisor:
    """Recommend a (codec, bound) plan, or advise against compression."""

    def __init__(self, analyzer: TradeoffAnalyzer | None = None):
        self.analyzer = analyzer or TradeoffAnalyzer()

    def recommend(
        self,
        dataset: str,
        psnr_min_db: float = 60.0,
        objective: str = "energy",
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        require_time_benefit: bool = True,
    ) -> Recommendation:
        """Pick the best plan meeting Eq. 5 (and, optionally, Eq. 3-4).

        ``objective``:

        - ``"energy"`` — minimize compress+write energy (Eq. 4 LHS);
        - ``"ratio"``  — maximize compression ratio (storage-bound sites);
        - ``"time"``   — minimize compress+write time (Eq. 3 LHS).
        """
        if objective not in _OBJECTIVES:
            raise ConfigurationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        records = self.analyzer.evaluate(
            dataset, codecs=codecs, bounds=bounds, psnr_min_db=psnr_min_db
        )
        feasible = [r for r in records if r.conditions.quality_acceptable]
        if require_time_benefit:
            feasible = [
                r
                for r in feasible
                if r.conditions.time_beneficial and r.conditions.energy_beneficial
            ]
        else:
            feasible = [r for r in feasible if r.conditions.energy_beneficial]
        if not feasible:
            return Recommendation(
                plan=None,
                objective=objective,
                psnr_min_db=psnr_min_db,
                rationale=(
                    "No (codec, bound) choice met the quality floor while "
                    "beating uncompressed I/O in energy"
                    + (" and time" if require_time_benefit else "")
                    + "; write the data uncompressed (Eq. 3-5 infeasible)."
                ),
                record=None,
                alternatives=tuple(records),
            )
        if objective == "energy":
            best = min(feasible, key=lambda r: r.pipeline_energy_j)
        elif objective == "time":
            best = min(
                feasible,
                key=lambda r: r.conditions.compress_time_s
                + r.conditions.write_time_compressed_s,
            )
        else:
            best = max(feasible, key=lambda r: r.ratio)
        rationale = (
            f"{best.plan} meets PSNR >= {psnr_min_db:.0f} dB "
            f"({best.psnr_db:.1f} dB) with ratio {best.ratio:.1f}x, saving "
            f"{best.conditions.net_energy_saving_j:.0f} J and "
            f"{best.conditions.net_time_saving_s:.2f} s versus uncompressed "
            f"I/O through {best.io_library} (objective: {objective})."
        )
        others = tuple(r for r in feasible if r is not best)
        return Recommendation(
            plan=best.plan,
            objective=objective,
            psnr_min_db=psnr_min_db,
            rationale=rationale,
            record=best,
            alternatives=others,
        )
