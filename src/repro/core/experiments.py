"""The virtual testbed and one experiment driver per paper figure/table.

:class:`Testbed` combines the four substrates:

1. **real compression** of the synthetic datasets (ratios, PSNR, bytes);
2. the **throughput model** for runtimes at paper scale on a Table-I CPU;
3. the **RAPL/PAPI energy stack** for joules;
4. the **I/O + cluster models** for write and multi-node experiments.

Every driver returns plain dataclass records that the benchmark harness
renders into the paper's rows/series.  Compression round-trips are memoized
per (dataset, scale, codec, bound) — Figures 5/7/8/9 and Table III all share
one sweep.  The grid drivers (``run_serial_sweep``, ``run_thread_sweep``,
``run_quality_table``, ``run_io_sweep``, ``run_pipeline_sweep``,
``run_dvfs_sweep``, ``run_checkpoint_sweep``, ``run_lossless_comparison``)
delegate to the :mod:`repro.runtime` sweep engine, so whole evaluated points
— not just round-trips — are memoized in the process-wide result store and
can be fanned out over thread/process pools.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.campaign import CampaignResult, MultiNodeCampaign
from repro.compressors import get_compressor
from repro.compressors import lossless as _lossless  # noqa: F401 (registration)
from repro.data.inflate import inflate
from repro.data.registry import generate, get_dataset
from repro.energy.cpus import CPUSpec, get_cpu
from repro.energy.measurement import EnergyMeter, Phase
from repro.energy.throughput import ThroughputModel
from repro.errors import ConfigurationError
from repro.iolib.base import IOLibrary, get_io_library
from repro.iolib.pfs import PFSModel
from repro.metrics.error import check_error_bound, max_rel_error
from repro.metrics.quality import autocorrelation, psnr

__all__ = [
    "RoundtripRecord",
    "SerialPoint",
    "IOPoint",
    "PipelinePoint",
    "DvfsPoint",
    "CheckpointPoint",
    "InflationPoint",
    "Testbed",
]


@dataclass(frozen=True)
class RoundtripRecord:
    """Real compression outcome on the synthetic data."""

    dataset: str
    scale: str
    codec: str
    rel_bound: float
    ratio: float
    psnr_db: float
    autocorr: float
    max_rel_err: float
    compressed_nbytes: int
    original_nbytes: int


@dataclass(frozen=True)
class SerialPoint:
    """One (dataset, codec, ε, CPU, threads) profiling measurement."""

    dataset: str
    codec: str
    rel_bound: float
    cpu: str
    threads: int
    compress_time_s: float
    decompress_time_s: float
    compress_energy_j: float
    decompress_energy_j: float
    roundtrip: RoundtripRecord

    @property
    def total_time_s(self) -> float:
        return self.compress_time_s + self.decompress_time_s

    @property
    def total_energy_j(self) -> float:
        return self.compress_energy_j + self.decompress_energy_j


@dataclass(frozen=True)
class IOPoint:
    """One write experiment: (dataset, codec-or-original, I/O library)."""

    dataset: str
    codec: str | None  # None = uncompressed baseline
    rel_bound: float | None
    io_library: str
    cpu: str
    bytes_written: int
    write_time_s: float
    write_energy_j: float
    compress_time_s: float
    compress_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.write_energy_j + self.compress_energy_j

    # -- read-path accessors --------------------------------------------------
    # ``read_point`` reuses this record with write-named fields carrying the
    # read-path costs.  These aliases give the read path proper names without
    # touching the stored fields, so store keys and old callers are unchanged.

    @property
    def fetch_time_s(self) -> float:
        """Read path: seconds to pull the bytes off the PFS."""
        return self.write_time_s

    @property
    def fetch_energy_j(self) -> float:
        """Read path: joules of the PFS fetch."""
        return self.write_energy_j

    @property
    def decompress_time_s(self) -> float:
        """Read path: codec seconds before analysis can start."""
        return self.compress_time_s

    @property
    def decompress_energy_j(self) -> float:
        """Read path: codec joules before analysis can start."""
        return self.compress_energy_j


@dataclass(frozen=True)
class PipelinePoint:
    """One block-pipelined write experiment (chunked, optionally overlapped).

    ``compress_time_s`` / ``write_time_s`` are the *stage* times — what each
    stage costs run back to back; ``total_time_s`` is the overlapped
    makespan.  With ``overlap=False`` the point is computed through exactly
    the sequential :meth:`Testbed.io_point` code path, so the two stages sum
    to the total and every number matches the monolithic model bit for bit.
    """

    dataset: str
    codec: str | None  # None = uncompressed baseline
    rel_bound: float | None
    io_library: str
    cpu: str
    n_chunks: int
    overlap: bool
    bytes_written: int
    compress_time_s: float
    write_time_s: float
    total_time_s: float
    compress_energy_j: float
    write_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.compress_energy_j + self.write_energy_j

    @property
    def overlap_saving_s(self) -> float:
        """Seconds saved by overlapping the stages (0 when overlap is off)."""
        return self.compress_time_s + self.write_time_s - self.total_time_s


@dataclass(frozen=True)
class DvfsPoint:
    """One compress-and-write evaluation at an explicit core frequency.

    The same scenario as :class:`IOPoint`, with the node pinned at
    ``freq_ghz``: codec compute time scales on its compute-bound fraction
    (roofline), dynamic power scales as ``(f/fnom)^gamma``, and the PFS
    transfer itself is frequency-insensitive.  At ``f == fnom`` every field
    matches :meth:`Testbed.io_point` bit for bit.  ``ratio``/``psnr_db``
    carry the real round-trip quality (1.0 / +inf for the uncompressed
    baseline) so the advisor can filter on a quality floor without a second
    lookup.
    """

    dataset: str
    codec: str | None  # None = uncompressed baseline
    rel_bound: float | None
    io_library: str
    cpu: str
    freq_ghz: float
    bytes_written: int
    compress_time_s: float
    write_time_s: float
    compress_energy_j: float
    write_energy_j: float
    ratio: float
    psnr_db: float

    @property
    def total_time_s(self) -> float:
        return self.compress_time_s + self.write_time_s

    @property
    def total_energy_j(self) -> float:
        return self.compress_energy_j + self.write_energy_j


@dataclass(frozen=True)
class CheckpointPoint:
    """One failure-aware checkpointed application lifetime.

    The per-checkpoint write cost fields (``ckpt_*``) are taken verbatim
    from the existing write paths — :meth:`Testbed.io_point`,
    :meth:`Testbed.pipeline_point`, or :meth:`Testbed.dvfs_point` depending
    on ``n_chunks``/``freq_ghz`` — and the restart cost from
    :meth:`Testbed.read_point`, so a failure-free single-checkpoint run
    reproduces those records bit for bit.  The lifetime itself is simulated
    on the deterministic event loop (:mod:`repro.workloads.lifecycle`) with
    the explicit ``seed``; ``expected_*`` carry the closed-form Daly model
    for the same configuration.

    ``mttf_s`` is the *per-node* MTTF; the simulated system fails at
    ``mttf_s / n_nodes`` (``inf`` = failure-free).
    """

    dataset: str
    codec: str | None  # None = uncompressed checkpoints
    rel_bound: float | None
    io_library: str
    cpu: str
    mttf_s: float
    n_nodes: int
    work_s: float
    interval: str | float  # policy as requested ("daly", "young", or seconds)
    interval_s: float  # resolved checkpoint interval
    seed: int
    n_chunks: int
    overlap: bool
    freq_ghz: float | None
    downtime_s: float
    # per-checkpoint write cost (bit-identical to the underlying write path)
    ckpt_compress_time_s: float
    ckpt_write_time_s: float
    ckpt_time_s: float  # wall time of one checkpoint (overlapped if pipelined)
    ckpt_compress_energy_j: float
    ckpt_write_energy_j: float
    # restart cost (bit-identical to the read path)
    restart_fetch_time_s: float
    restart_decompress_time_s: float
    restart_fetch_energy_j: float
    restart_decompress_energy_j: float
    # the simulated lifetime
    makespan_s: float
    n_checkpoints: int
    n_failures: int
    rework_s: float
    compute_energy_j: float
    checkpoint_energy_j: float
    restart_energy_j: float
    idle_energy_j: float
    # closed-form Daly expectations for the same configuration
    expected_makespan_s: float
    expected_energy_j: float
    # round-trip quality, for advisor filtering (1.0 / +inf for baseline)
    ratio: float
    psnr_db: float

    @property
    def restart_time_s(self) -> float:
        return self.restart_fetch_time_s + self.restart_decompress_time_s

    @property
    def total_energy_j(self) -> float:
        """Simulated lifetime energy: compute + checkpoints + restarts + idle."""
        return (
            self.compute_energy_j
            + self.checkpoint_energy_j
            + self.restart_energy_j
            + self.idle_energy_j
        )

    @property
    def overhead_fraction(self) -> float:
        """Share of the makespan not spent on useful work."""
        return 1.0 - self.work_s / self.makespan_s if self.makespan_s > 0 else 0.0


@dataclass(frozen=True)
class InflationPoint:
    """One Fig. 13 point: inflated NYX at paper scale."""

    codec: str
    factor: int
    paper_gb: float
    ratio: float
    compress_energy_j: float
    decompress_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.compress_energy_j + self.decompress_energy_j


# Shared across Testbed instances so every bench in a session reuses sweeps.
_ROUNDTRIP_CACHE: dict[tuple, RoundtripRecord] = {}


class Testbed:
    """The full virtual testbed; see module docstring."""

    __test__ = False  # name starts with "Test" but this is not a test class

    def __init__(
        self,
        scale: str = "bench",
        pfs: PFSModel | None = None,
        throughput: ThroughputModel | None = None,
        sample_interval: float = 0.010,
        verify_bounds: bool = True,
    ):
        self.scale = scale
        self.pfs = pfs or PFSModel()
        self.throughput = throughput or ThroughputModel()
        self.sample_interval = sample_interval
        self.verify_bounds = verify_bounds
        self._engine = None

    @property
    def engine(self):
        """The sweep engine every grid driver runs through.

        Built lazily against the process-wide default result store, so all
        testbeds with equal configuration share evaluated points.  Assign a
        custom :class:`~repro.runtime.engine.SweepEngine` to change the
        executor, store, or progress callbacks.
        """
        if self._engine is None:
            from repro.runtime.engine import SweepEngine

            self._engine = SweepEngine(testbed=self)
        return self._engine

    @engine.setter
    def engine(self, value):
        self._engine = value

    # -- real compression (memoized) -----------------------------------------

    def roundtrip(self, dataset: str, codec: str, rel_bound: float) -> RoundtripRecord:
        """Compress + decompress the synthetic dataset for real."""
        key = (dataset, self.scale, codec, float(rel_bound))
        hit = _ROUNDTRIP_CACHE.get(key)
        if hit is not None:
            return hit
        data = np.array(generate(dataset, self.scale))
        comp = get_compressor(codec)
        buf = comp.compress(data, rel_bound if not comp.lossless else 0.0)
        recon = comp.decompress(buf)
        if comp.lossless:
            if not np.array_equal(recon, data):
                raise ConfigurationError(f"lossless codec {codec} failed roundtrip")
        elif self.verify_bounds:
            check_error_bound(data, recon, rel_bound)
        rec = RoundtripRecord(
            dataset=dataset,
            scale=self.scale,
            codec=codec,
            rel_bound=0.0 if comp.lossless else rel_bound,
            ratio=buf.ratio,
            psnr_db=psnr(data, recon),
            autocorr=autocorrelation(data, recon),
            max_rel_err=max_rel_error(data, recon),
            compressed_nbytes=buf.nbytes,
            original_nbytes=data.nbytes,
        )
        _ROUNDTRIP_CACHE[key] = rec
        return rec

    # -- energy primitives ----------------------------------------------------

    def _meter(self, cpu: CPUSpec, freq_ghz: float | None = None) -> EnergyMeter:
        return EnergyMeter(
            cpu, sample_interval=self.sample_interval, freq_ghz=freq_ghz
        )

    def serial_point(
        self,
        dataset: str,
        codec: str,
        rel_bound: float,
        cpu_name: str = "max9480",
        threads: int = 1,
    ) -> SerialPoint:
        """Profile one (de)compression at paper scale on a Table-I CPU."""
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        rt = self.roundtrip(dataset, codec, rel_bound)
        meter = self._meter(cpu)
        nbytes = spec.profile_nbytes
        times = {}
        energies = {}
        for direction in ("compress", "decompress"):
            t = self.throughput.runtime(
                codec,
                direction,
                nbytes,
                rel_bound,
                cpu,
                threads=threads,
                complexity=spec.complexity,
            )
            times[direction] = t
            energies[direction] = meter.measure_compute(t, threads).energy_j
        return SerialPoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            cpu=cpu_name,
            threads=threads,
            compress_time_s=times["compress"],
            decompress_time_s=times["decompress"],
            compress_energy_j=energies["compress"],
            decompress_energy_j=energies["decompress"],
            roundtrip=rt,
        )

    def write_report(
        self,
        nbytes: int,
        io_library: IOLibrary,
        cpu: CPUSpec,
        freq_ghz: float | None = None,
    ) -> tuple[float, float]:
        """(seconds, joules) to write ``nbytes`` through an I/O library.

        ``freq_ghz`` pins the node's DVFS point for the *power* integration;
        serialize and transfer durations are memory/network-bound and do not
        move with the core clock.
        """
        cost = io_library.cost
        t_ser = cost.serialize_seconds(nbytes, cpu.speed)
        t_io = self.pfs.single_write_seconds(nbytes, cost.bandwidth_efficiency)
        t_io += cost.open_latency_s
        report = self._meter(cpu, freq_ghz).measure(
            [
                Phase(t_ser, 1, 1.0, "serialize"),
                Phase(t_io, 1, cost.transfer_activity, "transfer"),
            ]
        )
        return report.runtime_s, report.energy_j

    def read_report(
        self,
        nbytes: int,
        io_library: IOLibrary,
        cpu: CPUSpec,
        freq_ghz: float | None = None,
    ) -> tuple[float, float]:
        """(seconds, joules) to read ``nbytes`` back through an I/O library.

        The paper's Section VI-A remark — "pulling compressed data out of
        storage for analysis will have the same benefits" — made concrete:
        a read is a transfer plus a deserialize pass.  ``freq_ghz`` pins the
        DVFS point for the power integration, like :meth:`write_report`;
        the transfer and deserialize durations are memory/network-bound and
        do not move with the core clock.
        """
        cost = io_library.cost
        t_io = self.pfs.single_read_seconds(nbytes, cost.bandwidth_efficiency)
        t_io += cost.open_latency_s
        t_deser = cost.serialize_seconds(nbytes, cpu.speed)
        meter = self._meter(cpu, freq_ghz)
        report = meter.measure(
            [
                Phase(t_io, 1, cost.transfer_activity, "transfer"),
                Phase(t_deser, 1, 1.0, "deserialize"),
            ]
        )
        return report.runtime_s, report.energy_j

    def read_point(
        self,
        dataset: str,
        codec: str | None,
        rel_bound: float | None,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
    ) -> IOPoint:
        """Read-path mirror of :meth:`io_point`: fetch + decompress.

        ``compress_*`` fields carry the *decompression* cost on the read
        path (the codec work needed before analysis can start).
        """
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        lib = get_io_library(io_library)
        if codec is None:
            nbytes = spec.paper_nbytes
            t_d, e_d = 0.0, 0.0
        else:
            if rel_bound is None:
                raise ConfigurationError("rel_bound required when codec is set")
            rt = self.roundtrip(dataset, codec, rel_bound)
            nbytes = max(1, int(round(spec.paper_nbytes / rt.ratio)))
            t_d = self.throughput.runtime(
                codec,
                "decompress",
                spec.paper_nbytes,
                rel_bound,
                cpu,
                threads=1,
                complexity=spec.complexity,
            )
            e_d = self._meter(cpu).measure_compute(t_d, 1).energy_j
        t_r, e_r = self.read_report(nbytes, lib, cpu)
        return IOPoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            io_library=io_library,
            cpu=cpu_name,
            bytes_written=nbytes,
            write_time_s=t_r,
            write_energy_j=e_r,
            compress_time_s=t_d,
            compress_energy_j=e_d,
        )

    def io_point(
        self,
        dataset: str,
        codec: str | None,
        rel_bound: float | None,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
        pipeline=None,
    ) -> IOPoint | PipelinePoint:
        """One Fig. 11 bar: write compressed (or original) data to the PFS.

        ``pipeline`` switches to the block-pipelined model: pass a
        :class:`~repro.iolib.pipeline.PipelineConfig` (or an int chunk
        count) and the point is evaluated through :meth:`pipeline_point`,
        returning a :class:`PipelinePoint` instead of an :class:`IOPoint`.
        """
        if pipeline is not None:
            from repro.iolib.pipeline import PipelineConfig

            if isinstance(pipeline, int):
                pipeline = PipelineConfig(n_chunks=pipeline)
            return self.pipeline_point(
                dataset,
                codec,
                rel_bound,
                io_library=io_library,
                cpu_name=cpu_name,
                n_chunks=pipeline.n_chunks,
                overlap=pipeline.overlap,
            )
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        lib = get_io_library(io_library)
        if codec is None:
            nbytes = spec.paper_nbytes
            t_c, e_c = 0.0, 0.0
        else:
            if rel_bound is None:
                raise ConfigurationError("rel_bound required when codec is set")
            rt = self.roundtrip(dataset, codec, rel_bound)
            nbytes = max(1, int(round(spec.paper_nbytes / rt.ratio)))
            t_c = self.throughput.runtime(
                codec,
                "compress",
                spec.paper_nbytes,
                rel_bound,
                cpu,
                threads=1,
                complexity=spec.complexity,
            )
            e_c = self._meter(cpu).measure_compute(t_c, 1).energy_j
        t_w, e_w = self.write_report(nbytes, lib, cpu)
        return IOPoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            io_library=io_library,
            cpu=cpu_name,
            bytes_written=nbytes,
            write_time_s=t_w,
            write_energy_j=e_w,
            compress_time_s=t_c,
            compress_energy_j=e_c,
        )

    def pipeline_point(
        self,
        dataset: str,
        codec: str | None,
        rel_bound: float | None,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
        n_chunks: int = 8,
        overlap: bool = True,
    ) -> PipelinePoint:
        """One block-pipelined write: chunked compress→write, overlapped.

        The dataset is streamed through the pipeline in ``n_chunks`` chunks;
        chunk *k*'s PFS transfer drains while chunk *k+1* compresses, and the
        overlapped load timeline is integrated by the energy stack through
        :func:`~repro.energy.measurement.compose_phases`.  With
        ``overlap=False`` the evaluation collapses to the exact sequential
        path (one compress measurement, one serialize+transfer measurement),
        reproducing :meth:`io_point`'s numbers identically — the pipeline is
        a new execution model, not a recalibration of the old one.
        """
        from repro.energy.measurement import compose_phases
        from repro.iolib.pipeline import PipelineConfig, plan_pipelined_write

        cfg = PipelineConfig(n_chunks=n_chunks, overlap=overlap)
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        lib = get_io_library(io_library)
        if codec is None:
            nbytes = spec.paper_nbytes
            t_c, e_c = 0.0, 0.0
        else:
            if rel_bound is None:
                raise ConfigurationError("rel_bound required when codec is set")
            rt = self.roundtrip(dataset, codec, rel_bound)
            nbytes = max(1, int(round(spec.paper_nbytes / rt.ratio)))
            t_c = self.throughput.runtime(
                codec,
                "compress",
                spec.paper_nbytes,
                rel_bound,
                cpu,
                threads=1,
                complexity=spec.complexity,
            )
            e_c = self._meter(cpu).measure_compute(t_c, 1).energy_j

        if not cfg.overlap:
            # Degenerate control: the monolithic sequential path, verbatim.
            t_w, e_w = self.write_report(nbytes, lib, cpu)
            return PipelinePoint(
                dataset=dataset,
                codec=codec,
                rel_bound=rel_bound,
                io_library=io_library,
                cpu=cpu_name,
                n_chunks=cfg.n_chunks,
                overlap=False,
                bytes_written=nbytes,
                compress_time_s=t_c,
                write_time_s=t_w,
                total_time_s=t_c + t_w,
                compress_energy_j=e_c,
                write_energy_j=e_w,
            )

        plan = plan_pipelined_write(
            nbytes, t_c, self.pfs, lib.cost, cpu.speed, cfg.n_chunks
        )
        phases = compose_phases(plan.intervals, max_cores=cpu.cores)
        total_energy = self._meter(cpu).measure(phases).energy_j
        # The compress stage's standalone cost is already measured (e_c); the
        # write stage carries the residual, so overlap savings show up as a
        # smaller write energy — mirroring the sequential split.
        return PipelinePoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            io_library=io_library,
            cpu=cpu_name,
            n_chunks=plan.n_chunks,
            overlap=True,
            bytes_written=nbytes,
            compress_time_s=t_c,
            write_time_s=plan.write_time_s,
            total_time_s=plan.total_time_s,
            compress_energy_j=e_c,
            write_energy_j=max(0.0, total_energy - e_c),
        )

    def dvfs_point(
        self,
        dataset: str,
        codec: str | None,
        rel_bound: float | None,
        freq_ghz: float,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
    ) -> DvfsPoint:
        """One compress-and-write evaluation with the node pinned at
        ``freq_ghz``.

        The codec's compute time scales on its compute-bound fraction
        (:meth:`~repro.energy.throughput.ThroughputModel.freq_factor`), every
        phase's dynamic power scales as ``(f/fnom)^gamma``, and the PFS
        transfer and serialize durations stay frequency-insensitive.  At
        ``f == fnom`` this reproduces :meth:`io_point` exactly.
        """
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        freq = cpu.validate_freq(freq_ghz)
        lib = get_io_library(io_library)
        if codec is None:
            nbytes = spec.paper_nbytes
            t_c, e_c = 0.0, 0.0
            ratio, psnr_db = 1.0, float("inf")
        else:
            if rel_bound is None:
                raise ConfigurationError("rel_bound required when codec is set")
            rt = self.roundtrip(dataset, codec, rel_bound)
            nbytes = max(1, int(round(spec.paper_nbytes / rt.ratio)))
            ratio, psnr_db = rt.ratio, rt.psnr_db
            t_c = self.throughput.runtime(
                codec,
                "compress",
                spec.paper_nbytes,
                rel_bound,
                cpu,
                threads=1,
                complexity=spec.complexity,
                freq_ghz=freq,
            )
            e_c = self._meter(cpu, freq).measure_compute(t_c, 1).energy_j
        t_w, e_w = self.write_report(nbytes, lib, cpu, freq_ghz=freq)
        return DvfsPoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            io_library=io_library,
            cpu=cpu_name,
            freq_ghz=freq,
            bytes_written=nbytes,
            compress_time_s=t_c,
            write_time_s=t_w,
            compress_energy_j=e_c,
            write_energy_j=e_w,
            ratio=ratio,
            psnr_db=psnr_db,
        )

    def checkpoint_point(
        self,
        dataset: str,
        codec: str | None,
        rel_bound: float | None,
        io_library: str = "hdf5",
        cpu_name: str = "max9480",
        mttf_s: float = float("inf"),
        n_nodes: int = 1,
        work_s: float = 3600.0,
        interval: str | float = "daly",
        seed: int = 0,
        n_chunks: int = 1,
        overlap: bool = False,
        freq_ghz: float | None = None,
        downtime_s: float = 60.0,
    ) -> CheckpointPoint:
        """One checkpointed application lifetime under failures.

        The application computes ``work_s`` seconds (at the node's full core
        count), checkpointing every ``interval`` seconds of progress —
        ``"daly"``/``"young"`` resolve the closed-form optimal interval from
        the checkpoint cost and the system MTTF ``mttf_s / n_nodes``.  Each
        checkpoint write is priced by the existing compressed-I/O paths:
        :meth:`io_point` (default), :meth:`pipeline_point` when
        ``n_chunks > 1``, or :meth:`dvfs_point` when ``freq_ghz`` pins the
        clock; restarts are priced by :meth:`read_point` (fetch +
        decompress).  Failures are drawn per node from an explicit-seed
        exponential model, the lifetime runs on the deterministic event
        loop, and energy is integrated through ``Interval`` →
        ``compose_phases`` with downtime charged at the power model's idle
        watts.

        With ``mttf_s=inf`` (one trailing checkpoint) the record reproduces
        the underlying write path bit for bit: the final checkpoint *is* the
        paper's single compressed write.
        """
        from repro.energy.measurement import compose_phases
        from repro.energy.power import PowerModel
        from repro.workloads.checkpoint import (
            CheckpointSpec,
            expected_energy,
            expected_makespan,
            resolve_interval,
        )
        from repro.workloads.failures import FailureModel
        from repro.workloads.lifecycle import compact_intervals, run_lifecycle

        cpu = get_cpu(cpu_name)
        if freq_ghz is not None:
            freq_ghz = cpu.validate_freq(freq_ghz)
            if n_chunks > 1:
                raise ConfigurationError(
                    "pipelined checkpoints (n_chunks > 1) cannot be combined "
                    "with a DVFS pin; pick one axis per point"
                )
            base = self.dvfs_point(
                dataset, codec, rel_bound, freq_ghz, io_library, cpu_name
            )
            ckpt_time = base.compress_time_s + base.write_time_s
        elif n_chunks > 1:
            base = self.pipeline_point(
                dataset,
                codec,
                rel_bound,
                io_library=io_library,
                cpu_name=cpu_name,
                n_chunks=n_chunks,
                overlap=overlap,
            )
            ckpt_time = base.total_time_s
        else:
            base = self.io_point(dataset, codec, rel_bound, io_library, cpu_name)
            ckpt_time = base.compress_time_s + base.write_time_s
        if freq_ghz is None:
            restart = self.read_point(dataset, codec, rel_bound, io_library, cpu_name)
            r_fetch_t, r_fetch_e = restart.fetch_time_s, restart.fetch_energy_j
            r_dec_t, r_dec_e = (
                restart.decompress_time_s,
                restart.decompress_energy_j,
            )
        else:
            # The restart must honour the DVFS pin like every other term:
            # decompression scales on its roofline compute fraction, the
            # fetch duration is clock-insensitive, and both integrate power
            # at the pinned frequency (mirroring read_point at nominal).
            spec_ds = get_dataset(dataset)
            lib = get_io_library(io_library)
            if codec is None:
                r_nbytes = spec_ds.paper_nbytes
                r_dec_t, r_dec_e = 0.0, 0.0
            else:
                rt_q = self.roundtrip(dataset, codec, rel_bound)
                r_nbytes = max(1, int(round(spec_ds.paper_nbytes / rt_q.ratio)))
                r_dec_t = self.throughput.runtime(
                    codec,
                    "decompress",
                    spec_ds.paper_nbytes,
                    rel_bound,
                    cpu,
                    threads=1,
                    complexity=spec_ds.complexity,
                    freq_ghz=freq_ghz,
                )
                r_dec_e = self._meter(cpu, freq_ghz).measure_compute(r_dec_t, 1).energy_j
            r_fetch_t, r_fetch_e = self.read_report(
                r_nbytes, lib, cpu, freq_ghz=freq_ghz
            )

        if codec is None:
            ratio, psnr_db = 1.0, float("inf")
        else:
            rt = self.roundtrip(dataset, codec, rel_bound)
            ratio, psnr_db = rt.ratio, rt.psnr_db

        model = FailureModel(node_mttf_s=mttf_s, n_nodes=n_nodes)
        restart_time = r_fetch_t + r_dec_t
        tau = resolve_interval(interval, ckpt_time, model.system_mttf_s, restart_time)
        spec = CheckpointSpec(
            work_s=work_s,
            interval_s=tau,
            ckpt_s=ckpt_time,
            restart_s=restart_time,
            mttf_s=model.system_mttf_s,
            downtime_s=downtime_s,
        )
        # Timeline labels carry a time-weighted checkpoint activity (compress
        # at full load, transfer at the library's I/O activity); the record's
        # checkpoint/restart *energies* are pro-rated from the exact write
        # and read paths below, never re-integrated from these intervals.
        cost = get_io_library(io_library).cost
        ckpt_act = (
            (base.compress_time_s + base.write_time_s * cost.transfer_activity)
            / ckpt_time
            if ckpt_time > 0
            else 1.0
        )
        stats = run_lifecycle(
            spec,
            model.timeline(seed),
            compute_cores=cpu.cores,
            ckpt_cores=1,
            ckpt_activity=min(1.0, ckpt_act),
            restart_cores=1,
            restart_activity=min(1.0, ckpt_act),
        )

        # Lifetimes run for hours: integrate through the wrap-safe splitter,
        # not the single-window meter (a node-hour is several RAPL wraps).
        meter = self._meter(cpu, freq_ghz)
        compute_phases = compose_phases(
            compact_intervals(stats.intervals, {"compute"}), max_cores=cpu.cores
        )
        compute_j = meter.measure_split(compute_phases).energy_j
        down_phases = compose_phases(
            compact_intervals(stats.intervals, {"down"}), max_cores=cpu.cores
        )
        idle_j = meter.measure_split(down_phases).energy_j

        ckpt_energy = base.compress_energy_j + base.write_energy_j
        restart_energy = r_fetch_e + r_dec_e
        ckpt_j = stats.n_checkpoints * ckpt_energy
        if ckpt_time > 0 and stats.ckpt_partial_s > 0:
            ckpt_j += (stats.ckpt_partial_s / ckpt_time) * ckpt_energy
        restart_j = stats.n_restarts * restart_energy
        if restart_time > 0 and stats.restart_partial_s > 0:
            restart_j += (stats.restart_partial_s / restart_time) * restart_energy

        power = PowerModel(cpu, freq_ghz=freq_ghz)
        exp_energy = expected_energy(
            spec,
            compute_power_w=power.node_power(cpu.cores, 1.0),
            ckpt_energy_j=ckpt_energy,
            restart_energy_j=restart_energy,
            idle_power_w=power.node_idle_power(),
        )

        return CheckpointPoint(
            dataset=dataset,
            codec=codec,
            rel_bound=rel_bound,
            io_library=io_library,
            cpu=cpu_name,
            mttf_s=float(mttf_s),
            n_nodes=int(n_nodes),
            work_s=float(work_s),
            interval=interval,
            interval_s=tau,
            seed=int(seed),
            n_chunks=int(n_chunks),
            overlap=bool(overlap),
            freq_ghz=freq_ghz,
            downtime_s=float(downtime_s),
            ckpt_compress_time_s=base.compress_time_s,
            ckpt_write_time_s=base.write_time_s,
            ckpt_time_s=ckpt_time,
            ckpt_compress_energy_j=base.compress_energy_j,
            ckpt_write_energy_j=base.write_energy_j,
            restart_fetch_time_s=r_fetch_t,
            restart_decompress_time_s=r_dec_t,
            restart_fetch_energy_j=r_fetch_e,
            restart_decompress_energy_j=r_dec_e,
            makespan_s=stats.makespan_s,
            n_checkpoints=stats.n_checkpoints,
            n_failures=stats.n_failures,
            rework_s=stats.rework_s,
            compute_energy_j=compute_j,
            checkpoint_energy_j=ckpt_j,
            restart_energy_j=restart_j,
            idle_energy_j=idle_j,
            expected_makespan_s=expected_makespan(spec),
            expected_energy_j=exp_energy,
            ratio=ratio,
            psnr_db=psnr_db,
        )

    # -- figure/table drivers ---------------------------------------------------
    #
    # `run_sweep` is the one generic entrypoint: any registered experiment
    # kind (builtin or plugin) runs through it.  The named drivers below are
    # thin wrappers that keep the seed signatures figures and benchmarks use.

    def run_sweep(self, kind: str, **axes) -> list:
        """Run any registered experiment kind's grid through the engine.

        ``kind`` is looked up in :mod:`repro.runtime.registry`; the
        remaining keyword arguments are :class:`~repro.runtime.spec.
        SweepSpec` axis overrides.  An unknown kind raises
        :class:`~repro.errors.ConfigurationError` naming the known kinds.
        """
        from repro.runtime.spec import SweepSpec

        return self.engine.run(SweepSpec(kind=kind, **axes))

    def run_serial_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        cpus=("max9480",),
        threads: int = 1,
    ) -> list[SerialPoint]:
        """Figs. 5 and 7 (and the data behind Figs. 8/9 and Table III)."""
        return self.run_sweep(
            "serial",
            datasets=datasets,
            codecs=codecs,
            bounds=bounds,
            cpus=cpus,
            threads=(threads,),
        )

    def run_thread_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        threads=(1, 2, 4, 8, 16, 32, 64),
        rel_bound: float = 1e-3,
        cpus=("max9480",),
        paper_fidelity: bool = False,
    ) -> list[SerialPoint]:
        """Fig. 10: OpenMP strong scaling at ε = 1e-3.

        ``paper_fidelity=True`` drops the combinations the paper's reference
        toolchain could not run (OpenMP SZ2 on 1-D/4-D, QoZ on 1-D) so the
        output matrix matches the figure's missing bars exactly.
        """
        return self.run_sweep(
            "thread",
            datasets=datasets,
            codecs=codecs,
            threads=threads,
            rel_bound=rel_bound,
            cpus=cpus,
            paper_fidelity=paper_fidelity,
        )

    def run_quality_table(
        self,
        datasets=("nyx", "hacc", "s3d"),
        codecs=("sz3", "zfp", "szx"),
        bounds=(1e-1, 1e-3, 1e-5),
    ) -> list[RoundtripRecord]:
        """Table III: CR and PSNR grid."""
        return self.run_sweep("quality", datasets=datasets, codecs=codecs, bounds=bounds)

    def run_io_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        io_libraries=("hdf5", "netcdf"),
        cpu_name: str = "max9480",
    ) -> list[IOPoint]:
        """Fig. 11: post-compression write energy plus the original baseline."""
        return self.run_sweep(
            "io",
            datasets=datasets,
            codecs=codecs,
            bounds=bounds,
            io_libraries=io_libraries,
            cpus=(cpu_name,),
        )

    def run_pipeline_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        io_libraries=("hdf5", "netcdf"),
        cpu_name: str = "max9480",
        n_chunks: int = 8,
        overlap: bool = True,
    ) -> list[PipelinePoint]:
        """The Fig. 11 grid through the block-pipelined write model."""
        return self.run_sweep(
            "pipeline",
            datasets=datasets,
            codecs=codecs,
            bounds=bounds,
            io_libraries=io_libraries,
            cpus=(cpu_name,),
            n_chunks=n_chunks,
            overlap=overlap,
        )

    def run_dvfs_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
        freqs: tuple[float, ...] = (),
        io_libraries=("hdf5",),
        cpu_name: str = "max9480",
        include_baseline: bool = True,
    ) -> list[DvfsPoint]:
        """The compress-and-write grid swept along the DVFS frequency axis.

        ``freqs=()`` uses the CPU's canonical
        :meth:`~repro.energy.cpus.CPUSpec.freq_ladder`.  Points are memoized
        in the result store like every other kind.
        """
        return self.run_sweep(
            "dvfs",
            datasets=datasets,
            codecs=codecs,
            bounds=bounds,
            freqs=freqs,
            io_libraries=io_libraries,
            cpus=(cpu_name,),
            include_baseline=include_baseline,
        )

    def run_checkpoint_sweep(
        self,
        datasets=("cesm", "hacc", "nyx", "s3d"),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        bounds=(1e-3,),
        mttfs=(float("inf"), 86400.0, 21600.0),
        io_libraries=("hdf5",),
        cpu_name: str = "max9480",
        work_s: float = 3600.0,
        interval: str | float = "daly",
        n_nodes: int = 1,
        seed: int = 0,
        downtime_s: float = 60.0,
        n_chunks: int = 1,
        overlap: bool = False,
        include_baseline: bool = True,
    ) -> list[CheckpointPoint]:
        """The checkpointed-lifetime grid along the MTTF axis.

        Every point is a full failure-aware lifetime (plus its closed-form
        expectations), memoized in the result store like every other kind.
        """
        return self.run_sweep(
            "checkpoint",
            datasets=datasets,
            codecs=codecs,
            bounds=bounds,
            mttfs=mttfs,
            io_libraries=io_libraries,
            cpus=(cpu_name,),
            work_s=work_s,
            interval=interval,
            n_nodes=n_nodes,
            seed=seed,
            downtime_s=downtime_s,
            n_chunks=n_chunks,
            overlap=overlap,
            include_baseline=include_baseline,
        )

    def run_lossless_comparison(
        self,
        datasets=("qmcpack", "isabel", "cesm", "exafel"),
        eblc=("sz2", "zfp"),
        lossless=("zstd", "blosc", "fpzip", "fpc"),
        rel_bound: float = 1e-2,
    ) -> list[RoundtripRecord]:
        """Fig. 1: lossless vs EBLC ratios."""
        return self.run_sweep(
            "lossless",
            datasets=datasets,
            codecs=eblc,
            lossless_codecs=lossless,
            rel_bound=rel_bound,
        )

    def run_multinode(
        self,
        cores=(16, 32, 64, 128, 256, 512),
        codecs=("sz2", "sz3", "zfp", "qoz"),
        dataset: str = "nyx",
        rel_bound: float = 1e-3,
        cpu_name: str = "plat8160",
        io_library: str = "hdf5",
        payload_nbytes: int | None = None,
        freq_ghz: float | None = None,
    ) -> list[CampaignResult]:
        """Fig. 12: N*R ranks compress + write vs the uncompressed baseline.

        The per-rank payload defaults to one NYX field (the snapshot's six
        fields make a full copy per rank implausible on 192 GB nodes at 48
        ranks; see EXPERIMENTS.md).
        """
        spec = get_dataset(dataset)
        payload = payload_nbytes or spec.paper_nbytes // 6
        campaign = MultiNodeCampaign(
            cpu=get_cpu(cpu_name),
            pfs=self.pfs,
            io_library=get_io_library(io_library),
            payload_nbytes=payload,
            complexity=spec.complexity,
            throughput=self.throughput,
            sample_interval=max(self.sample_interval, 0.02),
        )
        out = []
        for n in cores:
            out.append(campaign.run(n, None, freq_ghz=freq_ghz))
            for codec in codecs:
                rt = self.roundtrip(dataset, codec, rel_bound)
                out.append(
                    campaign.run(
                        n,
                        codec,
                        rel_bound,
                        compression_ratio=rt.ratio,
                        freq_ghz=freq_ghz,
                    )
                )
        return out

    def run_inflation(
        self,
        factors=(1, 2, 3, 4, 5),
        codecs=("sz2", "sz3", "zfp", "qoz", "szx"),
        dataset: str = "nyx",
        rel_bound: float = 1e-3,
        cpu_name: str = "plat8260m",
        base_scale: str = "test",
    ) -> list[InflationPoint]:
        """Fig. 13: serial energy vs inflated NYX sizes.

        The synthetic base is inflated for real (real ratios per factor);
        energy is modeled at paper scale, where factor f makes the 512^3
        snapshot grow to (512 f)^3 — the paper's 0.5 ... 62.5 GB x-axis.
        """
        spec = get_dataset(dataset)
        cpu = get_cpu(cpu_name)
        base = np.array(generate(dataset, base_scale))
        meter = self._meter(cpu)
        out = []
        for f in factors:
            data = inflate(base, f)
            for codec in codecs:
                comp = get_compressor(codec)
                buf = comp.compress(data, rel_bound)
                paper_bytes = spec.paper_nbytes * f**3
                energies = {}
                for direction in ("compress", "decompress"):
                    t = self.throughput.runtime(
                        codec,
                        direction,
                        paper_bytes,
                        rel_bound,
                        cpu,
                        threads=1,
                        complexity=spec.complexity,
                    )
                    energies[direction] = meter.measure_compute(t, 1).energy_j
                out.append(
                    InflationPoint(
                        codec=codec,
                        factor=f,
                        paper_gb=paper_bytes / 1e9,
                        ratio=buf.ratio,
                        compress_energy_j=energies["compress"],
                        decompress_energy_j=energies["decompress"],
                    )
                )
        return out

    # -- convenience -----------------------------------------------------------

    def measure_compression(
        self,
        codec: str,
        data: np.ndarray,
        rel_bound: float,
        cpu_name: str = "plat8160",
        threads: int = 1,
    ):
        """Ad-hoc measurement for user arrays: real compression + modeled energy."""
        comp = get_compressor(codec)
        buf = comp.compress(np.ascontiguousarray(data), rel_bound)
        cpu = get_cpu(cpu_name)
        t = self.throughput.runtime(
            codec, "compress", data.nbytes, rel_bound, cpu, threads=threads
        )
        report = self._meter(cpu).measure_compute(t, threads)
        return buf, report
