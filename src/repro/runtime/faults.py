"""Fault tolerance for sweep execution.

Everything the engine needs to keep a grid alive when individual points
misbehave lives here:

- :class:`RetryPolicy` — how many attempts a point gets, the per-point
  timeout, and a *deterministic* seeded exponential backoff.  Backoff
  delays are a pure function of ``(seed, key, attempt)`` — no wall-clock
  randomness — so a replayed sweep waits the same milliseconds in the same
  places and two engines never disagree about a schedule.
- :class:`FailedPoint` — the structured record a point leaves behind when
  its attempts are exhausted under ``on_error="collect"``: the operation,
  its parameters, the store key, the failure reason, the formatted
  exception chain, and the attempt count.  Failures are *returned*, never
  cached: a FailedPoint is not a store record and a retried sweep will
  re-evaluate the point from scratch.
- :class:`FaultInjector` — a seed-driven chaos harness that deterministically
  injects worker exceptions, hangs, worker-process crashes, and corrupted
  on-disk store entries.  The injection plan is a pure function of
  ``(seed, key, attempt)``, so a chaos test replays bit-identically; by
  default faults fire only on each point's first attempt, so any sweep with
  retries enabled must converge to the exact records of an unfaulted run.
- :class:`SweepManifest` — a crash-safe, append-only completion journal
  written next to a disk cache.  The engine appends each completed store
  key as it lands; a killed-then-resumed sweep reads the manifest to report
  progress and answers the completed points from the store, producing
  records bit-identical to a straight-through run.

See ``docs/user-guide/robustness.md`` for the guided tour.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "FailedPoint",
    "FaultInjector",
    "InjectedFault",
    "RetryPolicy",
    "SweepManifest",
    "error_chain",
    "sweep_id",
]

#: Bump when the manifest line format changes: old manifests become
#: unreadable (and are rewritten) rather than misinterpreted.
MANIFEST_VERSION = 1


def _unit(seed: int, *parts) -> float:
    """A deterministic uniform in [0, 1) from a seed and string-able parts.

    SHA-256 over the joined parts, not ``random``: the value is identical in
    every process, on every platform, and across interpreter restarts —
    which is what makes injected fault plans and backoff jitter replayable.
    """
    blob = ":".join([str(seed), *map(str, parts)]).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2**64


def error_chain(exc: BaseException) -> tuple[str, ...]:
    """The formatted ``raise ... from ...`` chain, outermost first."""
    chain: list[str] = []
    seen: set[int] = set()
    cur: BaseException | None = exc
    while cur is not None and id(cur) not in seen:
        seen.add(id(cur))
        chain.append(f"{type(cur).__name__}: {cur}")
        cur = cur.__cause__ or cur.__context__
    return tuple(chain)


# -- the retry policy ---------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats a failing grid point.

    ``max_attempts`` counts *total* tries (1 = the seed behaviour: no
    retries).  ``timeout_s`` bounds one attempt's wall-clock on the thread
    and process executors (the serial executor cannot preempt itself; see
    the robustness guide).  Backoff before retry ``n`` (n >= 2) is::

        base * factor**(n - 2) * jitter(seed, key, n)   capped at backoff_max_s

    where ``jitter`` is a deterministic multiplier in ``[1 - j, 1 + j]``
    derived by hashing ``(seed, key, n)`` — reproducible, never wall-clock
    random.  The default base of 0 means retries are immediate.

    Exceptions listed in ``non_retryable`` fail the point on first raise;
    by default only :class:`~repro.errors.ConfigurationError` — a bad
    parameter will not get better on a second try.
    """

    max_attempts: int = 1
    timeout_s: float | None = None
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    backoff_max_s: float = 30.0
    seed: int = 0
    non_retryable: tuple[type, ...] = (ConfigurationError,)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ConfigurationError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0:
            raise ConfigurationError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0 <= self.backoff_jitter <= 1:
            raise ConfigurationError("backoff_jitter must be in [0, 1]")
        if self.backoff_max_s < 0:
            raise ConfigurationError("backoff_max_s must be >= 0")

    def retryable(self, exc: BaseException) -> bool:
        """Whether a failed attempt may be re-submitted."""
        return not isinstance(exc, self.non_retryable)

    def backoff_s(self, key: str, attempt: int) -> float:
        """The deterministic delay before ``attempt`` (first retry = 2)."""
        if attempt < 2 or self.backoff_base_s == 0:
            return 0.0
        raw = self.backoff_base_s * self.backoff_factor ** (attempt - 2)
        jitter = 1.0 + self.backoff_jitter * (2 * _unit(self.seed, key, attempt) - 1)
        return min(raw * jitter, self.backoff_max_s)


# -- the failure record -------------------------------------------------------


@dataclass(frozen=True)
class FailedPoint:
    """One grid point that exhausted its attempts (``on_error="collect"``).

    Occupies the point's position in the records list so spec order is
    preserved; within-run duplicates of the same key alias onto one
    FailedPoint exactly as they would onto one record.  ``params`` is the
    sorted ``(name, value)`` tuple form (hashable, like ``GridPoint``);
    ``reason`` is ``"error"``, ``"timeout"``, or ``"crash"``.
    """

    op: str
    params: tuple[tuple[str, object], ...]
    key: str
    reason: str
    error_chain: tuple[str, ...]
    attempts: int

    def as_params(self) -> dict:
        """The point's parameters as a plain dict."""
        return dict(self.params)

    def to_wire(self) -> dict:
        """A JSON-safe tagged dict for ``repro sweep --json`` output."""
        return {
            "__failed__": True,
            "op": self.op,
            "params": {k: repr(v) if isinstance(v, float) and v != v else v
                       for k, v in self.params},
            "key": self.key,
            "reason": self.reason,
            "error_chain": list(self.error_chain),
            "attempts": self.attempts,
        }


# -- the fault-injection harness ----------------------------------------------


class InjectedFault(RuntimeError):
    """The exception a :class:`FaultInjector` raises for an injected error."""


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic, seed-driven chaos for sweep testing.

    Each rate is the probability (per point-attempt) of that fault, decided
    by hashing ``(seed, key, attempt)`` — the same plan replays on every
    run and in every process, and the injector pickles cleanly into process
    workers.  Rates are evaluated in order error -> hang -> crash over one
    uniform draw, so they must sum to <= 1.

    Faults fire only on attempts ``<= max_attempt`` (default: the first),
    which guarantees that a sweep with enough retry budget converges to the
    exact records an unfaulted run produces — the invariant the chaos
    battery pins.

    - ``error``: raises :class:`InjectedFault` in the worker.
    - ``hang``: sleeps ``hang_s`` before evaluating (trip a shorter
      :attr:`RetryPolicy.timeout_s` to exercise the timeout path).
    - ``crash``: ``os._exit`` inside a process-pool worker (the real
      ``BrokenProcessPool`` discipline); downgraded to an
      :class:`InjectedFault` on the serial/thread executors, which share
      the parent process.
    - ``corrupt_rate`` (decided per key, not per attempt): after a record
      is persisted, its on-disk entry is deterministically garbled — the
      checksum/quarantine path recomputes it on the next cold read.
    """

    seed: int = 0
    error_rate: float = 0.0
    hang_rate: float = 0.0
    crash_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_s: float = 0.5
    max_attempt: int = 1

    def __post_init__(self):
        for name in ("error_rate", "hang_rate", "crash_rate", "corrupt_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.error_rate + self.hang_rate + self.crash_rate > 1.0 + 1e-12:
            raise ConfigurationError("error/hang/crash rates must sum to <= 1")
        if self.hang_s < 0:
            raise ConfigurationError("hang_s must be >= 0")
        if self.max_attempt < 0:
            raise ConfigurationError("max_attempt must be >= 0")

    def plan(self, key: str, attempt: int) -> str:
        """The fault for one attempt: 'ok', 'error', 'hang', or 'crash'."""
        if attempt > self.max_attempt:
            return "ok"
        u = _unit(self.seed, key, attempt, "action")
        if u < self.error_rate:
            return "error"
        if u < self.error_rate + self.hang_rate:
            return "hang"
        if u < self.error_rate + self.hang_rate + self.crash_rate:
            return "crash"
        return "ok"

    def apply(self, key: str, attempt: int, in_process_worker: bool = False) -> None:
        """Execute the planned fault for this attempt (no-op for 'ok')."""
        action = self.plan(key, attempt)
        if action == "error":
            raise InjectedFault(
                f"injected worker error (key {key[:12]}..., attempt {attempt})"
            )
        if action == "hang":
            time.sleep(self.hang_s)
        elif action == "crash":
            if in_process_worker:
                os._exit(86)  # hard crash: no cleanup, pool sees a dead worker
            raise InjectedFault(
                f"injected worker crash (key {key[:12]}..., attempt {attempt}; "
                "simulated as an exception outside a process pool)"
            )

    def should_corrupt(self, key: str) -> bool:
        """Whether this key's disk entry gets garbled after its first write."""
        return _unit(self.seed, key, "corrupt") < self.corrupt_rate

    def corrupt(self, store, key: str) -> None:
        """Deterministically garble ``key``'s on-disk entry (if any)."""
        if store.cache_dir is None:
            return
        path = store._disk_path(key)
        try:
            text = path.read_text()
        except OSError:
            return
        # Truncate mid-payload: half the entries become invalid JSON, the
        # rest parse but fail the checksum — both corruption flavours.
        path.write_text(text[: max(1, len(text) // 2)])


# -- the sweep manifest -------------------------------------------------------


def sweep_id(spec, fingerprint: dict) -> str:
    """A stable content hash identifying one (spec, testbed-config) sweep.

    Built from the same canonical JSON as store keys, so the identity is
    stable across processes and platforms; any spec axis or testbed knob
    change yields a different manifest, never a misattributed resume.
    """
    from repro.runtime.store import _canonical_json, _canonical_params

    blob = _canonical_json(
        {
            "version": MANIFEST_VERSION,
            "spec": _canonical_params(spec.to_dict(), "spec"),
            "testbed": fingerprint,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepManifest:
    """Append-only journal of completed store keys for one sweep.

    One JSONL file per sweep identity next to the cache entries: a header
    line naming the sweep id and the unique-point total, then one line per
    completed key.  Lines are flushed as written, so a killed process loses
    at most the in-flight line — and a torn trailing line is skipped on
    load, never trusted.  Appends take an advisory ``flock`` (where the
    platform has one) so concurrent engines sharing the cache dir interleave
    whole lines.
    """

    def __init__(self, cache_dir, sweep: str, total: int):
        self.sweep = sweep
        self.total = int(total)
        self.path = Path(cache_dir) / f"sweep-{sweep[:24]}.manifest.jsonl"
        self._done: set[str] = set()
        self._fh = None

    @property
    def done(self) -> frozenset:
        """Keys recorded complete (from the loaded file plus this run)."""
        return frozenset(self._done)

    @staticmethod
    def _parse(path: Path, sweep: str) -> set[str] | None:
        """Completed keys from an existing manifest, or None if foreign."""
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(header, dict)
            or header.get("sweep") != sweep
            or header.get("version") != MANIFEST_VERSION
        ):
            return None
        done: set[str] = set()
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a killed writer
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                done.add(entry["key"])
        return done

    @classmethod
    def progress(cls, cache_dir, sweep: str) -> tuple[int, int] | None:
        """(completed, total) recorded for a sweep, or None if no manifest."""
        path = Path(cache_dir) / f"sweep-{sweep[:24]}.manifest.jsonl"
        done = cls._parse(path, sweep)
        if done is None:
            return None
        try:
            header = json.loads(path.read_text().splitlines()[0])
            total = int(header.get("total", 0))
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        return len(done), total

    def open(self) -> "SweepManifest":
        """Load any prior progress and open the journal for appending."""
        existing = self._parse(self.path, self.sweep)
        if existing is None:
            # Absent, foreign, or unreadable: start a fresh journal.
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._append(
                {"version": MANIFEST_VERSION, "sweep": self.sweep, "total": self.total}
            )
        else:
            self._done = existing
            self._fh = open(self.path, "a", encoding="utf-8")
        return self

    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        from repro.runtime.store import _file_lock

        with _file_lock(self._fh):
            self._fh.write(line)
            self._fh.flush()

    def record(self, key: str) -> None:
        """Journal one completed key (idempotent)."""
        if self._fh is None or key in self._done:
            return
        self._done.add(key)
        self._append({"key": key})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
