"""The parallel, memoizing, fault-tolerant sweep engine.

:class:`SweepEngine` turns a :class:`~repro.runtime.spec.SweepSpec` into
records: it expands the grid, answers every point it can from its
:class:`~repro.runtime.store.ResultStore`, deduplicates the rest (two
figures asking for the same point in one run still cost one evaluation),
fans the remainder out over a serial loop, a thread pool, or a process
pool, and returns records in the spec's deterministic order — identical to
what the seed ``Testbed`` loops produced, whatever the executor.

Failures are isolated per point.  A failing attempt is re-submitted under
the engine's :class:`~repro.runtime.faults.RetryPolicy` (attempt budget,
per-point timeout, deterministic seeded backoff); a crashed process worker
(``BrokenProcessPool``) costs a pool rebuild and a re-queue of only the
lost in-flight points — completed records are never discarded; and a point
that exhausts its attempts either re-raises (``on_error="raise"``, the
default and the seed behaviour) or surfaces as a structured
:class:`~repro.runtime.faults.FailedPoint` in its grid position
(``on_error="collect"``).  When the store persists to disk, the engine
also journals every completed key into a crash-safe
:class:`~repro.runtime.faults.SweepManifest`, so a killed sweep resumes
from the cache with bit-identical records.

Process workers rebuild the testbed once per process from a picklable
config and keep it in a module global keyed by the testbed fingerprint, so
a long sweep pays the dataset-generation cost once per worker, not once
per point.  Every substrate under the testbed is a deterministic
simulation, which is what makes ``parallel == serial`` an equality, not an
approximation.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.obs.trace import active_tracer

from repro.errors import ConfigurationError
from repro.runtime import registry
from repro.runtime.faults import (
    FailedPoint,
    RetryPolicy,
    SweepManifest,
    error_chain,
    sweep_id,
)
from repro.runtime.spec import GridPoint, SweepSpec
from repro.runtime.store import ResultStore, default_store, point_key, testbed_fingerprint

__all__ = ["SweepEvent", "EngineStats", "SweepEngine", "EXECUTORS", "ON_ERROR"]

EXECUTORS = ("serial", "thread", "process")
ON_ERROR = ("raise", "collect")


@dataclass(frozen=True)
class SweepEvent:
    """One progress notification from a sweep run.

    ``kind`` is ``"start"`` (total known), ``"point"`` (one record ready;
    ``cached`` says whether it came from the store), ``"retry"`` (an
    attempt failed and the point was re-queued; ``attempt`` is the attempt
    that failed, ``error`` its message), ``"failed"`` (attempts exhausted
    under ``on_error="collect"``), or ``"finish"``.
    """

    kind: str
    index: int = 0
    total: int = 0
    op: str = ""
    key: str = ""
    cached: bool = False
    attempt: int = 0
    error: str = ""
    #: Wall seconds since the run started when this event was emitted.
    #: Observability payload only — never part of records or cache keys.
    wall_time_s: float = 0.0
    #: Duration of the attempt behind a "point" event (0.0 for cache hits;
    #: for process-pool points this spans submit→completion, queueing
    #: included, since the worker clock is not observable from the parent).
    attempt_s: float = 0.0


@dataclass
class EngineStats:
    """Evaluation counters for one engine (cumulative across runs)."""

    computed: int = 0
    cache_hits: int = 0
    runs: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    pool_rebuilds: int = 0

    def snapshot(self) -> dict:
        return {
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "runs": self.runs,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "pool_rebuilds": self.pool_rebuilds,
        }


# -- process-pool plumbing ----------------------------------------------------

#: Per-worker-process testbeds, keyed by fingerprint hash: rebuilt at most
#: once per (process, testbed config), reused across all points.  The key
#: covers the full testbed fingerprint, so a parent that mutates its config
#: between runs can never be served a stale worker testbed.
_WORKER_TESTBEDS: dict = {}


def _build_testbed(config: dict):
    from repro.core.experiments import Testbed

    return Testbed(**config)


def _evaluate_in_worker(config: dict, config_id: str, op: str, kwargs: dict,
                        fault=None, key: str = "", attempt: int = 1):
    """Module-level so ProcessPoolExecutor can pickle it by reference."""
    if fault is not None:
        fault.apply(key, attempt, in_process_worker=True)
    testbed = _WORKER_TESTBEDS.get(config_id)
    if testbed is None:
        testbed = _build_testbed(config)
        _WORKER_TESTBEDS[config_id] = testbed
    return registry.evaluate_op(testbed, op, kwargs)


class _Task:
    """Mutable per-point attempt state while a sweep is in flight."""

    __slots__ = ("index", "key", "point", "attempts")

    def __init__(self, index: int, key: str, point: GridPoint):
        self.index = index
        self.key = key
        self.point = point
        self.attempts = 0  # attempts charged so far


class SweepEngine:
    """Expand, memoize, and (optionally) parallelise testbed sweeps.

    Parameters
    ----------
    testbed:
        The :class:`~repro.core.experiments.Testbed` to evaluate points on;
        a default bench-scale one is built when omitted.
    store:
        Result cache.  Defaults to the process-wide
        :func:`~repro.runtime.store.default_store`, so every engine in a
        session shares hits; pass a fresh :class:`ResultStore` (optionally
        with ``cache_dir``) to isolate or persist.
    executor:
        ``"serial"`` (in-process loop), ``"thread"``, or ``"process"``.
    max_workers:
        Pool width for the parallel executors; default ``os.cpu_count()``.
    on_event:
        Optional callable receiving :class:`SweepEvent` progress updates.
    retry_policy:
        A :class:`~repro.runtime.faults.RetryPolicy`; the default gives
        every point a single attempt and no timeout (the seed behaviour).
    on_error:
        ``"raise"`` re-raises a point's final error (default);
        ``"collect"`` records it as a :class:`FailedPoint` in the point's
        grid position and keeps sweeping.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` that
        deterministically injects worker faults — the chaos-test harness,
        never set in production runs.
    """

    def __init__(
        self,
        testbed=None,
        store: ResultStore | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        on_event=None,
        retry_policy: RetryPolicy | None = None,
        on_error: str = "raise",
        fault_injector=None,
    ):
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if on_error not in ON_ERROR:
            raise ConfigurationError(
                f"unknown on_error {on_error!r}; expected one of {ON_ERROR}"
            )
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed()
        self.testbed = testbed
        self.store = store if store is not None else default_store()
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.on_event = on_event
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.on_error = on_error
        self.fault_injector = fault_injector
        self.stats = EngineStats()
        self._manifest: SweepManifest | None = None
        self._run_t0: float | None = None

    # -- internals -----------------------------------------------------------

    def _emit(self, event: SweepEvent) -> None:
        if self.on_event is None:
            return
        if self._run_t0 is not None and event.wall_time_s == 0.0:
            event = dataclasses.replace(
                event, wall_time_s=time.perf_counter() - self._run_t0
            )
        self.on_event(event)

    def _key(self, point: GridPoint) -> str:
        # The fingerprint is recomputed per lookup, not cached at engine
        # construction: mutating the testbed (scale, models) between runs
        # must change every key, never serve results for the old config.
        return point_key(point.op, point.as_kwargs(), testbed_fingerprint(self.testbed))

    def _compute_local(self, point: GridPoint):
        # Registry dispatch: a kind-registered evaluate entrypoint when one
        # exists for the op, otherwise the Testbed method of the same name.
        return registry.evaluate_op(self.testbed, point.op, point.as_kwargs())

    def _attempt_local(self, point: GridPoint, key: str, attempt: int):
        """One serial/thread attempt, with any injected fault applied."""
        if self.fault_injector is not None:
            self.fault_injector.apply(key, attempt)
        tracer = active_tracer()
        if tracer is None:
            return self._compute_local(point)
        import threading

        with tracer.span(
            f"evaluate:{point.op}", track=threading.current_thread().name,
            op=point.op, key=key[:12], attempt=attempt,
        ):
            return self._compute_local(point)

    def _testbed_config(self) -> dict:
        """Picklable kwargs that rebuild an equivalent testbed in a worker."""
        tb = self.testbed
        return {
            "scale": tb.scale,
            "pfs": tb.pfs,
            "throughput": tb.throughput,
            "sample_interval": tb.sample_interval,
            "verify_bounds": tb.verify_bounds,
        }

    # -- completion / failure bookkeeping ------------------------------------

    def _complete(self, task: _Task, record, total: int,
                  attempt_s: float = 0.0) -> None:
        self.store.put(task.key, record)
        if (
            self.fault_injector is not None
            and self.store.cache_dir is not None
            and self.fault_injector.should_corrupt(task.key)
        ):
            self.fault_injector.corrupt(self.store, task.key)
        if self._manifest is not None:
            self._manifest.record(task.key)
        self.stats.computed += 1
        self._emit(
            SweepEvent("point", index=task.index, total=total,
                       op=task.point.op, key=task.key, attempt_s=attempt_s)
        )

    def _should_retry(self, task: _Task, exc: BaseException) -> bool:
        return (
            task.attempts < self.retry_policy.max_attempts
            and self.retry_policy.retryable(exc)
        )

    def _note_retry(self, task: _Task, exc: BaseException, total: int) -> None:
        self.stats.retries += 1
        self._emit(
            SweepEvent("retry", index=task.index, total=total, op=task.point.op,
                       key=task.key, attempt=task.attempts, error=str(exc))
        )

    def _fail(self, task: _Task, exc: BaseException, total: int,
              reason: str) -> FailedPoint:
        """Attempts exhausted: raise or produce the structured failure."""
        self.stats.failures += 1
        failed = FailedPoint(
            op=task.point.op,
            params=task.point.kwargs,
            key=task.key,
            reason=reason,
            error_chain=error_chain(exc),
            attempts=task.attempts,
        )
        self._emit(
            SweepEvent("failed", index=task.index, total=total, op=task.point.op,
                       key=task.key, attempt=task.attempts, error=str(exc))
        )
        if self.on_error == "raise":
            raise exc
        return failed

    # -- serial execution ----------------------------------------------------

    def _run_serial(self, pending: list[tuple[int, str, GridPoint]], total: int) -> dict:
        """Evaluate points in-process with per-point retry isolation.

        The serial executor cannot preempt a running attempt, so
        ``timeout_s`` is not enforced here — use the thread or process
        executor for points that may hang.
        """
        computed: dict[str, object] = {}
        for index, key, point in pending:
            task = _Task(index, key, point)
            while True:
                task.attempts += 1
                attempt_t0 = time.perf_counter()
                try:
                    record = self._attempt_local(point, key, task.attempts)
                except Exception as exc:
                    if self._should_retry(task, exc):
                        self._note_retry(task, exc, total)
                        delay = self.retry_policy.backoff_s(key, task.attempts + 1)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    computed[key] = self._fail(task, exc, total, reason="error")
                    break
                computed[key] = record
                self._complete(task, record, total,
                               attempt_s=time.perf_counter() - attempt_t0)
                break
        return computed

    # -- pool execution ------------------------------------------------------

    def _make_pool(self):
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.max_workers)
        return ProcessPoolExecutor(max_workers=self.max_workers)

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear a process pool down *now*, stuck workers included."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _submit(self, pool, task: _Task, config, config_id):
        task.attempts += 1
        if self.executor == "thread":
            return pool.submit(self._attempt_local, task.point, task.key, task.attempts)
        return pool.submit(
            _evaluate_in_worker, config, config_id, task.point.op,
            task.point.as_kwargs(), self.fault_injector, task.key, task.attempts,
        )

    def _run_pool(self, pending: list[tuple[int, str, GridPoint]], total: int) -> dict:
        """Evaluate deduplicated points on a pool; returns {key: record}.

        Per-point failure isolation: a worker exception costs one attempt
        for that point only; a timed-out point is charged and re-queued
        (the process pool is rebuilt to reclaim the stuck worker, the
        thread future is abandoned); a ``BrokenProcessPool`` rebuilds the
        pool and re-queues exactly the in-flight points — every completed
        record is already in the store and is never recomputed.
        """
        policy = self.retry_policy
        computed: dict[str, object] = {}
        config = self._testbed_config()
        config_id = point_key("__testbed__", {}, testbed_fingerprint(self.testbed))
        # ready_at gates backoff without blocking the whole pool loop.
        queue: deque[tuple[float, _Task]] = deque(
            (0.0, _Task(index, key, point)) for index, key, point in pending
        )
        pool = self._make_pool()
        futures: dict = {}  # Future -> (task, deadline | None, submit_t)
        abandoned: set = set()  # timed-out thread futures; results discarded
        try:
            while queue or futures:
                now = time.monotonic()
                # Submit everything whose backoff delay has elapsed.
                deferred: deque = deque()
                while queue:
                    ready_at, task = queue.popleft()
                    if ready_at > now:
                        deferred.append((ready_at, task))
                        continue
                    fut = self._submit(pool, task, config, config_id)
                    deadline = (
                        now + policy.timeout_s if policy.timeout_s is not None else None
                    )
                    futures[fut] = (task, deadline, time.monotonic())
                queue = deferred
                if not futures:
                    # Everything is backing off; sleep to the nearest ready_at.
                    time.sleep(max(0.0, min(r for r, _ in queue) - time.monotonic()))
                    continue
                wait_s = None
                deadlines = [d for _, d, _ in futures.values() if d is not None]
                if deadlines:
                    wait_s = max(0.0, min(deadlines) - time.monotonic())
                if queue:
                    next_ready = max(0.0, min(r for r, _ in queue) - time.monotonic())
                    wait_s = next_ready if wait_s is None else min(wait_s, next_ready)
                done, _ = wait(
                    set(futures) | abandoned, timeout=wait_s,
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for fut in done:
                    if fut in abandoned:
                        abandoned.discard(fut)  # late result of a timed-out try
                        continue
                    task, _deadline, submit_t = futures.pop(fut)
                    try:
                        record = fut.result()
                    except BrokenProcessPool as exc:
                        # The pool died under this future.  Whether this task
                        # crashed it or merely rode along is unknowable, so
                        # every lost point is charged one attempt — the one
                        # that deterministically re-crashes otherwise.
                        pool_broken = True
                        if self._should_retry(task, exc):
                            self._note_retry(task, exc, total)
                            queue.append((0.0, task))
                        else:
                            computed[task.key] = self._fail(
                                task, exc, total, reason="crash"
                            )
                    except Exception as exc:
                        if self._should_retry(task, exc):
                            self._note_retry(task, exc, total)
                            delay = policy.backoff_s(task.key, task.attempts + 1)
                            queue.append((time.monotonic() + delay, task))
                        else:
                            computed[task.key] = self._fail(
                                task, exc, total, reason="error"
                            )
                    else:
                        computed[task.key] = record
                        self._complete(task, record, total,
                                       attempt_s=time.monotonic() - submit_t)
                if pool_broken:
                    # Requeue any stragglers the pool manager has not failed
                    # yet (uncharged: their fate is already decided).
                    for fut, (task, _deadline, _submit_t) in list(futures.items()):
                        queue.append((0.0, task))
                    futures.clear()
                    pool.shutdown(wait=False)
                    pool = self._make_pool()
                    self.stats.pool_rebuilds += 1
                    continue
                # Deadline sweep: charge expired futures as timeouts.  The
                # clock bounds *execution*, not queueing — a future still
                # waiting behind busy workers gets its deadline pushed out
                # rather than a timeout it never had a chance to beat.
                now = time.monotonic()
                expired = []
                for fut, (task, deadline, submit_t) in list(futures.items()):
                    if deadline is None or deadline > now or fut.done():
                        continue
                    if not fut.running():
                        futures[fut] = (task, now + policy.timeout_s, submit_t)
                        continue
                    expired.append((fut, task))
                if not expired:
                    continue
                for fut, task in expired:
                    del futures[fut]
                    self.stats.timeouts += 1
                    exc = TimeoutError(
                        f"grid point exceeded the {policy.timeout_s}s per-point "
                        f"timeout (op {task.point.op}, attempt {task.attempts})"
                    )
                    if self._should_retry(task, exc):
                        self._note_retry(task, exc, total)
                        delay = policy.backoff_s(task.key, task.attempts + 1)
                        queue.append((time.monotonic() + delay, task))
                    else:
                        computed[task.key] = self._fail(
                            task, exc, total, reason="timeout"
                        )
                if self.executor == "thread":
                    # A thread cannot be killed: abandon the future (its
                    # eventual result is discarded) and move on.
                    abandoned.update(fut for fut, _ in expired)
                else:
                    # Reclaim stuck workers: kill the pool, re-queue the
                    # innocent in-flight points uncharged, start fresh.
                    for fut, (task, _deadline, _submit_t) in list(futures.items()):
                        queue.append((0.0, task))
                    futures.clear()
                    self._kill_pool(pool)
                    pool = self._make_pool()
                    self.stats.pool_rebuilds += 1
        finally:
            if self.executor == "process":
                self._kill_pool(pool)
            else:
                # Let abandoned (timed-out) threads drain in the background
                # instead of blocking the caller on them.
                pool.shutdown(wait=not abandoned)
        return computed

    # -- public API ----------------------------------------------------------

    def run(self, spec: SweepSpec) -> list:
        """Evaluate every grid point of ``spec``; records in spec order.

        With ``on_error="collect"``, positions whose point exhausted its
        attempts hold a :class:`~repro.runtime.faults.FailedPoint` instead
        of a record.
        """
        points = spec.points()
        keys = [self._key(p) for p in points]
        self.stats.runs += 1
        manifest = None
        if self.store.cache_dir is not None:
            manifest = SweepManifest(
                self.store.cache_dir,
                sweep_id(spec, testbed_fingerprint(self.testbed)),
                total=len(set(keys)),
            ).open()
        self._manifest = manifest
        self._run_t0 = time.perf_counter()
        try:
            self._emit(SweepEvent("start", total=len(points)))

            results: dict[int, object] = {}
            pending: list[tuple[int, str, GridPoint]] = []
            scheduled: set[str] = set()
            for i, (key, point) in enumerate(zip(keys, points)):
                record = self.store.get(key)
                if record is not None:
                    results[i] = record
                    self.stats.cache_hits += 1
                    if manifest is not None:
                        manifest.record(key)
                    self._emit(
                        SweepEvent(
                            "point", index=i, total=len(points), op=point.op,
                            key=key, cached=True,
                        )
                    )
                elif key not in scheduled:
                    scheduled.add(key)
                    pending.append((i, key, point))

            if pending:
                if self.executor == "serial" or len(pending) == 1:
                    computed = self._run_serial(pending, total=len(points))
                else:
                    computed = self._run_pool(pending, total=len(points))
                # Fill in every index, including within-run duplicates that
                # aliased onto a single scheduled evaluation.
                for i in range(len(points)):
                    if i not in results:
                        results[i] = computed[keys[i]]

            self._emit(SweepEvent("finish", total=len(points)))
            return [results[i] for i in range(len(points))]
        finally:
            self._manifest = None
            self._run_t0 = None
            tracer = active_tracer()
            if tracer is not None:
                tracer.metrics.merge("engine", self.stats.snapshot())
                tracer.metrics.merge("store", self.store.stats)
            if manifest is not None:
                manifest.close()

    def evaluate(self, op: str, **kwargs):
        """Single-point path: memoized lookup-or-compute for one operation."""
        point = GridPoint.make(op, **kwargs)
        key = self._key(point)
        record = self.store.get(key)
        if record is not None:
            self.stats.cache_hits += 1
            return record
        record = self._compute_local(point)
        self.store.put(key, record)
        self.stats.computed += 1
        return record
