"""The parallel, memoizing sweep engine.

:class:`SweepEngine` turns a :class:`~repro.runtime.spec.SweepSpec` into
records: it expands the grid, answers every point it can from its
:class:`~repro.runtime.store.ResultStore`, deduplicates the rest (two
figures asking for the same point in one run still cost one evaluation),
fans the remainder out over a serial loop, a thread pool, or a process
pool, and returns records in the spec's deterministic order — identical to
what the seed ``Testbed`` loops produced, whatever the executor.

Process workers rebuild the testbed once per process from a picklable
config and keep it in a module global keyed by the testbed fingerprint, so
a long sweep pays the dataset-generation cost once per worker, not once
per point.  Every substrate under the testbed is a deterministic
simulation, which is what makes ``parallel == serial`` an equality, not an
approximation.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime import registry
from repro.runtime.spec import GridPoint, SweepSpec
from repro.runtime.store import ResultStore, default_store, point_key, testbed_fingerprint

__all__ = ["SweepEvent", "EngineStats", "SweepEngine", "EXECUTORS"]

EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepEvent:
    """One progress notification from a sweep run.

    ``kind`` is ``"start"`` (total known), ``"point"`` (one record ready;
    ``cached`` says whether it came from the store), or ``"finish"``.
    """

    kind: str
    index: int = 0
    total: int = 0
    op: str = ""
    key: str = ""
    cached: bool = False


@dataclass
class EngineStats:
    """Evaluation counters for one engine (cumulative across runs)."""

    computed: int = 0
    cache_hits: int = 0
    runs: int = 0

    def snapshot(self) -> dict:
        return {"computed": self.computed, "cache_hits": self.cache_hits, "runs": self.runs}


# -- process-pool plumbing ----------------------------------------------------

#: Per-worker-process testbeds, keyed by fingerprint hash: rebuilt at most
#: once per (process, testbed config), reused across all points.
_WORKER_TESTBEDS: dict = {}


def _build_testbed(config: dict):
    from repro.core.experiments import Testbed

    return Testbed(**config)


def _evaluate_in_worker(config: dict, config_id: str, op: str, kwargs: dict):
    """Module-level so ProcessPoolExecutor can pickle it by reference."""
    testbed = _WORKER_TESTBEDS.get(config_id)
    if testbed is None:
        testbed = _build_testbed(config)
        _WORKER_TESTBEDS[config_id] = testbed
    return registry.evaluate_op(testbed, op, kwargs)


class SweepEngine:
    """Expand, memoize, and (optionally) parallelise testbed sweeps.

    Parameters
    ----------
    testbed:
        The :class:`~repro.core.experiments.Testbed` to evaluate points on;
        a default bench-scale one is built when omitted.
    store:
        Result cache.  Defaults to the process-wide
        :func:`~repro.runtime.store.default_store`, so every engine in a
        session shares hits; pass a fresh :class:`ResultStore` (optionally
        with ``cache_dir``) to isolate or persist.
    executor:
        ``"serial"`` (in-process loop), ``"thread"``, or ``"process"``.
    max_workers:
        Pool width for the parallel executors; default ``os.cpu_count()``.
    on_event:
        Optional callable receiving :class:`SweepEvent` progress updates.
    """

    def __init__(
        self,
        testbed=None,
        store: ResultStore | None = None,
        executor: str = "serial",
        max_workers: int | None = None,
        on_event=None,
    ):
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if testbed is None:
            from repro.core.experiments import Testbed

            testbed = Testbed()
        self.testbed = testbed
        self.store = store if store is not None else default_store()
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.on_event = on_event
        self.stats = EngineStats()

    # -- internals -----------------------------------------------------------

    def _emit(self, event: SweepEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _key(self, point: GridPoint) -> str:
        # The fingerprint is recomputed per lookup, not cached at engine
        # construction: mutating the testbed (scale, models) between runs
        # must change every key, never serve results for the old config.
        return point_key(point.op, point.as_kwargs(), testbed_fingerprint(self.testbed))

    def _compute_local(self, point: GridPoint):
        # Registry dispatch: a kind-registered evaluate entrypoint when one
        # exists for the op, otherwise the Testbed method of the same name.
        return registry.evaluate_op(self.testbed, point.op, point.as_kwargs())

    def _testbed_config(self) -> dict:
        """Picklable kwargs that rebuild an equivalent testbed in a worker."""
        tb = self.testbed
        return {
            "scale": tb.scale,
            "pfs": tb.pfs,
            "throughput": tb.throughput,
            "sample_interval": tb.sample_interval,
            "verify_bounds": tb.verify_bounds,
        }

    def _run_pool(self, pending: list[tuple[int, str, GridPoint]], total: int) -> dict:
        """Evaluate deduplicated points on a pool; returns {key: record}."""
        pool_cls = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
        computed: dict[str, object] = {}
        config = self._testbed_config()
        config_id = point_key("__testbed__", {}, testbed_fingerprint(self.testbed))
        with pool_cls(max_workers=self.max_workers) as pool:
            futures = {}
            for index, key, point in pending:
                if self.executor == "thread":
                    fut = pool.submit(self._compute_local, point)
                else:
                    fut = pool.submit(
                        _evaluate_in_worker, config, config_id, point.op, point.as_kwargs()
                    )
                futures[fut] = (index, key, point)
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    index, key, point = futures[fut]
                    record = fut.result()  # re-raises worker exceptions
                    computed[key] = record
                    self.store.put(key, record)
                    self.stats.computed += 1
                    self._emit(
                        SweepEvent("point", index=index, total=total, op=point.op, key=key)
                    )
        return computed

    # -- public API ----------------------------------------------------------

    def run(self, spec: SweepSpec) -> list:
        """Evaluate every grid point of ``spec``; records in spec order."""
        points = spec.points()
        keys = [self._key(p) for p in points]
        self.stats.runs += 1
        self._emit(SweepEvent("start", total=len(points)))

        results: dict[int, object] = {}
        pending: list[tuple[int, str, GridPoint]] = []
        scheduled: set[str] = set()
        for i, (key, point) in enumerate(zip(keys, points)):
            record = self.store.get(key)
            if record is not None:
                results[i] = record
                self.stats.cache_hits += 1
                self._emit(
                    SweepEvent(
                        "point", index=i, total=len(points), op=point.op, key=key, cached=True
                    )
                )
            elif key not in scheduled:
                scheduled.add(key)
                pending.append((i, key, point))

        if pending:
            if self.executor == "serial" or len(pending) == 1:
                computed = {}
                for i, key, point in pending:
                    record = self._compute_local(point)
                    computed[key] = record
                    self.store.put(key, record)
                    self.stats.computed += 1
                    self._emit(
                        SweepEvent("point", index=i, total=len(points), op=point.op, key=key)
                    )
            else:
                computed = self._run_pool(pending, total=len(points))
            # Fill in every index, including within-run duplicates that
            # aliased onto a single scheduled evaluation.
            for i in range(len(points)):
                if i not in results:
                    results[i] = computed[keys[i]]

        self._emit(SweepEvent("finish", total=len(points)))
        return [results[i] for i in range(len(points))]

    def evaluate(self, op: str, **kwargs):
        """Single-point path: memoized lookup-or-compute for one operation."""
        point = GridPoint.make(op, **kwargs)
        key = self._key(point)
        record = self.store.get(key)
        if record is not None:
            self.stats.cache_hits += 1
            return record
        record = self._compute_local(point)
        self.store.put(key, record)
        self.stats.computed += 1
        return record
