"""Kernel benchmark harness: the repository's performance trajectory.

The figure benches simulate testbed *energies*; this module measures the
actual wall-clock speed of the hot entropy/bitstream kernels that decide
whether compression repays its cost — Huffman encode/decode, variable-width
bit packing/unpacking, and the ZFP bitplane codec.  Inputs are representative
symbol distributions: quantizer output streams derived from the synthetic
CESM/NYX/HACC fields (tiled to a stable working size), plus a seeded 1M-symbol
synthetic quantizer stream.

Results are written to ``BENCH_kernels.json`` (repo root by default) with
per-kernel throughput in MB/s and symbols/s.  Each run folds the previous
run into a bounded ``history`` list and reports the delta, so the perf
trajectory of the kernels is recorded alongside the code.  The JSON schema is
validated by :func:`validate_doc`; CI fails on schema drift, never on
absolute timings.

CLI: ``repro bench kernels [--quick] [--output PATH]`` (see ``docs/cli.md``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro import __version__
from repro.compressors import get_compressor
from repro.compressors.bitstream import pack_bits, unpack_bits
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.quantizer import LinearQuantizer
from repro.obs.trace import active_tracer

__all__ = [
    "BENCH_DATASETS",
    "DEFAULT_OUTPUT",
    "KERNELS",
    "SCHEMA_VERSION",
    "SYNTHETIC_DATASET",
    "KernelInputs",
    "KernelSpec",
    "check_regressions",
    "compare_docs",
    "format_report",
    "kernel_inputs",
    "load_doc",
    "run_and_report",
    "run_kernels",
    "validate_doc",
    "write_doc",
]

SCHEMA_VERSION = 1
DEFAULT_OUTPUT = "BENCH_kernels.json"
HISTORY_LIMIT = 20
BENCH_DATASETS = ("cesm", "nyx", "hacc")
#: Seeded 1M-symbol quantizer-code stream (entropy kernels only); the
#: acceptance target for the vectorized Huffman decoder is measured here.
SYNTHETIC_DATASET = "synthetic-1m"

_RESULT_FIELDS = {
    "kernel": str,
    "dataset": str,
    "n_symbols": int,
    "n_bytes": int,
    "seconds_per_call": float,
    "mb_per_s": float,
    "sym_per_s": float,
    "calls": int,
}


@dataclass(frozen=True)
class KernelInputs:
    """Per-dataset inputs shared by the kernel preparations.

    ``codes`` is the quantizer symbol stream (what the entropy kernels see in
    the SZ pipelines); ``field`` is the underlying float array for the
    transform-codec kernels (``None`` for the synthetic stream).
    """

    dataset: str
    codes: np.ndarray
    field: np.ndarray | None
    rel_bound: float


@dataclass(frozen=True)
class KernelSpec:
    """A named kernel: ``prepare`` builds a zero-argument timed callable.

    ``prepare`` returns ``(fn, n_symbols, n_bytes)`` — or ``None`` when the
    kernel does not apply to the given inputs (e.g. no float field).
    ``n_bytes`` is the uncompressed array payload the call moves, the basis
    of the MB/s figure.
    """

    name: str
    prepare: Callable[[KernelInputs], "tuple[Callable[[], object], int, int] | None"]


def _widths_from_codes(codes: np.ndarray) -> np.ndarray:
    """Per-code bit widths (the SZX-style truncated-field shape)."""
    return np.maximum(
        1, np.ceil(np.log2(codes.astype(np.float64) + 2.0)).astype(np.int64)
    )


def _prep_huffman_encode(inp: KernelInputs):
    codes = inp.codes
    return (lambda: huffman_encode(codes)), codes.size, codes.nbytes


def _prep_huffman_decode(inp: KernelInputs):
    codes = inp.codes
    blob = huffman_encode(codes)
    return (lambda: huffman_decode(blob)), codes.size, codes.nbytes


def _prep_pack_bits(inp: KernelInputs):
    values = inp.codes.astype(np.uint64)
    widths = _widths_from_codes(inp.codes)
    return (lambda: pack_bits(values, widths)), values.size, values.nbytes


def _prep_unpack_bits(inp: KernelInputs):
    values = inp.codes.astype(np.uint64)
    widths = _widths_from_codes(inp.codes)
    packed = pack_bits(values, widths)
    return (lambda: unpack_bits(packed, widths)), values.size, values.nbytes


def _prep_zfp_compress(inp: KernelInputs):
    if inp.field is None:
        return None
    comp = get_compressor("zfp")
    field = inp.field
    return (lambda: comp.compress(field, inp.rel_bound)), field.size, field.nbytes


def _prep_zfp_decompress(inp: KernelInputs):
    if inp.field is None:
        return None
    comp = get_compressor("zfp")
    blob = comp.compress(inp.field, inp.rel_bound).data
    return (lambda: comp.decompress(blob)), inp.field.size, inp.field.nbytes


KERNELS: tuple[KernelSpec, ...] = (
    KernelSpec("huffman_encode", _prep_huffman_encode),
    KernelSpec("huffman_decode", _prep_huffman_decode),
    KernelSpec("pack_bits", _prep_pack_bits),
    KernelSpec("unpack_bits", _prep_unpack_bits),
    KernelSpec("zfp_compress", _prep_zfp_compress),
    KernelSpec("zfp_decompress", _prep_zfp_decompress),
)


def kernel_inputs(
    dataset: str,
    *,
    rel_bound: float = 1e-3,
    target_symbols: int = 1 << 20,
    scale: str = "test",
) -> KernelInputs:
    """Build the representative symbol stream for ``dataset``.

    Real datasets are quantized against a one-step Lorenzo predictor (the
    previous flattened element) and the resulting code stream is tiled up to
    ``target_symbols`` so throughput numbers are stable across machines.
    """
    if dataset == SYNTHETIC_DATASET:
        rng = np.random.default_rng(20260729)
        codes = rng.geometric(0.45, size=target_symbols).astype(np.int64)
        codes[rng.random(codes.size) < 0.002] = 0
        return KernelInputs(dataset, codes, None, rel_bound)

    from repro.data import generate

    field = np.asarray(generate(dataset, scale), dtype=np.float64)
    span = float(field.max() - field.min())
    abs_bound = rel_bound * (span if span > 0 else 1.0)
    flat = field.ravel()
    pred = np.concatenate(([0.0], flat[:-1]))
    codes = LinearQuantizer(abs_bound).quantize(flat, pred).codes.ravel()
    if codes.size and codes.size < target_symbols:
        codes = np.tile(codes, -(-target_symbols // codes.size))[:target_symbols]
    return KernelInputs(dataset, np.ascontiguousarray(codes), field, rel_bound)


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm-up (also materializes any lazy caches)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        t1 = time.perf_counter()
        best = min(best, t1 - t0)
    return best


def run_kernels(
    datasets: Iterable[str] | None = None,
    *,
    quick: bool = False,
    repeats: int = 3,
) -> dict:
    """Time every kernel on every dataset; returns a schema-valid document."""
    if datasets is None:
        datasets = BENCH_DATASETS + (SYNTHETIC_DATASET,)
    target = 1 << 16 if quick else 1 << 20
    scale = "tiny" if quick else "test"
    repeats = 1 if quick else repeats
    results = []
    for dataset in datasets:
        inputs = kernel_inputs(dataset, target_symbols=target, scale=scale)
        for spec in KERNELS:
            prepared = spec.prepare(inputs)
            if prepared is None:
                continue
            fn, n_symbols, n_bytes = prepared
            tracer = active_tracer()
            if tracer is None:
                seconds = _best_seconds(fn, repeats)
            else:
                with tracer.span(f"bench:{spec.name}", track=f"bench:{dataset}",
                                 kernel=spec.name, dataset=dataset,
                                 n_symbols=int(n_symbols)):
                    seconds = _best_seconds(fn, repeats)
            results.append(
                {
                    "kernel": spec.name,
                    "dataset": dataset,
                    "n_symbols": int(n_symbols),
                    "n_bytes": int(n_bytes),
                    "seconds_per_call": float(seconds),
                    "mb_per_s": float(n_bytes / seconds / 1e6),
                    "sym_per_s": float(n_symbols / seconds),
                    "calls": int(repeats) + 1,
                }
            )
            if tracer is not None:
                base = f"bench.{spec.name}.{dataset}"
                tracer.metrics.gauge(f"{base}.mb_per_s").set(n_bytes / seconds / 1e6)
                tracer.metrics.gauge(f"{base}.sym_per_s").set(n_symbols / seconds)
    return {
        "schema_version": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "repro_version": __version__,
        "quick": bool(quick),
        "results": results,
        "history": [],
    }


def validate_doc(doc: object) -> None:
    """Raise ``ValueError`` if ``doc`` drifts from the benchmark JSON schema."""
    if not isinstance(doc, dict):
        raise ValueError("benchmark document must be a JSON object")
    required = {
        "schema_version": int,
        "created": str,
        "repro_version": str,
        "quick": bool,
        "results": list,
        "history": list,
    }
    for key, typ in required.items():
        if key not in doc:
            raise ValueError(f"missing top-level key {key!r}")
        if not isinstance(doc[key], typ):
            raise ValueError(f"key {key!r} must be {typ.__name__}")
    if doc["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {doc['schema_version']} != expected {SCHEMA_VERSION}"
        )
    if not doc["results"]:
        raise ValueError("results must be non-empty")
    for i, rec in enumerate(doc["results"]):
        if not isinstance(rec, dict):
            raise ValueError(f"results[{i}] must be an object")
        for key, typ in _RESULT_FIELDS.items():
            if key not in rec:
                raise ValueError(f"results[{i}] missing key {key!r}")
            value = rec[key]
            if typ is float:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"results[{i}].{key} must be a number")
            elif not isinstance(value, typ) or isinstance(value, bool) != (typ is bool):
                raise ValueError(f"results[{i}].{key} must be {typ.__name__}")
        if rec["seconds_per_call"] <= 0:
            raise ValueError(f"results[{i}].seconds_per_call must be positive")


def load_doc(path: str) -> dict:
    """Load and validate a benchmark document."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_doc(doc)
    return doc


def write_doc(path: str, doc: dict, previous: dict | None = None) -> dict:
    """Write ``doc``, folding ``previous`` into the bounded history trail.

    Returns the document as written (history merged).
    """
    if previous is not None:
        trail = [
            {k: v for k, v in previous.items() if k != "history"}
        ] + previous.get("history", [])
        doc = dict(doc, history=trail[:HISTORY_LIMIT])
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def compare_docs(old: dict, new: dict) -> list[dict]:
    """Per-(kernel, dataset) speedup of ``new`` over ``old`` (>1 is faster).

    Records are only compared at equal ``n_symbols`` — a ``--quick`` run
    against a stored full run would otherwise report input-size ratios as
    speedups (e.g. in CI, where the committed full run is present).
    """
    prev = {(r["kernel"], r["dataset"]): r for r in old["results"]}
    deltas = []
    for rec in new["results"]:
        before = prev.get((rec["kernel"], rec["dataset"]))
        if before is None or before["n_symbols"] != rec["n_symbols"]:
            continue
        deltas.append(
            {
                "kernel": rec["kernel"],
                "dataset": rec["dataset"],
                "old_seconds_per_call": before["seconds_per_call"],
                "new_seconds_per_call": rec["seconds_per_call"],
                "speedup": before["seconds_per_call"] / rec["seconds_per_call"],
            }
        )
    return deltas


def format_report(doc: dict, deltas: list[dict] | None = None) -> str:
    """Human-readable table of one run, with deltas vs the previous run."""
    from repro.core.report import format_table

    by_key = {(d["kernel"], d["dataset"]): d for d in (deltas or [])}
    headers = ["kernel", "dataset", "symbols", "MB/s", "Msym/s", "s/call", "vs prev"]
    rows = []
    for rec in doc["results"]:
        delta = by_key.get((rec["kernel"], rec["dataset"]))
        rows.append(
            [
                rec["kernel"],
                rec["dataset"],
                f"{rec['n_symbols']:,}",
                f"{rec['mb_per_s']:.1f}",
                f"{rec['sym_per_s'] / 1e6:.2f}",
                f"{rec['seconds_per_call']:.4f}",
                f"{delta['speedup']:.2f}x" if delta else "-",
            ]
        )
    title = f"kernel benchmarks ({'quick' if doc['quick'] else 'full'})"
    return format_table(headers, rows, title=title)


def check_regressions(deltas: list[dict], max_regression_pct: float) -> None:
    """Raise :class:`BenchmarkRegression` if any kernel slowed past the budget.

    A delta regresses when its speedup falls below ``1 / (1 + pct/100)`` —
    i.e. the new run takes more than ``pct`` percent longer per call than the
    previous run at equal ``n_symbols``.  Deltas already exclude mismatched
    input sizes (see :func:`compare_docs`), so a ``--quick`` run is only ever
    gated against another quick run.
    """
    from repro.errors import BenchmarkRegression

    threshold = 1.0 / (1.0 + max_regression_pct / 100.0)
    offenders = [d for d in deltas if d["speedup"] < threshold]
    if offenders:
        raise BenchmarkRegression(max_regression_pct, offenders)


def run_and_report(
    output: str = DEFAULT_OUTPUT,
    *,
    datasets: Iterable[str] | None = None,
    quick: bool = False,
    repeats: int = 3,
    max_regression_pct: float | None = None,
    emit: Callable[[str], None] = print,
) -> dict:
    """The round-trip the CLI drives: load previous → run → compare → write.

    Returns the new document (with the history trail already folded in).
    With ``max_regression_pct`` set, raises :class:`BenchmarkRegression`
    after the document is written (the run is recorded either way — CI gets
    both the failure and the artifact) if any comparable kernel slowed down
    by more than that percentage.
    """
    import os

    previous = None
    if os.path.exists(output):
        try:
            previous = load_doc(output)
        except (ValueError, json.JSONDecodeError) as exc:
            emit(f"ignoring unreadable previous run at {output}: {exc}")
    doc = run_kernels(datasets, quick=quick, repeats=repeats)
    deltas = compare_docs(previous, doc) if previous else []
    doc = write_doc(output, doc, previous)
    emit(format_report(doc, deltas))
    if previous:
        emit(
            f"\ncompared against previous run from {previous['created']} "
            f"({len(doc.get('history', []))} runs in history trail)"
        )
    emit(f"wrote {output}")
    if max_regression_pct is not None:
        check_regressions(deltas, max_regression_pct)
    return load_doc(output)
