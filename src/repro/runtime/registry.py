"""The experiment-kind plugin registry.

Every sweepable experiment in the repo — the serial/thread profiling grids,
the quality and lossless round-trip tables, the write/read I/O grids, the
block-pipelined writes, the DVFS frequency axis, and the checkpointed
lifetimes — used to re-thread the same (dataset x codec x bound x CPU x
I/O-library) plumbing through five parallel code paths: ``Testbed``
dispatch, ``SweepSpec`` validation and expansion, store record
registration, CLI flag wiring, and a per-kind ``check_*_schema.py`` tool.

This module replaces all of that with one declaration per kind.  An
:class:`ExperimentKind` names, in one place:

- the ``SweepSpec`` fields the kind consumes (its CLI argument surface),
- kind-specific spec **validation** (checked eagerly at spec construction),
- the grid **expansion** into :class:`~repro.runtime.spec.GridPoint` work
  items (the deterministic order every figure expects),
- the **evaluate entrypoint(s)** — testbed operations, or plugin-supplied
  callables for kinds that live outside :class:`Testbed`,
- the **record** dataclass (store registration + JSON schema, both derived),
- the CLI **table** renderer and the record **invariants** behind
  ``tools/check_record_schemas.py``,
- a tiny **conformance** grid, which opts the kind into the full
  ``tests/test_conformance.py`` battery.

Registering a kind is all it takes: the sweep engine, the result store,
``repro sweep --kind <name>``, the unified schema checker, and the
conformance test battery discover it through :func:`get_kind` /
:func:`all_kinds` — a new experiment axis (service layer, multi-tenant
campaigns, dataset facade) lands as a plugin, not a sixth hand-threaded
stack.  Registration validates the protocol eagerly: a plugin missing a
required member, reusing a kind name, or claiming unknown spec fields is
rejected with a :class:`~repro.errors.ConfigurationError` at registration
time, never mid-sweep.

Grid-point identity is untouched by the registry: expansions emit the same
``(op, kwargs)`` pairs the hand-threaded drivers did, so content-addressed
store keys (and therefore every golden record) are bit-identical to the
seed tree — pinned by the conformance battery.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import typing
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "CliAxis",
    "ExperimentKind",
    "SWEEP_AXES",
    "all_kinds",
    "axis_spec_value",
    "check_records",
    "cli_axes",
    "evaluate_op",
    "get_kind",
    "kind_names",
    "record_schema",
    "record_types",
    "register",
    "register_record",
    "strip_meta",
    "to_wire",
    "unregister",
]


# -- the CLI axis table -------------------------------------------------------


@dataclass(frozen=True)
class CliAxis:
    """One ``repro sweep`` flag bound to one :class:`SweepSpec` field.

    ``parse`` names how the raw argparse value becomes the spec value:
    ``csv_str``/``csv_float``/``csv_int`` split comma-separated strings,
    ``float``/``int`` pass typed scalars through, ``interval`` keeps policy
    names and converts everything else to seconds, ``flag`` is a plain
    store-true, and ``invert`` maps a ``--no-X`` store-true flag onto a
    default-true spec field.  ``flag`` may be ``None`` for spec-only fields
    with no CLI surface.
    """

    field: str
    flag: str | None
    parse: str
    default: object = None
    help: str = ""

    @property
    def dest(self) -> str:
        """The argparse namespace attribute this axis reads."""
        return self.flag.lstrip("-").replace("-", "_")


#: Every SweepSpec axis a kind may declare in ``spec_fields``, in the
#: canonical ``repro sweep --help`` order.  The CLI builds its sweep flags
#: from this table (restricted to the axes some registered kind consumes).
SWEEP_AXES: tuple[CliAxis, ...] = (
    CliAxis("datasets", "--datasets", "csv_str", "cesm,hacc,nyx,s3d",
            "comma-separated"),
    CliAxis("codecs", "--codecs", "csv_str", "sz2,sz3,zfp,qoz,szx",
            "comma-separated"),
    CliAxis("bounds", "--bounds", "csv_float", "1e-1,1e-2,1e-3,1e-4,1e-5",
            "comma-separated REL error bounds"),
    CliAxis("cpus", "--cpus", "csv_str", "max9480",
            "comma-separated Table-I names"),
    CliAxis("io_libraries", "--io-libraries", "csv_str", "hdf5,netcdf",
            "comma-separated"),
    CliAxis("threads", "--threads", "csv_int", "1",
            "comma-separated thread counts (axis for --kind thread)"),
    CliAxis("rel_bound", "--rel-bound", "float", 1e-3,
            "single bound used by the thread/lossless kinds"),
    CliAxis("include_baseline", "--no-baseline", "invert", False,
            "io/read/pipeline kinds: skip the uncompressed baseline points"),
    CliAxis("n_chunks", "--n-chunks", "int", 8,
            "pipeline kind: chunks streamed through the compress-write pipeline"),
    CliAxis("overlap", "--no-overlap", "invert", False,
            "pipeline kind: disable stage overlap (sequential control run)"),
    CliAxis("freqs", "--freqs", "csv_float", "",
            "dvfs kind: comma-separated core frequencies in GHz "
            "(default: each CPU's canonical DVFS ladder)"),
    CliAxis("mttfs", "--mttfs", "csv_float", "inf,86400,21600",
            "checkpoint kind: comma-separated per-node MTTFs in seconds "
            "('inf' = failure-free control)"),
    CliAxis("work_s", "--work", "float", 3600.0,
            "checkpoint kind: failure-free compute seconds per lifetime"),
    CliAxis("interval", "--interval", "interval", "daly",
            "checkpoint kind: 'daly', 'young', or explicit seconds "
            "between checkpoints"),
    CliAxis("n_nodes", "--n-nodes", "int", 1,
            "checkpoint kind: allocation width (system MTTF = mttf / nodes)"),
    CliAxis("seed", "--seed", "int", 0,
            "checkpoint kind: failure-history seed"),
    CliAxis("downtime_s", "--downtime", "float", 60.0,
            "checkpoint kind: node outage seconds per failure"),
    CliAxis("lossless_codecs", "--lossless-codecs", "csv_str",
            "zstd,blosc,fpzip,fpc",
            "lossless kind: comma-separated lossless baseline codecs"),
    CliAxis("paper_fidelity", "--paper-fidelity", "flag", False,
            "thread kind: drop codec/ndim combos the paper's toolchain "
            "could not run"),
    CliAxis("compression", "--compression", "str", "",
            "compression-spec string, e.g. 'lossy,sz3,rel,1e-3' or "
            "'auto,rel,1e-3'; derives/narrows the codec and bound axes "
            "(see docs/user-guide/datasets.md)"),
    CliAxis("scenario", "--scenario", "str", "",
            "cluster kind: scenario string, e.g. "
            "'nodes=8; a=ranks:96,codec:szx; b=ranks:96,codec:none' "
            "(see docs/user-guide/cluster.md)"),
)

#: The spec fields a kind may legally claim.
KNOWN_SPEC_FIELDS = frozenset(a.field for a in SWEEP_AXES)


def _csv(text: str) -> tuple[str, ...]:
    return tuple(part for part in text.split(",") if part)


def axis_spec_value(axis: CliAxis, raw):
    """Convert one parsed CLI value into its SweepSpec field value."""
    if axis.parse == "csv_str":
        return _csv(raw)
    if axis.parse == "csv_float":
        return tuple(float(x) for x in _csv(raw))
    if axis.parse == "csv_int":
        return tuple(int(x) for x in _csv(raw))
    if axis.parse == "interval":
        return raw if raw in ("daly", "young") else float(raw)
    if axis.parse == "invert":
        return not raw
    return raw  # float / int / flag: argparse already typed it


def cli_axes() -> tuple[CliAxis, ...]:
    """The axes (with CLI flags) consumed by at least one registered kind."""
    used: set[str] = set()
    for kind in all_kinds():
        used.update(kind.spec_fields)
    return tuple(a for a in SWEEP_AXES if a.flag is not None and a.field in used)


# -- the kind protocol --------------------------------------------------------


@dataclass(frozen=True)
class ExperimentKind:
    """One experiment kind, declared in a single place.

    Required members: ``name``, ``help``, ``record``, ``load_record``,
    ``expand``, ``ops``, ``spec_fields``.  Optional: ``validate`` (extra
    spec checks), ``evaluate`` (op-name -> callable(testbed, **kwargs) for
    ops that are not ``Testbed`` methods), ``table`` (CLI renderer),
    ``invariants`` (JSON-record checks for the schema gate), and
    ``conformance`` (tiny SweepSpec overrides enrolling the kind in the
    conformance battery).
    """

    name: str
    help: str
    record: str  # record dataclass name (the store's __record__ tag)
    load_record: typing.Callable[[], type]
    expand: typing.Callable[..., list]  # SweepSpec -> [GridPoint]
    ops: tuple[str, ...]  # evaluate entrypoints the expansion emits
    spec_fields: tuple[str, ...]  # SweepSpec axes the kind consumes
    validate: typing.Callable[..., None] | None = None
    evaluate: dict | None = None  # op -> callable(testbed, **kwargs)
    table: typing.Callable[[list], str] | None = None
    invariants: typing.Callable[[list], list] | None = None
    conformance: dict | None = field(default=None, hash=False)

    def json_schema(self) -> dict:
        """The JSON schema of this kind's encoded records."""
        return record_schema(self.load_record())

    def check_records(self, records: list) -> list:
        """Schema + invariant violations in CLI-format JSON ``records``."""
        return check_records(self, records)


_LOCK = threading.Lock()
_KINDS: dict[str, ExperimentKind] = {}
_OPS: dict[str, typing.Callable | None] = {}  # None = a Testbed method
#: Extra record dataclasses (campaign results, plugin side records) that
#: encode/decode through the store without being a kind's primary record.
_EXTRA_RECORDS: dict[str, type] = {}
_RECORD_TYPES_CACHE: dict[str, type] | None = None


def _required(kind, member: str, check, what: str) -> None:
    value = getattr(kind, member, None)
    if not check(value):
        raise ConfigurationError(
            f"experiment kind {getattr(kind, 'name', kind)!r} is missing or "
            f"mis-declares protocol member {member!r}: expected {what}"
        )


def register(kind: ExperimentKind) -> ExperimentKind:
    """Register an experiment kind, validating the protocol eagerly.

    Raises :class:`ConfigurationError` on a duplicate name, a missing or
    non-callable protocol member, an unknown spec field, or an evaluate
    entrypoint that conflicts with an already-registered one — at
    registration time, never from inside a worker pool.
    """
    _required(kind, "name", lambda v: isinstance(v, str) and v, "a non-empty str")
    _required(kind, "help", lambda v: isinstance(v, str) and v, "a one-line str")
    _required(kind, "record", lambda v: isinstance(v, str) and v, "a record class name")
    _required(kind, "load_record", callable, "a zero-arg callable returning the record class")
    _required(kind, "expand", callable, "a callable(spec) -> [GridPoint]")
    _required(
        kind, "ops",
        lambda v: isinstance(v, tuple) and v and all(isinstance(o, str) and o for o in v),
        "a non-empty tuple of op names",
    )
    _required(
        kind, "spec_fields",
        lambda v: isinstance(v, tuple) and all(isinstance(f, str) for f in v),
        "a tuple of SweepSpec field names",
    )
    unknown = set(kind.spec_fields) - KNOWN_SPEC_FIELDS
    if unknown:
        raise ConfigurationError(
            f"experiment kind {kind.name!r} claims unknown spec fields "
            f"{sorted(unknown)}; known: {sorted(KNOWN_SPEC_FIELDS)}"
        )
    for member in ("validate", "table", "invariants"):
        value = getattr(kind, member, None)
        if value is not None and not callable(value):
            raise ConfigurationError(
                f"experiment kind {kind.name!r}: {member} must be callable or None"
            )
    evaluate = getattr(kind, "evaluate", None)
    if evaluate is not None:
        if not isinstance(evaluate, dict) or not all(
            op in kind.ops and callable(fn) for op, fn in evaluate.items()
        ):
            raise ConfigurationError(
                f"experiment kind {kind.name!r}: evaluate must map declared op "
                "names to callables(testbed, **kwargs)"
            )
    conformance = getattr(kind, "conformance", None)
    if conformance is not None and not isinstance(conformance, dict):
        raise ConfigurationError(
            f"experiment kind {kind.name!r}: conformance must be a dict of "
            "SweepSpec overrides or None"
        )
    with _LOCK:
        if kind.name in _KINDS:
            raise ConfigurationError(
                f"experiment kind {kind.name!r} is already registered"
            )
        for op in kind.ops:
            fn = (evaluate or {}).get(op)
            if op in _OPS and _OPS[op] is not fn:
                raise ConfigurationError(
                    f"experiment kind {kind.name!r}: op {op!r} is already "
                    "registered with a different evaluate entrypoint"
                )
        _KINDS[kind.name] = kind
        for op in kind.ops:
            _OPS[op] = (evaluate or {}).get(op)
        _invalidate_record_cache()
    return kind


def unregister(name: str) -> None:
    """Remove a registered kind (primarily for tests tearing down plugins)."""
    with _LOCK:
        if name not in _KINDS:
            raise ConfigurationError(f"experiment kind {name!r} is not registered")
        del _KINDS[name]
        # Rebuild the op table: ops may be shared between kinds.
        _OPS.clear()
        for kind in _KINDS.values():
            for op in kind.ops:
                _OPS[op] = (kind.evaluate or {}).get(op)
        _invalidate_record_cache()


def get_kind(name: str) -> ExperimentKind:
    """Look up a kind; unknown names fail naming every registered kind."""
    kind = _KINDS.get(name)
    if kind is None:
        raise ConfigurationError(
            f"unknown experiment kind {name!r}; known kinds: "
            f"({', '.join(sorted(_KINDS))})"
        )
    return kind


def all_kinds() -> tuple[ExperimentKind, ...]:
    """Every registered kind, in registration order."""
    return tuple(_KINDS.values())


def kind_names() -> tuple[str, ...]:
    """Registered kind names, in registration order."""
    return tuple(_KINDS)


def evaluate_op(testbed, op: str, kwargs: dict):
    """Evaluate one grid point: a plugin entrypoint or a Testbed method."""
    fn = _OPS.get(op)
    if fn is not None:
        return fn(testbed, **kwargs)
    method = getattr(testbed, op, None)
    if method is None:
        raise ConfigurationError(
            f"no evaluate entrypoint for op {op!r}: not a Testbed method and "
            f"not registered by any experiment kind ({', '.join(sorted(_OPS))})"
        )
    return method(**kwargs)


# -- store registration -------------------------------------------------------


def register_record(cls: type) -> type:
    """Register an auxiliary record dataclass for store encode/decode.

    Kinds register their primary record implicitly; this hook is for side
    records (campaign results, nested plugin payloads) that must round-trip
    through :func:`repro.runtime.store.encode_record` without owning a kind.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigurationError(f"{cls!r} is not a dataclass; cannot be a record")
    # Collisions are rejected eagerly — against kind records and nested
    # records too, not just previous register_record calls — so a bad
    # registration never poisons the shared record-type map.
    try:
        existing = record_types().get(cls.__name__)
    except Exception:
        # Registration can run mid-import of a records module (campaign
        # records register while core.experiments is still initialising, so
        # the kinds' load_record() cannot resolve yet).  Check the extras
        # only; record_types() enforces the full invariant on first use.
        existing = _EXTRA_RECORDS.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"record name {cls.__name__!r} is already registered by "
            f"{existing!r}"
        )
    with _LOCK:
        _EXTRA_RECORDS[cls.__name__] = cls
        _invalidate_record_cache()
    return cls


def _invalidate_record_cache() -> None:
    global _RECORD_TYPES_CACHE
    _RECORD_TYPES_CACHE = None


def record_types() -> dict:
    """Every encodable record dataclass, keyed by its ``__record__`` tag.

    Covers each registered kind's primary record, any nested record
    dataclasses reachable through their fields (e.g. ``SerialPoint`` nests
    ``RoundtripRecord``), and auxiliary records from
    :func:`register_record`.
    """
    global _RECORD_TYPES_CACHE
    cached = _RECORD_TYPES_CACHE
    if cached is not None:
        return cached
    out: dict[str, type] = {}

    def add(cls: type) -> None:
        seen = out.get(cls.__name__)
        if seen is cls:
            return
        if seen is not None:
            raise ConfigurationError(
                f"record name {cls.__name__!r} is claimed by two different "
                f"classes: {seen!r} and {cls!r}"
            )
        out[cls.__name__] = cls
        for tp in typing.get_type_hints(cls).values():
            for arg in (tp, *typing.get_args(tp)):
                if dataclasses.is_dataclass(arg) and isinstance(arg, type):
                    add(arg)

    for kind in all_kinds():
        cls = kind.load_record()
        if not dataclasses.is_dataclass(cls):
            raise ConfigurationError(
                f"experiment kind {kind.name!r}: load_record() returned "
                f"{cls!r}, which is not a dataclass"
            )
        if cls.__name__ != kind.record:
            raise ConfigurationError(
                f"experiment kind {kind.name!r}: record tag {kind.record!r} "
                f"does not match load_record() class {cls.__name__!r}"
            )
        add(cls)
    for cls in _EXTRA_RECORDS.values():
        add(cls)
    _RECORD_TYPES_CACHE = out
    return out


# -- JSON schemas (derived from the record dataclasses) -----------------------


def _field_schema(tp) -> dict:
    """The JSON schema of one record field, derived from its type hint."""
    import types

    origin = typing.get_origin(tp)
    if origin is typing.Union or origin is getattr(types, "UnionType", None):
        types: list[str] = []
        nonfinite = False
        nested = None
        for arg in typing.get_args(tp):
            sub = _field_schema(arg)
            if "properties" in sub:
                nested = sub
            for t in sub["type"] if isinstance(sub["type"], list) else [sub["type"]]:
                if t not in types:
                    types.append(t)
            nonfinite = nonfinite or sub.get("x-nonfinite", False)
        if nested is not None:
            return nested  # Optional[record] — not used today, be safe
        out = {"type": types[0] if len(types) == 1 else types}
        if nonfinite:
            out["x-nonfinite"] = True
        return out
    if origin in (tuple, list):
        args = typing.get_args(tp)
        if origin is tuple and len(args) == 2 and args[1] is Ellipsis:
            item = args[0]
        elif origin is list and len(args) == 1:
            item = args[0]
        else:
            raise ConfigurationError(
                f"cannot derive a JSON schema for field type {tp!r}: only "
                "homogeneous sequences (tuple[X, ...] / list[X]) are supported"
            )
        return {"type": "array", "items": _field_schema(item)}
    if dataclasses.is_dataclass(tp):
        return record_schema(tp)
    if tp is type(None):
        return {"type": "null"}
    if tp is bool:
        return {"type": "boolean"}
    if tp is int:
        return {"type": "integer"}
    if tp is float:
        # ``repro sweep --json`` emits non-finite floats as repr strings
        # ("inf"/"-inf"/"nan") to stay RFC 8259; the validator accepts a
        # string here only when it parses to a non-finite float.
        return {"type": "number", "x-nonfinite": True}
    if tp is str:
        return {"type": "string"}
    raise ConfigurationError(f"cannot derive a JSON schema for field type {tp!r}")


def record_schema(record_cls: type) -> dict:
    """The JSON schema of one record dataclass as the CLI/tools emit it."""
    hints = typing.get_type_hints(record_cls)
    names = [f.name for f in dataclasses.fields(record_cls)]
    properties = {"__record__": {"const": record_cls.__name__}}
    for name in names:
        properties[name] = _field_schema(hints[name])
    return {
        "$id": f"repro.record.{record_cls.__name__}",
        "type": "object",
        "required": ["__record__", *names],
        "additionalProperties": False,
        "properties": properties,
    }


def _num(value) -> float:
    """A schema-validated number that may be a non-finite repr string."""
    return float(value) if isinstance(value, str) else value


def _check_value(value, schema: dict, where: str, errors: list) -> None:
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{where}: expected {schema['const']!r}, got {value!r}")
        return
    if "properties" in schema:
        _check_object(value, schema, where, errors)
        return
    if "items" in schema:
        if not isinstance(value, list):
            errors.append(f"{where}: wrong type {type(value).__name__}")
            return
        for i, item in enumerate(value):
            _check_value(item, schema["items"], f"{where}[{i}]", errors)
        return
    types = schema["type"] if isinstance(schema["type"], list) else [schema["type"]]
    for t in types:
        if t == "null" and value is None:
            return
        if t == "boolean" and isinstance(value, bool):
            return
        if t == "integer" and isinstance(value, int) and not isinstance(value, bool):
            return
        if t == "number" and isinstance(value, (int, float)) and not isinstance(value, bool):
            return
        if t == "string" and isinstance(value, str):
            return
    if schema.get("x-nonfinite") and isinstance(value, str):
        try:
            if not math.isfinite(float(value)):
                return  # "inf" / "-inf" / "nan" repr of a non-finite float
        except ValueError:
            pass
    errors.append(f"{where}: wrong type {type(value).__name__}")


def _check_object(record, schema: dict, where: str, errors: list) -> None:
    if not isinstance(record, dict):
        errors.append(f"{where}: not an object")
        return
    for name in schema["required"]:
        if name not in record:
            errors.append(f"{where}: missing field {name!r}")
    for name, value in record.items():
        sub = schema["properties"].get(name)
        if sub is None:
            errors.append(f"{where}: unexpected field {name!r}")
        else:
            _check_value(value, sub, f"{where}.{name}", errors)


def strip_meta(records):
    """Drop ``__meta__``-tagged elements from a CLI-format JSON array.

    ``repro sweep --json`` appends one trailing ``{"__meta__": ...}``
    element with engine/store run statistics; it is observability payload,
    not a record, so every schema/invariant consumer skips it here.
    """
    if not isinstance(records, list):
        return records
    return [r for r in records if not (isinstance(r, dict) and "__meta__" in r)]


def check_records(kind: ExperimentKind, records) -> list:
    """All schema + invariant violations in CLI-format JSON ``records``.

    ``__meta__`` elements (sweep run statistics) are skipped, never
    validated — they are deliberately outside every record schema.
    """
    records = strip_meta(records)
    if not isinstance(records, list) or not records:
        return ["expected a non-empty JSON array of records"]
    errors: list[str] = []
    schema = kind.json_schema()
    for i, rec in enumerate(records):
        _check_object(rec, schema, f"record[{i}]", errors)
    if errors:
        return errors  # schema violations make the invariants meaningless
    if kind.invariants is not None:
        errors.extend(kind.invariants(records))
    return errors


def check_record_payloads(record_cls: type, records) -> list:
    """Schema violations in JSON ``records`` of one record dataclass.

    The schema-only counterpart of :func:`check_records` for records
    registered through :func:`register_record` without owning a kind
    (campaign results, nested plugin payloads) — so
    ``tools/check_record_schemas.py`` can validate their JSON too.
    """
    records = strip_meta(records)
    if not isinstance(records, list) or not records:
        return ["expected a non-empty JSON array of records"]
    errors: list[str] = []
    schema = record_schema(record_cls)
    for i, rec in enumerate(records):
        _check_object(rec, schema, f"record[{i}]", errors)
    return errors


def to_wire(records) -> list:
    """Records as ``repro sweep --json`` emits them (strict RFC 8259).

    Non-finite floats become their repr strings ("inf"/"-inf"/"nan") —
    ``json.dumps`` would otherwise print bare ``Infinity`` tokens that
    strict parsers reject.  This is the exact format
    :func:`check_records` and ``tools/check_record_schemas.py`` validate.
    """
    from repro.runtime.store import encode_record

    def finite(value):
        if isinstance(value, float) and not math.isfinite(value):
            return repr(value)
        if isinstance(value, dict):
            return {k: finite(v) for k, v in value.items()}
        if isinstance(value, list):
            return [finite(v) for v in value]
        return value

    return [finite(encode_record(r)) for r in records]


# -- builtin kinds ------------------------------------------------------------
#
# The expansions below are verbatim ports of the seed SweepSpec._points_*
# methods: they must emit identical (op, kwargs) pairs, because those pairs
# are the content-addressed store identity of every evaluated point.


def _load(name: str):
    def load():
        import repro.core.experiments as exp

        return getattr(exp, name)

    load.__name__ = f"load_{name}"
    return load


def _grid_point(op: str, **kwargs):
    from repro.runtime.spec import GridPoint

    return GridPoint.make(op, **kwargs)


def _expand_serial(spec) -> list:
    return [
        _grid_point(
            "serial_point",
            dataset=ds,
            codec=codec,
            rel_bound=eps,
            cpu_name=cpu,
            threads=spec.threads[0],
        )
        for cpu in spec.cpus
        for ds in spec.datasets
        for codec in spec.codecs
        for eps in spec.bounds
    ]


def _expand_thread(spec) -> list:
    from repro.compressors.capabilities import supported
    from repro.data.registry import get_dataset

    out = []
    for cpu in spec.cpus:
        for ds in spec.datasets:
            ndim = len(get_dataset(ds).paper_shape)
            for codec in spec.codecs:
                if spec.paper_fidelity and not supported(codec, ndim, "openmp"):
                    continue
                for th in spec.threads:
                    out.append(
                        _grid_point(
                            "serial_point",
                            dataset=ds,
                            codec=codec,
                            rel_bound=spec.rel_bound,
                            cpu_name=cpu,
                            threads=th,
                        )
                    )
    return out


def _validate_thread(spec) -> None:
    """Fail early — naming each capability reason — when ``paper_fidelity``
    would drop *every* (codec, dataset) combination from a thread sweep.

    Partial drops stay silent (the paper's own figures omit those series);
    an entirely empty grid is a configuration error, and the reasons come
    from :func:`repro.compressors.capabilities.unsupported_reason` instead
    of a bare zero-record sweep.
    """
    if not spec.paper_fidelity:
        return
    from repro.compressors.capabilities import supported, unsupported_reason
    from repro.data.registry import get_dataset

    reasons = []
    for ds in spec.datasets:
        ndim = len(get_dataset(ds).paper_shape)
        for codec in spec.codecs:
            if supported(codec, ndim, "openmp"):
                return  # at least one combination survives the filter
            reasons.append(
                f"{codec} on {ndim}-D {ds}: "
                f"{unsupported_reason(codec, ndim, 'openmp')}"
            )
    if reasons:
        raise ConfigurationError(
            "--paper-fidelity drops every (codec, dataset) combination from "
            "this thread sweep: " + "; ".join(reasons)
        )


def _expand_quality(spec) -> list:
    return [
        _grid_point("roundtrip", dataset=ds, codec=codec, rel_bound=eps)
        for ds in spec.datasets
        for eps in spec.bounds
        for codec in spec.codecs
    ]


def _expand_lossless(spec) -> list:
    out = []
    for ds in spec.datasets:
        for codec in spec.lossless_codecs:
            out.append(_grid_point("roundtrip", dataset=ds, codec=codec, rel_bound=0.0))
        for codec in spec.codecs:
            out.append(
                _grid_point("roundtrip", dataset=ds, codec=codec, rel_bound=spec.rel_bound)
            )
    return out


def _expand_io(spec, op: str = "io_point") -> list:
    out = []
    for cpu in spec.cpus:
        for lib in spec.io_libraries:
            for ds in spec.datasets:
                if spec.include_baseline:
                    out.append(
                        _grid_point(
                            op,
                            dataset=ds,
                            codec=None,
                            rel_bound=None,
                            io_library=lib,
                            cpu_name=cpu,
                        )
                    )
                for codec in spec.codecs:
                    for eps in spec.bounds:
                        out.append(
                            _grid_point(
                                op,
                                dataset=ds,
                                codec=codec,
                                rel_bound=eps,
                                io_library=lib,
                                cpu_name=cpu,
                            )
                        )
    return out


def _expand_read(spec) -> list:
    return _expand_io(spec, op="read_point")


def _expand_pipeline(spec) -> list:
    # Same grid as `io`, evaluated through the block-pipelined model.
    return [
        _grid_point(
            "pipeline_point",
            n_chunks=spec.n_chunks,
            overlap=spec.overlap,
            **p.as_kwargs(),
        )
        for p in _expand_io(spec, op="pipeline_point")
    ]


def _expand_dvfs(spec) -> list:
    # Same grid as `io`, replicated along the frequency axis (innermost);
    # an empty freqs axis means each CPU's canonical DVFS ladder.
    from repro.energy.cpus import get_cpu

    out = []
    for p in _expand_io(spec, op="dvfs_point"):
        kwargs = p.as_kwargs()
        freqs = spec.freqs or get_cpu(kwargs["cpu_name"]).freq_ladder()
        for f in freqs:
            out.append(_grid_point("dvfs_point", freq_ghz=float(f), **kwargs))
    return out


def _expand_checkpoint(spec) -> list:
    # The `io` grid replicated along the per-node MTTF axis (innermost).
    # The pipeline (n_chunks/overlap) and scenario fields ride along on
    # every point; the default n_chunks=1 prices checkpoints through the
    # sequential write path, n_chunks>1 through the pipelined one.
    out = []
    for p in _expand_io(spec, op="checkpoint_point"):
        for mttf in spec.mttfs:
            out.append(
                _grid_point(
                    "checkpoint_point",
                    mttf_s=float(mttf),
                    work_s=spec.work_s,
                    interval=spec.interval,
                    n_nodes=spec.n_nodes,
                    seed=spec.seed,
                    downtime_s=spec.downtime_s,
                    n_chunks=spec.n_chunks,
                    overlap=spec.overlap,
                    **p.as_kwargs(),
                )
            )
    return out


def _validate_checkpoint(spec) -> None:
    # Validate the whole scenario eagerly: a bad spec must fail at
    # construction (spec-file parse time), not per grid point inside a
    # worker pool.
    if not spec.mttfs:
        raise ConfigurationError("mttfs axis must not be empty")
    if any(m <= 0 for m in spec.mttfs):
        raise ConfigurationError("every mttf must be positive")
    if isinstance(spec.interval, str):
        if spec.interval not in ("daly", "young"):
            raise ConfigurationError(
                f"unknown interval policy {spec.interval!r}; expected "
                "'daly', 'young', or a number of seconds"
            )
    elif not spec.interval > 0:
        raise ConfigurationError("explicit interval must be positive")
    if not spec.work_s > 0:
        raise ConfigurationError("work_s must be positive")
    if spec.downtime_s < 0:
        raise ConfigurationError("downtime_s must be >= 0")
    if spec.n_nodes < 1:
        raise ConfigurationError("n_nodes must be >= 1")


# -- builtin table renderers --------------------------------------------------


def _table_serial(records) -> str:
    from repro.core.report import format_table

    headers = ["dataset", "codec", "REL", "cpu", "thr", "t_comp [s]",
               "t_dec [s]", "E_comp [J]", "E_dec [J]", "ratio", "PSNR [dB]"]
    rows = [
        [p.dataset, p.codec, f"{p.rel_bound:.0e}", p.cpu, p.threads,
         f"{p.compress_time_s:.3f}", f"{p.decompress_time_s:.3f}",
         f"{p.compress_energy_j:.1f}", f"{p.decompress_energy_j:.1f}",
         f"{p.roundtrip.ratio:.2f}", f"{p.roundtrip.psnr_db:.1f}"]
        for p in records
    ]
    return format_table(headers, rows)


def _table_quality(records) -> str:
    from repro.core.report import format_table

    headers = ["dataset", "codec", "REL", "ratio", "PSNR [dB]", "max rel err"]
    rows = [
        [r.dataset, r.codec, f"{r.rel_bound:.0e}", f"{r.ratio:.2f}",
         f"{r.psnr_db:.1f}" if r.psnr_db != float("inf") else "inf",
         f"{r.max_rel_err:.2e}"]
        for r in records
    ]
    return format_table(headers, rows)


def _table_io(records) -> str:
    from repro.core.report import format_table, si

    headers = ["io", "dataset", "codec", "REL", "payload", "t_io [s]",
               "E_io [J]", "t_codec [s]", "E_codec [J]", "E_total [J]"]
    rows = [
        [p.io_library, p.dataset, p.codec or "original",
         "-" if p.rel_bound is None else f"{p.rel_bound:.0e}",
         si(p.bytes_written, "B"), f"{p.write_time_s:.3f}",
         f"{p.write_energy_j:.1f}", f"{p.compress_time_s:.3f}",
         f"{p.compress_energy_j:.1f}", f"{p.total_energy_j:.1f}"]
        for p in records
    ]
    return format_table(headers, rows)


def _table_pipeline(records) -> str:
    from repro.core.report import format_table, si

    headers = ["io", "dataset", "codec", "REL", "chunks", "ovl", "payload",
               "t_comp [s]", "t_write [s]", "t_total [s]", "saved [s]",
               "E_total [J]"]
    rows = [
        [p.io_library, p.dataset, p.codec or "original",
         "-" if p.rel_bound is None else f"{p.rel_bound:.0e}",
         p.n_chunks, "on" if p.overlap else "off", si(p.bytes_written, "B"),
         f"{p.compress_time_s:.3f}", f"{p.write_time_s:.3f}",
         f"{p.total_time_s:.3f}", f"{p.overlap_saving_s:.3f}",
         f"{p.total_energy_j:.1f}"]
        for p in records
    ]
    return format_table(headers, rows)


def _table_dvfs(records) -> str:
    from repro.core.report import format_table, si

    headers = ["io", "dataset", "codec", "REL", "f [GHz]", "payload",
               "t_comp [s]", "t_io [s]", "E_comp [J]", "E_io [J]",
               "E_total [J]"]
    rows = [
        [p.io_library, p.dataset, p.codec or "original",
         "-" if p.rel_bound is None else f"{p.rel_bound:.0e}",
         f"{p.freq_ghz:.2f}", si(p.bytes_written, "B"),
         f"{p.compress_time_s:.3f}", f"{p.write_time_s:.3f}",
         f"{p.compress_energy_j:.1f}", f"{p.write_energy_j:.1f}",
         f"{p.total_energy_j:.1f}"]
        for p in records
    ]
    return format_table(headers, rows)


def _table_checkpoint(records) -> str:
    from repro.core.report import format_table

    headers = ["io", "dataset", "codec", "REL", "MTTF [s]", "tau [s]",
               "ckpts", "fails", "T [s]", "E [J]", "E[T] [s]", "E[J]"]
    rows = [
        [p.io_library, p.dataset, p.codec or "original",
         "-" if p.rel_bound is None else f"{p.rel_bound:.0e}",
         "inf" if p.mttf_s == float("inf") else f"{p.mttf_s:.0f}",
         "inf" if p.interval_s == float("inf") else f"{p.interval_s:.1f}",
         p.n_checkpoints, p.n_failures,
         f"{p.makespan_s:.1f}", f"{p.total_energy_j:.1f}",
         f"{p.expected_makespan_s:.1f}", f"{p.expected_energy_j:.1f}"]
        for p in records
    ]
    return format_table(headers, rows)


# -- builtin invariants (the old tools/check_*_schema.py bodies) --------------


def _invariants_roundtrip(records) -> list:
    errors = []
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["ratio"] <= 0:
            errors.append(f"{where}: ratio must be positive")
        if rec["compressed_nbytes"] < 1 or rec["original_nbytes"] < 1:
            errors.append(f"{where}: byte counts must be >= 1")
        if rec["max_rel_err"] < 0:
            errors.append(f"{where}: negative max_rel_err")
    return errors


def _invariants_serial(records) -> list:
    errors = []
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["threads"] < 1:
            errors.append(f"{where}: threads must be >= 1")
        if min(rec["compress_time_s"], rec["decompress_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if min(rec["compress_energy_j"], rec["decompress_energy_j"]) < 0:
            errors.append(f"{where}: negative energy")
    return errors


def _invariants_io(records) -> list:
    errors = []
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if min(rec["write_time_s"], rec["compress_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if min(rec["write_energy_j"], rec["compress_energy_j"]) < 0:
            errors.append(f"{where}: negative energy")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
        if rec["codec"] is None and (
            rec["compress_time_s"] != 0 or rec["compress_energy_j"] != 0
        ):
            errors.append(f"{where}: uncompressed baseline carries codec cost")
    return errors


#: Per-chunk slack for the pipeline makespan invariant.  Overlap can only
#: *hide* stage time, but each additional chunk honestly pays its library's
#: chunk_meta_latency_s (<= 3 ms for NetCDF classic), which the sequential
#: stage sum does not include — so a degenerate config (tiny payload, many
#: chunks) may legitimately end slightly above the stage sum.  10 ms/chunk
#: comfortably covers every shipped cost model while still catching real
#: model drift.
CHUNK_META_ALLOWANCE_S = 0.01


def _invariants_pipeline(records) -> list:
    errors = []
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if rec["n_chunks"] < 1:
            errors.append(f"{where}: n_chunks must be >= 1")
        if min(rec["compress_time_s"], rec["write_time_s"], rec["total_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if min(rec["compress_energy_j"], rec["write_energy_j"]) < 0:
            errors.append(f"{where}: negative energy")
        stage_sum = rec["compress_time_s"] + rec["write_time_s"]
        allowance = CHUNK_META_ALLOWANCE_S * rec["n_chunks"]
        if rec["total_time_s"] > stage_sum + allowance + 1e-9:
            errors.append(
                f"{where}: overlapped total {rec['total_time_s']} exceeds "
                f"stage sum {stage_sum} + chunk-metadata allowance {allowance}"
            )
        if not rec["overlap"] and abs(rec["total_time_s"] - stage_sum) > 1e-9:
            errors.append(f"{where}: overlap-off control does not sum exactly")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
    return errors


def _invariants_dvfs(records) -> list:
    errors = []
    # Compression time must be non-increasing in frequency per configuration.
    by_config: dict[tuple, list[tuple[float, float]]] = {}
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if rec["freq_ghz"] <= 0:
            errors.append(f"{where}: freq_ghz must be positive")
        if rec["bytes_written"] < 1:
            errors.append(f"{where}: bytes_written must be >= 1")
        if min(rec["compress_time_s"], rec["write_time_s"]) < 0:
            errors.append(f"{where}: negative stage time")
        if rec["compress_energy_j"] < 0 or rec["write_energy_j"] <= 0:
            errors.append(f"{where}: energy must be positive (idle power alone is)")
        if rec["ratio"] <= 0:
            errors.append(f"{where}: ratio must be positive")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
        if rec["codec"] is None:
            if rec["compress_time_s"] != 0 or rec["compress_energy_j"] != 0:
                errors.append(f"{where}: uncompressed baseline carries codec cost")
            if rec["ratio"] != 1.0:
                errors.append(f"{where}: uncompressed baseline ratio != 1.0")
        key = (
            rec["dataset"],
            rec["codec"],
            rec["rel_bound"],
            rec["io_library"],
            rec["cpu"],
        )
        by_config.setdefault(key, []).append(
            (float(rec["freq_ghz"]), float(rec["compress_time_s"]))
        )
    for key, points in by_config.items():
        points.sort()
        for (f_lo, t_lo), (f_hi, t_hi) in zip(points, points[1:]):
            if t_hi > t_lo + 1e-9:
                errors.append(
                    f"config {key}: compress time rose with frequency "
                    f"({t_lo}s @ {f_lo} GHz -> {t_hi}s @ {f_hi} GHz)"
                )
    return errors


def _invariants_checkpoint(records) -> list:
    errors = []
    # Per configuration: the resolved interval must not grow as MTTF drops.
    by_config: dict[tuple, list[tuple[float, float]]] = {}
    for i, rec in enumerate(records):
        where = f"record[{i}]"
        mttf = _num(rec["mttf_s"])
        interval_s = _num(rec["interval_s"])
        if rec["n_checkpoints"] < 1:
            errors.append(f"{where}: at least one checkpoint must commit")
        if rec["makespan_s"] < rec["work_s"]:
            errors.append(f"{where}: makespan undercuts the useful work")
        if rec["expected_makespan_s"] < rec["work_s"]:
            errors.append(f"{where}: expected makespan undercuts the work")
        if rec["rework_s"] < -1e-9 or rec["n_failures"] < 0:
            errors.append(f"{where}: negative rework or failure count")
        for name in (
            "compute_energy_j",
            "checkpoint_energy_j",
            "restart_energy_j",
            "idle_energy_j",
            "expected_energy_j",
        ):
            if rec[name] < 0:
                errors.append(f"{where}.{name}: negative energy")
        if (rec["codec"] is None) != (rec["rel_bound"] is None):
            errors.append(f"{where}: codec/rel_bound nullability mismatch")
        if rec["codec"] is None:
            if rec["ckpt_compress_time_s"] != 0 or rec["ckpt_compress_energy_j"] != 0:
                errors.append(f"{where}: uncompressed baseline carries codec cost")
            if rec["ratio"] != 1.0:
                errors.append(f"{where}: uncompressed baseline ratio != 1.0")
        if math.isinf(mttf):
            if rec["n_failures"] != 0 or rec["rework_s"] != 0:
                errors.append(f"{where}: failure-free lifetime shows failures")
            ff = rec["work_s"] + rec["n_checkpoints"] * rec["ckpt_time_s"]
            if abs(rec["makespan_s"] - ff) > 1e-6 * max(1.0, ff):
                errors.append(
                    f"{where}: failure-free makespan {rec['makespan_s']} != "
                    f"work + checkpoints {ff}"
                )
        key = (
            rec["dataset"],
            rec["codec"],
            rec["rel_bound"],
            rec["io_library"],
            rec["cpu"],
            rec["interval"] if isinstance(rec["interval"], str) else None,
        )
        if isinstance(rec["interval"], str):  # daly/young adapt to the MTTF
            by_config.setdefault(key, []).append((mttf, interval_s))
    for key, points in by_config.items():
        points.sort()
        for (m_lo, tau_lo), (m_hi, tau_hi) in zip(points, points[1:]):
            if tau_lo > tau_hi + 1e-9:
                errors.append(
                    f"config {key}: optimal interval grew as MTTF dropped "
                    f"({tau_lo}s @ MTTF {m_lo}s vs {tau_hi}s @ MTTF {m_hi}s)"
                )
    return errors


# -- builtin registrations ----------------------------------------------------

_IO_FIELDS = ("datasets", "codecs", "bounds", "cpus", "io_libraries",
              "include_baseline", "compression")

#: Tiny per-kind grids for the conformance battery: fast at scale="tiny",
#: yet covering the uncompressed baseline, a codec point, and (for the
#: checkpoint kind) an ±inf MTTF parameter.
_CONFORMANCE_IO = dict(datasets=("cesm",), codecs=("szx",), bounds=(1e-3,),
                       io_libraries=("hdf5",), cpus=("max9480",))

BUILTIN_KINDS = (
    ExperimentKind(
        name="serial",
        help="per-(dataset, codec, bound) (de)compression profiling (Figs. 5/7)",
        record="SerialPoint",
        load_record=_load("SerialPoint"),
        expand=_expand_serial,
        ops=("serial_point",),
        spec_fields=("datasets", "codecs", "bounds", "cpus", "threads",
                     "compression"),
        table=_table_serial,
        invariants=_invariants_serial,
        conformance=dict(datasets=("cesm",), codecs=("szx",),
                         bounds=(1e-3, 1e-4), cpus=("max9480",), threads=(1,)),
    ),
    ExperimentKind(
        name="thread",
        help="OpenMP strong scaling along the thread axis (Fig. 10)",
        record="SerialPoint",
        load_record=_load("SerialPoint"),
        expand=_expand_thread,
        ops=("serial_point",),
        spec_fields=("datasets", "codecs", "threads", "rel_bound", "cpus",
                     "paper_fidelity", "compression"),
        validate=_validate_thread,
        table=_table_serial,
        invariants=_invariants_serial,
        conformance=dict(datasets=("cesm",), codecs=("szx",), threads=(1, 2),
                         rel_bound=1e-3, cpus=("max9480",)),
    ),
    ExperimentKind(
        name="quality",
        help="compression-ratio / PSNR quality grid (Table III)",
        record="RoundtripRecord",
        load_record=_load("RoundtripRecord"),
        expand=_expand_quality,
        ops=("roundtrip",),
        spec_fields=("datasets", "codecs", "bounds", "compression"),
        table=_table_quality,
        invariants=_invariants_roundtrip,
        conformance=dict(datasets=("cesm",), codecs=("szx",), bounds=(1e-3,)),
    ),
    ExperimentKind(
        name="lossless",
        help="lossless vs error-bounded compression ratios (Fig. 1)",
        record="RoundtripRecord",
        load_record=_load("RoundtripRecord"),
        expand=_expand_lossless,
        ops=("roundtrip",),
        spec_fields=("datasets", "codecs", "lossless_codecs", "rel_bound",
                     "compression"),
        table=_table_quality,
        invariants=_invariants_roundtrip,
        conformance=dict(datasets=("cesm",), codecs=("sz2",),
                         lossless_codecs=("zstd",), rel_bound=1e-2),
    ),
    ExperimentKind(
        name="io",
        help="compress-then-write energy vs the uncompressed baseline (Fig. 11)",
        record="IOPoint",
        load_record=_load("IOPoint"),
        expand=_expand_io,
        ops=("io_point",),
        spec_fields=_IO_FIELDS,
        table=_table_io,
        invariants=_invariants_io,
        conformance=dict(_CONFORMANCE_IO),
    ),
    ExperimentKind(
        name="read",
        help="read-path mirror of the io grid: fetch + decompress",
        record="IOPoint",
        load_record=_load("IOPoint"),
        expand=_expand_read,
        ops=("read_point",),
        spec_fields=_IO_FIELDS,
        table=_table_io,
        invariants=_invariants_io,
        conformance=dict(_CONFORMANCE_IO),
    ),
    ExperimentKind(
        name="pipeline",
        help="block-pipelined chunked compress-and-write with stage overlap",
        record="PipelinePoint",
        load_record=_load("PipelinePoint"),
        expand=_expand_pipeline,
        ops=("pipeline_point",),
        spec_fields=(*_IO_FIELDS, "n_chunks", "overlap"),
        table=_table_pipeline,
        invariants=_invariants_pipeline,
        conformance=dict(_CONFORMANCE_IO, n_chunks=4, overlap=True),
    ),
    ExperimentKind(
        name="dvfs",
        help="the compress-and-write grid swept along the DVFS frequency axis",
        record="DvfsPoint",
        load_record=_load("DvfsPoint"),
        expand=_expand_dvfs,
        ops=("dvfs_point",),
        spec_fields=(*_IO_FIELDS, "freqs"),
        table=_table_dvfs,
        invariants=_invariants_dvfs,
        conformance=dict(_CONFORMANCE_IO, freqs=(0.8, 1.9)),
    ),
    ExperimentKind(
        name="checkpoint",
        help="failure-aware checkpointed application lifetimes (Daly/Young)",
        record="CheckpointPoint",
        load_record=_load("CheckpointPoint"),
        expand=_expand_checkpoint,
        ops=("checkpoint_point",),
        spec_fields=(*_IO_FIELDS, "mttfs", "work_s", "interval", "n_nodes",
                     "seed", "downtime_s", "n_chunks", "overlap"),
        validate=_validate_checkpoint,
        table=_table_checkpoint,
        invariants=_invariants_checkpoint,
        conformance=dict(_CONFORMANCE_IO, mttfs=(float("inf"), 14400.0),
                         work_s=900.0, n_nodes=4, seed=0, downtime_s=60.0,
                         interval="daly", n_chunks=1, overlap=False),
    ),
)

for _kind in BUILTIN_KINDS:
    register(_kind)
del _kind
